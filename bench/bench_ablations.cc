// Ablations of Laminar's design choices (DESIGN.md §5):
//  * idleness detector: KVCache ramp-down vs static request threshold
//  * repack trigger period
//  * experience sampler strategy
//  * backlog cap (generation throttling)
//  * the Appendix-C hybrid (partial rollout on Laminar)
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

RlSystemConfig Base() {
  RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 64);
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 4;
  return cfg;
}

void DetectorSection() {
  Banner("Ablation: idleness detector (KVCache ramp-down vs static threshold)");
  Table table({"detector", "throughput (tok/s)", "repack events", "sources released",
               "migrated", "avg KV util"});
  std::vector<RlSystemConfig> grid;
  std::vector<std::string> names;
  for (int mode = 0; mode < 4; ++mode) {
    RlSystemConfig cfg = Base();
    if (mode == 0) {
      names.push_back("kvcache ramp-down (Laminar)");
    } else {
      cfg.repack_static_threshold = true;
      cfg.repack_static_threshold_requests = mode == 1 ? 4 : (mode == 2 ? 32 : 256);
      names.push_back("static reqs < " + std::to_string(cfg.repack_static_threshold_requests));
    }
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  for (size_t i = 0; i < reports.size(); ++i) {
    const SystemReport& rep = reports[i];
    const std::string& name = names[i];
    table.AddRow({name, Tps(rep.throughput_tokens_per_sec), Table::Int(rep.repack_events),
                  Table::Int(rep.repack_sources_released),
                  Table::Int(rep.repack_trajectories_migrated),
                  Table::Pct(rep.avg_kv_utilization)});
  }
  table.Print();
  std::printf("The static threshold needs per-workload tuning: too low misses\n"
              "stragglers, too high migrates healthy replicas (churn). The KVCache\n"
              "signal needs no tuning (paper §5.2).\n");
}

void PeriodSection() {
  Banner("Ablation: repack trigger period");
  Table table({"period (s)", "throughput (tok/s)", "repack events", "migrated"});
  std::vector<RlSystemConfig> grid;
  for (double period : {1.0, 5.0, 20.0, 60.0}) {
    RlSystemConfig cfg = Base();
    cfg.repack_period_seconds = period;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (double period : {1.0, 5.0, 20.0, 60.0}) {
    const SystemReport& rep = reports[cursor++];
    table.AddRow({Table::Num(period, 0), Tps(rep.throughput_tokens_per_sec),
                  Table::Int(rep.repack_events),
                  Table::Int(rep.repack_trajectories_migrated)});
  }
  table.Print();
}

void SamplerSection() {
  Banner("Ablation: experience sampling strategy");
  Table table({"sampler", "throughput (tok/s)", "mean staleness", "max staleness",
               "final reward"});
  std::vector<RlSystemConfig> grid;
  for (SamplerKind sampler :
       {SamplerKind::kFifo, SamplerKind::kFreshness, SamplerKind::kStalenessCapped}) {
    RlSystemConfig cfg = Base();
    cfg.sampler = sampler;
    cfg.measure_iterations = 8;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (SamplerKind sampler :
       {SamplerKind::kFifo, SamplerKind::kFreshness, SamplerKind::kStalenessCapped}) {
    const SystemReport& rep = reports[cursor++];
    const char* name = sampler == SamplerKind::kFifo
                           ? "FIFO (paper default)"
                           : (sampler == SamplerKind::kFreshness ? "freshest-first"
                                                                 : "staleness-capped(4)");
    table.AddRow({name, Tps(rep.throughput_tokens_per_sec),
                  Table::Num(rep.mean_consume_staleness),
                  Table::Num(rep.max_consume_staleness, 0),
                  Table::Num(rep.final_eval_reward, 3)});
  }
  table.Print();
}

void HybridSection() {
  Banner("Extension (Appendix C): partial rollout grafted onto Laminar");
  Table table({"variant", "throughput (tok/s)", "mean staleness", "mixed-version frac",
               "final reward"});
  std::vector<RlSystemConfig> grid;
  for (bool hybrid : {false, true}) {
    RlSystemConfig cfg = Base();
    cfg.laminar_partial_rollout = hybrid;
    cfg.measure_iterations = 10;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (bool hybrid : {false, true}) {
    const SystemReport& rep = reports[cursor++];
    table.AddRow({hybrid ? "laminar + partial rollout" : "laminar (paper)",
                  Tps(rep.throughput_tokens_per_sec),
                  Table::Num(rep.mean_consume_staleness),
                  Table::Pct(rep.mixed_version_fraction),
                  Table::Num(rep.final_eval_reward, 3)});
  }
  table.Print();
  std::printf("Mid-generation adoption lowers staleness slightly but reintroduces\n"
              "mixed-version trajectories and KV recomputation — the trade-off the\n"
              "paper's Appendix C discusses.\n");
}

void BacklogSection() {
  Banner("Ablation: generation backlog cap (x global batch)");
  Table table({"cap", "throughput (tok/s)", "mean staleness", "max staleness"});
  std::vector<RlSystemConfig> grid;
  for (double factor : {1.0, 2.0, 4.0}) {
    RlSystemConfig cfg = Base();
    cfg.backlog_cap = static_cast<int64_t>(factor * cfg.global_batch);
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (double factor : {1.0, 2.0, 4.0}) {
    const SystemReport& rep = reports[cursor++];
    table.AddRow({Table::Num(factor, 0) + "x batch", Tps(rep.throughput_tokens_per_sec),
                  Table::Num(rep.mean_consume_staleness),
                  Table::Num(rep.max_consume_staleness, 0)});
  }
  table.Print();
  std::printf("A tighter cap trades a little throughput for lower staleness; the\n"
              "default (2x) keeps the observed maximum staleness at ~4, matching\n"
              "the paper's report.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::DetectorSection();
  laminar::PeriodSection();
  laminar::SamplerSection();
  laminar::BacklogSection();
  laminar::HybridSection();
  return 0;
}
