// Chaos soak: the full Laminar system under many independent seeded fault
// schedules with the invariant checker armed on every run.
//
// Each seed drives a Poisson mix of fail-stop (machine/relay/master/trainer),
// transient (stall, link flap, message drop), and gray (fail-slow replica)
// faults against a small-but-real run. The table reports only deterministic
// fields — rerunning the soak must print byte-identical rows, which the
// harness itself verifies by running the first seed twice.
//
// Usage: bench_chaos_soak [--seeds N]  (default 24)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/run.h"

namespace laminar {
namespace {

RlSystemConfig SoakConfig(uint64_t chaos_seed) {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 3;
  cfg.seed = 99;
  cfg.chaos_enabled = true;
  cfg.chaos_seed = chaos_seed;
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.machine_fail_per_hour = 4.0;
  cfg.chaos.relay_fail_per_hour = 8.0;
  cfg.chaos.master_fail_per_hour = 4.0;
  cfg.chaos.trainer_fail_per_hour = 4.0;
  cfg.chaos.machine_stall_per_hour = 60.0;
  cfg.chaos.link_flap_per_hour = 60.0;
  cfg.chaos.replica_slow_per_hour = 20.0;
  cfg.chaos.message_drop_per_hour = 120.0;
  cfg.invariants_enabled = true;
  return cfg;
}

// Deterministic per-seed summary (no wall-clock fields).
std::string Row(const SystemReport& rep) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld|%lld|%lld|%lld|%lld|%lld|%lld|%.3f|%d",
                static_cast<long long>(rep.faults_injected),
                static_cast<long long>(rep.slow_events),
                static_cast<long long>(rep.slow_recoveries),
                static_cast<long long>(rep.trajectories_dropped),
                static_cast<long long>(rep.duplicates_suppressed),
                static_cast<long long>(rep.invariant_checks),
                static_cast<long long>(rep.invariant_violations),
                rep.throughput_tokens_per_sec, rep.iterations_completed);
  return buf;
}

void Run(int num_seeds) {
  Banner("Chaos soak: seeded fault schedules with invariants armed");
  std::vector<RlSystemConfig> grid;
  for (int seed = 0; seed < num_seeds; ++seed) {
    grid.push_back(SoakConfig(static_cast<uint64_t>(seed)));
  }
  std::vector<SystemReport> reports = RunSweep(grid);

  Table table({"seed", "faults", "slow/rec", "dropped", "dup-supp", "inv checks",
               "violations", "tok/s", "iters"});
  int64_t total_faults = 0;
  int64_t total_violations = 0;
  for (int seed = 0; seed < num_seeds; ++seed) {
    const SystemReport& rep = reports[seed];
    total_faults += rep.faults_injected;
    total_violations += rep.invariant_violations;
    table.AddRow({Table::Int(seed), Table::Int(rep.faults_injected),
                  Table::Int(rep.slow_events) + "/" + Table::Int(rep.slow_recoveries),
                  Table::Int(rep.trajectories_dropped),
                  Table::Int(rep.duplicates_suppressed),
                  Table::Int(rep.invariant_checks),
                  Table::Int(rep.invariant_violations), Tps(rep.throughput_tokens_per_sec),
                  Table::Int(rep.iterations_completed)});
  }
  table.Print();
  std::printf("\n%d seeds, %lld faults injected, %lld invariant violations\n",
              num_seeds, static_cast<long long>(total_faults),
              static_cast<long long>(total_violations));

  // Reproducibility spot check: seed 0 rerun must match its sweep row.
  std::string again = Row(RunExperiment(grid[0]));
  if (again == Row(reports[0])) {
    std::printf("seed 0 rerun: byte-identical report (deterministic)\n");
  } else {
    std::printf("seed 0 rerun: MISMATCH\n  sweep: %s\n  rerun: %s\n",
                Row(reports[0]).c_str(), again.c_str());
  }
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  int num_seeds = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      num_seeds = std::atoi(argv[++i]);
    }
  }
  laminar::Run(num_seeds);
  return 0;
}
