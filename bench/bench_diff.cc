// Compare two schema-1 BENCH_*.json snapshots (bench_full_system --json and
// friends): per-run events/sec deltas, determinism witnesses, and a
// regression gate.
//
//   bench_diff BEFORE.json AFTER.json                 # report only
//   bench_diff --threshold 10 BEFORE.json AFTER.json  # exit 1 past -10%
//
// Exit codes: 0 = no regression past the threshold, 1 = at least one run
// regressed past it (or an events-count mismatch with --threshold, which
// means the two snapshots did not measure the same deterministic workload),
// 2 = usage or parse error. Runs present in only one file are reported and
// skipped by the gate.
//
// The parser handles exactly the flat schema-1 shape the bench harnesses
// emit ("runs" array of one-line objects with string/number fields) — it is
// not a general JSON reader, and it rejects anything without schema: 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchRun {
  std::string name;
  double events = 0.0;
  double events_per_sec = 0.0;
};

struct BenchFile {
  std::string label;
  std::vector<BenchRun> runs;
};

// Extracts the JSON string value following `"key":` in `obj`, or "" if the
// key is absent.
std::string StringField(const std::string& obj, const std::string& key) {
  std::string needle = "\"" + key + "\"";
  size_t at = obj.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  at = obj.find('"', obj.find(':', at + needle.size()));
  if (at == std::string::npos) {
    return "";
  }
  size_t end = obj.find('"', at + 1);
  if (end == std::string::npos) {
    return "";
  }
  return obj.substr(at + 1, end - at - 1);
}

// Extracts the numeric value following `"key":` in `obj`. Returns fallback
// if absent.
double NumberField(const std::string& obj, const std::string& key,
                   double fallback) {
  std::string needle = "\"" + key + "\"";
  size_t at = obj.find(needle);
  if (at == std::string::npos) {
    return fallback;
  }
  size_t colon = obj.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return fallback;
  }
  return std::atof(obj.c_str() + colon + 1);
}

bool ParseBenchFile(const char* path, BenchFile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = std::string("cannot open ") + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (static_cast<int>(NumberField(text, "schema", -1.0)) != 1) {
    *error = std::string(path) + ": not a schema-1 bench snapshot";
    return false;
  }
  out->label = StringField(text, "label");
  size_t runs_at = text.find("\"runs\"");
  if (runs_at == std::string::npos) {
    *error = std::string(path) + ": no \"runs\" array";
    return false;
  }
  // Each run is a one-line {...} object inside the runs array.
  size_t cursor = text.find('[', runs_at);
  size_t close = text.find(']', cursor);
  while (cursor != std::string::npos) {
    size_t open = text.find('{', cursor);
    if (open == std::string::npos || open > close) {
      break;
    }
    size_t end = text.find('}', open);
    if (end == std::string::npos) {
      *error = std::string(path) + ": unterminated run object";
      return false;
    }
    std::string obj = text.substr(open, end - open + 1);
    BenchRun run;
    run.name = StringField(obj, "name");
    run.events = NumberField(obj, "events", 0.0);
    run.events_per_sec = NumberField(obj, "events_per_sec", 0.0);
    if (run.name.empty()) {
      *error = std::string(path) + ": run object without a name";
      return false;
    }
    out->runs.push_back(std::move(run));
    cursor = end + 1;
  }
  if (out->runs.empty()) {
    *error = std::string(path) + ": empty runs array";
    return false;
  }
  return true;
}

const BenchRun* FindRun(const BenchFile& f, const std::string& name) {
  for (const BenchRun& r : f.runs) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = -1.0;  // percent regression that fails the gate; <0 = off
  const char* before_path = nullptr;
  const char* after_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
    } else if (before_path == nullptr) {
      before_path = argv[i];
    } else if (after_path == nullptr) {
      after_path = argv[i];
    } else {
      before_path = nullptr;
      break;
    }
  }
  if (before_path == nullptr || after_path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--threshold PCT] BEFORE.json AFTER.json\n"
                 "  PCT: fail (exit 1) if any run's events/sec drops more "
                 "than PCT%% below BEFORE\n",
                 argv[0]);
    return 2;
  }

  BenchFile before, after;
  std::string error;
  if (!ParseBenchFile(before_path, &before, &error) ||
      !ParseBenchFile(after_path, &after, &error)) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }

  std::printf("bench_diff: %s (%s) -> %s (%s)\n", before_path,
              before.label.c_str(), after_path, after.label.c_str());
  std::printf("%-28s %12s %12s %9s  %s\n", "run", "before ev/s", "after ev/s",
              "delta", "events");

  bool regression = false;
  for (const BenchRun& b : before.runs) {
    const BenchRun* a = FindRun(after, b.name);
    if (a == nullptr) {
      std::printf("%-28s %12.0f %12s %9s  (missing in after)\n",
                  b.name.c_str(), b.events_per_sec, "-", "-");
      continue;
    }
    double delta_pct =
        b.events_per_sec > 0.0
            ? 100.0 * (a->events_per_sec - b.events_per_sec) / b.events_per_sec
            : 0.0;
    // The simulated workload is deterministic: a differing event count means
    // the two snapshots measured different work, so the wall-clock delta is
    // meaningless for that run.
    bool same_work = b.events == a->events;
    std::printf("%-28s %12.0f %12.0f %+8.1f%%  %s\n", b.name.c_str(),
                b.events_per_sec, a->events_per_sec, delta_pct,
                same_work ? "identical" : "MISMATCH");
    if (threshold >= 0.0 && (!same_work || delta_pct < -threshold)) {
      regression = true;
    }
  }
  for (const BenchRun& a : after.runs) {
    if (FindRun(before, a.name) == nullptr) {
      std::printf("%-28s %12s %12.0f %9s  (missing in before)\n",
                  a.name.c_str(), "-", a.events_per_sec, "-");
    }
  }

  if (regression) {
    std::printf("REGRESSION: at least one run past --threshold %.1f%%\n",
                threshold);
    return 1;
  }
  return 0;
}
