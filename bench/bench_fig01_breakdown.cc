// Figure 1(b): time breakdown of an RL iteration under the synchronous
// (verl-style) system, for the single-turn math task and the multi-turn
// tool-calling task. The paper reports generation consuming up to 83.1% of
// iteration time, experience preparation ~7.3%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 1(b): RL iteration time breakdown (synchronous system)");
  Table table({"task", "GPUs", "generation", "train (prep+update)", "other (switch/sync)",
               "iteration (s)"});
  std::vector<RlSystemConfig> grid;
  for (TaskKind task : {TaskKind::kMathReasoning, TaskKind::kToolCalling}) {
    for (int gpus : {32, 128}) {
      grid.push_back(ThroughputConfig(SystemKind::kVerlSync, ModelScale::k7B, gpus, task));
    }
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (TaskKind task : {TaskKind::kMathReasoning, TaskKind::kToolCalling}) {
    for (int gpus : {32, 128}) {
      const SystemReport& rep = reports[cursor++];
      double other = 1.0 - rep.generation_fraction - rep.train_fraction;
      table.AddRow({TaskKindName(task), Table::Int(gpus), Table::Pct(rep.generation_fraction),
                    Table::Pct(rep.train_fraction), Table::Pct(other),
                    Table::Num(rep.mean_iteration_seconds, 1)});
    }
  }
  table.Print();
  std::printf("\nPaper: generation accounts for up to 83.1%% of execution time on\n"
              "reasoning tasks; experience preparation only ~7.3%% of the iteration.\n"
              "Multi-turn tasks add sandbox wait time to the generation stage.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
