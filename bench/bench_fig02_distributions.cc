// Figure 2 + Figure 17: trajectory-length distribution on the math dataset,
// code-sandbox latency distribution, and per-checkpoint response-length
// distributions.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/workload/generator.h"
#include "src/workload/length_model.h"

namespace laminar {
namespace {

constexpr int kSamples = 100000;

void LengthSection() {
  Banner("Figure 2 (left): trajectory length distribution, math reasoning");
  Table table({"model", "p50", "p90", "p99", "p99/p50", "mean", "truncated@16K"});
  for (ModelScale scale : {ModelScale::k7B, ModelScale::k32B, ModelScale::k72B}) {
    LengthDistribution d = MathLengthDistribution(scale);
    Rng rng(77);
    SampleSet s;
    int truncated = 0;
    for (int i = 0; i < kSamples; ++i) {
      int64_t x = d.Sample(rng);
      if (x == d.max_tokens) {
        ++truncated;
      }
      s.Add(static_cast<double>(x));
    }
    table.AddRow({ModelScaleName(scale), Table::Int(s.Median()), Table::Int(s.Quantile(0.9)),
                  Table::Int(s.Quantile(0.99)),
                  Table::Factor(s.Quantile(0.99) / s.Median(), 1), Table::Int(s.mean()),
                  Table::Pct(static_cast<double>(truncated) / kSamples)});
  }
  table.Print();
  std::printf("Paper: the 99th-percentile output length can exceed the median by an\n"
              "order of magnitude (the clamp at the 16K output limit compresses the\n"
              "sampled ratio; the unclamped distributions satisfy p99/p50 ~ 10x).\n");

  Banner("Figure 17: response length histogram per checkpoint (7B shown)");
  LengthDistribution d = MathLengthDistribution(ModelScale::k7B);
  Rng rng(78);
  LogHistogram hist(64.0, 1.6, 14);
  for (int i = 0; i < kSamples; ++i) {
    hist.Add(static_cast<double>(d.Sample(rng)));
  }
  std::printf("%s", hist.ToAscii().c_str());
}

void EnvSection() {
  Banner("Figure 2 (right): code-sandbox execution latency");
  EnvLatencyDistribution d = SandboxLatencyDistribution();
  Rng rng(79);
  SampleSet s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(d.Sample(rng));
  }
  Table table({"p50 (s)", "p90 (s)", "p99 (s)", "p99/p50", "max (s)"});
  table.AddRow({Table::Num(s.Median()), Table::Num(s.Quantile(0.9)),
                Table::Num(s.Quantile(0.99)), Table::Factor(s.Quantile(0.99) / s.Median(), 1),
                Table::Num(s.max())});
  table.Print();

  Banner("Multi-turn tool-calling trajectory shapes");
  WorkloadConfig cfg;
  cfg.task = TaskKind::kToolCalling;
  WorkloadGenerator gen(cfg, Rng(80));
  SampleSet turns;
  SampleSet env_total;
  SampleSet tokens;
  for (int i = 0; i < 20000; ++i) {
    TrajectorySpec spec = gen.Sample(0);
    turns.Add(spec.num_turns());
    env_total.Add(spec.total_env_latency());
    tokens.Add(static_cast<double>(spec.total_context_tokens()));
  }
  Table table2({"metric", "mean", "p50", "p99"});
  table2.AddRow({"tool calls / trajectory", Table::Num(turns.mean(), 1),
                 Table::Num(turns.Median(), 0), Table::Num(turns.Quantile(0.99), 0)});
  table2.AddRow({"total sandbox wait (s)", Table::Num(env_total.mean(), 1),
                 Table::Num(env_total.Median(), 1), Table::Num(env_total.Quantile(0.99), 1)});
  table2.AddRow({"context tokens", Table::Int(tokens.mean()), Table::Int(tokens.Median()),
                 Table::Int(tokens.Quantile(0.99))});
  table2.Print();
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::LengthSection();
  laminar::EnvSection();
  return 0;
}
