// Figure 4: one-step decode latency of Qwen2.5-7B/32B under various tensor
// parallel sizes, with decode batch sizes up to the KVCache limit. The
// paper's point: decoding is memory-bound, so latency stays nearly flat over
// a wide batch range (repack can merge small batches for free), and extra
// TP GPUs give only marginal latency reductions.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/llm/decode_model.h"

namespace laminar {
namespace {

void Sweep(const ModelSpec& model, const std::vector<int>& tps, double context) {
  Banner(model.name + " one-step decode latency (ms), context " +
         Table::Int(context) + " tokens");
  std::vector<std::string> headers = {"batch"};
  for (int tp : tps) {
    headers.push_back("TP=" + std::to_string(tp));
  }
  headers.push_back("tok/s@TP=" + std::to_string(tps.back()));
  Table table(headers);
  MachineSpec machine;
  std::vector<DecodeModel> models;
  for (int tp : tps) {
    models.emplace_back(model, machine, tp);
  }
  for (int batch : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    // Respect the KVCache limit of the largest-TP replica.
    double cap = models.back().KvCapacityTokens();
    if (batch * context > cap) {
      break;
    }
    std::vector<std::string> row = {Table::Int(batch)};
    for (const DecodeModel& m : models) {
      row.push_back(Table::Num(m.StepLatency(batch, context) * 1e3, 2));
    }
    row.push_back(Table::Int(batch / models.back().StepLatency(batch, context)));
    table.AddRow(std::move(row));
  }
  table.Print();
  for (int tp : tps) {
    DecodeModel m(model, machine, tp);
    std::printf("TP=%d roofline batch bound B = %d, KV capacity = %s tokens\n", tp,
                m.RooflineBatchBound(context), Table::Int(m.KvCapacityTokens()).c_str());
  }
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Banner("Figure 4: decode latency vs batch size and TP");
  laminar::Sweep(laminar::Qwen25_7B(), {1, 2, 4}, 2000.0);
  laminar::Sweep(laminar::Qwen25_32B(), {2, 4, 8}, 2000.0);
  std::printf(
      "\nPaper: latency per decode step remains stable as batch grows through\n"
      "the memory-bound regime (e.g. batch 8 vs 64), and TP scaling yields\n"
      "only marginal latency reductions — the basis for trajectory repacking.\n");
  return 0;
}
