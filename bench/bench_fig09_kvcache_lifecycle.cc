// Figure 9: KVCache utilization lifecycle during rollout generation.
// One 32B TP=4 replica generates a batch of 512 trajectories: utilization
// ramps to ~C_max, plateaus while waiting trajectories backfill freed space,
// and falls only once the waiting queue drains — the ramp-down phase that
// marks the replica as a repack source.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/data/prompt_pool.h"
#include "src/llm/model_spec.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 9: KVCache utilization lifecycle (32B, TP=4, 512 trajectories)");
  Simulator sim;
  DecodeModel decode(Qwen25_32B(), MachineSpec{}, 4);
  WorkloadConfig wl;
  wl.scale = ModelScale::k32B;
  PromptPool pool(WorkloadGenerator(wl, Rng(42)), 16, Rng(43));

  ReplicaConfig rc;
  rc.max_concurrency = 1024;
  RolloutReplica replica(&sim, rc, decode, decode.KvCapacityTokens());
  int completed = 0;
  replica.set_on_complete([&](TrajectoryRecord) { ++completed; });

  std::vector<TrajectoryWork> works;
  for (auto& rec : pool.NextBatch(512, 0)) {
    TrajectoryWork w;
    w.record = rec;
    w.InitContext();
    works.push_back(w);
  }
  replica.AssignWork(std::move(works));

  struct Sample {
    double t;
    double kv;
    int running;
    int waiting;
  };
  std::vector<Sample> samples;
  PeriodicTask sampler(&sim, 10.0, [&] {
    ReplicaSnapshot snap = replica.Snapshot();
    samples.push_back({sim.Now().seconds(), snap.kv_used_frac,
                       snap.num_reqs - snap.num_waiting, snap.num_waiting});
  });
  sampler.Start();
  sim.RunUntilTrue([&] { return completed == 512; });
  sampler.Stop();

  Table table({"time (s)", "KV util", "active", "waiting", "phase"});
  double peak = 0.0;
  for (const Sample& s : samples) {
    peak = std::max(peak, s.kv);
  }
  bool seen_peak = false;
  size_t step = std::max<size_t>(1, samples.size() / 40);
  for (size_t i = 0; i < samples.size(); i += step) {
    const Sample& s = samples[i];
    if (s.kv > 0.97 * peak) {
      seen_peak = true;
    }
    const char* phase = !seen_peak ? "ramp-up"
                        : (s.waiting > 0 ? "plateau (backfilling)" : "ramp-down (idle)");
    std::string bar(static_cast<size_t>(s.kv * 40), '#');
    table.AddRow({Table::Num(s.t, 0), Table::Pct(s.kv), Table::Int(s.running),
                  Table::Int(s.waiting), std::string(phase) + " " + bar});
  }
  table.Print();
  std::printf("\nPeak utilization: %s; generation finished at t=%.0f s.\n"
              "Paper: usage ramps to a natural threshold C_max, stays there while\n"
              "waiting trajectories backfill, and falls only when none are left —\n"
              "the consistent signal the repack monitor keys on.\n",
              Table::Pct(peak).c_str(), sim.Now().seconds());
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
