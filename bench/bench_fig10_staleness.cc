// Figure 10: inherent staleness distribution over trajectory finish-time
// ranges during Laminar RL training of a 7B model on 64 GPUs. Staleness
// emerges from generation latency alone (no configured bound) and stays low.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 10: inherent staleness vs finish time (Laminar, 7B, 64 GPUs)");
  RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 64);
  cfg.warmup_iterations = 0;
  cfg.measure_iterations = 10;
  ArmTrace(cfg);
  SystemReport rep = RunExperiment(cfg);
  MaybeWriteTrace(rep);

  double horizon = rep.simulated_seconds;
  const int kRanges = 5;
  // staleness -> count per finish-time range
  std::map<int, std::vector<int64_t>> dist;
  std::vector<int64_t> totals(kRanges, 0);
  for (const auto& [finish, staleness] : rep.staleness_samples) {
    int range = std::min(kRanges - 1, static_cast<int>(finish / horizon * kRanges));
    auto& row = dist[staleness];
    if (row.empty()) {
      row.assign(kRanges, 0);
    }
    ++row[range];
    ++totals[range];
  }

  std::vector<std::string> headers = {"staleness"};
  for (int r = 0; r < kRanges; ++r) {
    headers.push_back(Table::Num(r * horizon / kRanges, 0) + "-" +
                      Table::Num((r + 1) * horizon / kRanges, 0) + "s");
  }
  Table table(headers);
  for (const auto& [staleness, counts] : dist) {
    std::vector<std::string> row = {Table::Int(staleness)};
    for (int r = 0; r < kRanges; ++r) {
      row.push_back(totals[r] == 0 ? "-" : Table::Pct(static_cast<double>(counts[r]) /
                                                      static_cast<double>(totals[r])));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nmean inherent staleness: %.2f   max: %.0f   trajectories: %zu\n",
              rep.mean_inherent_staleness, rep.max_inherent_staleness,
              rep.staleness_samples.size());
  std::printf("Paper: inherent staleness remains consistently low (typically under 3,\n"
              "never above 4 in any experiment) with no tuned staleness bound.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
