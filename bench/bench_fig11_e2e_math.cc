// Figure 11 + Table 2 + Appendix B: end-to-end training throughput on the
// single-turn math-reasoning task, five systems x {7B, 32B, 72B} x five
// cluster sizes, with speedup and strong-scaling-efficiency summaries.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 11: training throughput, math reasoning (tokens/s)");
  std::printf("Placements follow Table 2; batch 8192 (512 prompts x 16 responses).\n\n");

  std::map<std::pair<ModelScale, int>, std::map<SystemKind, double>> results;

  // The whole figure is one grid: scales x cluster sizes x systems, swept in
  // parallel, consumed below in the same order it was submitted.
  std::vector<RlSystemConfig> grid;
  for (ModelScale scale : {ModelScale::k7B, ModelScale::k32B, ModelScale::k72B}) {
    for (int gpus : PaperClusterSizes(scale)) {
      for (SystemKind system : AllSystemKinds()) {
        grid.push_back(ThroughputConfig(system, scale, gpus));
      }
    }
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;

  for (ModelScale scale : {ModelScale::k7B, ModelScale::k32B, ModelScale::k72B}) {
    Table table({"GPUs", "verl", "one-step", "stream-gen", "partial-rollout", "laminar",
                 "laminar/verl", "laminar/best-async"});
    for (int gpus : PaperClusterSizes(scale)) {
      std::vector<std::string> row = {Table::Int(gpus)};
      double laminar_tps = 0.0;
      double verl_tps = 0.0;
      double best_async = 0.0;
      for (SystemKind system : AllSystemKinds()) {
        const SystemReport& rep = reports[cursor++];
        results[{scale, gpus}][system] = rep.throughput_tokens_per_sec;
        row.push_back(Tps(rep.throughput_tokens_per_sec));
        if (system == SystemKind::kLaminar) {
          laminar_tps = rep.throughput_tokens_per_sec;
        } else {
          if (system == SystemKind::kVerlSync) {
            verl_tps = rep.throughput_tokens_per_sec;
          }
          best_async = std::max(best_async, rep.throughput_tokens_per_sec);
        }
      }
      row.push_back(Table::Factor(laminar_tps / verl_tps));
      row.push_back(Table::Factor(laminar_tps / best_async));
      table.AddRow(std::move(row));
    }
    Banner(std::string("Qwen2.5-") + ModelScaleName(scale));
    table.Print();
  }

  Banner("Speedup summary (Laminar vs each baseline)");
  Table speedups({"baseline", "average", "max", "at largest scales"});
  for (SystemKind system : AllSystemKinds()) {
    if (system == SystemKind::kLaminar) {
      continue;
    }
    double sum = 0.0;
    double max = 0.0;
    double largest_sum = 0.0;
    int n = 0;
    int n_largest = 0;
    for (const auto& [key, by_system] : results) {
      double ratio = by_system.at(SystemKind::kLaminar) / by_system.at(system);
      sum += ratio;
      max = std::max(max, ratio);
      ++n;
      if (key.second == PaperClusterSizes(key.first).back()) {
        largest_sum += ratio;
        ++n_largest;
      }
    }
    speedups.AddRow({SystemKindName(system), Table::Factor(sum / n), Table::Factor(max),
                     Table::Factor(largest_sum / n_largest)});
  }
  speedups.Print();
  std::printf("Paper: avg 2.56x (max 5.49x) over verl, 1.98x (4.09x) over one-step,\n"
              "1.93x (4.06x) over stream generation, 1.39x (1.81x) over AReaL;\n"
              "3.34x average at the largest scales.\n");

  Banner("Strong-scaling efficiency (throughput_max/throughput_min / gpu ratio)");
  Table scaling({"system", "7B", "32B", "72B"});
  for (SystemKind system : AllSystemKinds()) {
    std::vector<std::string> row = {SystemKindName(system)};
    for (ModelScale scale : {ModelScale::k7B, ModelScale::k32B, ModelScale::k72B}) {
      auto sizes = PaperClusterSizes(scale);
      double t_min = results[{scale, sizes.front()}][system];
      double t_max = results[{scale, sizes.back()}][system];
      double gpu_ratio = static_cast<double>(sizes.back()) / sizes.front();
      row.push_back(Table::Pct(t_max / t_min / gpu_ratio));
    }
    scaling.AddRow(std::move(row));
  }
  scaling.Print();
  std::printf("Paper: Laminar 53.7%% avg (up to 68.2%% on 32B); best baseline 33.6%%.\n");

  Banner("Table 2: GPU placements used above");
  Table placements({"system", "scale", "total", "train", "rollout"});
  for (const Placement& p : AllPaperPlacements()) {
    placements.AddRow({SystemKindName(p.system), ModelScaleName(p.scale),
                       Table::Int(p.total_gpus),
                       p.colocated ? "colocated" : Table::Int(p.train_gpus),
                       p.colocated ? "colocated" : Table::Int(p.rollout_gpus)});
  }
  placements.Print();
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
