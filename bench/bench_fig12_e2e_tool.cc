// Figure 12: end-to-end training throughput on the multi-turn tool-calling
// task (7B model, code-sandbox interactions, <= 8 tool calls).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 12: training throughput, multi-turn tool calling (7B, tokens/s)");
  Table table({"GPUs", "verl", "one-step", "stream-gen", "partial-rollout", "laminar",
               "laminar/verl", "laminar/best-async"});
  double speedup_sum = 0.0;
  int speedup_n = 0;
  std::vector<RlSystemConfig> grid;
  for (int gpus : PaperClusterSizes(ModelScale::k7B)) {
    for (SystemKind system : AllSystemKinds()) {
      grid.push_back(ThroughputConfig(system, ModelScale::k7B, gpus, TaskKind::kToolCalling));
    }
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (int gpus : PaperClusterSizes(ModelScale::k7B)) {
    std::vector<std::string> row = {Table::Int(gpus)};
    double laminar_tps = 0.0;
    double verl_tps = 0.0;
    double best_async = 0.0;
    std::map<SystemKind, double> by_system;
    for (SystemKind system : AllSystemKinds()) {
      const SystemReport& rep = reports[cursor++];
      by_system[system] = rep.throughput_tokens_per_sec;
      row.push_back(Tps(rep.throughput_tokens_per_sec));
      if (system == SystemKind::kLaminar) {
        laminar_tps = rep.throughput_tokens_per_sec;
      } else {
        best_async = std::max(best_async, rep.throughput_tokens_per_sec);
        if (system == SystemKind::kVerlSync) {
          verl_tps = rep.throughput_tokens_per_sec;
        }
      }
    }
    for (const auto& [system, tps] : by_system) {
      if (system != SystemKind::kLaminar) {
        speedup_sum += laminar_tps / tps;
        ++speedup_n;
      }
    }
    row.push_back(Table::Factor(laminar_tps / verl_tps));
    row.push_back(Table::Factor(laminar_tps / best_async));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nAverage Laminar speedup across all baselines/scales: %.2fx\n",
              speedup_sum / speedup_n);
  std::printf("Paper: average 2.62x across all baselines (range 1.21x-5.42x);\n"
              "scaling efficiency 46.5%% for Laminar vs 12.9%% for the best baseline.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
