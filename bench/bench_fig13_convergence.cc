// Figure 13 + Table 3: model convergence — training reward vs wall-clock
// time for every system, with the paper's convergence hyperparameters
// (mini-batch 2048, per-rollout concurrency 256, FIFO sampling; AReaL uses
// decoupled PPO, everything else GRPO with Clip-Higher).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

struct Curve {
  SystemKind system;
  TimeSeries eval;
  double final_reward = 0.0;
  double time_to_target = -1.0;
};

void RunScale(ModelScale scale, int gpus, double horizon_hours, double target_reward) {
  Banner(std::string("Figure 13: reward vs wall clock, ") + ModelScaleName(scale) + " on " +
         Table::Int(gpus) + " GPUs (" + Table::Num(horizon_hours, 1) + "h horizon)");
  std::vector<Curve> curves;
  std::vector<RlSystemConfig> grid;
  for (SystemKind system : AllSystemKinds()) {
    RlSystemConfig cfg = ConvergenceConfig(system, scale, gpus);
    // Every system trains for the same wall-clock budget; faster systems
    // complete more RL iterations within it.
    cfg.measure_iterations = 1 << 20;
    cfg.max_sim_seconds = horizon_hours * 3600.0;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (SystemKind system : AllSystemKinds()) {
    const SystemReport& rep = reports[cursor++];
    Curve c;
    c.system = system;
    c.eval = rep.reward_series;
    c.final_reward = rep.final_eval_reward;
    for (const TimePoint& p : rep.reward_series.points()) {
      if (p.value >= target_reward) {
        c.time_to_target = p.time.seconds();
        break;
      }
    }
    curves.push_back(std::move(c));
  }

  // Reward curves resampled onto a common grid.
  double horizon = 0.0;
  for (const Curve& c : curves) {
    if (!c.eval.empty()) {
      horizon = std::max(horizon, c.eval.points().back().time.seconds());
    }
  }
  std::vector<std::string> headers = {"time"};
  for (const Curve& c : curves) {
    headers.push_back(SystemKindName(c.system));
  }
  Table series(headers);
  const int kPoints = 12;
  for (int i = 1; i <= kPoints; ++i) {
    double t = horizon * i / kPoints;
    std::vector<std::string> row = {Table::Num(t / 3600.0, 2) + "h"};
    for (const Curve& c : curves) {
      // Last eval point at or before t.
      double v = c.eval.empty() ? 0.0 : c.eval.points().front().value;
      bool any = false;
      for (const TimePoint& p : c.eval.points()) {
        if (p.time.seconds() <= t) {
          v = p.value;
          any = true;
        }
      }
      row.push_back(any ? Table::Num(v, 3) : "-");
    }
    series.AddRow(std::move(row));
  }
  series.Print();

  Table summary({"system", "final reward", "time to reward " + Table::Num(target_reward, 2),
                 "speedup vs verl"});
  double verl_time = 0.0;
  for (const Curve& c : curves) {
    if (c.system == SystemKind::kVerlSync) {
      verl_time = c.time_to_target;
    }
  }
  for (const Curve& c : curves) {
    summary.AddRow({SystemKindName(c.system), Table::Num(c.final_reward, 3),
                    c.time_to_target < 0 ? "not reached"
                                         : Table::Num(c.time_to_target / 3600.0, 2) + "h",
                    (c.time_to_target < 0 || verl_time < 0)
                        ? "-"
                        : Table::Factor(verl_time / c.time_to_target)});
  }
  summary.Print();
}

void PrintTable3() {
  Banner("Table 3: convergence hyperparameters");
  Table t({"parameter", "verl", "one-step", "stream-gen", "AReaL", "laminar"});
  t.AddRow({"algorithm", "GRPO", "GRPO", "GRPO", "Decoupled PPO", "GRPO"});
  t.AddRow({"clip eps high", "0.28", "0.28", "0.28", "0.2", "0.28"});
  t.AddRow({"clip eps low", "0.2", "0.2", "0.2", "0.2", "0.2"});
  t.AddRow({"group size", "16", "16", "16", "16", "16"});
  t.AddRow({"global batch", "8192", "8192", "8192", "8192", "8192"});
  t.AddRow({"mini-batch", "2048", "2048", "2048", "2048", "2048"});
  t.AddRow({"rollout concurrency", "n/a", "n/a", "n/a", "256", "256"});
  t.AddRow({"sampling", "n/a", "n/a", "n/a", "FIFO", "FIFO"});
  t.AddRow({"max staleness", "0", "1", "1", "4", "4 (observed)"});
  t.Print();
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::PrintTable3();
  laminar::RunScale(laminar::ModelScale::k7B, 256, 4.0, 0.45);
  laminar::RunScale(laminar::ModelScale::k32B, 512, 8.0, 0.45);
  std::printf("\nPaper: Laminar converges ~1.77x (7B) and ~1.59x (32B) faster than the\n"
              "best baseline; partial rollout's mixed-version trajectories slow it\n"
              "despite high throughput.\n");
  return 0;
}
