// Figure 14 + §8.3: weight-synchronization overhead. Rollout waiting time
// under Laminar's relay tier vs GPU-direct global synchronization, from 64
// to 1024 GPUs (32B model); actor stall times; and the §4.1 storage-system
// strawman (NFS/Redis-style).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/llm/model_spec.h"
#include "src/relay/broadcast_model.h"
#include "src/relay/weight_sync.h"
#include "src/sim/channel.h"

namespace laminar {
namespace {

void RolloutWaitSection() {
  Banner("Figure 14: rollout waiting time during weight sync (32B)");
  Table table({"GPUs", "laminar avg (s)", "laminar best (s)", "laminar p99 (s)",
               "global-sync (s)", "avg reduction"});
  std::vector<RlSystemConfig> grid;
  for (int gpus : {64, 128, 256, 512, 1024}) {
    RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B,
                                          std::max(gpus, 32));
    // Figure 14's setting: trainer GPUs == rollout GPUs. Shorter rollout
    // cycles so every replica performs many weight updates during the run.
    cfg.total_gpus = gpus;
    cfg.train_gpus = gpus / 2;
    cfg.rollout_gpus = gpus / 2;
    cfg.per_replica_batch = 256;
    cfg.warmup_iterations = 1;
    cfg.measure_iterations = 8;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (int gpus : {64, 128, 256, 512, 1024}) {
    const SystemReport& rep = reports[cursor++];

    GlobalSyncModel sync;
    sync.weight_bytes = Qwen25_32B().weight_bytes();
    double global = sync.SyncSeconds(gpus);
    table.AddRow({Table::Int(gpus), Table::Num(rep.rollout_wait_mean_seconds),
                  Table::Num(rep.rollout_wait_best_seconds),
                  Table::Num(rep.rollout_wait_p99_seconds), Table::Num(global),
                  Table::Pct(1.0 - rep.rollout_wait_mean_seconds / global)});
  }
  table.Print();
  std::printf("\nPaper: Laminar reduces average/best-case waiting by up to 37%%/47%%;\n"
              "its average stays near the best case because most pulls find the\n"
              "weights already cached on the local relay (PCIe load only).\n");
}

void ActorStallSection() {
  Banner("§8.3: actor stall per weight publication");
  Table table({"model", "laminar relay push (s)", "global sync (s)"});
  std::vector<RlSystemConfig> grid;
  for (ModelScale scale : {ModelScale::k32B, ModelScale::k72B}) {
    int gpus = scale == ModelScale::k32B ? 128 : 256;
    RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, scale, gpus);
    cfg.warmup_iterations = 1;
    cfg.measure_iterations = 2;
    grid.push_back(cfg);
  }
  std::vector<SystemReport> reports = RunSweep(grid);
  size_t cursor = 0;
  for (ModelScale scale : {ModelScale::k32B, ModelScale::k72B}) {
    int gpus = scale == ModelScale::k32B ? 128 : 256;
    const SystemReport& rep = reports[cursor++];
    GlobalSyncModel sync;
    sync.weight_bytes = ModelForScale(scale).weight_bytes();
    table.AddRow({ModelScaleName(scale), Table::Num(rep.actor_stall_mean_seconds),
                  Table::Num(sync.SyncSeconds(gpus))});
  }
  table.Print();
  std::printf("Paper: the actor stalls only 0.64 s (32B) and 1.40 s (72B) — constant\n"
              "in the number of rollouts, since it only pushes to the master relay.\n");
}

void StorageSection() {
  Banner("§4.1: storage-system weight sync (NFS/Redis strawman), 32B");
  StorageSyncModel storage;
  storage.weight_bytes = Qwen25_32B().weight_bytes();
  Table table({"concurrent pulls", "storage last-finisher (s)", "relay tier (s)"});
  for (int pulls : {1, 8, 32, 128}) {
    SerialChannel store(storage.weight_bytes / storage.PullSeconds(), 0.0);
    SimTime last = SimTime::Zero();
    for (int i = 0; i < pulls; ++i) {
      last = store.Transfer(SimTime(0.0), storage.weight_bytes);
    }
    // Relay tier: chain broadcast + parallel PCIe loads (no contention point).
    BroadcastParams params;
    params.message_bytes = storage.weight_bytes;
    params.byte_time = 1.0 / 50e9;
    double relay = OptimalBroadcastTime(params, std::max(pulls, 2)) +
                   storage.weight_bytes / 4 / 50e9;
    table.AddRow({Table::Int(pulls), Table::Num(last.seconds(), 1), Table::Num(relay, 2)});
  }
  table.Print();
  std::printf("Paper: serializing one 4 GB shard alone takes ~8 s, plus 10-20 s of\n"
              "TCP per pull, and the store becomes a contention bottleneck.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::RolloutWaitSection();
  laminar::ActorStallSection();
  laminar::StorageSection();
  return 0;
}
