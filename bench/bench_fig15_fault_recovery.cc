// Figure 15: training through a rollout-machine failure. Same setting as the
// repack experiment (32B, 64 trainer + 64 rollout GPUs); one rollout machine
// (two TP=4 replicas) is killed mid-run. Generation throughput dips,
// training continues, and the system recovers once a replacement machine
// initializes (~250 s end to end).
//
// Default (--fault-seed -1): the paper's scripted single-machine kill,
// routed through the chaos engine's injector. With --fault-seed N >= 0 the
// scripted kill is replaced by a seeded stochastic fault schedule (machine
// failures, stalls, link flaps, fail-slow replicas, message drops) with the
// invariant checker armed — the same timeline plotted under random chaos.
//
// --crash-restart replaces the machine kill with two scripted trainer
// process crashes (DESIGN.md §13): each one serializes nothing new — the
// trainer's state is rebuilt from its last LMSNAP1 checkpoint after a 45 s
// restart — and the invariant checker audits the whole drill. Committed
// reference output: bench/fig15_crash_restart.txt.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/laminar_system.h"

namespace laminar {
namespace {

void Run(long fault_seed, bool crash_restart) {
  Banner(crash_restart
             ? "Figure 15 (crash-restart): trainer killed twice, restored from checkpoint"
             : "Figure 15: throughput timeline across a rollout machine failure");
  RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 128);
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 8;
  cfg.sample_period_seconds = 20.0;

  const double kFailureTime = 600.0;
  const double kRestartDelay = 45.0;
  if (crash_restart) {
    cfg.invariants_enabled = true;
  }
  if (fault_seed >= 0) {
    cfg.chaos_enabled = true;
    cfg.chaos_seed = static_cast<uint64_t>(fault_seed);
    cfg.chaos.start_seconds = kFailureTime;
    cfg.chaos.machine_fail_per_hour = 2.0;
    cfg.chaos.machine_stall_per_hour = 4.0;
    cfg.chaos.link_flap_per_hour = 4.0;
    cfg.chaos.replica_slow_per_hour = 2.0;
    cfg.chaos.message_drop_per_hour = 4.0;
    cfg.invariants_enabled = true;
  }
  ArmTrace(cfg);
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  if (crash_restart) {
    // Two process crashes: one mid-iteration, one after the trainer has
    // already banked more checkpointed progress. Each discards the
    // in-flight iteration and resumes from the last LMSNAP1 checkpoint
    // after kRestartDelay.
    laminar->ScheduleFault(
        {kFailureTime, FaultKind::kCrashRestart, 0, kRestartDelay});
    laminar->ScheduleFault(
        {kFailureTime + 300.0, FaultKind::kCrashRestart, 0, kRestartDelay});
  } else if (fault_seed < 0) {
    // Machine 0: two TP=4 replicas + relay.
    laminar->ScheduleFault({kFailureTime, FaultKind::kRolloutMachine, 0});
  }
  SystemReport rep = driver->Run();
  MaybeWriteTrace(rep);

  // Baseline generation rate before the failure.
  double before = rep.generation_rate.MeanInWindow(SimTime(kFailureTime - 300.0),
                                                   SimTime(kFailureTime));
  Table table({"time (s)", "generation tok/s", "vs pre-failure", "training tok/s"});
  for (const TimePoint& p : rep.generation_rate.Resample(60.0)) {
    double t = p.time.seconds();
    if (t < kFailureTime - 240.0 || t > kFailureTime + 600.0) {
      continue;
    }
    double train = 0.0;
    for (const TimePoint& q : rep.training_rate.points()) {
      if (q.time.seconds() <= t) {
        train = q.value;
      }
    }
    std::string marker;
    if (crash_restart) {
      if ((t >= kFailureTime && t < kFailureTime + 60.0) ||
          (t >= kFailureTime + 300.0 && t < kFailureTime + 360.0)) {
        marker = "  <- trainer crashed";
      }
    } else if (fault_seed < 0 && t >= kFailureTime && t < kFailureTime + 60.0) {
      marker = "  <- machine killed";
    }
    table.AddRow({Table::Num(t, 0), Tps(p.value), Table::Pct(p.value / before),
                  Tps(train) + marker});
  }
  table.Print();

  // Recovery point: first post-failure sample back above 95% of baseline.
  double recovered_at = -1.0;
  for (const TimePoint& p : rep.generation_rate.points()) {
    if (p.time.seconds() > kFailureTime + 60.0 && p.value >= 0.95 * before) {
      recovered_at = p.time.seconds();
      break;
    }
  }
  const RolloutManagerStats& ms = laminar->manager()->stats();
  std::printf("\nfailures handled: %lld, trajectories redirected: %lld\n",
              static_cast<long long>(ms.failures_handled),
              static_cast<long long>(ms.trajectories_redirected));
  if (fault_seed >= 0) {
    std::printf("chaos seed %ld: faults injected: %lld, slow events: %lld, "
                "dropped: %lld, invariant checks: %lld, violations: %lld\n",
                fault_seed, static_cast<long long>(rep.faults_injected),
                static_cast<long long>(rep.slow_events),
                static_cast<long long>(rep.trajectories_dropped),
                static_cast<long long>(rep.invariant_checks),
                static_cast<long long>(rep.invariant_violations));
  }
  if (crash_restart) {
    std::printf("crash-restart drill: 2 trainer crashes at t=%.0f s and t=%.0f s, "
                "%.0f s restart each;\n"
                "iterations completed: %zu, trajectories dropped: %lld, "
                "invariant checks: %lld, violations: %lld\n",
                kFailureTime, kFailureTime + 300.0, kRestartDelay,
                rep.iterations.size(),
                static_cast<long long>(rep.trajectories_dropped),
                static_cast<long long>(rep.invariant_checks),
                static_cast<long long>(rep.invariant_violations));
  }
  if (recovered_at > 0.0) {
    std::printf("generation recovered to >95%% of baseline %.0f s after the failure\n",
                recovered_at - kFailureTime);
  }
  std::printf("Paper: recovery in ~252 s (new machine allocation + rollout init);\n"
              "training throughput unaffected or only slightly reduced meanwhile;\n"
              "no trajectory is regenerated thanks to the partial-response pool.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  long fault_seed = -1;  // -1 = the paper's scripted machine kill
  bool crash_restart = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--crash-restart") == 0) {
      crash_restart = true;
    }
  }
  laminar::Run(fault_seed, crash_restart);
  return 0;
}
