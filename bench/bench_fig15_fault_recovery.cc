// Figure 15: training through a rollout-machine failure. Same setting as the
// repack experiment (32B, 64 trainer + 64 rollout GPUs); one rollout machine
// (two TP=4 replicas) is killed mid-run. Generation throughput dips,
// training continues, and the system recovers once a replacement machine
// initializes (~250 s end to end).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/laminar_system.h"

namespace laminar {
namespace {

void Run() {
  Banner("Figure 15: throughput timeline across a rollout machine failure");
  RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 128);
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 8;
  cfg.sample_period_seconds = 20.0;

  const double kFailureTime = 600.0;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  laminar->sim().ScheduleAt(SimTime(kFailureTime), [laminar] {
    laminar->heartbeats()->MarkDead(0);  // machine 0: two TP=4 replicas + relay
  });
  SystemReport rep = driver->Run();

  // Baseline generation rate before the failure.
  double before = rep.generation_rate.MeanInWindow(SimTime(kFailureTime - 300.0),
                                                   SimTime(kFailureTime));
  Table table({"time (s)", "generation tok/s", "vs pre-failure", "training tok/s"});
  for (const TimePoint& p : rep.generation_rate.Resample(60.0)) {
    double t = p.time.seconds();
    if (t < kFailureTime - 240.0 || t > kFailureTime + 600.0) {
      continue;
    }
    double train = 0.0;
    for (const TimePoint& q : rep.training_rate.points()) {
      if (q.time.seconds() <= t) {
        train = q.value;
      }
    }
    std::string marker;
    if (t >= kFailureTime && t < kFailureTime + 60.0) {
      marker = "  <- machine killed";
    }
    table.AddRow({Table::Num(t, 0), Tps(p.value), Table::Pct(p.value / before),
                  Tps(train) + marker});
  }
  table.Print();

  // Recovery point: first post-failure sample back above 95% of baseline.
  double recovered_at = -1.0;
  for (const TimePoint& p : rep.generation_rate.points()) {
    if (p.time.seconds() > kFailureTime + 60.0 && p.value >= 0.95 * before) {
      recovered_at = p.time.seconds();
      break;
    }
  }
  const RolloutManagerStats& ms = laminar->manager()->stats();
  std::printf("\nfailures handled: %lld, trajectories redirected: %lld\n",
              static_cast<long long>(ms.failures_handled),
              static_cast<long long>(ms.trajectories_redirected));
  if (recovered_at > 0.0) {
    std::printf("generation recovered to >95%% of baseline %.0f s after the failure\n",
                recovered_at - kFailureTime);
  }
  std::printf("Paper: recovery in ~252 s (new machine allocation + rollout init);\n"
              "training throughput unaffected or only slightly reduced meanwhile;\n"
              "no trajectory is regenerated thanks to the partial-response pool.\n");
}

}  // namespace
}  // namespace laminar

int main() {
  laminar::Run();
  return 0;
}
