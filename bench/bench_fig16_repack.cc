// Figure 16 + Table 1: repack efficiency. Same placement as the paper's
// experiment: 32B on 128 GPUs (64 trainer + 64 rollout, 16 TP=4 replicas).
// Compares generation throughput, KVCache utilization and trajectory latency
// with and without the repack mechanism.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace laminar {
namespace {

RlSystemConfig RepackConfig(bool repack) {
  RlSystemConfig cfg = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 128);
  cfg.repack_enabled = repack;
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 5;
  // The paper measures raw generation throughput: rollouts run flat out
  // (generation outpaces the trainer, §Appendix C), so lift the backlog
  // throttle that would otherwise hide the repack gain behind trainer pace.
  cfg.backlog_cap = 1 << 28;
  return cfg;
}

void Run() {
  Banner("Figure 16 / Table 1: repack efficiency (32B, 64+64 GPUs, 16 rollouts)");
  std::vector<SystemReport> reports = RunSweep({RepackConfig(true), RepackConfig(false)});
  const SystemReport& with = reports[0];
  const SystemReport& without = reports[1];

  double gen_with = with.total_decode_tokens / with.simulated_seconds;
  double gen_without = without.total_decode_tokens / without.simulated_seconds;

  Table table({"Laminar", "gen throughput (tok/s)", "train throughput (tok/s)",
               "avg KV util", "avg/max traj latency (s)", "repack overhead (s)",
               "sources released"});
  table.AddRow({"w/ repack", Tps(gen_with), Tps(with.throughput_tokens_per_sec),
                Table::Pct(with.avg_kv_utilization),
                Table::Num(with.mean_traj_seconds, 0) + "/" +
                    Table::Num(with.max_traj_seconds, 0),
                Table::Num(with.repack_overhead_mean_seconds),
                Table::Int(with.repack_sources_released)});
  table.AddRow({"w/o repack", Tps(gen_without), Tps(without.throughput_tokens_per_sec),
                Table::Pct(without.avg_kv_utilization),
                Table::Num(without.mean_traj_seconds, 0) + "/" +
                    Table::Num(without.max_traj_seconds, 0),
                "-", "-"});
  table.Print();

  std::printf("\ngeneration throughput gain from repack: %s\n",
              Table::Pct(gen_with / gen_without - 1.0).c_str());
  std::printf("KV utilization gain: %+.1f points\n",
              (with.avg_kv_utilization - without.avg_kv_utilization) * 100.0);
  std::printf("trajectory latency change: %+.1f%% (paper: none)\n",
              (with.mean_traj_seconds / without.mean_traj_seconds - 1.0) * 100.0);
  std::printf("\nPaper (Table 1): +26%% generation throughput, 82.2%% vs 71.6%% KV\n"
              "utilization (+14.8%% relative), 0.69 s repack overhead, and avg/max\n"
              "trajectory latency 290/828 s essentially unchanged without repack.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
