// Figure 18 + Appendix D: chain-based pipelined broadcast latency vs the
// number of relays, with the T(p,k) decomposition and the optimal chunk
// count k*.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/llm/model_spec.h"
#include "src/relay/broadcast_model.h"
#include "src/relay/relay_tier.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

BroadcastParams ParamsFor(const ModelSpec& model) {
  BroadcastParams p;
  p.message_bytes = model.weight_bytes();
  p.byte_time = 1.0 / 100e9;  // two bonded 400 Gbps NICs per hop
  p.startup_time = 5e-6;
  return p;
}

void AnalyticSection() {
  Banner("Figure 18: relay broadcast latency vs number of relays");
  Table table({"relays", "7B (s)", "32B (s)", "72B (s)", "k* (72B)"});
  for (int relays : {1, 2, 4, 8, 16, 32, 64, 127}) {
    int nodes = relays + 1;  // master + relays
    std::vector<std::string> row = {Table::Int(relays)};
    for (const ModelSpec& model : {Qwen25_7B(), Qwen25_32B(), Qwen25_72B()}) {
      row.push_back(Table::Num(OptimalBroadcastTime(ParamsFor(model), nodes), 3));
    }
    row.push_back(Table::Int(OptimalChunkCount(ParamsFor(Qwen25_72B()), nodes)));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("Paper: < 1.6 s for a 72B model from the master to 127 other relays;\n"
              "the broadcast time is near-constant in the chain length.\n");

  Banner("Appendix D: T(p, k*) decomposition, 72B weights");
  Table terms({"nodes", "bandwidth term (s)", "latency term (s)", "pipeline term (s)",
               "total (s)"});
  for (int nodes : {2, 16, 128, 1024, 2048}) {
    BroadcastTerms t = DecomposeOptimalTime(ParamsFor(Qwen25_72B()), nodes);
    terms.AddRow({Table::Int(nodes), Table::Num(t.bandwidth_term, 3),
                  Table::Num(t.latency_term, 4), Table::Num(t.pipeline_term, 3),
                  Table::Num(t.total(), 3)});
  }
  terms.Print();
  std::printf("The constant bandwidth term dominates; the p-dependent terms have a\n"
              "tiny coefficient (T_start) or grow only as O(sqrt(p)).\n");
}

void SimulatedSection() {
  Banner("Simulated relay tier: publish-to-last-relay latency + fault repair");
  Table table({"relays", "broadcast (s)", "after mid-broadcast failure (s)"});
  for (int relays : {8, 32, 128}) {
    auto measure = [&](bool inject_fault) {
      Simulator sim;
      RelayTierConfig cfg;
      cfg.num_relays = relays;
      cfg.weight_bytes = Qwen25_72B().weight_bytes();
      cfg.rdma_bandwidth = 100e9;
      RelayTier tier(&sim, cfg);
      tier.Publish(1);
      if (inject_fault) {
        sim.ScheduleAfter(1.0, [&tier] { tier.KillRelay(2); });
      }
      sim.RunUntilIdle();
      return tier.broadcast_seconds().max();
    };
    table.AddRow({Table::Int(relays), Table::Num(measure(false), 2),
                  Table::Num(measure(true), 2)});
  }
  table.Print();
  std::printf("Chain repair is O(1): a failure adds only the fixed rebuild delay.\n");
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::AnalyticSection();
  laminar::SimulatedSection();
  return 0;
}
