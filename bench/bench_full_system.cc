// Full-system macro-benchmark: end-to-end events/sec on representative
// driver runs (the data-path hot loop, not the simulator core — compare
// bench_sim_core). Emits BENCH_hotpath.json snapshots so each PR records a
// perf trajectory (see README "Perf smoke").
//
//   bench_full_system                        # table on stdout
//   bench_full_system --reps 5               # more samples per config
//   bench_full_system --json out.json --label post-refactor
//
// The simulated workload is deterministic, so `events` is identical across
// reps and across code changes that preserve byte-identity; only the wall
// clock moves. The best (fastest) rep is reported to cut scheduler noise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/run.h"

namespace laminar {
namespace {

struct NamedConfig {
  std::string name;
  RlSystemConfig cfg;
};

RlSystemConfig ChaosConfig() {
  // Mirrors bench_chaos_soak's mix: fail-stop + transient chaos with the
  // invariant checker armed, exercising the redirect/recovery data paths
  // (PartialResponsePool::TakeByReplica, quarantine, repack).
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 3;
  cfg.seed = 99;
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 7;
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.machine_fail_per_hour = 4.0;
  cfg.chaos.relay_fail_per_hour = 8.0;
  cfg.chaos.master_fail_per_hour = 4.0;
  cfg.chaos.trainer_fail_per_hour = 4.0;
  cfg.chaos.machine_stall_per_hour = 60.0;
  cfg.chaos.link_flap_per_hour = 60.0;
  cfg.chaos.replica_slow_per_hour = 20.0;
  cfg.chaos.message_drop_per_hour = 120.0;
  cfg.invariants_enabled = true;
  ApplyShards(cfg);
  return cfg;
}

std::vector<NamedConfig> BuildConfigs() {
  std::vector<NamedConfig> out;
  out.push_back({"laminar_math_7B_128gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 128)});
  out.push_back({"laminar_tool_7B_128gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 128,
                                  TaskKind::kToolCalling)});
  out.push_back({"laminar_math_32B_256gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 256)});
  out.push_back({"verl_math_7B_128gpu",
                 ThroughputConfig(SystemKind::kVerlSync, ModelScale::k7B, 128)});
  out.push_back({"laminar_chaos_16gpu", ChaosConfig()});
  // Single-run scale ceiling: a 1024-GPU fleet (vs sweeping many small
  // runs) is where the sharded engine earns its keep — see --shards.
  // Table 2 stops at 512 for Laminar/32B; extend its 50/50 split one
  // doubling with an explicit placement.
  RlSystemConfig big = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 1024);
  big.train_gpus = 512;
  big.rollout_gpus = 512;
  out.push_back({"laminar_math_32B_1024gpu", big});
  return out;
}

struct RunResult {
  std::string name;
  uint64_t events = 0;
  double best_wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double tokens_per_sec = 0.0;  // simulated throughput (determinism witness)
};

RunResult Measure(const NamedConfig& nc, int reps) {
  RunResult r;
  r.name = nc.name;
  for (int rep = 0; rep < reps; ++rep) {
    std::unique_ptr<DriverBase> driver = MakeDriver(nc.cfg);
    auto start = std::chrono::steady_clock::now();
    SystemReport report = driver->Run();
    std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    r.events = driver->sim().executed_events();
    r.tokens_per_sec = report.throughput_tokens_per_sec;
    if (rep == 0 || wall.count() < r.best_wall_seconds) {
      r.best_wall_seconds = wall.count();
    }
  }
  r.events_per_sec = static_cast<double>(r.events) / r.best_wall_seconds;
  return r;
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<RunResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_full_system\",\n  \"schema\": 1,\n"
      << "  \"label\": \"" << label << "\",\n  \"runs\": [\n";
  char buf[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"events\": %llu, "
                  "\"best_wall_seconds\": %.6f, \"events_per_sec\": %.0f, "
                  "\"sim_tokens_per_sec\": %.1f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events),
                  r.best_wall_seconds, r.events_per_sec, r.tokens_per_sec,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

void Run(int reps, const std::string& json_path, const std::string& label) {
  Banner("Full-system hot-path macro-benchmark (events/sec)");
  std::printf("%d rep(s) per config, best rep reported.\n\n", reps);
  std::vector<RunResult> results;
  Table table({"config", "events", "best wall (s)", "events/sec", "sim tokens/s"});
  for (const NamedConfig& nc : BuildConfigs()) {
    RunResult r = Measure(nc, reps);
    char wall[32], eps[32];
    std::snprintf(wall, sizeof(wall), "%.3f", r.best_wall_seconds);
    std::snprintf(eps, sizeof(eps), "%.0f", r.events_per_sec);
    table.AddRow({r.name, Table::Int(static_cast<double>(r.events)), wall, eps,
                  Tps(r.tokens_per_sec)});
    results.push_back(std::move(r));
  }
  table.Print();
  if (!json_path.empty()) {
    WriteJson(json_path, label, results);
  }
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  int reps = 3;
  std::string json_path;
  std::string label = "unlabeled";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      laminar::SetBenchShards(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      laminar::SetBenchShards(std::atoi(argv[i] + 9));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--json PATH] [--label NAME] [--shards N]\n",
                   argv[0]);
      return 2;
    }
  }
  laminar::Run(reps, json_path, label);
  return 0;
}
