// Full-system macro-benchmark: end-to-end events/sec on representative
// driver runs (the data-path hot loop, not the simulator core — compare
// bench_sim_core). Emits BENCH_hotpath.json snapshots so each PR records a
// perf trajectory (see README "Perf smoke").
//
//   bench_full_system                        # table on stdout
//   bench_full_system --reps 5               # more samples per config
//   bench_full_system --json out.json --label post-refactor
//   bench_full_system --shards 4 --window-stats   # window-quality profile
//
// The simulated workload is deterministic, so `events` is identical across
// reps and across code changes that preserve byte-identity; only the wall
// clock moves. The best (fastest) rep is reported to cut scheduler noise.
// --window-stats prints each config's deterministic window-quality profile
// (DESIGN.md §12) to stderr; it never enters the JSON snapshot, whose
// fields stay fingerprint-comparable across shard counts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/hardware.h"
#include "src/cluster/placement.h"
#include "src/common/table.h"
#include "src/core/run.h"
#include "src/llm/decode_model.h"
#include "src/llm/model_spec.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

struct NamedConfig {
  std::string name;
  RlSystemConfig cfg;
};

RlSystemConfig ChaosConfig() {
  // Mirrors bench_chaos_soak's mix: fail-stop + transient chaos with the
  // invariant checker armed, exercising the redirect/recovery data paths
  // (PartialResponsePool::TakeByReplica, quarantine, repack).
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 3;
  cfg.seed = 99;
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 7;
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.machine_fail_per_hour = 4.0;
  cfg.chaos.relay_fail_per_hour = 8.0;
  cfg.chaos.master_fail_per_hour = 4.0;
  cfg.chaos.trainer_fail_per_hour = 4.0;
  cfg.chaos.machine_stall_per_hour = 60.0;
  cfg.chaos.link_flap_per_hour = 60.0;
  cfg.chaos.replica_slow_per_hour = 20.0;
  cfg.chaos.message_drop_per_hour = 120.0;
  cfg.invariants_enabled = true;
  ApplyShards(cfg);
  return cfg;
}

std::vector<NamedConfig> BuildConfigs() {
  std::vector<NamedConfig> out;
  out.push_back({"laminar_math_7B_128gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 128)});
  out.push_back({"laminar_tool_7B_128gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k7B, 128,
                                  TaskKind::kToolCalling)});
  out.push_back({"laminar_math_32B_256gpu",
                 ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 256)});
  out.push_back({"verl_math_7B_128gpu",
                 ThroughputConfig(SystemKind::kVerlSync, ModelScale::k7B, 128)});
  out.push_back({"laminar_chaos_16gpu", ChaosConfig()});
  // Single-run scale ceiling: a 1024-GPU fleet (vs sweeping many small
  // runs) is where the sharded engine earns its keep — see --shards.
  // Table 2 stops at 512 for Laminar/32B; extend its 50/50 split one
  // doubling with an explicit placement.
  RlSystemConfig big = ThroughputConfig(SystemKind::kLaminar, ModelScale::k32B, 1024);
  big.train_gpus = 512;
  big.rollout_gpus = 512;
  out.push_back({"laminar_math_32B_1024gpu", big});
  return out;
}

// The pre-topology global lookahead bound: half the decode model's minimum
// step latency, identical for every lane. --global-lookahead pins each
// config to this so the window-quality gain from per-lane horizons can be
// measured A/B (results stay byte-identical either way).
double LegacyGlobalLookahead(const RlSystemConfig& cfg) {
  MachineSpec spec;
  return 0.5 * DecodeModel(ModelForScale(cfg.scale), spec,
                           RolloutTensorParallel(cfg.system, cfg.scale))
                   .StepLatency(1, 0.0);
}

struct RunResult {
  std::string name;
  uint64_t events = 0;
  double best_wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double tokens_per_sec = 0.0;  // simulated throughput (determinism witness)
};

void PrintWindowStats(const std::string& name, const ShardWindowStats& ws) {
  std::fprintf(stderr,
               "[window-stats] %s: windows=%llu events=%llu serial=%llu "
               "replayed=%llu mean_ev/win=%.2f mean_lanes=%.2f "
               "serial_frac=%.4f lane_ctrl=%llu\n",
               name.c_str(), static_cast<unsigned long long>(ws.windows),
               static_cast<unsigned long long>(ws.window_events),
               static_cast<unsigned long long>(ws.serial_steps),
               static_cast<unsigned long long>(ws.actions_replayed),
               ws.mean_events_per_window(), ws.mean_eligible_lanes(),
               ws.serial_fraction(),
               static_cast<unsigned long long>(ws.lane_control_events));
  std::fprintf(stderr,
               "[window-stats] %s: rejects no_floor=%llu narrow=%llu "
               "few_lanes=%llu fence_stall=%llu (share %.4f) | bound "
               "fence=%llu queue=%llu cap=%llu lookahead=%llu lane_ctrl=%llu\n",
               name.c_str(),
               static_cast<unsigned long long>(ws.rejects_no_floor),
               static_cast<unsigned long long>(ws.rejects_narrow),
               static_cast<unsigned long long>(ws.rejects_few_lanes),
               static_cast<unsigned long long>(ws.fence_stall_rejects),
               ws.fence_stall_share(),
               static_cast<unsigned long long>(ws.bound_fence),
               static_cast<unsigned long long>(ws.bound_queue),
               static_cast<unsigned long long>(ws.bound_cap),
               static_cast<unsigned long long>(ws.bound_lookahead),
               static_cast<unsigned long long>(ws.bound_lane_control));
}

RunResult Measure(const NamedConfig& nc, int reps, bool window_stats) {
  RunResult r;
  r.name = nc.name;
  for (int rep = 0; rep < reps; ++rep) {
    std::unique_ptr<DriverBase> driver = MakeDriver(nc.cfg);
    auto start = std::chrono::steady_clock::now();
    SystemReport report = driver->Run();
    std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    r.events = driver->sim().executed_events();
    r.tokens_per_sec = report.throughput_tokens_per_sec;
    if (rep == 0 || wall.count() < r.best_wall_seconds) {
      r.best_wall_seconds = wall.count();
    }
    if (window_stats && rep == 0) {
      PrintWindowStats(nc.name, driver->sim().window_stats());
    }
  }
  r.events_per_sec = static_cast<double>(r.events) / r.best_wall_seconds;
  return r;
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<RunResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_full_system\",\n  \"schema\": 1,\n"
      << "  \"label\": \"" << label << "\",\n  \"runs\": [\n";
  char buf[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"events\": %llu, "
                  "\"best_wall_seconds\": %.6f, \"events_per_sec\": %.0f, "
                  "\"sim_tokens_per_sec\": %.1f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events),
                  r.best_wall_seconds, r.events_per_sec, r.tokens_per_sec,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

void Run(int reps, const std::string& json_path, const std::string& label,
         bool window_stats, bool global_lookahead) {
  Banner("Full-system hot-path macro-benchmark (events/sec)");
  std::printf("%d rep(s) per config, best rep reported.\n\n", reps);
  std::vector<RunResult> results;
  Table table({"config", "events", "best wall (s)", "events/sec", "sim tokens/s"});
  for (NamedConfig& nc : BuildConfigs()) {
    if (global_lookahead) {
      // Reinstate the PR 6 baseline wholesale: the global half-step bound
      // and every control event fencing on lane 0.
      nc.cfg.shard_lookahead_seconds = LegacyGlobalLookahead(nc.cfg);
      nc.cfg.shard_lane_control = false;
    }
    RunResult r = Measure(nc, reps, window_stats);
    char wall[32], eps[32];
    std::snprintf(wall, sizeof(wall), "%.3f", r.best_wall_seconds);
    std::snprintf(eps, sizeof(eps), "%.0f", r.events_per_sec);
    table.AddRow({r.name, Table::Int(static_cast<double>(r.events)), wall, eps,
                  Tps(r.tokens_per_sec)});
    results.push_back(std::move(r));
  }
  table.Print();
  if (!json_path.empty()) {
    WriteJson(json_path, label, results);
  }
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  int reps = 3;
  std::string json_path;
  std::string label = "unlabeled";
  bool window_stats = false;
  bool global_lookahead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      laminar::SetBenchShards(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      laminar::SetBenchShards(std::atoi(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--window-stats") == 0) {
      window_stats = true;
    } else if (std::strcmp(argv[i], "--global-lookahead") == 0) {
      global_lookahead = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--json PATH] [--label NAME] "
                   "[--shards N] [--window-stats] [--global-lookahead]\n",
                   argv[0]);
      return 2;
    }
  }
  laminar::Run(reps, json_path, label, window_stats, global_lookahead);
  return 0;
}
