// Micro-benchmarks of the hot simulator/algorithm components
// (google-benchmark): event queue, Best-Fit consolidation, broadcast math,
// decode-latency model, policy update.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/llm/decode_model.h"
#include "src/llm/model_spec.h"
#include "src/policy/policy.h"
#include "src/relay/broadcast_model.h"
#include "src/repack/best_fit.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(SimTime(static_cast<double>(i % 97)), [&fired] { ++fired; });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) {
      ids.push_back(sim.ScheduleAt(SimTime(1.0 + i), [] {}));
    }
    for (int i = 0; i < n; i += 2) {
      sim.Cancel(ids[i]);
    }
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(16384);

void BM_BestFitConsolidation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<ReplicaSnapshot> snaps;
  for (int i = 0; i < n; ++i) {
    ReplicaSnapshot s;
    s.replica_id = i;
    s.kv_used_frac = rng.Uniform(0.0, 0.6);
    s.kv_prev_frac = s.kv_used_frac + rng.Uniform(-0.1, 0.1);
    s.num_reqs = static_cast<int>(rng.UniformInt(1, 120));
    s.num_waiting = 0;
    s.busy = true;
    s.eligible = true;
    snaps.push_back(s);
  }
  RepackParams params;
  params.batch_bound = 256;
  for (auto _ : state) {
    RepackPlan plan = BestFitConsolidation(snaps, params);
    benchmark::DoNotOptimize(plan.moves.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BestFitConsolidation)->Arg(16)->Arg(128)->Arg(1024);

void BM_BroadcastOptimalTime(benchmark::State& state) {
  BroadcastParams params;
  params.message_bytes = 145.4e9;
  params.byte_time = 1.0 / 50e9;
  for (auto _ : state) {
    for (int nodes = 2; nodes <= 128; ++nodes) {
      benchmark::DoNotOptimize(OptimalBroadcastTime(params, nodes));
    }
  }
}
BENCHMARK(BM_BroadcastOptimalTime);

void BM_DecodeStepLatency(benchmark::State& state) {
  DecodeModel model(Qwen25_32B(), MachineSpec{}, 4);
  for (auto _ : state) {
    for (int batch = 1; batch <= 512; batch *= 2) {
      benchmark::DoNotOptimize(model.StepLatency(batch, 3000.0));
    }
  }
}
BENCHMARK(BM_DecodeStepLatency);

void BM_PolicyUpdateMinibatch(benchmark::State& state) {
  Policy policy{PolicyConfig{}};
  Rng rng(2);
  std::vector<TrajectoryRecord> batch;
  for (int i = 0; i < 512; ++i) {
    TrajectoryRecord rec;
    rec.prompt_id = i / 16;
    rec.difficulty = rng.Uniform();
    rec.weight_versions = {0};
    policy.ScoreTrajectory(rec, rng);
    batch.push_back(rec);
  }
  for (auto _ : state) {
    UpdateStats stats = policy.UpdateMinibatch(batch, RlAlgorithm::kGrpo);
    benchmark::DoNotOptimize(stats.grad_norm);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PolicyUpdateMinibatch);

}  // namespace
}  // namespace laminar

BENCHMARK_MAIN();
