// Serving SLO harness (DESIGN.md §14): the online serving tier colocated on
// the training fleet versus a statically partitioned fleet. Both arms face
// the same seeded diurnal traffic on the same 7B fleet; the colocated arm
// admits serving onto any rollout replica (preempting rollout decode when KV
// is short), the static arm walls off dedicated serving replicas the rollout
// engine never touches. The claim under test: colocation wins rollout
// goodput at equal (>=99%) SLO attainment, because serving load rides the
// diurnal valley capacity instead of reserving peak capacity all day.
//
//   bench_serving_slo                       # table on stdout
//   bench_serving_slo --json out.json --label post-change
//   bench_serving_slo --shards 4 --trace-out serving.json --snapshot-at 120
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/run.h"

namespace laminar {
namespace {

// A generation-bound 7B fleet: 12 trainer + 4 rollout GPUs, so rollout
// capacity is the iteration bottleneck and any replica lost to a static
// serving partition shows up directly in goodput. Traffic is modest enough
// that either arm can hold the SLO — the comparison is about the capacity
// each arm has left for training.
RlSystemConfig ServingArm(int dedicated_replicas) {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.train_gpus = 12;
  cfg.rollout_gpus = 4;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 3;
  cfg.seed = 42;
  cfg.invariants_enabled = true;
  cfg.serving.enabled = true;
  cfg.serving.base_rate_per_sec = 1.0;
  cfg.serving.diurnal_amplitude = 0.6;
  cfg.serving.diurnal_period_seconds = 300.0;
  cfg.serving.slo_base_seconds = 60.0;
  cfg.serving.slo_per_token_seconds = 0.05;
  cfg.serving.dedicated_replicas = dedicated_replicas;
  ApplyShards(cfg);
  return cfg;
}

struct ArmResult {
  std::string name;
  double goodput = 0.0;  // trained tokens per simulated second
  double attainment = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t preemptions = 0;
};

ArmResult Summarize(const std::string& name, const SystemReport& rep) {
  ArmResult r;
  r.name = name;
  double trained_tokens = 0.0;
  for (const IterationStats& it : rep.iterations) {
    trained_tokens += static_cast<double>(it.tokens);
  }
  // Goodput counts only tokens the trainer consumed, over the whole run:
  // serving decode and over-generation don't inflate it, and warmup drag
  // (e.g. a static arm limping to its first batch) isn't hidden.
  r.goodput = trained_tokens / rep.simulated_seconds;
  r.attainment = rep.serving_slo_attainment;
  r.p50 = rep.serving_latency_p50_seconds;
  r.p99 = rep.serving_latency_p99_seconds;
  r.admitted = rep.serving_admitted;
  r.rejected = rep.serving_rejected;
  r.timed_out = rep.serving_timed_out;
  r.preemptions = rep.serving_preemptions;
  return r;
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<ArmResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_serving_slo\",\n  \"schema\": 1,\n"
      << "  \"label\": \"" << label << "\",\n  \"runs\": [\n";
  char buf[512];
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"rollout_goodput_tokens_per_sec\": %.1f, "
                  "\"slo_attainment\": %.4f, \"latency_p50_seconds\": %.3f, "
                  "\"latency_p99_seconds\": %.3f, \"admitted\": %lld, "
                  "\"rejected\": %lld, \"timed_out\": %lld, "
                  "\"rollout_preemptions\": %lld}%s\n",
                  r.name.c_str(), r.goodput, r.attainment, r.p50, r.p99,
                  static_cast<long long>(r.admitted),
                  static_cast<long long>(r.rejected),
                  static_cast<long long>(r.timed_out),
                  static_cast<long long>(r.preemptions),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

void Run(const std::string& json_path, const std::string& label) {
  Banner("Serving SLO: colocated tier vs static partition (7B, 12+4 GPUs)");
  std::vector<SystemReport> reports =
      RunSweep({ServingArm(/*dedicated_replicas=*/0), ServingArm(1)});
  std::vector<ArmResult> results;
  results.push_back(Summarize("colocated", reports[0]));
  results.push_back(Summarize("static_partition", reports[1]));

  Table table({"fleet policy", "rollout goodput (tok/s)", "SLO attainment",
               "latency p50/p99 (s)", "admitted", "rejected", "timed out",
               "preempted rollouts"});
  for (const ArmResult& r : results) {
    table.AddRow({r.name, Tps(r.goodput), Table::Pct(r.attainment),
                  Table::Num(r.p50) + "/" + Table::Num(r.p99),
                  Table::Int(static_cast<double>(r.admitted)),
                  Table::Int(static_cast<double>(r.rejected)),
                  Table::Int(static_cast<double>(r.timed_out)),
                  Table::Int(static_cast<double>(r.preemptions))});
  }
  table.Print();

  const ArmResult& colo = results[0];
  const ArmResult& part = results[1];
  std::printf("\nrollout goodput gain from colocation: %s at %s vs %s attainment\n",
              Table::Pct(colo.goodput / part.goodput - 1.0).c_str(),
              Table::Pct(colo.attainment).c_str(),
              Table::Pct(part.attainment).c_str());
  for (size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].invariant_violations != 0) {
      std::printf("WARNING: %s finished with %lld invariant violations\n",
                  results[i].name.c_str(),
                  static_cast<long long>(reports[i].invariant_violations));
    }
  }
  if (!json_path.empty()) {
    WriteJson(json_path, label, results);
  }
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  std::string json_path;
  std::string label = "unlabeled";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    }
  }
  laminar::Run(json_path, label);
  return 0;
}
