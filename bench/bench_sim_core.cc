// Microbenchmark of the raw discrete-event core: how many events per second
// the Simulator can schedule, cancel and fire, independent of any RL model.
// Every figure harness is millions of these events, so this is the number
// that bounds how fast the whole reproduction can run.
//
// Scenarios:
//  * schedule+fire   — a self-sustaining population of timers; each event
//                      fires and schedules its successor (the rollout
//                      steady-state pattern).
//  * schedule/cancel — every fired event schedules two successors and
//                      cancels one of them (heartbeat / timeout pattern).
//  * cancel-heavy    — 90% of scheduled events are cancelled before firing;
//                      stresses tombstone reclamation in the heap.
//  * periodic churn  — many PeriodicTasks ticking (repack checks,
//                      heartbeats); stresses the rearm path.
#include "bench/bench_util.h"
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Result {
  const char* name;
  uint64_t events;
  double seconds;
};

// Each fired event schedules exactly one successor, keeping `population`
// events in flight at pseudo-random future times.
Result ScheduleFire(uint64_t target_events, int population) {
  Simulator sim;
  Rng rng(7);
  std::function<void()> tick;
  tick = [&] { sim.ScheduleAfter(rng.Uniform(0.1, 10.0), tick); };
  for (int i = 0; i < population; ++i) {
    sim.ScheduleAfter(rng.Uniform(0.1, 10.0), tick);
  }
  Clock::time_point start = Clock::now();
  sim.RunUntilIdle(target_events);
  return {"schedule+fire", sim.executed_events(), Seconds(start)};
}

// Each fired event schedules a "work" successor and a "timeout" guard, then
// cancels the previous guard — one Cancel per fire, like heartbeat liveness.
Result ScheduleCancel(uint64_t target_events, int population) {
  Simulator sim;
  Rng rng(11);
  std::vector<EventId> guards(static_cast<size_t>(population), kInvalidEventId);
  std::function<void(int)> tick = [&](int slot) {
    sim.ScheduleAfter(rng.Uniform(0.1, 5.0), [&tick, slot] { tick(slot); });
    if (guards[slot] != kInvalidEventId) {
      sim.Cancel(guards[slot]);
    }
    guards[slot] = sim.ScheduleAfter(1000.0, [] {});
  };
  for (int i = 0; i < population; ++i) {
    sim.ScheduleAfter(rng.Uniform(0.1, 5.0), [&tick, i] { tick(i); });
  }
  Clock::time_point start = Clock::now();
  sim.RunUntilIdle(target_events);
  return {"schedule/cancel", sim.executed_events(), Seconds(start)};
}

// 90% of scheduled events never fire: schedule a burst, cancel most of it,
// step through the survivors. Exercises tombstone skipping and slot reuse.
Result CancelHeavy(uint64_t target_events) {
  Simulator sim;
  Rng rng(13);
  uint64_t scheduled = 0;
  Clock::time_point start = Clock::now();
  std::vector<EventId> burst;
  burst.reserve(1000);
  while (sim.executed_events() < target_events) {
    burst.clear();
    for (int i = 0; i < 1000; ++i) {
      burst.push_back(sim.ScheduleAfter(rng.Uniform(0.1, 10.0), [] {}));
      ++scheduled;
    }
    for (size_t i = 0; i < burst.size(); ++i) {
      if (i % 10 != 0) {
        sim.Cancel(burst[i]);
      }
    }
    sim.RunUntilIdle(100);
  }
  // Count schedule+cancel operations as events too: the scenario's cost is
  // dominated by them, not by the 10% that fire.
  return {"cancel-heavy", scheduled, Seconds(start)};
}

// Many periodic timers with coprime-ish periods ticking concurrently.
Result PeriodicChurn(uint64_t target_events, int tasks) {
  Simulator sim;
  uint64_t ticks = 0;
  std::vector<std::unique_ptr<PeriodicTask>> pool;
  pool.reserve(static_cast<size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    pool.push_back(std::make_unique<PeriodicTask>(&sim, 0.37 + 0.01 * i, [&] { ++ticks; }));
    pool.back()->Start();
  }
  Clock::time_point start = Clock::now();
  sim.RunUntilIdle(target_events);
  return {"periodic churn", sim.executed_events(), Seconds(start)};
}

void Run() {
  const uint64_t kEvents = 4'000'000;
  std::printf("Simulator core microbenchmark (%llu events per scenario)\n",
              static_cast<unsigned long long>(kEvents));
  std::vector<Result> results;
  results.push_back(ScheduleFire(kEvents, 1024));
  results.push_back(ScheduleCancel(kEvents, 1024));
  results.push_back(CancelHeavy(kEvents / 4));
  results.push_back(PeriodicChurn(kEvents, 512));

  Table table({"scenario", "events", "seconds", "events/sec"});
  uint64_t total_events = 0;
  double total_seconds = 0.0;
  for (const Result& r : results) {
    total_events += r.events;
    total_seconds += r.seconds;
    table.AddRow({r.name, Table::Int(static_cast<double>(r.events)), Table::Num(r.seconds, 3),
                  Table::Int(static_cast<double>(r.events) / r.seconds)});
  }
  table.AddRow({"all scenarios", Table::Int(static_cast<double>(total_events)),
                Table::Num(total_seconds, 3),
                Table::Int(static_cast<double>(total_events) / total_seconds)});
  table.Print();
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) {
  laminar::InitBenchTracing(argc, argv);
  laminar::Run();
  return 0;
}
