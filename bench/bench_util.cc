#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>

#include "src/common/table.h"
#include "src/trace/trace_io.h"

namespace laminar {
namespace {

std::string g_trace_out;  // empty = tracing off
int g_trace_index = 0;    // per-process trace file counter
int g_shards = 1;         // event-queue shards; 1 = serial engine

}  // namespace

void InitBenchTracing(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      g_trace_out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      SetBenchShards(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      SetBenchShards(std::atoi(argv[i] + 9));
    }
  }
}

void SetBenchShards(int shards) { g_shards = shards < 1 ? 1 : shards; }

int BenchShards() { return g_shards; }

void ApplyShards(RlSystemConfig& cfg) {
  if (cfg.shards == 1) {
    cfg.shards = g_shards;
  }
}

bool BenchTracingEnabled() { return !g_trace_out.empty(); }

void ArmTrace(RlSystemConfig& cfg) {
  if (BenchTracingEnabled()) {
    cfg.trace.enabled = true;
  }
}

void MaybeWriteTrace(const SystemReport& report) {
  if (!BenchTracingEnabled() || report.trace == nullptr) {
    return;
  }
  std::string base = g_trace_out;
  std::string ext;
  size_t slash = base.find_last_of('/');
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    ext = base.substr(dot);
    base.resize(dot);
  }
  char num[16];
  std::snprintf(num, sizeof(num), ".%03d", g_trace_index++);
  std::string path = base + num + ext;
  WriteTraceFile(*report.trace, path);
  std::fprintf(stderr, "trace: %zu events (%llu emitted) -> %s\n", report.trace->size(),
               static_cast<unsigned long long>(report.trace->total_emitted()),
               path.c_str());
}

RlSystemConfig ThroughputConfig(SystemKind system, ModelScale scale, int total_gpus,
                                TaskKind task) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = scale;
  cfg.task = task;
  cfg.total_gpus = total_gpus;
  cfg.global_batch = 8192;
  cfg.group_size = 16;
  cfg.num_minibatches = 16;
  cfg.max_concurrency = 1024;
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 3;
  cfg.seed = 2026;
  ApplyShards(cfg);
  return cfg;
}

RlSystemConfig ConvergenceConfig(SystemKind system, ModelScale scale, int total_gpus) {
  RlSystemConfig cfg = ThroughputConfig(system, scale, total_gpus);
  cfg.num_minibatches = 4;  // mini-batch size 2048 (Table 3)
  cfg.max_concurrency = 256;
  cfg.sampler = SamplerKind::kFifo;
  cfg.warmup_iterations = 0;
  return cfg;
}

std::vector<SystemReport> RunSweep(const std::vector<RlSystemConfig>& configs) {
  if (!BenchTracingEnabled() && g_shards == 1) {
    return RunExperiments(configs);
  }
  std::vector<RlSystemConfig> armed = configs;
  for (RlSystemConfig& cfg : armed) {
    ArmTrace(cfg);
    // Grid entries built outside the shared factories still honour --shards;
    // results are byte-identical for any shard count, so tables don't move.
    ApplyShards(cfg);
  }
  std::vector<SystemReport> reports = RunExperiments(armed);
  for (const SystemReport& rep : reports) {
    MaybeWriteTrace(rep);
  }
  return reports;
}

void Banner(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n==  %s  ==\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

std::string Tps(double v) { return Table::Int(v); }

}  // namespace laminar
