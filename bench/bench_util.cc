#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/table.h"
#include "src/snapshot/snapshot.h"
#include "src/trace/trace_io.h"

namespace laminar {
namespace {

std::string g_trace_out;     // empty = tracing off
int g_trace_index = 0;       // per-process trace file counter
int g_shards = 1;            // event-queue shards; 1 = serial engine
double g_snapshot_at = 0.0;  // 0 = no snapshot barrier
std::string g_snapshot_out;  // empty = don't write warm-start files
int g_snapshot_index = 0;    // per-process snapshot file counter
bool g_restore_armed = false;
SnapshotFile g_restore;  // decoded --restore-from file
RestoreMode g_restore_mode = RestoreMode::kDirect;

bool ParseRestoreMode(const char* value) {
  if (std::strcmp(value, "direct") == 0) {
    g_restore_mode = RestoreMode::kDirect;
  } else if (std::strcmp(value, "replay") == 0) {
    g_restore_mode = RestoreMode::kReplay;
  } else {
    std::fprintf(stderr, "--restore-mode must be direct or replay\n");
    std::exit(2);
  }
  return true;
}

void LoadRestoreFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "--restore-from: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream data;
  data << in.rdbuf();
  std::string error;
  if (!DecodeSnapshotFile(data.str(), &g_restore, &error)) {
    std::fprintf(stderr, "--restore-from: %s: %s\n", path, error.c_str());
    std::exit(2);
  }
  g_restore_armed = true;
}

}  // namespace

void InitBenchTracing(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      g_trace_out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      SetBenchShards(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      SetBenchShards(std::atoi(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--snapshot-at") == 0 && i + 1 < argc) {
      g_snapshot_at = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--snapshot-at=", 14) == 0) {
      g_snapshot_at = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--snapshot-out") == 0 && i + 1 < argc) {
      g_snapshot_out = argv[++i];
    } else if (std::strncmp(argv[i], "--snapshot-out=", 15) == 0) {
      g_snapshot_out = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--restore-from") == 0 && i + 1 < argc) {
      LoadRestoreFile(argv[++i]);
    } else if (std::strncmp(argv[i], "--restore-from=", 15) == 0) {
      LoadRestoreFile(argv[i] + 15);
    } else if (std::strcmp(argv[i], "--restore-mode") == 0 && i + 1 < argc) {
      ParseRestoreMode(argv[++i]);
    } else if (std::strncmp(argv[i], "--restore-mode=", 15) == 0) {
      ParseRestoreMode(argv[i] + 15);
    }
  }
}

void SetBenchShards(int shards) { g_shards = shards < 1 ? 1 : shards; }

int BenchShards() { return g_shards; }

void ApplyShards(RlSystemConfig& cfg) {
  if (cfg.shards == 1) {
    cfg.shards = g_shards;
  }
}

bool BenchTracingEnabled() { return !g_trace_out.empty(); }

void ArmTrace(RlSystemConfig& cfg) {
  if (BenchTracingEnabled()) {
    cfg.trace.enabled = true;
  }
}

bool BenchSnapshotEnabled() {
  return g_snapshot_at > 0.0 || g_restore_armed;
}

void ArmSnapshot(RlSystemConfig& cfg) {
  if (g_restore_armed) {
    cfg.restore_from = std::make_shared<const std::string>(g_restore.blob);
    cfg.restore_mode = g_restore_mode;
  } else if (g_snapshot_at > 0.0) {
    cfg.snapshot_at_seconds = g_snapshot_at;
  }
}

void MaybeWriteSnapshot(const SystemReport& report) {
  if (!BenchSnapshotEnabled()) {
    return;
  }
  if (report.snapshot == nullptr) {
    std::fprintf(stderr, "snapshot: %s: no snapshot captured (barrier past the "
                 "end of the run?)\n", report.label.c_str());
    return;
  }
  if (g_restore_armed) {
    bool bytes_equal = *report.snapshot == g_restore.blob;
    std::fprintf(stderr, "snapshot: %s: %s restore vs %s at t=%.6g s in %.3f s "
                 "wall: %zu field mismatch(es), blob %s\n",
                 report.label.c_str(),
                 g_restore_mode == RestoreMode::kDirect ? "direct-boot" : "replay",
                 g_restore.scenario_text.empty() ? "(unlabeled)"
                                                 : g_restore.scenario_text.c_str(),
                 g_restore.snapshot_at, report.restore_wall_seconds,
                 report.snapshot_mismatches.size(),
                 bytes_equal ? "byte-identical" : "DIFFERS");
    for (const std::string& m : report.snapshot_mismatches) {
      std::fprintf(stderr, "snapshot:   %s\n", m.c_str());
    }
  }
  if (!g_snapshot_out.empty()) {
    std::string base = g_snapshot_out;
    std::string ext;
    size_t slash = base.find_last_of('/');
    size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
      ext = base.substr(dot);
      base.resize(dot);
    }
    char num[16];
    std::snprintf(num, sizeof(num), ".%03d", g_snapshot_index++);
    std::string path = base + num + ext;
    SnapshotFile file;
    file.scenario_text = report.label;
    file.snapshot_at = report.snapshot_taken_at_seconds;
    file.blob = *report.snapshot;
    std::ofstream out(path, std::ios::binary);
    std::string encoded = EncodeSnapshotFile(file);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    std::fprintf(stderr, "snapshot: %zu bytes at t=%.6g s -> %s\n",
                 encoded.size(), file.snapshot_at, path.c_str());
  }
}

void MaybeWriteTrace(const SystemReport& report) {
  if (!BenchTracingEnabled() || report.trace == nullptr) {
    return;
  }
  std::string base = g_trace_out;
  std::string ext;
  size_t slash = base.find_last_of('/');
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    ext = base.substr(dot);
    base.resize(dot);
  }
  char num[16];
  std::snprintf(num, sizeof(num), ".%03d", g_trace_index++);
  std::string path = base + num + ext;
  WriteTraceFile(*report.trace, path);
  std::fprintf(stderr, "trace: %zu events (%llu emitted) -> %s\n", report.trace->size(),
               static_cast<unsigned long long>(report.trace->total_emitted()),
               path.c_str());
}

RlSystemConfig ThroughputConfig(SystemKind system, ModelScale scale, int total_gpus,
                                TaskKind task) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = scale;
  cfg.task = task;
  cfg.total_gpus = total_gpus;
  cfg.global_batch = 8192;
  cfg.group_size = 16;
  cfg.num_minibatches = 16;
  cfg.max_concurrency = 1024;
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 3;
  cfg.seed = 2026;
  ApplyShards(cfg);
  return cfg;
}

RlSystemConfig ConvergenceConfig(SystemKind system, ModelScale scale, int total_gpus) {
  RlSystemConfig cfg = ThroughputConfig(system, scale, total_gpus);
  cfg.num_minibatches = 4;  // mini-batch size 2048 (Table 3)
  cfg.max_concurrency = 256;
  cfg.sampler = SamplerKind::kFifo;
  cfg.warmup_iterations = 0;
  return cfg;
}

std::vector<SystemReport> RunSweep(const std::vector<RlSystemConfig>& configs) {
  if (!BenchTracingEnabled() && g_shards == 1 && !BenchSnapshotEnabled()) {
    return RunExperiments(configs);
  }
  std::vector<RlSystemConfig> armed = configs;
  for (RlSystemConfig& cfg : armed) {
    ArmTrace(cfg);
    // Grid entries built outside the shared factories still honour --shards;
    // results are byte-identical for any shard count, so tables don't move.
    ApplyShards(cfg);
    ArmSnapshot(cfg);
  }
  std::vector<SystemReport> reports = RunExperiments(armed);
  for (const SystemReport& rep : reports) {
    MaybeWriteTrace(rep);
    MaybeWriteSnapshot(rep);
  }
  return reports;
}

void Banner(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n==  %s  ==\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

std::string Tps(double v) { return Table::Int(v); }

}  // namespace laminar
