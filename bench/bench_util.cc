#include "bench/bench_util.h"

#include <cstdio>

#include "src/common/table.h"

namespace laminar {

RlSystemConfig ThroughputConfig(SystemKind system, ModelScale scale, int total_gpus,
                                TaskKind task) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = scale;
  cfg.task = task;
  cfg.total_gpus = total_gpus;
  cfg.global_batch = 8192;
  cfg.group_size = 16;
  cfg.num_minibatches = 16;
  cfg.max_concurrency = 1024;
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 3;
  cfg.seed = 2026;
  return cfg;
}

RlSystemConfig ConvergenceConfig(SystemKind system, ModelScale scale, int total_gpus) {
  RlSystemConfig cfg = ThroughputConfig(system, scale, total_gpus);
  cfg.num_minibatches = 4;  // mini-batch size 2048 (Table 3)
  cfg.max_concurrency = 256;
  cfg.sampler = SamplerKind::kFifo;
  cfg.warmup_iterations = 0;
  return cfg;
}

std::vector<SystemReport> RunSweep(const std::vector<RlSystemConfig>& configs) {
  return RunExperiments(configs);
}

void Banner(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n==  %s  ==\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

std::string Tps(double v) { return Table::Int(v); }

}  // namespace laminar
