// Shared helpers for the figure/table reproduction harnesses.
#ifndef LAMINAR_BENCH_BENCH_UTIL_H_
#define LAMINAR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/run.h"
#include "src/exp/sweep.h"

namespace laminar {

// Standard throughput-experiment configuration (paper §8 "Settings"):
// global batch 8192 = 512 prompts x 16 responses, 16 mini-batches,
// per-rollout concurrency 1024. Iteration counts are scaled down from the
// paper's 10+5 to keep the full sweep fast; the simulator is deterministic,
// so fewer samples suffice.
RlSystemConfig ThroughputConfig(SystemKind system, ModelScale scale, int total_gpus,
                                TaskKind task = TaskKind::kMathReasoning);

// Convergence-experiment configuration (paper Table 3): mini-batch 2048
// (4 mini-batch steps), per-rollout concurrency 256, FIFO sampling.
RlSystemConfig ConvergenceConfig(SystemKind system, ModelScale scale, int total_gpus);

// Fans a config grid out across hardware threads (src/exp/sweep.h). Results
// come back in submission order and are identical to calling RunExperiment()
// on each config serially. Harnesses build the grid in display order, sweep
// once, then walk the reports with a cursor. When --trace-out is armed (see
// InitBenchTracing), every experiment captures a full trace and the files are
// written in submission order after the sweep.
std::vector<SystemReport> RunSweep(const std::vector<RlSystemConfig>& configs);

// --trace-out support -----------------------------------------------------
// Every harness accepts `--trace-out <path>` (or --trace-out=<path>): each
// experiment then records a structured trace, written as
// "<base>.<NNN><ext>" in submission order — Chrome/Perfetto JSON when the
// path ends in ".json", the compact binary format otherwise. Notices go to
// stderr so table output on stdout stays byte-identical.
//
// Harnesses also accept `--shards <N>` (or --shards=<N>): every experiment
// then runs on the sharded parallel event engine with N replica lanes
// (DESIGN.md §12). Results are byte-identical to serial for any N, so the
// printed tables never change — only wall-clock does. Default 1 (serial).
void InitBenchTracing(int argc, char** argv);
// Shard-count plumbing for harnesses with their own argument parsers.
void SetBenchShards(int shards);
int BenchShards();
// Applies the --shards setting to a config that still has the default
// shard count (explicitly sharded configs win).
void ApplyShards(RlSystemConfig& cfg);
bool BenchTracingEnabled();
// Enables trace capture on `cfg` when --trace-out was given (for harnesses
// that build drivers directly instead of going through RunSweep).
void ArmTrace(RlSystemConfig& cfg);
// Writes the report's trace (if any) to the next numbered output file.
void MaybeWriteTrace(const SystemReport& report);

// Warm-start snapshots --------------------------------------------------------
// Every harness accepts `--snapshot-at <T>` (or =<T>): each experiment then
// pauses at the shard-window barrier nearest T simulated seconds and captures
// an LMSNAP1 state snapshot. A snapshot is an observation, never a
// perturbation, so the printed tables are byte-identical with or without it.
// `--snapshot-out <path>` writes each experiment's snapshot as a
// "<base>.<NNN><ext>" warm-start file (submission order, like --trace-out).
// `--restore-from <file>` resumes every config from the file's blob.
// `--restore-mode <direct|replay>` picks the recovery leg (default direct):
// direct boot adopts the blob and re-mints the event heap in wall-clock
// independent of the barrier time; replay re-executes the prefix from t=0
// and verifies the re-reached state field-by-field against the blob —
// the legacy path, kept as a differential oracle (DESIGN.md §13).
// All notices and mismatch reports go to stderr; stdout never moves.
void ArmSnapshot(RlSystemConfig& cfg);
void MaybeWriteSnapshot(const SystemReport& report);
bool BenchSnapshotEnabled();

// Prints a section header.
void Banner(const std::string& title);

// Formats "123,456" tokens/s.
std::string Tps(double v);

}  // namespace laminar

#endif  // LAMINAR_BENCH_BENCH_UTIL_H_
