// Shared helpers for the figure/table reproduction harnesses.
#ifndef LAMINAR_BENCH_BENCH_UTIL_H_
#define LAMINAR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/run.h"
#include "src/exp/sweep.h"

namespace laminar {

// Standard throughput-experiment configuration (paper §8 "Settings"):
// global batch 8192 = 512 prompts x 16 responses, 16 mini-batches,
// per-rollout concurrency 1024. Iteration counts are scaled down from the
// paper's 10+5 to keep the full sweep fast; the simulator is deterministic,
// so fewer samples suffice.
RlSystemConfig ThroughputConfig(SystemKind system, ModelScale scale, int total_gpus,
                                TaskKind task = TaskKind::kMathReasoning);

// Convergence-experiment configuration (paper Table 3): mini-batch 2048
// (4 mini-batch steps), per-rollout concurrency 256, FIFO sampling.
RlSystemConfig ConvergenceConfig(SystemKind system, ModelScale scale, int total_gpus);

// Fans a config grid out across hardware threads (src/exp/sweep.h). Results
// come back in submission order and are identical to calling RunExperiment()
// on each config serially. Harnesses build the grid in display order, sweep
// once, then walk the reports with a cursor.
std::vector<SystemReport> RunSweep(const std::vector<RlSystemConfig>& configs);

// Prints a section header.
void Banner(const std::string& title);

// Formats "123,456" tokens/s.
std::string Tps(double v);

}  // namespace laminar

#endif  // LAMINAR_BENCH_BENCH_UTIL_H_
