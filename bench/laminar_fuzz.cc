// Scenario-fuzz driver: generate seeded scenarios, run every differential
// oracle on each, shrink and record failures (DESIGN.md §10).
//
//   laminar_fuzz --seeds 256                      # the pre-release smoke run
//   laminar_fuzz --seeds 64 --corpus-dir corpus   # record shrunk repros
//   laminar_fuzz --replay tests/corpus/*.scenario # replay committed repros
//   laminar_fuzz --dump 18                        # print seed 18 as a .scenario
//   laminar_fuzz --fingerprints tests/corpus      # regenerate fingerprints.golden
//
// Exit status is the number of failing seeds/files (capped at 125).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/verify/fuzzer.h"

namespace laminar {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--base-seed S] [--corpus-dir DIR] [--no-shrink]\n"
               "       [--threads-a N] [--threads-b N] [--max-failures N] [--shards N]\n"
               "       [--replay FILE...] [--dump SEED] [--fingerprints DIR]\n"
               "--shards sets the shard-differential twin's lane count (0 disables\n"
               "the sharded-vs-serial byte-identity oracle; default 4).\n",
               argv0);
  return 2;
}

// Prints one line per (corpus scenario, batch config) in the golden format
// consumed by tests/perf_regression_test.cc:
//   <scenario-basename> <config-label> <fnv1a-hex>
int PrintCorpusFingerprints(const std::string& dir) {
  std::vector<std::string> files = ListCorpus(dir);
  if (files.empty()) {
    std::fprintf(stderr, "no .scenario files under %s\n", dir.c_str());
    return 2;
  }
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    if (!LoadScenarioFile(path, &scn, &error)) {
      std::fprintf(stderr, "%s: LOAD ERROR: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    for (const ConfigFingerprint& fp : ScenarioFingerprints(scn)) {
      std::printf("%s %s %016llx\n", base.c_str(), fp.label.c_str(),
                  static_cast<unsigned long long>(fp.hash));
    }
  }
  return 0;
}

int ReplayFiles(const std::vector<std::string>& files, const EvalOptions& eval) {
  int failing = 0;
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    if (!LoadScenarioFile(path, &scn, &error)) {
      std::printf("%s: LOAD ERROR: %s\n", path.c_str(), error.c_str());
      ++failing;
      continue;
    }
    OracleReport report = EvaluateScenario(scn, eval);
    std::printf("%s: %s\n", path.c_str(), report.ok() ? "ok" : "FAIL");
    if (!report.ok()) {
      std::printf("%s", report.Summary().c_str());
      ++failing;
    }
  }
  return failing;
}

int Main(int argc, char** argv) {
  FuzzOptions opts;
  std::vector<std::string> replay;
  bool replaying = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (replaying) {
      replay.push_back(arg);
    } else if (arg == "--seeds") {
      opts.num_seeds = std::atoi(next("--seeds"));
    } else if (arg == "--base-seed") {
      opts.base_seed = std::strtoull(next("--base-seed"), nullptr, 10);
    } else if (arg == "--corpus-dir") {
      opts.corpus_dir = next("--corpus-dir");
    } else if (arg == "--no-shrink") {
      opts.shrink_failures = false;
    } else if (arg == "--threads-a") {
      opts.eval.sweep_threads_a = static_cast<unsigned>(std::atoi(next("--threads-a")));
    } else if (arg == "--threads-b") {
      opts.eval.sweep_threads_b = static_cast<unsigned>(std::atoi(next("--threads-b")));
    } else if (arg == "--max-failures") {
      opts.max_failures = std::atoi(next("--max-failures"));
    } else if (arg == "--shards") {
      opts.eval.diff_shards = std::atoi(next("--shards"));
    } else if (arg == "--replay") {
      replaying = true;
    } else if (arg == "--fingerprints") {
      return PrintCorpusFingerprints(next("--fingerprints"));
    } else if (arg == "--dump") {
      uint64_t seed = std::strtoull(next("--dump"), nullptr, 10);
      Scenario scn = GenerateScenario(seed);
      std::printf("# %s\n%s", ScenarioSummary(scn).c_str(), ScenarioToText(scn).c_str());
      return 0;
    } else {
      return Usage(argv[0]);
    }
  }

  if (replaying) {
    int failing = ReplayFiles(replay, opts.eval);
    std::printf("replayed %zu file(s), %d failing\n", replay.size(), failing);
    return failing > 125 ? 125 : failing;
  }

  // Seeds are screened in batched windows so independent simulations share
  // the sweep thread pool; results print strictly in seed order, and a
  // failing seed is handed to RunFuzz for the usual shrink/corpus handling,
  // so the output bytes match the old one-seed-at-a-time loop exactly.
  int failing = 0;
  int window = std::max(1, opts.seeds_per_batch);
  bool stopped = false;
  for (int start = 0; start < opts.num_seeds && !stopped; start += window) {
    int n = std::min(window, opts.num_seeds - start);
    std::vector<Scenario> scenarios;
    scenarios.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      scenarios.push_back(
          GenerateScenario(opts.base_seed + static_cast<uint64_t>(start + i)));
    }
    std::vector<OracleReport> oracles = EvaluateScenarios(scenarios, opts.eval);
    for (int i = 0; i < n; ++i) {
      uint64_t seed = opts.base_seed + static_cast<uint64_t>(start + i);
      const Scenario& scn = scenarios[static_cast<size_t>(i)];
      if (oracles[static_cast<size_t>(i)].ok()) {
        std::printf("seed %llu: ok  [%s]\n", static_cast<unsigned long long>(seed),
                    ScenarioSummary(scn).c_str());
        continue;
      }
      FuzzOptions one = opts;
      one.num_seeds = 1;
      one.base_seed = seed;
      one.max_failures = 1;
      FuzzReport report = RunFuzz(one);
      std::printf("seed %llu: FAIL  [%s]\n", static_cast<unsigned long long>(seed),
                  ScenarioSummary(scn).c_str());
      std::printf("%s\n", report.Summary().c_str());
      ++failing;
      if (failing >= opts.max_failures) {
        stopped = true;
        break;
      }
    }
  }
  std::printf("fuzzed %d seed(s) from base %llu: %d failing\n", opts.num_seeds,
              static_cast<unsigned long long>(opts.base_seed), failing);
  return failing > 125 ? 125 : failing;
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) { return laminar::Main(argc, argv); }
