// Scenario-fuzz driver: generate seeded scenarios, run every differential
// oracle on each, shrink and record failures (DESIGN.md §10).
//
//   laminar_fuzz --seeds 256                      # the pre-release smoke run
//   laminar_fuzz --seeds 64 --corpus-dir corpus   # record shrunk repros
//   laminar_fuzz --replay tests/corpus/*.scenario # replay committed repros
//   laminar_fuzz --dump 18                        # print seed 18 as a .scenario
//   laminar_fuzz --fingerprints tests/corpus      # regenerate fingerprints.golden
//
// Warm-start snapshots (DESIGN.md §13):
//   laminar_fuzz --snapshot-at 30 --snapshot-out w.lmsnap --replay F.scenario
//       runs F with a snapshot barrier at t=30 s and writes the captured
//       state (plus the scenario text) as a warm-start file
//   laminar_fuzz --restore-from w.lmsnap [--restore-mode direct|replay]
//       resumes the embedded scenario from the barrier: direct boot by
//       default (adopt the blob, O(1) of the prefix), or the legacy
//       replay-anchored path with --restore-mode replay (re-run the prefix,
//       verify the re-reached state field-by-field), then runs to completion
//   --snapshot-at with --replay alone pins the diff-snapshot oracle's
//       barrier to t instead of the seeded mid-point
//
// Exit status is the number of failing seeds/files (capped at 125).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/sweep.h"
#include "src/snapshot/snapshot.h"
#include "src/verify/fuzzer.h"

namespace laminar {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--base-seed S] [--corpus-dir DIR] [--no-shrink]\n"
               "       [--threads-a N] [--threads-b N] [--max-failures N] [--shards N]\n"
               "       [--no-snapshot-diff] [--snapshot-at T] [--snapshot-out FILE]\n"
               "       [--restore-from FILE] [--restore-mode direct|replay]\n"
               "       [--replay FILE...] [--dump SEED] [--fingerprints DIR]\n"
               "--shards sets the shard-differential twin's lane count (0 disables\n"
               "the sharded-vs-serial byte-identity oracle; default 4).\n"
               "--snapshot-at T with --replay pins the snapshot oracle's barrier to\n"
               "T seconds; add --snapshot-out to also write a warm-start file, which\n"
               "--restore-from resumes: direct boot by default, or replay-anchored\n"
               "with --restore-mode replay; both verify byte-for-byte.\n",
               argv0);
  return 2;
}

// Prints one line per (corpus scenario, batch config) in the golden format
// consumed by tests/perf_regression_test.cc:
//   <scenario-basename> <config-label> <fnv1a-hex>
int PrintCorpusFingerprints(const std::string& dir) {
  std::vector<std::string> files = ListCorpus(dir);
  if (files.empty()) {
    std::fprintf(stderr, "no .scenario files under %s\n", dir.c_str());
    return 2;
  }
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    if (!LoadScenarioFile(path, &scn, &error)) {
      std::fprintf(stderr, "%s: LOAD ERROR: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    for (const ConfigFingerprint& fp : ScenarioFingerprints(scn)) {
      std::printf("%s %s %016llx\n", base.c_str(), fp.label.c_str(),
                  static_cast<unsigned long long>(fp.hash));
    }
  }
  return 0;
}

int ReplayFiles(const std::vector<std::string>& files, const EvalOptions& eval,
                double snapshot_at) {
  int failing = 0;
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    if (!LoadScenarioFile(path, &scn, &error)) {
      std::printf("%s: LOAD ERROR: %s\n", path.c_str(), error.c_str());
      ++failing;
      continue;
    }
    if (snapshot_at > 0.0) {
      scn.config.snapshot_at_seconds = snapshot_at;
    }
    OracleReport report = EvaluateScenario(scn, eval);
    std::printf("%s: %s\n", path.c_str(), report.ok() ? "ok" : "FAIL");
    if (!report.ok()) {
      // One line per failure naming the offending file and the oracle that
      // caught it, so a multi-file replay greps straight to its scenario.
      for (const OracleFailure& f : report.failures) {
        std::printf("%s: oracle '%s': %s\n", path.c_str(), f.oracle.c_str(),
                    f.detail.c_str());
      }
      ++failing;
    }
  }
  return failing;
}

// --snapshot-at T --snapshot-out OUT --replay FILE: run FILE's primary config
// with a snapshot barrier at T and persist the captured state plus the
// scenario text as a warm-start file.
int WriteWarmStart(const std::string& scenario_path, double t,
                   const std::string& out_path) {
  Scenario scn;
  std::string error;
  if (!LoadScenarioFile(scenario_path, &scn, &error)) {
    std::fprintf(stderr, "%s: LOAD ERROR: %s\n", scenario_path.c_str(), error.c_str());
    return 2;
  }
  RlSystemConfig cfg = scn.config;
  cfg.snapshot_at_seconds = t;
  SweepOptions solo;
  solo.num_threads = 1;
  SystemReport rep = std::move(RunExperiments({cfg}, solo)[0]);
  if (rep.snapshot == nullptr || rep.snapshot->empty()) {
    std::fprintf(stderr, "%s: no snapshot captured at t=%.6g s (run spans %.6g s)\n",
                 scenario_path.c_str(), t, rep.simulated_seconds);
    return 1;
  }
  SnapshotFile file;
  file.scenario_text = ScenarioToText(scn);
  file.snapshot_at = rep.snapshot_taken_at_seconds;
  file.blob = *rep.snapshot;
  std::string encoded = EncodeSnapshotFile(file);
  std::ofstream out(out_path, std::ios::binary);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("%s: %zu-byte warm-start (state at t=%.6g s) -> %s\n",
              scenario_path.c_str(), encoded.size(), file.snapshot_at,
              out_path.c_str());
  return 0;
}

// --restore-from FILE [--restore-mode direct|replay]: decode a warm-start
// file and resume its embedded scenario from the recorded barrier. Direct
// mode (the default) boots straight off the blob — adopt every component,
// re-mint the event heap, continue — in wall-clock independent of the
// barrier time. Replay mode keeps the legacy path: re-run the prefix from
// t=0, verify the re-reached state field-by-field against the stored blob,
// then continue (DESIGN.md §13). Either way the barrier re-snapshot must be
// byte-identical to the stored blob.
int RestoreFrom(const std::string& path, RestoreMode mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream data;
  data << in.rdbuf();
  SnapshotFile file;
  std::string error;
  if (!DecodeSnapshotFile(data.str(), &file, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  Scenario scn;
  if (!ScenarioFromText(file.scenario_text, &scn, &error)) {
    std::fprintf(stderr, "%s: embedded scenario: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  RlSystemConfig cfg = scn.config;
  cfg.restore_from = std::make_shared<const std::string>(file.blob);
  cfg.restore_mode = mode;
  SweepOptions solo;
  solo.num_threads = 1;
  SystemReport rep = std::move(RunExperiments({cfg}, solo)[0]);
  bool bytes_equal = rep.snapshot != nullptr && *rep.snapshot == file.blob;
  std::printf(
      "%s: %s restore [%s] to t=%.6g s in %.3f s wall: %zu field "
      "mismatch(es), blob %s\n",
      path.c_str(), mode == RestoreMode::kDirect ? "direct-boot" : "replay",
      ScenarioSummary(scn).c_str(), file.snapshot_at, rep.restore_wall_seconds,
      rep.snapshot_mismatches.size(),
      bytes_equal ? "byte-identical" : "DIFFERS");
  for (const std::string& m : rep.snapshot_mismatches) {
    std::printf("%s:   %s\n", path.c_str(), m.c_str());
  }
  std::printf("run completed: %.6g simulated seconds\n", rep.simulated_seconds);
  return bytes_equal && rep.snapshot_mismatches.empty() && rep.restored ? 0 : 1;
}

int Main(int argc, char** argv) {
  FuzzOptions opts;
  std::vector<std::string> replay;
  bool replaying = false;
  double snapshot_at = 0.0;
  std::string snapshot_out;
  std::string restore_from;
  RestoreMode restore_mode = RestoreMode::kDirect;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (replaying) {
      replay.push_back(arg);
    } else if (arg == "--seeds") {
      opts.num_seeds = std::atoi(next("--seeds"));
    } else if (arg == "--base-seed") {
      opts.base_seed = std::strtoull(next("--base-seed"), nullptr, 10);
    } else if (arg == "--corpus-dir") {
      opts.corpus_dir = next("--corpus-dir");
    } else if (arg == "--no-shrink") {
      opts.shrink_failures = false;
    } else if (arg == "--threads-a") {
      opts.eval.sweep_threads_a = static_cast<unsigned>(std::atoi(next("--threads-a")));
    } else if (arg == "--threads-b") {
      opts.eval.sweep_threads_b = static_cast<unsigned>(std::atoi(next("--threads-b")));
    } else if (arg == "--max-failures") {
      opts.max_failures = std::atoi(next("--max-failures"));
    } else if (arg == "--shards") {
      opts.eval.diff_shards = std::atoi(next("--shards"));
    } else if (arg == "--no-snapshot-diff") {
      opts.eval.diff_snapshot = false;
    } else if (arg == "--snapshot-at") {
      snapshot_at = std::atof(next("--snapshot-at"));
    } else if (arg == "--snapshot-out") {
      snapshot_out = next("--snapshot-out");
    } else if (arg == "--restore-from") {
      restore_from = next("--restore-from");
    } else if (arg == "--restore-mode") {
      std::string mode = next("--restore-mode");
      if (mode == "direct") {
        restore_mode = RestoreMode::kDirect;
      } else if (mode == "replay") {
        restore_mode = RestoreMode::kReplay;
      } else {
        std::fprintf(stderr, "--restore-mode must be direct or replay\n");
        return 2;
      }
    } else if (arg == "--replay") {
      replaying = true;
    } else if (arg == "--fingerprints") {
      return PrintCorpusFingerprints(next("--fingerprints"));
    } else if (arg == "--dump") {
      uint64_t seed = std::strtoull(next("--dump"), nullptr, 10);
      Scenario scn = GenerateScenario(seed);
      std::printf("# %s\n%s", ScenarioSummary(scn).c_str(), ScenarioToText(scn).c_str());
      return 0;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!restore_from.empty()) {
    return RestoreFrom(restore_from, restore_mode);
  }
  if (!snapshot_out.empty()) {
    if (replay.size() != 1 || snapshot_at <= 0.0) {
      std::fprintf(stderr,
                   "--snapshot-out needs --snapshot-at T and exactly one "
                   "--replay FILE\n");
      return 2;
    }
    return WriteWarmStart(replay[0], snapshot_at, snapshot_out);
  }
  if (replaying) {
    int failing = ReplayFiles(replay, opts.eval, snapshot_at);
    std::printf("replayed %zu file(s), %d failing\n", replay.size(), failing);
    return failing > 125 ? 125 : failing;
  }

  // Seeds are screened in batched windows so independent simulations share
  // the sweep thread pool; results print strictly in seed order, and a
  // failing seed is handed to RunFuzz for the usual shrink/corpus handling,
  // so the output bytes match the old one-seed-at-a-time loop exactly.
  int failing = 0;
  int window = std::max(1, opts.seeds_per_batch);
  bool stopped = false;
  for (int start = 0; start < opts.num_seeds && !stopped; start += window) {
    int n = std::min(window, opts.num_seeds - start);
    std::vector<Scenario> scenarios;
    scenarios.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      scenarios.push_back(
          GenerateScenario(opts.base_seed + static_cast<uint64_t>(start + i)));
    }
    std::vector<OracleReport> oracles = EvaluateScenarios(scenarios, opts.eval);
    for (int i = 0; i < n; ++i) {
      uint64_t seed = opts.base_seed + static_cast<uint64_t>(start + i);
      const Scenario& scn = scenarios[static_cast<size_t>(i)];
      if (oracles[static_cast<size_t>(i)].ok()) {
        std::printf("seed %llu: ok  [%s]\n", static_cast<unsigned long long>(seed),
                    ScenarioSummary(scn).c_str());
        continue;
      }
      FuzzOptions one = opts;
      one.num_seeds = 1;
      one.base_seed = seed;
      one.max_failures = 1;
      FuzzReport report = RunFuzz(one);
      std::printf("seed %llu: FAIL  [%s]\n", static_cast<unsigned long long>(seed),
                  ScenarioSummary(scn).c_str());
      std::printf("%s\n", report.Summary().c_str());
      ++failing;
      if (failing >= opts.max_failures) {
        stopped = true;
        break;
      }
    }
  }
  std::printf("fuzzed %d seed(s) from base %llu: %d failing\n", opts.num_seeds,
              static_cast<unsigned long long>(opts.base_seed), failing);
  return failing > 125 ? 125 : failing;
}

}  // namespace
}  // namespace laminar

int main(int argc, char** argv) { return laminar::Main(argc, argv); }
