file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_distributions.dir/bench_fig02_distributions.cc.o"
  "CMakeFiles/bench_fig02_distributions.dir/bench_fig02_distributions.cc.o.d"
  "bench_fig02_distributions"
  "bench_fig02_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
