file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_decode_roofline.dir/bench_fig04_decode_roofline.cc.o"
  "CMakeFiles/bench_fig04_decode_roofline.dir/bench_fig04_decode_roofline.cc.o.d"
  "bench_fig04_decode_roofline"
  "bench_fig04_decode_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_decode_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
