# Empty dependencies file for bench_fig04_decode_roofline.
# This may be replaced when dependencies are built.
