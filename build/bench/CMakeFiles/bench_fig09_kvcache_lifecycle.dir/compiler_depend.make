# Empty compiler generated dependencies file for bench_fig09_kvcache_lifecycle.
# This may be replaced when dependencies are built.
