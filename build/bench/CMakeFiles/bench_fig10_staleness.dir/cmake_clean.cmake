file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_staleness.dir/bench_fig10_staleness.cc.o"
  "CMakeFiles/bench_fig10_staleness.dir/bench_fig10_staleness.cc.o.d"
  "bench_fig10_staleness"
  "bench_fig10_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
