# Empty dependencies file for bench_fig10_staleness.
# This may be replaced when dependencies are built.
