file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_e2e_math.dir/bench_fig11_e2e_math.cc.o"
  "CMakeFiles/bench_fig11_e2e_math.dir/bench_fig11_e2e_math.cc.o.d"
  "bench_fig11_e2e_math"
  "bench_fig11_e2e_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_e2e_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
