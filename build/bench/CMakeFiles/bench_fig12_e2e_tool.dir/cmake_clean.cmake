file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_e2e_tool.dir/bench_fig12_e2e_tool.cc.o"
  "CMakeFiles/bench_fig12_e2e_tool.dir/bench_fig12_e2e_tool.cc.o.d"
  "bench_fig12_e2e_tool"
  "bench_fig12_e2e_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_e2e_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
