file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_weight_sync.dir/bench_fig14_weight_sync.cc.o"
  "CMakeFiles/bench_fig14_weight_sync.dir/bench_fig14_weight_sync.cc.o.d"
  "bench_fig14_weight_sync"
  "bench_fig14_weight_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_weight_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
