# Empty compiler generated dependencies file for bench_fig14_weight_sync.
# This may be replaced when dependencies are built.
