file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_repack.dir/bench_fig16_repack.cc.o"
  "CMakeFiles/bench_fig16_repack.dir/bench_fig16_repack.cc.o.d"
  "bench_fig16_repack"
  "bench_fig16_repack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_repack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
