# Empty dependencies file for bench_fig16_repack.
# This may be replaced when dependencies are built.
