
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_broadcast.cc" "bench/CMakeFiles/bench_fig18_broadcast.dir/bench_fig18_broadcast.cc.o" "gcc" "bench/CMakeFiles/bench_fig18_broadcast.dir/bench_fig18_broadcast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/laminar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rollout/CMakeFiles/laminar_rollout.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/laminar_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/repack/CMakeFiles/laminar_repack.dir/DependInfo.cmake"
  "/root/repo/build/src/trainer/CMakeFiles/laminar_trainer.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/laminar_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/laminar_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/laminar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/laminar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/laminar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/laminar_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/laminar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
