# Empty compiler generated dependencies file for bench_fig18_broadcast.
# This may be replaced when dependencies are built.
