file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_training.dir/fault_tolerant_training.cpp.o"
  "CMakeFiles/fault_tolerant_training.dir/fault_tolerant_training.cpp.o.d"
  "fault_tolerant_training"
  "fault_tolerant_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
