# Empty compiler generated dependencies file for fault_tolerant_training.
# This may be replaced when dependencies are built.
