file(REMOVE_RECURSE
  "CMakeFiles/math_rl_campaign.dir/math_rl_campaign.cpp.o"
  "CMakeFiles/math_rl_campaign.dir/math_rl_campaign.cpp.o.d"
  "math_rl_campaign"
  "math_rl_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_rl_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
