# Empty dependencies file for math_rl_campaign.
# This may be replaced when dependencies are built.
