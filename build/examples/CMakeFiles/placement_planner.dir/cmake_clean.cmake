file(REMOVE_RECURSE
  "CMakeFiles/placement_planner.dir/placement_planner.cpp.o"
  "CMakeFiles/placement_planner.dir/placement_planner.cpp.o.d"
  "placement_planner"
  "placement_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
