file(REMOVE_RECURSE
  "CMakeFiles/laminar_cluster.dir/hardware.cc.o"
  "CMakeFiles/laminar_cluster.dir/hardware.cc.o.d"
  "CMakeFiles/laminar_cluster.dir/placement.cc.o"
  "CMakeFiles/laminar_cluster.dir/placement.cc.o.d"
  "liblaminar_cluster.a"
  "liblaminar_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
