file(REMOVE_RECURSE
  "liblaminar_cluster.a"
)
