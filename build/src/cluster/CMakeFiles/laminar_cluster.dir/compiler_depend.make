# Empty compiler generated dependencies file for laminar_cluster.
# This may be replaced when dependencies are built.
