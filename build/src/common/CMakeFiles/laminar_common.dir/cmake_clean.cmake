file(REMOVE_RECURSE
  "CMakeFiles/laminar_common.dir/flags.cc.o"
  "CMakeFiles/laminar_common.dir/flags.cc.o.d"
  "CMakeFiles/laminar_common.dir/histogram.cc.o"
  "CMakeFiles/laminar_common.dir/histogram.cc.o.d"
  "CMakeFiles/laminar_common.dir/logging.cc.o"
  "CMakeFiles/laminar_common.dir/logging.cc.o.d"
  "CMakeFiles/laminar_common.dir/rng.cc.o"
  "CMakeFiles/laminar_common.dir/rng.cc.o.d"
  "CMakeFiles/laminar_common.dir/sim_time.cc.o"
  "CMakeFiles/laminar_common.dir/sim_time.cc.o.d"
  "CMakeFiles/laminar_common.dir/stats.cc.o"
  "CMakeFiles/laminar_common.dir/stats.cc.o.d"
  "CMakeFiles/laminar_common.dir/table.cc.o"
  "CMakeFiles/laminar_common.dir/table.cc.o.d"
  "liblaminar_common.a"
  "liblaminar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
