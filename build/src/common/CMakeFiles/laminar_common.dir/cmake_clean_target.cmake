file(REMOVE_RECURSE
  "liblaminar_common.a"
)
