
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/laminar_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/config.cc.o.d"
  "/root/repo/src/core/driver_base.cc" "src/core/CMakeFiles/laminar_core.dir/driver_base.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/driver_base.cc.o.d"
  "/root/repo/src/core/laminar_system.cc" "src/core/CMakeFiles/laminar_core.dir/laminar_system.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/laminar_system.cc.o.d"
  "/root/repo/src/core/partial_rollout_system.cc" "src/core/CMakeFiles/laminar_core.dir/partial_rollout_system.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/partial_rollout_system.cc.o.d"
  "/root/repo/src/core/pipeline_system.cc" "src/core/CMakeFiles/laminar_core.dir/pipeline_system.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/pipeline_system.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/core/CMakeFiles/laminar_core.dir/report_io.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/report_io.cc.o.d"
  "/root/repo/src/core/run.cc" "src/core/CMakeFiles/laminar_core.dir/run.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/run.cc.o.d"
  "/root/repo/src/core/sync_system.cc" "src/core/CMakeFiles/laminar_core.dir/sync_system.cc.o" "gcc" "src/core/CMakeFiles/laminar_core.dir/sync_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/laminar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/laminar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/laminar_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/laminar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/laminar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/laminar_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/rollout/CMakeFiles/laminar_rollout.dir/DependInfo.cmake"
  "/root/repo/build/src/repack/CMakeFiles/laminar_repack.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/laminar_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/trainer/CMakeFiles/laminar_trainer.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/laminar_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
