file(REMOVE_RECURSE
  "CMakeFiles/laminar_core.dir/config.cc.o"
  "CMakeFiles/laminar_core.dir/config.cc.o.d"
  "CMakeFiles/laminar_core.dir/driver_base.cc.o"
  "CMakeFiles/laminar_core.dir/driver_base.cc.o.d"
  "CMakeFiles/laminar_core.dir/laminar_system.cc.o"
  "CMakeFiles/laminar_core.dir/laminar_system.cc.o.d"
  "CMakeFiles/laminar_core.dir/partial_rollout_system.cc.o"
  "CMakeFiles/laminar_core.dir/partial_rollout_system.cc.o.d"
  "CMakeFiles/laminar_core.dir/pipeline_system.cc.o"
  "CMakeFiles/laminar_core.dir/pipeline_system.cc.o.d"
  "CMakeFiles/laminar_core.dir/report_io.cc.o"
  "CMakeFiles/laminar_core.dir/report_io.cc.o.d"
  "CMakeFiles/laminar_core.dir/run.cc.o"
  "CMakeFiles/laminar_core.dir/run.cc.o.d"
  "CMakeFiles/laminar_core.dir/sync_system.cc.o"
  "CMakeFiles/laminar_core.dir/sync_system.cc.o.d"
  "liblaminar_core.a"
  "liblaminar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
