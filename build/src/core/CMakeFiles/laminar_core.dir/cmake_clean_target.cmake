file(REMOVE_RECURSE
  "liblaminar_core.a"
)
