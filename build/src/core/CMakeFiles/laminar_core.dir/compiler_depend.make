# Empty compiler generated dependencies file for laminar_core.
# This may be replaced when dependencies are built.
