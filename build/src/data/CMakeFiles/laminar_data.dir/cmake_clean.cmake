file(REMOVE_RECURSE
  "CMakeFiles/laminar_data.dir/experience_buffer.cc.o"
  "CMakeFiles/laminar_data.dir/experience_buffer.cc.o.d"
  "CMakeFiles/laminar_data.dir/partial_response_pool.cc.o"
  "CMakeFiles/laminar_data.dir/partial_response_pool.cc.o.d"
  "CMakeFiles/laminar_data.dir/prompt_pool.cc.o"
  "CMakeFiles/laminar_data.dir/prompt_pool.cc.o.d"
  "liblaminar_data.a"
  "liblaminar_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
