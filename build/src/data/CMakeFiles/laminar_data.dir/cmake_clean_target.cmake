file(REMOVE_RECURSE
  "liblaminar_data.a"
)
