# Empty compiler generated dependencies file for laminar_data.
# This may be replaced when dependencies are built.
