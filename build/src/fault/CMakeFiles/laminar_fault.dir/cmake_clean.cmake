file(REMOVE_RECURSE
  "CMakeFiles/laminar_fault.dir/heartbeat.cc.o"
  "CMakeFiles/laminar_fault.dir/heartbeat.cc.o.d"
  "CMakeFiles/laminar_fault.dir/injector.cc.o"
  "CMakeFiles/laminar_fault.dir/injector.cc.o.d"
  "liblaminar_fault.a"
  "liblaminar_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
