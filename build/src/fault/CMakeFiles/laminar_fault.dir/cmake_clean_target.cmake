file(REMOVE_RECURSE
  "liblaminar_fault.a"
)
