# Empty dependencies file for laminar_fault.
# This may be replaced when dependencies are built.
