
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/decode_model.cc" "src/llm/CMakeFiles/laminar_llm.dir/decode_model.cc.o" "gcc" "src/llm/CMakeFiles/laminar_llm.dir/decode_model.cc.o.d"
  "/root/repo/src/llm/model_spec.cc" "src/llm/CMakeFiles/laminar_llm.dir/model_spec.cc.o" "gcc" "src/llm/CMakeFiles/laminar_llm.dir/model_spec.cc.o.d"
  "/root/repo/src/llm/train_cost.cc" "src/llm/CMakeFiles/laminar_llm.dir/train_cost.cc.o" "gcc" "src/llm/CMakeFiles/laminar_llm.dir/train_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/laminar_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
