file(REMOVE_RECURSE
  "CMakeFiles/laminar_llm.dir/decode_model.cc.o"
  "CMakeFiles/laminar_llm.dir/decode_model.cc.o.d"
  "CMakeFiles/laminar_llm.dir/model_spec.cc.o"
  "CMakeFiles/laminar_llm.dir/model_spec.cc.o.d"
  "CMakeFiles/laminar_llm.dir/train_cost.cc.o"
  "CMakeFiles/laminar_llm.dir/train_cost.cc.o.d"
  "liblaminar_llm.a"
  "liblaminar_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
