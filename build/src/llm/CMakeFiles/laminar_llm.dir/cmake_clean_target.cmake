file(REMOVE_RECURSE
  "liblaminar_llm.a"
)
