# Empty dependencies file for laminar_llm.
# This may be replaced when dependencies are built.
