file(REMOVE_RECURSE
  "CMakeFiles/laminar_policy.dir/policy.cc.o"
  "CMakeFiles/laminar_policy.dir/policy.cc.o.d"
  "liblaminar_policy.a"
  "liblaminar_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
