file(REMOVE_RECURSE
  "liblaminar_policy.a"
)
