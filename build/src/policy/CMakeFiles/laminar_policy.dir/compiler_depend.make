# Empty compiler generated dependencies file for laminar_policy.
# This may be replaced when dependencies are built.
