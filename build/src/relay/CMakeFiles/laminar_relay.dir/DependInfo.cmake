
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/broadcast_model.cc" "src/relay/CMakeFiles/laminar_relay.dir/broadcast_model.cc.o" "gcc" "src/relay/CMakeFiles/laminar_relay.dir/broadcast_model.cc.o.d"
  "/root/repo/src/relay/relay_tier.cc" "src/relay/CMakeFiles/laminar_relay.dir/relay_tier.cc.o" "gcc" "src/relay/CMakeFiles/laminar_relay.dir/relay_tier.cc.o.d"
  "/root/repo/src/relay/weight_sync.cc" "src/relay/CMakeFiles/laminar_relay.dir/weight_sync.cc.o" "gcc" "src/relay/CMakeFiles/laminar_relay.dir/weight_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/laminar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
