file(REMOVE_RECURSE
  "CMakeFiles/laminar_relay.dir/broadcast_model.cc.o"
  "CMakeFiles/laminar_relay.dir/broadcast_model.cc.o.d"
  "CMakeFiles/laminar_relay.dir/relay_tier.cc.o"
  "CMakeFiles/laminar_relay.dir/relay_tier.cc.o.d"
  "CMakeFiles/laminar_relay.dir/weight_sync.cc.o"
  "CMakeFiles/laminar_relay.dir/weight_sync.cc.o.d"
  "liblaminar_relay.a"
  "liblaminar_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
