file(REMOVE_RECURSE
  "liblaminar_relay.a"
)
