# Empty compiler generated dependencies file for laminar_relay.
# This may be replaced when dependencies are built.
