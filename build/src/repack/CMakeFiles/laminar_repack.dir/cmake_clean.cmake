file(REMOVE_RECURSE
  "CMakeFiles/laminar_repack.dir/best_fit.cc.o"
  "CMakeFiles/laminar_repack.dir/best_fit.cc.o.d"
  "CMakeFiles/laminar_repack.dir/monitor.cc.o"
  "CMakeFiles/laminar_repack.dir/monitor.cc.o.d"
  "liblaminar_repack.a"
  "liblaminar_repack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_repack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
