file(REMOVE_RECURSE
  "liblaminar_repack.a"
)
