# Empty dependencies file for laminar_repack.
# This may be replaced when dependencies are built.
