file(REMOVE_RECURSE
  "CMakeFiles/laminar_rollout.dir/manager.cc.o"
  "CMakeFiles/laminar_rollout.dir/manager.cc.o.d"
  "CMakeFiles/laminar_rollout.dir/replica.cc.o"
  "CMakeFiles/laminar_rollout.dir/replica.cc.o.d"
  "liblaminar_rollout.a"
  "liblaminar_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
