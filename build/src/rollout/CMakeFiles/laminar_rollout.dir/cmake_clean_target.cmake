file(REMOVE_RECURSE
  "liblaminar_rollout.a"
)
