# Empty compiler generated dependencies file for laminar_rollout.
# This may be replaced when dependencies are built.
