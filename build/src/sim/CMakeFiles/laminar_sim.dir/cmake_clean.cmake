file(REMOVE_RECURSE
  "CMakeFiles/laminar_sim.dir/channel.cc.o"
  "CMakeFiles/laminar_sim.dir/channel.cc.o.d"
  "CMakeFiles/laminar_sim.dir/simulator.cc.o"
  "CMakeFiles/laminar_sim.dir/simulator.cc.o.d"
  "liblaminar_sim.a"
  "liblaminar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
