file(REMOVE_RECURSE
  "liblaminar_sim.a"
)
