# Empty dependencies file for laminar_sim.
# This may be replaced when dependencies are built.
