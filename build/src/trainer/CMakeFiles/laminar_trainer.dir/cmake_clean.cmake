file(REMOVE_RECURSE
  "CMakeFiles/laminar_trainer.dir/trainer.cc.o"
  "CMakeFiles/laminar_trainer.dir/trainer.cc.o.d"
  "liblaminar_trainer.a"
  "liblaminar_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
