file(REMOVE_RECURSE
  "liblaminar_trainer.a"
)
