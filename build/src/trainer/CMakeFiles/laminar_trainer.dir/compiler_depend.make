# Empty compiler generated dependencies file for laminar_trainer.
# This may be replaced when dependencies are built.
