
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/laminar_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/laminar_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/length_model.cc" "src/workload/CMakeFiles/laminar_workload.dir/length_model.cc.o" "gcc" "src/workload/CMakeFiles/laminar_workload.dir/length_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laminar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/laminar_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
