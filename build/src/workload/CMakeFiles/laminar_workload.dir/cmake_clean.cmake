file(REMOVE_RECURSE
  "CMakeFiles/laminar_workload.dir/generator.cc.o"
  "CMakeFiles/laminar_workload.dir/generator.cc.o.d"
  "CMakeFiles/laminar_workload.dir/length_model.cc.o"
  "CMakeFiles/laminar_workload.dir/length_model.cc.o.d"
  "liblaminar_workload.a"
  "liblaminar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
