file(REMOVE_RECURSE
  "liblaminar_workload.a"
)
