# Empty dependencies file for laminar_workload.
# This may be replaced when dependencies are built.
