# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/relay_test[1]_include.cmake")
include("/root/repo/build/tests/report_io_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/repack_test[1]_include.cmake")
include("/root/repo/build/tests/replica_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
