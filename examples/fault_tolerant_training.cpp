// Domain example 2: long-running training under a hostile fault schedule.
//
// Injects the paper's three failure classes — rollout machine loss, master
// relay loss, and a trainer worker crash — into one Laminar job and shows
// that training rides through all of them (paper §3.3, §4.3, §8.5).
//
//   ./fault_tolerant_training --gpus 64
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/laminar_system.h"
#include "src/core/run.h"

int main(int argc, char** argv) {
  using namespace laminar;
  Flags flags;
  flags.Define("gpus", "64", "total GPUs (7B scale)")
      .Define("iters", "10", "RL iterations to survive")
      .Define("verbose", "true", "log recovery events");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  if (flags.GetBool("verbose")) {
    laminar::SetLogLevel(laminar::LogLevel::kInfo);
  }

  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = static_cast<int>(flags.GetInt("gpus"));
  cfg.global_batch = 2048;
  cfg.warmup_iterations = 0;
  cfg.measure_iterations = static_cast<int>(flags.GetInt("iters"));

  auto driver = MakeDriver(cfg);
  auto* system = static_cast<LaminarSystem*>(driver.get());

  // The fault schedule: a rollout machine dies early, the master relay's
  // machine dies mid-run, and a trainer worker crashes later.
  system->sim().ScheduleAt(SimTime(60.0), [system] {
    std::printf("t=60s     injecting: rollout machine 1 power loss\n");
    system->heartbeats()->MarkDead(1);
  });
  system->sim().ScheduleAt(SimTime(250.0), [system] {
    std::printf("t=250s    injecting: master relay machine failure (master=%d)\n",
                system->relays()->master());
    system->heartbeats()->MarkDead(system->relays()->master());
  });
  system->sim().ScheduleAt(SimTime(420.0), [system] {
    std::printf("t=420s    injecting: trainer worker crash (checkpoint recovery)\n");
    system->trainer().Kill(/*recovery_seconds=*/90.0);
  });

  SystemReport rep = driver->Run();

  std::printf("\nSurvived. %d/%d iterations completed in %s simulated.\n",
              rep.iterations_completed, static_cast<int>(flags.GetInt("iters")),
              SimTime(rep.simulated_seconds).ToString().c_str());

  const RolloutManagerStats& ms = system->manager()->stats();
  Table t({"recovery metric", "value"});
  t.AddRow({"machine failures handled", Table::Int(ms.failures_handled)});
  t.AddRow({"trajectories redirected (partial-response pool)",
            Table::Int(ms.trajectories_redirected)});
  t.AddRow({"relay chain rebuilds", Table::Int(system->relays()->chain_rebuilds())});
  t.AddRow({"master re-elections", Table::Int(system->relays()->master_elections())});
  t.AddRow({"final throughput (tokens/s)", Table::Int(rep.throughput_tokens_per_sec)});
  t.AddRow({"final eval reward", Table::Num(rep.final_eval_reward, 3)});
  t.Print();

  std::printf("\nGeneration rate timeline (dips mark failures, recovery follows):\n");
  for (const TimePoint& p : rep.generation_rate.Resample(120.0)) {
    std::string bar(static_cast<size_t>(p.value / 4000.0), '#');
    std::printf("  t=%5.0fs %9s tok/s %s\n", p.time.seconds(),
                Table::Int(p.value).c_str(), bar.c_str());
  }
  return 0;
}
