// Domain example 1: a math-reasoning RL post-training campaign on Laminar.
//
// Runs a multi-iteration GRPO job on the DAPO-style math workload, then
// reports everything an ML engineer would want from a training run: reward
// curve, iteration timing, staleness profile, rollout utilization, and the
// repack mechanism's activity.
//
//   ./math_rl_campaign --gpus 128 --iters 12
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/table.h"
#include "src/core/run.h"

int main(int argc, char** argv) {
  using namespace laminar;
  Flags flags;
  flags.Define("gpus", "128", "total GPUs (Table-2 column for 7B: 16..256)")
      .Define("iters", "12", "RL iterations to train")
      .Define("batch", "4096", "global batch (trajectories)")
      .Define("seed", "7", "random seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.task = TaskKind::kMathReasoning;
  cfg.total_gpus = static_cast<int>(flags.GetInt("gpus"));
  cfg.global_batch = static_cast<int>(flags.GetInt("batch"));
  cfg.warmup_iterations = 0;
  cfg.measure_iterations = static_cast<int>(flags.GetInt("iters"));
  cfg.length_drift = true;  // response lengths evolve as the model learns
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SystemReport rep = RunExperiment(cfg);

  std::printf("Math RL campaign: %s, %d iterations, %s tokens/s sustained\n\n",
              rep.label.c_str(), rep.iterations_completed,
              Table::Int(rep.throughput_tokens_per_sec).c_str());

  Table iters({"iter", "wall clock", "duration (s)", "data wait (s)", "batch reward",
               "eval reward", "mean staleness", "clip frac"});
  SimTime prev = SimTime::Zero();
  for (size_t i = 0; i < rep.iterations.size(); ++i) {
    const IterationStats& it = rep.iterations[i];
    double eval = i < rep.reward_series.size() ? rep.reward_series.points()[i].value : 0.0;
    iters.AddRow({Table::Int(it.version), it.completed.ToString(),
                  Table::Num(it.completed - prev, 1), Table::Num(it.data_wait_seconds, 1),
                  Table::Num(it.mean_reward, 3), Table::Num(eval, 3),
                  Table::Num(it.mean_consume_staleness, 2), Table::Pct(it.clip_fraction)});
    prev = it.completed;
  }
  iters.Print();

  std::printf("\nInherent staleness distribution (version lag at trajectory finish):\n");
  Histogram staleness(0.0, 8.0, 8);
  for (const auto& [t, s] : rep.staleness_samples) {
    staleness.Add(static_cast<double>(s));
  }
  std::printf("%s", staleness.ToAscii().c_str());

  Table rollout({"rollout metric", "value"});
  rollout.AddRow({"replicas", Table::Int(rep.num_replicas)});
  rollout.AddRow({"avg KV utilization", Table::Pct(rep.avg_kv_utilization)});
  rollout.AddRow({"avg decode batch", Table::Num(rep.avg_decode_batch, 1)});
  rollout.AddRow({"busy fraction", Table::Pct(rep.rollout_busy_fraction)});
  rollout.AddRow({"mean trajectory latency (s)", Table::Num(rep.mean_traj_seconds, 0)});
  rollout.AddRow({"repack events", Table::Int(rep.repack_events)});
  rollout.AddRow({"replicas released by repack", Table::Int(rep.repack_sources_released)});
  rollout.AddRow({"weight-pull wait, mean (s)", Table::Num(rep.rollout_wait_mean_seconds)});
  std::printf("\n");
  rollout.Print();
  return 0;
}
