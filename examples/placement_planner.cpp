// Domain example 3: capacity planning with the simulator.
//
// Given a model scale, task and cluster size, sweeps the train/rollout GPU
// split for Laminar and reports the throughput-optimal placement — the
// tuning loop the paper performs by hand for Table 2, automated.
//
//   ./placement_planner --scale 32B --gpus 128
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/run.h"

int main(int argc, char** argv) {
  using namespace laminar;
  Flags flags;
  flags.Define("scale", "7B", "model scale: 7B | 32B | 72B")
      .Define("gpus", "64", "total GPUs (multiple of 16)")
      .Define("task", "math", "math | tool-calling");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  std::string scale_name = flags.GetString("scale");
  ModelScale scale = scale_name == "32B"   ? ModelScale::k32B
                     : scale_name == "72B" ? ModelScale::k72B
                                           : ModelScale::k7B;
  int total = static_cast<int>(flags.GetInt("gpus"));
  LAMINAR_CHECK_EQ(total % 16, 0);

  int tp = RolloutTensorParallel(SystemKind::kLaminar, scale);
  // A trainer shard needs at least one machine for the larger models.
  int min_unit = 8;

  std::printf("Placement sweep: Laminar, %s, %d GPUs, %s task (rollout TP=%d)\n\n",
              scale_name.c_str(), total, flags.GetString("task").c_str(), tp);
  Table table({"train GPUs", "rollout GPUs", "replicas", "throughput (tok/s)",
               "trainer wait/iter (s)", "rollout busy", "verdict"});
  double best = 0.0;
  int best_train = 0;
  std::vector<std::vector<std::string>> rows;
  for (int train = min_unit; train <= total - min_unit; train += min_unit) {
    int rollout = total - train;
    if (rollout % tp != 0) {
      continue;
    }
    RlSystemConfig cfg;
    cfg.system = SystemKind::kLaminar;
    cfg.scale = scale;
    cfg.task = flags.GetString("task") == "math" ? TaskKind::kMathReasoning
                                                 : TaskKind::kToolCalling;
    cfg.total_gpus = total;
    cfg.train_gpus = train;
    cfg.rollout_gpus = rollout;
    cfg.global_batch = 4096;
    cfg.warmup_iterations = 1;
    cfg.measure_iterations = 3;
    SystemReport rep = RunExperiment(cfg);
    double wait = 0.0;
    for (const IterationStats& it : rep.iterations) {
      wait += it.data_wait_seconds;
    }
    wait /= rep.iterations.empty() ? 1 : rep.iterations.size();
    if (rep.throughput_tokens_per_sec > best) {
      best = rep.throughput_tokens_per_sec;
      best_train = train;
    }
    rows.push_back({Table::Int(train), Table::Int(rollout), Table::Int(rep.num_replicas),
                    Table::Int(rep.throughput_tokens_per_sec), Table::Num(wait, 1),
                    Table::Pct(rep.rollout_busy_fraction),
                    wait > 5.0 ? "generation-bound" : "training-bound"});
  }
  for (auto& row : rows) {
    if (row[0] == Table::Int(best_train)) {
      row[6] += "  <== best";
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  Placement paper = GetPaperPlacement(SystemKind::kLaminar, scale, total);
  std::printf("\nBest split found: %d train / %d rollout (%s tokens/s).\n", best_train,
              total - best_train, Table::Int(best).c_str());
  std::printf("Paper's Table-2 placement at this point: %d train / %d rollout.\n",
              paper.train_gpus, paper.rollout_gpus);
  return 0;
}
