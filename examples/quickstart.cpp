// Quickstart: run one small Laminar job and print its report.
//
//   ./quickstart --system laminar --scale 7B --gpus 16 --iters 3
//
// This exercises the whole public API: config -> driver -> SystemReport.
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/report_io.h"
#include "src/core/run.h"

namespace {

laminar::SystemKind ParseSystem(const std::string& name) {
  for (laminar::SystemKind kind : laminar::AllSystemKinds()) {
    if (name == laminar::SystemKindName(kind)) {
      return kind;
    }
  }
  LAMINAR_LOG(kFatal) << "unknown system '" << name
                      << "' (try: verl, one-step, stream-gen, partial-rollout, laminar)";
  return laminar::SystemKind::kLaminar;
}

laminar::ModelScale ParseScale(const std::string& name) {
  if (name == "7B") {
    return laminar::ModelScale::k7B;
  }
  if (name == "32B") {
    return laminar::ModelScale::k32B;
  }
  if (name == "72B") {
    return laminar::ModelScale::k72B;
  }
  LAMINAR_LOG(kFatal) << "unknown scale '" << name << "' (7B, 32B, 72B)";
  return laminar::ModelScale::k7B;
}

}  // namespace

int main(int argc, char** argv) {
  laminar::Flags flags;
  flags.Define("system", "laminar", "verl | one-step | stream-gen | partial-rollout | laminar")
      .Define("scale", "7B", "model scale: 7B | 32B | 72B")
      .Define("gpus", "16", "total GPUs (must match a Table-2 column)")
      .Define("task", "math", "math | tool-calling")
      .Define("batch", "2048", "global training batch (trajectories)")
      .Define("warmup", "1", "warm-up iterations")
      .Define("iters", "3", "measured iterations")
      .Define("seed", "42", "root random seed")
      .Define("verbose", "false", "log at INFO level")
      .Define("csv-dir", "", "if set, export summary/series CSV files here");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  if (flags.GetBool("verbose")) {
    laminar::SetLogLevel(laminar::LogLevel::kInfo);
  }

  laminar::RlSystemConfig cfg;
  cfg.system = ParseSystem(flags.GetString("system"));
  cfg.scale = ParseScale(flags.GetString("scale"));
  cfg.task = flags.GetString("task") == "math" ? laminar::TaskKind::kMathReasoning
                                               : laminar::TaskKind::kToolCalling;
  cfg.total_gpus = static_cast<int>(flags.GetInt("gpus"));
  cfg.global_batch = static_cast<int>(flags.GetInt("batch"));
  cfg.warmup_iterations = static_cast<int>(flags.GetInt("warmup"));
  cfg.measure_iterations = static_cast<int>(flags.GetInt("iters"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  laminar::SystemReport rep = laminar::RunExperiment(cfg);
  std::string csv_dir = flags.GetString("csv-dir");
  if (!csv_dir.empty() && laminar::WriteReportCsv(rep, csv_dir)) {
    std::printf("CSV written to %s/\n", csv_dir.c_str());
  }

  std::printf("== %s ==\n", rep.label.c_str());
  laminar::Table t({"metric", "value"});
  t.AddRow({"throughput (tokens/s)", laminar::Table::Int(rep.throughput_tokens_per_sec)});
  t.AddRow({"mean iteration (s)", laminar::Table::Num(rep.mean_iteration_seconds, 1)});
  t.AddRow({"iterations", laminar::Table::Int(rep.iterations_completed)});
  t.AddRow({"replicas", laminar::Table::Int(rep.num_replicas)});
  t.AddRow({"avg KV utilization", laminar::Table::Pct(rep.avg_kv_utilization)});
  t.AddRow({"avg decode batch", laminar::Table::Num(rep.avg_decode_batch, 1)});
  t.AddRow({"rollout busy fraction", laminar::Table::Pct(rep.rollout_busy_fraction)});
  t.AddRow({"mean consume staleness", laminar::Table::Num(rep.mean_consume_staleness)});
  t.AddRow({"max consume staleness", laminar::Table::Num(rep.max_consume_staleness, 0)});
  t.AddRow({"mixed-version fraction", laminar::Table::Pct(rep.mixed_version_fraction)});
  t.AddRow({"actor stall (s)", laminar::Table::Num(rep.actor_stall_mean_seconds)});
  t.AddRow({"rollout wait mean (s)", laminar::Table::Num(rep.rollout_wait_mean_seconds)});
  t.AddRow({"repack events", laminar::Table::Int(rep.repack_events)});
  t.AddRow({"repack sources released", laminar::Table::Int(rep.repack_sources_released)});
  t.AddRow({"final eval reward", laminar::Table::Num(rep.final_eval_reward, 3)});
  t.AddRow({"gen fraction", laminar::Table::Pct(rep.generation_fraction)});
  t.AddRow({"sim events", laminar::Table::Int(rep.simulated_events)});
  t.AddRow({"sim seconds", laminar::Table::Num(rep.simulated_seconds, 0)});
  t.AddRow({"wall seconds", laminar::Table::Num(rep.wall_seconds, 2)});
  t.Print();
  return 0;
}
