#include "src/cluster/hardware.h"

#include "src/common/logging.h"

namespace laminar {

double MachineSpec::control_latency_floor() const {
  // alpha (message startup) + beta for the first byte of a one-flow message.
  return rdma_startup_latency + 1.0 / rdma_flow_bandwidth;
}

ClusterSpec ClusterSpec::ForGpus(int total_gpus) {
  ClusterSpec spec;
  LAMINAR_CHECK_GT(total_gpus, 0);
  LAMINAR_CHECK_EQ(total_gpus % spec.machine.gpus_per_machine, 0)
      << "total GPUs must be a multiple of GPUs per machine";
  spec.num_machines = total_gpus / spec.machine.gpus_per_machine;
  return spec;
}

}  // namespace laminar
