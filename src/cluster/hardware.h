// Hardware description of the simulated testbed.
//
// The paper's testbed is 128 machines x 8 NVIDIA H800-80GB, NVLink 400 GB/s
// intra-machine, 8 x 400 Gbps RDMA NICs inter-machine. These specs feed the
// roofline decode model (src/llm), the relay broadcast model (src/relay) and
// the weight-pull paths (PCIe).
#ifndef LAMINAR_SRC_CLUSTER_HARDWARE_H_
#define LAMINAR_SRC_CLUSTER_HARDWARE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace laminar {

// Per-GPU capabilities.
struct GpuSpec {
  std::string name = "H800-80GB";
  double memory_bytes = 80.0e9;
  // Peak HBM bandwidth and the fraction achievable by decode kernels at
  // large batch. Small batches utilize far less of the memory system (GEMV
  // kernels, low occupancy), which is what makes solo long-tail decoding so
  // slow in practice; the fraction ramps from `hbm_small_batch_floor` toward
  // `hbm_efficiency` with batch size.
  double hbm_bandwidth = 3.35e12;       // bytes/s
  double hbm_efficiency = 0.85;
  double hbm_small_batch_floor = 0.28;  // fraction of hbm_efficiency at batch 1
  double hbm_half_batch = 12.0;         // batch at which half the ramp is reached
  // Peak dense BF16 throughput and the fraction achievable (MFU-style).
  double peak_flops_bf16 = 989e12;      // FLOP/s
  double decode_flops_efficiency = 0.55;
  double prefill_flops_efficiency = 0.55;
  double train_flops_efficiency = 0.32;  // FSDP RL fine-tuning MFU (padding, comm)
  // Multiplier on host-side fixed costs (kernel launches, serving-engine step
  // scheduling, optimizer-step overhead). Carried on the GPU spec because
  // every cost model receives one; the hardware_speed metamorphic knob scales
  // it with 1/k so fixed latencies dilate exactly like bandwidth-derived ones.
  double host_overhead_scale = 1.0;

  double effective_hbm() const { return hbm_bandwidth * hbm_efficiency; }
  // Achievable memory bandwidth when decoding a batch of `batch` sequences.
  double effective_hbm_at_batch(int batch) const {
    double b = static_cast<double>(batch < 1 ? 1 : batch);
    double ramp = hbm_small_batch_floor +
                  (1.0 - hbm_small_batch_floor) * b / (b + hbm_half_batch);
    return hbm_bandwidth * hbm_efficiency * ramp;
  }
};

// Per-machine interconnects and layout.
struct MachineSpec {
  int gpus_per_machine = 8;
  GpuSpec gpu;
  double nvlink_bandwidth = 400.0e9;  // bytes/s per GPU pair direction
  // Host <-> GPU PCIe bandwidth per GPU (Gen5 x16 effective).
  double pcie_bandwidth = 50.0e9;  // bytes/s
  // Aggregate inter-machine RDMA bandwidth (8 x 400 Gbps) and per-flow share.
  double rdma_total_bandwidth = 8.0 * 400.0e9 / 8.0;  // bytes/s = 400 GB/s
  double rdma_flow_bandwidth = 400.0e9 / 8.0;         // one NIC, bytes/s = 50 GB/s
  // RDMA per-message startup latency (T_start in Appendix D).
  double rdma_startup_latency = 5.0e-6;  // seconds
  double host_memory_bytes = 2.0e12;     // plenty for relay weight hosting

  // Minimum latency of any cross-machine control interaction under the
  // alpha-beta link model: one RDMA message startup (alpha) plus the first
  // byte over a single flow (beta). The hard lower floor for the sharded
  // engine's per-lane lookahead horizons (DESIGN.md §12) — no effect of an
  // event on one machine can reach another machine sooner.
  double control_latency_floor() const;
};

// The whole cluster.
struct ClusterSpec {
  int num_machines = 128;
  MachineSpec machine;

  int total_gpus() const { return num_machines * machine.gpus_per_machine; }
  static ClusterSpec ForGpus(int total_gpus);
};

// Identifies one machine in the cluster. Machines host relay workers and one
// or more rollout replicas (or trainer shards).
struct MachineId {
  int index = -1;
  bool operator==(const MachineId&) const = default;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CLUSTER_HARDWARE_H_
