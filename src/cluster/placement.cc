#include "src/cluster/placement.h"

#include <array>
#include <cstdio>

#include "src/common/logging.h"

namespace laminar {
namespace {

struct SplitRow {
  int total;
  int train;
  int rollout;
};

// Table 2, One-step Staleness and Stream Generation share a column.
constexpr std::array<SplitRow, 5> kPipeline7B = {{
    {16, 8, 8}, {32, 8, 24}, {64, 16, 48}, {128, 32, 96}, {256, 40, 216}}};
constexpr std::array<SplitRow, 5> kPipeline32B = {{
    {32, 16, 16}, {64, 32, 32}, {128, 48, 80}, {256, 64, 192}, {512, 80, 432}}};
constexpr std::array<SplitRow, 5> kPipeline72B = {{
    {64, 32, 32}, {128, 64, 64}, {256, 96, 160}, {512, 192, 320}, {1024, 256, 768}}};

constexpr std::array<SplitRow, 5> kAreal7B = {{
    {16, 8, 8}, {32, 16, 16}, {64, 32, 32}, {128, 64, 64}, {256, 128, 128}}};
constexpr std::array<SplitRow, 5> kAreal32B = {{
    {32, 16, 16}, {64, 32, 32}, {128, 64, 64}, {256, 128, 128}, {512, 256, 256}}};
constexpr std::array<SplitRow, 5> kAreal72B = {{
    {64, 32, 32}, {128, 64, 64}, {256, 128, 128}, {512, 320, 192}, {1024, 640, 384}}};

constexpr std::array<SplitRow, 5> kLaminar7B = {{
    {16, 8, 8}, {32, 24, 8}, {64, 40, 24}, {128, 80, 48}, {256, 192, 64}}};
constexpr std::array<SplitRow, 5> kLaminar32B = {{
    {32, 16, 16}, {64, 32, 32}, {128, 64, 64}, {256, 128, 128}, {512, 256, 256}}};
constexpr std::array<SplitRow, 5> kLaminar72B = {{
    {64, 32, 32}, {128, 64, 64}, {256, 128, 128}, {512, 320, 192}, {1024, 768, 256}}};

const std::array<SplitRow, 5>& SplitTable(SystemKind system, ModelScale scale) {
  switch (system) {
    case SystemKind::kOneStep:
    case SystemKind::kStreamGen:
      switch (scale) {
        case ModelScale::k7B:
          return kPipeline7B;
        case ModelScale::k32B:
          return kPipeline32B;
        case ModelScale::k72B:
          return kPipeline72B;
      }
      break;
    case SystemKind::kPartialRollout:
      switch (scale) {
        case ModelScale::k7B:
          return kAreal7B;
        case ModelScale::k32B:
          return kAreal32B;
        case ModelScale::k72B:
          return kAreal72B;
      }
      break;
    case SystemKind::kLaminar:
      switch (scale) {
        case ModelScale::k7B:
          return kLaminar7B;
        case ModelScale::k32B:
          return kLaminar32B;
        case ModelScale::k72B:
          return kLaminar72B;
      }
      break;
    case SystemKind::kVerlSync:
      break;
  }
  LAMINAR_LOG(kFatal) << "no split table for system " << SystemKindName(system);
  return kPipeline7B;  // unreachable
}

}  // namespace

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVerlSync:
      return "verl";
    case SystemKind::kOneStep:
      return "one-step";
    case SystemKind::kStreamGen:
      return "stream-gen";
    case SystemKind::kPartialRollout:
      return "partial-rollout";
    case SystemKind::kLaminar:
      return "laminar";
  }
  return "?";
}

std::vector<SystemKind> AllSystemKinds() {
  return {SystemKind::kVerlSync, SystemKind::kOneStep, SystemKind::kStreamGen,
          SystemKind::kPartialRollout, SystemKind::kLaminar};
}

const char* ModelScaleName(ModelScale scale) {
  switch (scale) {
    case ModelScale::k7B:
      return "7B";
    case ModelScale::k32B:
      return "32B";
    case ModelScale::k72B:
      return "72B";
  }
  return "?";
}

std::string Placement::ToString() const {
  char buf[128];
  if (colocated) {
    std::snprintf(buf, sizeof(buf), "%s/%s total=%d colocated", SystemKindName(system),
                  ModelScaleName(scale), total_gpus);
  } else {
    std::snprintf(buf, sizeof(buf), "%s/%s total=%d train=%d rollout=%d",
                  SystemKindName(system), ModelScaleName(scale), total_gpus, train_gpus,
                  rollout_gpus);
  }
  return buf;
}

std::vector<int> PaperClusterSizes(ModelScale scale) {
  switch (scale) {
    case ModelScale::k7B:
      return {16, 32, 64, 128, 256};
    case ModelScale::k32B:
      return {32, 64, 128, 256, 512};
    case ModelScale::k72B:
      return {64, 128, 256, 512, 1024};
  }
  return {};
}

Placement GetPaperPlacement(SystemKind system, ModelScale scale, int total_gpus) {
  Placement p;
  p.system = system;
  p.scale = scale;
  p.total_gpus = total_gpus;
  if (system == SystemKind::kVerlSync) {
    p.train_gpus = total_gpus;
    p.rollout_gpus = total_gpus;
    p.colocated = true;
    return p;
  }
  for (const SplitRow& row : SplitTable(system, scale)) {
    if (row.total == total_gpus) {
      p.train_gpus = row.train;
      p.rollout_gpus = row.rollout;
      return p;
    }
  }
  LAMINAR_LOG(kFatal) << "no Table-2 placement for " << SystemKindName(system) << "/"
                      << ModelScaleName(scale) << " at " << total_gpus << " GPUs";
  return p;
}

int RolloutTensorParallel(SystemKind system, ModelScale scale) {
  switch (scale) {
    case ModelScale::k32B:
      return 4;
    case ModelScale::k72B:
      return 8;
    case ModelScale::k7B:
      return (system == SystemKind::kPartialRollout || system == SystemKind::kLaminar) ? 1 : 2;
  }
  return 1;
}

std::vector<Placement> AllPaperPlacements() {
  std::vector<Placement> out;
  for (SystemKind system : AllSystemKinds()) {
    for (ModelScale scale : {ModelScale::k7B, ModelScale::k32B, ModelScale::k72B}) {
      for (int total : PaperClusterSizes(scale)) {
        out.push_back(GetPaperPlacement(system, scale, total));
      }
    }
  }
  return out;
}

}  // namespace laminar
