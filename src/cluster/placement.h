// GPU placement configurations (paper Table 2) and system identifiers.
//
// For verl the placement is "colocated": every GPU alternates between
// training and rollout within an iteration. For all disaggregated systems the
// table records the train/rollout GPU split the paper tuned per scale.
#ifndef LAMINAR_SRC_CLUSTER_PLACEMENT_H_
#define LAMINAR_SRC_CLUSTER_PLACEMENT_H_

#include <string>
#include <vector>

namespace laminar {

// The five RL post-training systems compared in the paper's evaluation.
enum class SystemKind {
  kVerlSync,        // synchronous, colocated (verl v0.5.0)
  kOneStep,         // one-step staleness pipeline
  kStreamGen,       // stream generation (staleness bound 1)
  kPartialRollout,  // AReaL-style partial rollout + stream generation
  kLaminar,         // this paper
};

const char* SystemKindName(SystemKind kind);
std::vector<SystemKind> AllSystemKinds();

// Model scales evaluated.
enum class ModelScale { k7B, k32B, k72B };
const char* ModelScaleName(ModelScale scale);

// One row of Table 2.
struct Placement {
  SystemKind system = SystemKind::kLaminar;
  ModelScale scale = ModelScale::k7B;
  int total_gpus = 0;
  int train_gpus = 0;    // == total_gpus when colocated
  int rollout_gpus = 0;  // == total_gpus when colocated
  bool colocated = false;

  std::string ToString() const;
};

// Returns the paper's tuned placement for (system, scale, total_gpus).
// Aborts if the combination is not in Table 2.
Placement GetPaperPlacement(SystemKind system, ModelScale scale, int total_gpus);

// The five cluster sizes evaluated for a model scale (Figure 11 x-axis).
std::vector<int> PaperClusterSizes(ModelScale scale);

// Rollout tensor-parallel size per system/scale (Appendix A.2): TP=4 for 32B,
// TP=8 for 72B; for 7B, TP=1 for AReaL/Laminar and TP=2 for the others.
int RolloutTensorParallel(SystemKind system, ModelScale scale);

// All Table 2 rows, for printing.
std::vector<Placement> AllPaperPlacements();

}  // namespace laminar

#endif  // LAMINAR_SRC_CLUSTER_PLACEMENT_H_
