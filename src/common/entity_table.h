// Generation-tagged dense-ID entity table (DESIGN.md §11).
//
// Generalizes the simulator's event-slab pattern (src/sim/simulator.h): live
// entities sit in a contiguous slot vector, freed slots go on a LIFO free
// list, and every handle carries the slot's generation so a stale handle —
// one that outlived a Remove() — is detected instead of silently aliasing
// the slot's next tenant. Insert/Get/Remove are O(1) with no per-entity
// allocation; this is what replaces the node-based maps on the rollout and
// data-pool hot paths.
//
// Iteration (ForEach) visits live slots in slot order, which is NOT
// insertion order once slots have been reused. Callers that need a
// deterministic traversal order must impose one themselves (a sequence
// stamp, or an order-witness structure — see PartialResponsePool).
#ifndef LAMINAR_SRC_COMMON_ENTITY_TABLE_H_
#define LAMINAR_SRC_COMMON_ENTITY_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace laminar {

// Opaque handle: (generation << 32) | slot. Generations start at 1, so the
// zero-initialized handle is never valid.
struct EntityHandle {
  uint64_t bits = 0;

  bool valid() const { return bits != 0; }
  uint32_t slot() const { return static_cast<uint32_t>(bits); }
  uint32_t generation() const { return static_cast<uint32_t>(bits >> 32); }
  friend bool operator==(const EntityHandle&, const EntityHandle&) = default;

  static EntityHandle Pack(uint32_t slot, uint32_t generation) {
    return EntityHandle{(static_cast<uint64_t>(generation) << 32) | slot};
  }
};

// T must be movable and default-constructible (the default-constructed value
// is what a freed slot holds, so removed entities release their resources).
template <typename T>
class EntityTable {
 public:
  EntityHandle Insert(T value) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.value = std::move(value);
    s.live = true;
    ++live_;
    return EntityHandle::Pack(slot, s.generation);
  }

  // nullptr when the handle is invalid, freed, or from a previous tenant of
  // the slot (stale generation).
  T* Get(EntityHandle h) {
    if (!h.valid() || h.slot() >= slots_.size()) {
      return nullptr;
    }
    Slot& s = slots_[h.slot()];
    if (!s.live || s.generation != h.generation()) {
      return nullptr;
    }
    return &s.value;
  }
  const T* Get(EntityHandle h) const {
    return const_cast<EntityTable*>(this)->Get(h);
  }

  bool Contains(EntityHandle h) const { return Get(h) != nullptr; }

  // Moves the entity out, frees the slot, and bumps its generation so every
  // outstanding handle to it goes stale.
  T Remove(EntityHandle h) {
    T* value = Get(h);
    LAMINAR_CHECK(value != nullptr) << "stale or invalid entity handle";
    T out = std::move(*value);
    Slot& s = slots_[h.slot()];
    s.value = T{};
    s.live = false;
    BumpGeneration(s);
    --live_;
    free_.push_back(h.slot());
    return out;
  }

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Slot-order traversal of live entities. fn(EntityHandle, T&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
      Slot& s = slots_[slot];
      if (s.live) {
        fn(EntityHandle::Pack(slot, s.generation), s.value);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
      const Slot& s = slots_[slot];
      if (s.live) {
        fn(EntityHandle::Pack(slot, s.generation), s.value);
      }
    }
  }

  // Frees every live slot (generations keep advancing, so old handles stay
  // stale). Keeps the slab capacity.
  void Clear() {
    for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
      Slot& s = slots_[slot];
      if (s.live) {
        s.value = T{};
        s.live = false;
        BumpGeneration(s);
        free_.push_back(slot);
      }
    }
    live_ = 0;
  }

  void Reserve(size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

  // Test seam: pins a slot's generation so the 2^32 wrap is reachable
  // without four billion Remove() calls. The slot must exist.
  void SetSlotGenerationForTest(uint32_t slot, uint32_t generation) {
    LAMINAR_CHECK_LT(slot, slots_.size());
    slots_[slot].generation = generation;
  }
  uint32_t SlotGenerationForTest(uint32_t slot) const {
    LAMINAR_CHECK_LT(slot, slots_.size());
    return slots_[slot].generation;
  }

 private:
  struct Slot {
    T value{};
    uint32_t generation = 1;
    bool live = false;
  };

  // Generations live in 32 bits and wrap under sustained slot reuse. Skip 0
  // on wrap: generation 0 on slot 0 would pack to the all-zero bit pattern,
  // which EntityHandle reserves as "never valid" — a live entity there would
  // be unreachable through its own handle.
  static void BumpGeneration(Slot& s) {
    if (++s.generation == 0) {
      s.generation = 1;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;  // LIFO: most-recently-freed slot reused first
  size_t live_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_ENTITY_TABLE_H_
