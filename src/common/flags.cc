#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace laminar {

Flags& Flags::Define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  specs_[name] = Spec{default_value, help};
  return *this;
}

bool Flags::Parse(int argc, char** argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      LAMINAR_LOG(kFatal) << "Positional arguments are not supported: " << arg;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // `--flag value` form, unless the next token is another flag or absent
      // (then treat as boolean true).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (specs_.find(name) == specs_.end()) {
      LAMINAR_LOG(kFatal) << "Unknown flag --" << name << "\n" << Usage();
    }
    values_[name] = value;
  }
  return true;
}

std::string Flags::GetString(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) {
    return it->second;
  }
  auto spec = specs_.find(name);
  LAMINAR_CHECK(spec != specs_.end()) << "Flag not defined: " << name;
  return spec->second.default_value;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string Flags::Usage() const {
  std::string out = "Usage: " + program_ + " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name + " (default: " + spec.default_value + ")  " + spec.help + "\n";
  }
  return out;
}

}  // namespace laminar
