// Tiny command-line flag parser for example/bench binaries.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error so typos fail loudly.
#ifndef LAMINAR_SRC_COMMON_FLAGS_H_
#define LAMINAR_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace laminar {

class Flags {
 public:
  // Registers a flag with a default and a help string; returns *this for
  // chaining. Registration must precede Parse().
  Flags& Define(const std::string& name, const std::string& default_value,
                const std::string& help);

  // Parses argv; on `--help` prints usage and returns false (caller should
  // exit 0). Aborts on unknown flags or malformed input.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  std::string Usage() const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::string program_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_FLAGS_H_
