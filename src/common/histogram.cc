#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace laminar {
namespace {

std::string RenderRows(const std::vector<size_t>& counts, size_t total, size_t max_width,
                       const std::vector<std::pair<double, double>>& edges) {
  size_t peak = 0;
  for (size_t c : counts) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    size_t bar = peak == 0 ? 0 : counts[i] * max_width / peak;
    double pct = total == 0 ? 0.0 : 100.0 * static_cast<double>(counts[i]) /
                                        static_cast<double>(total);
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %8zu %5.1f%% ", edges[i].first,
                  edges[i].second, counts[i], pct);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {
  LAMINAR_CHECK(hi > lo);
  LAMINAR_CHECK(num_buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x > hi_) {
    ++overflow_;
    return;
  }
  // The top edge is closed: a sample exactly equal to `hi` (a latency hitting
  // its configured cap, say) lands in the last bucket instead of overflow.
  size_t i = static_cast<size_t>((x - lo_) / width_);
  i = std::min(i, counts_.size() - 1);
  ++counts_[i];
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::BucketHigh(size_t i) const { return BucketLow(i) + width_; }

std::string Histogram::ToAscii(size_t max_width) const {
  std::vector<std::pair<double, double>> edges;
  for (size_t i = 0; i < counts_.size(); ++i) {
    edges.emplace_back(BucketLow(i), BucketHigh(i));
  }
  return RenderRows(counts_, total_, max_width, edges);
}

LogHistogram::LogHistogram(double lo, double growth, size_t num_buckets)
    : lo_(lo), growth_(growth), counts_(num_buckets, 0) {
  LAMINAR_CHECK(lo > 0.0);
  LAMINAR_CHECK(growth > 1.0);
  LAMINAR_CHECK(num_buckets > 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  // Same closed top edge as Histogram: only samples strictly above the last
  // bucket's upper bound overflow. The index is clamped rather than compared
  // in log space, where rounding can push a boundary sample out of range.
  if (x > BucketHigh(counts_.size() - 1)) {
    ++overflow_;
    return;
  }
  double idx = std::log(x / lo_) / std::log(growth_);
  size_t i = std::min(static_cast<size_t>(idx), counts_.size() - 1);
  ++counts_[i];
}

double LogHistogram::BucketLow(size_t i) const {
  return lo_ * std::pow(growth_, static_cast<double>(i));
}

double LogHistogram::BucketHigh(size_t i) const { return BucketLow(i) * growth_; }

std::string LogHistogram::ToAscii(size_t max_width) const {
  std::vector<std::pair<double, double>> edges;
  for (size_t i = 0; i < counts_.size(); ++i) {
    edges.emplace_back(BucketLow(i), BucketHigh(i));
  }
  return RenderRows(counts_, total_, max_width, edges);
}

}  // namespace laminar
