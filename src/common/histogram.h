// Fixed- and log-bucketed histograms for distribution reporting.
#ifndef LAMINAR_SRC_COMMON_HISTOGRAM_H_
#define LAMINAR_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace laminar {

// Histogram over [lo, hi) with `num_buckets` equal-width buckets plus
// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double x);

  size_t total_count() const { return total_; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  const std::vector<size_t>& buckets() const { return counts_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

  // Renders an ASCII bar chart, one row per non-empty bucket.
  std::string ToAscii(size_t max_width = 50) const;

  // Snapshot adoption (src/snapshot): restores the bucket counts of an
  // already-constructed histogram; the shape (lo/hi/num_buckets) comes from
  // construction and must match.
  void AdoptCounts(std::vector<size_t> counts, size_t underflow, size_t overflow,
                   size_t total) {
    counts_ = std::move(counts);
    underflow_ = underflow;
    overflow_ = overflow;
    total_ = total;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

// Histogram with exponentially growing bucket edges: [lo, lo*g), [lo*g, lo*g^2)...
// Useful for long-tailed quantities like trajectory lengths and latencies.
class LogHistogram {
 public:
  LogHistogram(double lo, double growth, size_t num_buckets);

  void Add(double x);

  size_t total_count() const { return total_; }
  const std::vector<size_t>& buckets() const { return counts_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double growth_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_HISTOGRAM_H_
