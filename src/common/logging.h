// Minimal logging and invariant-checking facilities.
//
// The simulator is single-threaded, so no synchronization is needed. Log
// verbosity is a process-wide level; benches default to kWarning so their
// table output stays clean, tests and examples may raise it.
#ifndef LAMINAR_SRC_COMMON_LOGGING_H_
#define LAMINAR_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace laminar {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Sets/gets the process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: streams one log record and aborts on kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace laminar

#define LAMINAR_LOG(level)                                                                 \
  if (::laminar::LogLevel::level < ::laminar::GetLogLevel()) {                             \
  } else                                                                                   \
    ::laminar::LogMessage(::laminar::LogLevel::level, __FILE__, __LINE__).stream()

// Invariant check: always on (simulation correctness depends on it), aborts
// with file/line and the failed expression text.
#define LAMINAR_CHECK(cond)                                                                \
  if (cond) {                                                                              \
  } else                                                                                   \
    ::laminar::LogMessage(::laminar::LogLevel::kFatal, __FILE__, __LINE__).stream()        \
        << "Check failed: " #cond " "

#define LAMINAR_CHECK_GE(a, b) LAMINAR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMINAR_CHECK_GT(a, b) LAMINAR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMINAR_CHECK_LE(a, b) LAMINAR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMINAR_CHECK_LT(a, b) LAMINAR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMINAR_CHECK_EQ(a, b) LAMINAR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMINAR_CHECK_NE(a, b) LAMINAR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // LAMINAR_SRC_COMMON_LOGGING_H_
