#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

uint64_t HashCombine(uint64_t seed, std::string_view name) {
  // FNV-1a over the seed bytes followed by the name bytes.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<uint8_t>(seed >> (8 * i)));
  }
  for (char c : name) {
    mix(static_cast<uint8_t>(c));
  }
  // Avoid the all-zero seed, which weakens mt19937_64 initialization.
  return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

Rng Rng::Fork(std::string_view name) const { return Rng(HashCombine(seed_, name)); }

double Rng::Uniform() {
  return std::generate_canonical<double, std::numeric_limits<double>::digits>(engine_);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LAMINAR_CHECK(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  LAMINAR_CHECK(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::Pareto(double x_min, double alpha) {
  LAMINAR_CHECK(x_min > 0.0 && alpha > 0.0);
  double u = Uniform();
  // Guard against u == 0, which would yield infinity.
  if (u <= 0.0) {
    u = std::numeric_limits<double>::min();
  }
  return x_min / std::pow(u, 1.0 / alpha);
}

void Rng::Snapshot(SnapshotTx& tx) {
  uint64_t d = engine_.draws;
  tx.U64("seed", &seed_);
  tx.U64("draws", &d);
  if (tx.adopting()) {
    engine_.inner.seed(seed_);
    engine_.inner.discard(static_cast<unsigned long long>(d));
    engine_.draws = d;
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  LAMINAR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  LAMINAR_CHECK(total > 0.0);
  double pick = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace laminar
