// Deterministic random-number generation.
//
// Every stochastic component in the simulator draws from its own named Rng
// stream, split from a single root seed. This guarantees that (a) two runs
// with the same configuration produce bit-identical event traces, and (b)
// adding a new consumer of randomness to one component does not perturb the
// draws seen by any other component.
#ifndef LAMINAR_SRC_COMMON_RNG_H_
#define LAMINAR_SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace laminar {

class SnapshotTx;

// A seeded random stream with the distribution helpers the simulator needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives a child stream whose seed is a hash of this stream's seed and
  // `name`. Children are independent of draws made on the parent.
  Rng Fork(std::string_view name) const;

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  bool Bernoulli(double p);
  double Normal(double mean, double stddev);
  // Log-normal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma);
  double Exponential(double rate);
  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_min, double alpha);
  // Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  uint64_t NextU64() { return engine_(); }

  uint64_t seed() const { return seed_; }
  // Raw engine invocations since construction/restore. Every distribution
  // helper builds its std::* distribution fresh per call, so (seed, draws)
  // is the COMPLETE stream state: re-seeding and discarding `draws` values
  // reproduces the stream exactly.
  uint64_t draws() const { return engine_.draws; }

  // Snapshots the stream as (seed, draws); in adopt mode re-seeds the
  // engine and fast-forwards it (src/snapshot/snapshot.h).
  void Snapshot(SnapshotTx& tx);

 private:
  // mt19937_64 with a draw counter; distributions see a normal URBG.
  struct CountingEngine {
    using result_type = std::mt19937_64::result_type;
    explicit CountingEngine(uint64_t seed) : inner(seed) {}
    static constexpr result_type min() { return std::mt19937_64::min(); }
    static constexpr result_type max() { return std::mt19937_64::max(); }
    result_type operator()() {
      ++draws;
      return inner();
    }
    std::mt19937_64 inner;
    uint64_t draws = 0;
  };

  CountingEngine engine_;
  uint64_t seed_ = 0;
};

// Stable 64-bit FNV-1a hash used for stream splitting.
uint64_t HashCombine(uint64_t seed, std::string_view name);

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_RNG_H_
