#include "src/common/sim_time.h"

#include <cstdio>

namespace laminar {

std::string SimTime::ToString() const {
  char buf[64];
  if (!is_finite()) {
    return "+inf";
  }
  if (seconds_ >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2fh", seconds_ / 3600.0);
  } else if (seconds_ >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fm", seconds_ / 60.0);
  } else if (seconds_ >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds_);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", seconds_ * 1e3);
  }
  return buf;
}

}  // namespace laminar
