// Simulated-time types used throughout Laminar.
//
// Simulation time is a double count of seconds wrapped in a strong type so it
// cannot be confused with byte counts, token counts, or other doubles. Event
// ordering ties at equal times are broken by the event queue's insertion
// sequence (see sim/event_queue.h), so exact floating-point equality between
// events is harmless.
#ifndef LAMINAR_SRC_COMMON_SIM_TIME_H_
#define LAMINAR_SRC_COMMON_SIM_TIME_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace laminar {

// A point in simulated time, measured in seconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  static constexpr SimTime Zero() { return SimTime(0.0); }
  static constexpr SimTime Max() { return SimTime(std::numeric_limits<double>::infinity()); }

  constexpr double seconds() const { return seconds_; }
  constexpr bool is_finite() const { return std::isfinite(seconds_); }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(double delta_seconds) const {
    return SimTime(seconds_ + delta_seconds);
  }
  constexpr SimTime operator-(double delta_seconds) const {
    return SimTime(seconds_ - delta_seconds);
  }
  // Elapsed seconds between two time points.
  constexpr double operator-(SimTime other) const { return seconds_ - other.seconds_; }

  SimTime& operator+=(double delta_seconds) {
    seconds_ += delta_seconds;
    return *this;
  }

  std::string ToString() const;

 private:
  double seconds_ = 0.0;
};

// Convenience duration constructors (all return plain seconds as double).
constexpr double Seconds(double s) { return s; }
constexpr double Milliseconds(double ms) { return ms * 1e-3; }
constexpr double Microseconds(double us) { return us * 1e-6; }
constexpr double Minutes(double m) { return m * 60.0; }
constexpr double Hours(double h) { return h * 3600.0; }

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_SIM_TIME_H_
