#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s;
}

double SampleSet::min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::Quantile(double q) const {
  LAMINAR_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double TimeSeries::MeanInWindow(SimTime lo, SimTime hi) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= lo && p.time < hi) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<TimePoint> TimeSeries::Resample(double bucket_seconds) const {
  std::vector<TimePoint> out;
  if (points_.empty() || bucket_seconds <= 0.0) {
    return out;
  }
  double end = points_.back().time.seconds();
  size_t idx = 0;
  double carry = 0.0;
  for (double t = 0.0; t <= end + bucket_seconds; t += bucket_seconds) {
    double sum = 0.0;
    size_t n = 0;
    while (idx < points_.size() && points_[idx].time.seconds() < t + bucket_seconds) {
      sum += points_[idx].value;
      ++n;
      ++idx;
    }
    double v = n == 0 ? carry : sum / static_cast<double>(n);
    carry = v;
    out.push_back({SimTime(t), v});
    if (idx >= points_.size()) {
      break;
    }
  }
  return out;
}

void SampleSet::Snapshot(SnapshotTx& tx) {
  tx.F64Vec("samples", &samples_);
  tx.Bool("sorted", &sorted_);
}

void TimeSeries::Snapshot(SnapshotTx& tx) {
  // Packed as parallel (times, values) double vectors so the record count
  // stays fixed regardless of series length.
  std::vector<double> times(points_.size());
  std::vector<double> values(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    times[i] = points_[i].time.seconds();
    values[i] = points_[i].value;
  }
  tx.F64Vec("times", &times);
  tx.F64Vec("values", &values);
  if (tx.adopting() && times.size() == values.size()) {
    points_.resize(times.size());
    for (size_t i = 0; i < times.size(); ++i) {
      points_[i] = {SimTime(times[i]), values[i]};
    }
  }
}

void StepIntegrator::Snapshot(SnapshotTx& tx) {
  tx.F64("value", &value_);
  tx.F64("integral", &integral_);
  double start = start_.seconds();
  double last = last_time_.seconds();
  tx.F64("start", &start);
  tx.F64("last_time", &last);
  tx.Bool("started", &started_);
  if (tx.adopting()) {
    start_ = SimTime(start);
    last_time_ = SimTime(last);
  }
}

void StepIntegrator::Set(SimTime t, double value) {
  if (!started_) {
    start_ = t;
    last_time_ = t;
    started_ = true;
  }
  LAMINAR_CHECK(t >= last_time_);
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double StepIntegrator::IntegralUntil(SimTime t) const {
  if (!started_ || t <= start_) {
    return 0.0;
  }
  LAMINAR_CHECK(t >= last_time_);
  return integral_ + value_ * (t - last_time_);
}

double StepIntegrator::AverageUntil(SimTime t) const {
  if (!started_ || t <= start_) {
    return value_;
  }
  LAMINAR_CHECK(t >= last_time_);
  double total = integral_ + value_ * (t - last_time_);
  return total / (t - start_);
}

}  // namespace laminar
