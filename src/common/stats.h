// Streaming and sample-based statistics used by the metrics collectors.
#ifndef LAMINAR_SRC_COMMON_STATS_H_
#define LAMINAR_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace laminar {

class SnapshotTx;

// Welford-style streaming statistics live in src/trace/metrics.h
// (StreamingStat) as part of the metrics registry; this header keeps only the
// sample- and time-series containers.

// Stores all samples; supports exact quantiles. Suitable for the volumes the
// simulator produces (millions of doubles at most).
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  // Quantile via linear interpolation between order statistics, q in [0, 1].
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }
  void Clear() { samples_.clear(); sorted_ = true; }

  // Serializes/verifies/adopts the raw sample vector and sort flag
  // (src/snapshot/snapshot.h). The in-place EnsureSorted ordering is itself
  // deterministic, so raw bytes are a stable witness.
  void Snapshot(SnapshotTx& tx);
  // Packed-codec path (metrics registry): the raw flag alongside samples(),
  // and wholesale replacement with the serialized order + sort flag.
  bool raw_sorted() const { return sorted_; }
  void AdoptRaw(std::vector<double> samples, bool sorted) {
    samples_ = std::move(samples);
    sorted_ = sorted;
  }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// A (time, value) series, e.g. throughput over the course of a run.
struct TimePoint {
  SimTime time;
  double value = 0.0;
};

class TimeSeries {
 public:
  void Add(SimTime t, double value) { points_.push_back({t, value}); }
  const std::vector<TimePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Mean of values whose time lies in [lo, hi). Returns 0 if none.
  double MeanInWindow(SimTime lo, SimTime hi) const;
  // Resamples onto fixed buckets of width `bucket_seconds`, averaging values
  // per bucket; empty buckets carry the previous bucket's value.
  std::vector<TimePoint> Resample(double bucket_seconds) const;

  void Snapshot(SnapshotTx& tx);

 private:
  std::vector<TimePoint> points_;
};

// Utilization integrator: accumulates the time integral of a step function
// (e.g. busy GPUs or KVCache occupancy) so averages over a window are exact.
class StepIntegrator {
 public:
  explicit StepIntegrator(double initial_value = 0.0) : value_(initial_value) {}

  // Records that the tracked quantity changed to `value` at time `t`.
  void Set(SimTime t, double value);
  double current() const { return value_; }
  // Time-weighted average of the quantity over [start, t]; `t` must be >= the
  // last Set() time.
  double AverageUntil(SimTime t) const;
  // Time integral of the quantity over [start, t]; `t` must be >= the last
  // Set() time. Differences of this give exact windowed averages.
  double IntegralUntil(SimTime t) const;
  SimTime last_change() const { return last_time_; }

  void Snapshot(SnapshotTx& tx);

 private:
  double value_ = 0.0;
  double integral_ = 0.0;
  SimTime start_ = SimTime::Zero();
  SimTime last_time_ = SimTime::Zero();
  bool started_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_STATS_H_
