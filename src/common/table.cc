#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"

namespace laminar {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  LAMINAR_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  std::string digits = buf;
  bool negative = !digits.empty() && digits[0] == '-';
  std::string body = negative ? digits.substr(1) : digits;
  std::string out;
  int count = 0;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return negative ? "-" + out : out;
}

std::string Table::Factor(double v, int precision) { return Num(v, precision) + "x"; }

std::string Table::Pct(double v, int precision) { return Num(v * 100.0, precision) + "%"; }

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out += ',';
      }
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out;
}

void Table::Print() const { std::printf("%s", ToString().c_str()); }

}  // namespace laminar
