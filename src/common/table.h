// Aligned-column table printer used by the benchmark harnesses to emit the
// paper's tables and figure series.
#ifndef LAMINAR_SRC_COMMON_TABLE_H_
#define LAMINAR_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace laminar {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; it must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);
  // Formats with thousands separators, no decimals.
  static std::string Int(double v);
  // "1.23x" style factors.
  static std::string Factor(double v, int precision = 2);
  // "12.3%" style percentages (v is a fraction, 0.123 -> "12.3%").
  static std::string Pct(double v, int precision = 1);

  // Renders with padded columns and a header underline.
  std::string ToString() const;
  // Renders as CSV (no padding).
  std::string ToCsv() const;
  // Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_TABLE_H_
