#include "src/common/thread_budget.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace laminar {
namespace {

std::atomic<int>& Pool() {
  static std::atomic<int> pool{
      std::max(0, static_cast<int>(std::thread::hardware_concurrency()) - 1)};
  return pool;
}

}  // namespace

int ThreadBudget::Acquire(int want) {
  if (want <= 0) {
    return 0;
  }
  std::atomic<int>& pool = Pool();
  int have = pool.load(std::memory_order_relaxed);
  for (;;) {
    int grant = std::min(want, have);
    if (grant <= 0) {
      return 0;
    }
    if (pool.compare_exchange_weak(have, have - grant, std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void ThreadBudget::Release(int count) {
  if (count > 0) {
    Pool().fetch_add(count, std::memory_order_relaxed);
  }
}

int ThreadBudget::Available() { return Pool().load(std::memory_order_relaxed); }

void ThreadBudget::ResetForTest(int total) {
  Pool().store(total, std::memory_order_relaxed);
}

}  // namespace laminar
