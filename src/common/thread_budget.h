// Process-wide worker-thread budget shared by the sweep runner's run-level
// parallelism and the sharded simulator's window workers.
//
// Both layers want "as many threads as there are spare cores", but nesting
// them naively oversubscribes: a sweep running R configs in parallel, each
// with S shard workers, would spawn R*S threads on a machine with far fewer
// cores. The budget is a simple atomic pool initialized to
// hardware_concurrency - 1 (the caller's own thread is not counted):
// acquire takes up to `want` threads, release returns them. Layers that
// start first get the cores; inner layers degrade gracefully to zero extra
// workers (inline execution) instead of thrashing.
#ifndef LAMINAR_SRC_COMMON_THREAD_BUDGET_H_
#define LAMINAR_SRC_COMMON_THREAD_BUDGET_H_

namespace laminar {

class ThreadBudget {
 public:
  // Takes up to `want` worker threads from the pool; returns how many were
  // granted (possibly 0). Pass the grant to Release() when done.
  static int Acquire(int want);
  static void Release(int count);

  // Remaining budget right now (for tests and diagnostics).
  static int Available();

  // Overrides the pool size (tests). Resets outstanding grants.
  static void ResetForTest(int total);
};

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_THREAD_BUDGET_H_
