// Byte/throughput unit helpers.
#ifndef LAMINAR_SRC_COMMON_UNITS_H_
#define LAMINAR_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace laminar {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

constexpr double GiB(double n) { return n * kGiB; }
constexpr double MiB(double n) { return n * kMiB; }

// Decimal units, used for network rates quoted in the paper (e.g. 400 Gbps).
constexpr double kGB = 1e9;
constexpr double GB(double n) { return n * kGB; }
// Converts gigabits-per-second to bytes-per-second.
constexpr double Gbps(double n) { return n * 1e9 / 8.0; }

// TFLOP/s to FLOP/s.
constexpr double Tflops(double n) { return n * 1e12; }

}  // namespace laminar

#endif  // LAMINAR_SRC_COMMON_UNITS_H_
