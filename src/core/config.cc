#include "src/core/config.h"

#include <cstdio>

#include "src/common/logging.h"

namespace laminar {

std::string RlSystemConfig::Label() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s/%s/%dgpu", SystemKindName(system),
                ModelScaleName(scale), TaskKindName(task), total_gpus);
  return buf;
}

Placement RlSystemConfig::ResolvePlacement() const {
  if (train_gpus > 0 && rollout_gpus > 0) {
    Placement p;
    p.system = system;
    p.scale = scale;
    p.total_gpus = total_gpus;
    p.train_gpus = train_gpus;
    p.rollout_gpus = rollout_gpus;
    p.colocated = system == SystemKind::kVerlSync;
    return p;
  }
  return GetPaperPlacement(system, scale, total_gpus);
}

}  // namespace laminar
