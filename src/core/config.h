// Experiment configuration and result report shared by every system driver.
#ifndef LAMINAR_SRC_CORE_CONFIG_H_
#define LAMINAR_SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "src/cluster/hardware.h"
#include "src/cluster/placement.h"
#include "src/common/stats.h"
#include "src/fault/fault_process.h"
#include "src/policy/policy.h"
#include "src/trace/trace.h"
#include "src/trainer/trainer.h"
#include "src/workload/generator.h"
#include "src/workload/serving_traffic.h"

namespace laminar {

enum class SamplerKind { kFifo, kFreshness, kStalenessCapped };

// Recovery strategy for a run handed a warm-start blob (restore_from).
// kDirect boots straight off the blob: adopt every component, re-mint the
// event heap, resume — O(1) of the prefix. kReplay is the legacy
// replay-anchored path kept as a differential oracle: re-execute the prefix
// from t=0 and verify the re-reached barrier state field-by-field against
// the blob before continuing.
enum class RestoreMode { kDirect, kReplay };

struct RlSystemConfig {
  SystemKind system = SystemKind::kLaminar;
  ModelScale scale = ModelScale::k7B;
  TaskKind task = TaskKind::kMathReasoning;
  int total_gpus = 16;
  // When zero, train/rollout GPUs come from the paper's Table 2.
  int train_gpus = 0;
  int rollout_gpus = 0;

  // RL settings (paper §8 "Settings" and Table 3).
  int global_batch = 8192;
  int group_size = 16;
  int num_minibatches = 16;
  RlAlgorithm algorithm = RlAlgorithm::kGrpo;
  // Per-rollout concurrency cap (1024 throughput runs / 256 convergence).
  int max_concurrency = 1024;
  // Trajectories per replica assignment cycle; 0 = auto (global batch spread
  // over the replicas, clamped to max_concurrency).
  int per_replica_batch = 0;
  // Completed-but-unconsumed trajectory cap before generation throttles
  // (asynchronous systems); 0 = auto (2 global batches).
  int64_t backlog_cap = 0;
  SamplerKind sampler = SamplerKind::kFifo;
  int staleness_cap = 4;  // for SamplerKind::kStalenessCapped

  // Laminar knobs.
  bool repack_enabled = true;
  double repack_period_seconds = 5.0;
  bool repack_static_threshold = false;  // ablation detector
  int repack_static_threshold_requests = 8;
  // Appendix-C extension: graft partial rollout onto Laminar — in-flight
  // trajectories adopt each new version as soon as their local relay has it,
  // paying KV recomputation and producing mixed-version trajectories.
  bool laminar_partial_rollout = false;

  // Workload knobs.
  bool length_drift = false;

  // Online serving tier (Laminar system only, DESIGN.md §14): diurnal
  // request arrivals with per-request SLO deadlines, admitted into the
  // rollout replicas ahead of training work. Default off — a disabled tier
  // is byte-invisible in every report, trace and fingerprint.
  ServingTrafficConfig serving;

  // Chaos engine (Laminar system only). When enabled, a seeded FaultProcess
  // generates a Poisson fault schedule over the run and the injector fires it
  // against machines, relays, replicas and the trainer. `chaos` rates default
  // to zero — callers pick which fault classes to arm.
  bool chaos_enabled = false;
  uint64_t chaos_seed = 0;
  FaultProcessConfig chaos;
  // System-wide invariant auditing (independent of chaos_enabled, but chaos
  // runs should always arm it).
  bool invariants_enabled = false;
  double invariant_sweep_period_seconds = 10.0;
  int invariant_max_inherent_staleness = 0;  // 0 = unchecked

  // Per-trajectory ledger capture (src/verify differential oracles): when
  // enabled, every experience-buffer push is recorded and the ledger is
  // attached to the SystemReport.
  bool ledger_enabled = false;

  // verl colocation switch cost between generation and training phases.
  double colocate_switch_seconds = 6.0;

  // Structured tracing (src/trace). When enabled, the driver owns a
  // TraceSink, every subsystem emits into it, and the captured buffer is
  // attached to the SystemReport.
  TraceConfig trace;

  // Parallel DES (DESIGN.md §12): number of event-queue shards the replica
  // population is partitioned into. 1 = the classic serial engine; N > 1
  // runs conservative lookahead windows with byte-identical results.
  int shards = 1;
  // Worker threads for window execution: -1 = take from the process-wide
  // ThreadBudget, 0 = run lanes inline on the coordinator, N = exactly N.
  int shard_workers = -1;
  // Cross-shard lookahead horizon in (undilated) simulated seconds;
  // 0 = derive per lane from the decode-step times of the replicas mapped
  // onto each lane, floored by the machine's alpha-beta control latency
  // (DESIGN.md §12). An explicit value wins everywhere: one global bound,
  // no topology derivation.
  double shard_lookahead_seconds = 0.0;
  // Lane-riding control traffic (DESIGN.md §12): classified lane-local
  // control events (relay pull completions, machine stall thaws) ride their
  // machine's replica lane instead of fencing shard windows on lane 0.
  // Results are byte-identical either way — the fuzzer's lane-control twin
  // holds this false and demands an unmoved fingerprint.
  bool shard_lane_control = true;

  // Snapshot / restore (src/snapshot, DESIGN.md §13). When
  // snapshot_at_seconds > 0 the driver pauses the run at the first event
  // boundary at or past this time — a shard-window barrier when sharded, so
  // serial and sharded runs capture the identical state — serializes every
  // stateful component into an LMSNAP1 witness and attaches it to the
  // report. snapshot_verify, when set, additionally verifies the live state
  // field-by-field against the given blob at that same barrier and reports
  // any mismatches (the fuzzer's restore/shard-invariance oracle).
  double snapshot_at_seconds = 0.0;
  std::shared_ptr<const std::string> snapshot_verify;
  // Direct-boot restore: when set, Run() builds the system, adopts every
  // component's state from this LMSNAP1 blob, re-mints the pending event heap
  // through the continuation registry and resumes — without replaying the
  // pre-barrier prefix. The restored run must be byte-identical (fingerprint,
  // trace, ledger, re-snapshot blob) to a run that replayed from t=0. The
  // blob must carry a complete event heap (heap_complete; the Laminar driver
  // guarantees it) and, if tracing is on, full-capture mode.
  std::shared_ptr<const std::string> restore_from;
  // How the run recovers from restore_from. kDirect (the default) adopts the
  // blob and resumes in O(1) of the prefix. kReplay keeps the legacy
  // replay-anchored path alive as a differential oracle: cold-start, replay
  // the prefix from t=0 to the blob's barrier, verify the re-reached state
  // field-by-field against the blob (mismatches land in the report), then
  // continue. Both modes must land on byte-identical fingerprints and
  // barrier blobs; the fuzzer's snapshot-diff oracle holds them to that.
  RestoreMode restore_mode = RestoreMode::kDirect;

  // Metamorphic scaling knob: multiplies every hardware rate (GPU FLOPs, HBM,
  // NVLink/PCIe/RDMA bandwidths) by this factor and every fixed latency or
  // period by its inverse, producing a run that is exactly the baseline with
  // the time axis compressed by 1/hardware_speed. Power-of-two values scale
  // IEEE doubles exactly, which the property tests rely on.
  double hardware_speed = 1.0;

  // Run control. The paper warms up 10 iterations and measures 5; the
  // simulator defaults are smaller so full sweeps stay cheap, and tests for
  // determinism use exact seeds.
  int warmup_iterations = 2;
  int measure_iterations = 3;
  double max_sim_seconds = 200000.0;
  double sample_period_seconds = 10.0;
  uint64_t seed = 42;

  std::string Label() const;
  Placement ResolvePlacement() const;
};

// One experience-buffer push, recorded when RlSystemConfig::ledger_enabled.
// The workload generator draws trajectory specs from seed-forked streams in
// issue (id) order, so two runs sharing a config seed — regardless of system
// kind, repack decisions or scheduling — must agree on the spec-derived
// fields of every id they both complete. That is the basis of the verify
// module's differential oracles. generation_version is timing-dependent and
// recorded for diagnostics only.
struct LedgerEntry {
  int64_t id = -1;         // TrajId
  int64_t prompt_id = -1;
  int group_index = 0;
  int64_t total_tokens = 0;  // spec context tokens (prompt + decode + feedback)
  int num_segments = 0;
  int generation_version = 0;
};

struct RunLedger {
  int64_t prompts_issued = 0;
  int64_t trajectories_issued = 0;
  int64_t trajectories_consumed = 0;
  // Sampled for iterations a trainer failure aborted (checkpoint recovery
  // re-samples, so these count toward consumed but toward no iteration).
  int64_t trajectories_discarded = 0;
  std::vector<LedgerEntry> pushes;  // in buffer-push order
};

struct SystemReport {
  std::string label;
  SystemKind system = SystemKind::kLaminar;
  int total_gpus = 0;
  int train_gpus = 0;
  int rollout_gpus = 0;
  int num_replicas = 0;

  // Headline metric: (prompt+response) tokens per global batch divided by
  // the RL iteration duration, averaged over the measured iterations.
  double throughput_tokens_per_sec = 0.0;
  double mean_iteration_seconds = 0.0;
  int iterations_completed = 0;

  // Breakdown (meaningful for lockstep systems).
  double generation_fraction = 0.0;
  double train_fraction = 0.0;

  // Staleness.
  double mean_consume_staleness = 0.0;
  double max_consume_staleness = 0.0;
  double mean_inherent_staleness = 0.0;
  double max_inherent_staleness = 0.0;
  double mixed_version_fraction = 0.0;

  // Weight synchronization.
  double actor_stall_mean_seconds = 0.0;
  double rollout_wait_mean_seconds = 0.0;
  double rollout_wait_best_seconds = 0.0;
  double rollout_wait_p99_seconds = 0.0;

  // Rollout engine.
  double avg_kv_utilization = 0.0;
  double avg_decode_batch = 0.0;
  double rollout_busy_fraction = 0.0;
  double mean_traj_seconds = 0.0;
  double max_traj_seconds = 0.0;

  // Rollout engine aggregates.
  int64_t total_decode_tokens = 0;
  int64_t total_prefill_tokens = 0;
  int64_t total_preemptions = 0;

  // Repack.
  int64_t repack_events = 0;
  int64_t repack_sources_released = 0;
  int64_t repack_trajectories_migrated = 0;
  double repack_overhead_mean_seconds = 0.0;

  // Convergence.
  double final_eval_reward = 0.0;
  TimeSeries reward_series;       // eval reward vs wall-clock
  TimeSeries train_reward_series; // batch mean reward vs wall-clock

  // Timelines (Figures 15/16).
  TimeSeries generation_rate;  // decode tokens/s sampled periodically
  TimeSeries training_rate;    // consumed tokens/s per iteration
  TimeSeries buffer_depth;     // experience-buffer size sampled periodically

  // Figure 10: (finish time, inherent staleness) pairs.
  std::vector<std::pair<double, int>> staleness_samples;

  // Chaos / robustness (populated by the Laminar driver when armed).
  int64_t faults_injected = 0;
  int64_t slow_events = 0;
  int64_t slow_recoveries = 0;
  int64_t duplicates_suppressed = 0;
  int64_t trajectories_dropped = 0;
  int64_t invariant_checks = 0;
  int64_t invariant_violations = 0;

  // Online serving tier (populated only when RlSystemConfig::serving.enabled;
  // with the tier off none of these reach the report CSV or fingerprint).
  bool serving_enabled = false;
  int64_t serving_requests = 0;        // arrivals delivered to the manager
  int64_t serving_admitted = 0;        // placed onto a replica (first time)
  int64_t serving_rejected = 0;        // SLO infeasible at admission
  int64_t serving_completed = 0;
  int64_t serving_timed_out = 0;       // expired while queued
  int64_t serving_failed = 0;          // lost to a machine failure
  int64_t serving_deadline_hits = 0;   // completions within deadline
  int64_t serving_deadline_misses = 0; // completions past deadline
  int64_t serving_preemptions = 0;     // rollout works evicted for serving
  int64_t serving_inflight_at_end = 0; // queued + resident when the run ended
  double serving_latency_mean_seconds = 0.0;
  double serving_latency_p50_seconds = 0.0;
  double serving_latency_p99_seconds = 0.0;
  // deadline_hits / (completed + timed_out + failed); 0 when no request
  // reached a terminal state.
  double serving_slo_attainment = 0.0;

  // Bookkeeping.
  std::vector<IterationStats> iterations;
  uint64_t simulated_events = 0;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;

  // Captured trace (null unless RlSystemConfig::trace.enabled). Shared so
  // reports stay cheaply copyable.
  std::shared_ptr<const TraceBuffer> trace;

  // Push ledger (null unless RlSystemConfig::ledger_enabled).
  std::shared_ptr<const RunLedger> ledger;

  // Snapshot witness (null unless RlSystemConfig::snapshot_at_seconds > 0
  // and the run reached it). `snapshot_taken_at_seconds` is the event
  // boundary the capture landed on; `snapshot_mismatches` holds the verify
  // diff against RlSystemConfig::snapshot_verify (empty = byte-identical).
  std::shared_ptr<const std::string> snapshot;
  double snapshot_taken_at_seconds = 0.0;
  std::vector<std::string> snapshot_mismatches;

  // Direct-boot restore diagnostics (RlSystemConfig::restore_from). The
  // adoption wall-clock (parse + adopt + re-mint, excluding the post-boot
  // simulation) and the re-snapshot taken at the boot barrier — which must be
  // byte-identical to the blob the run booted from.
  double restore_wall_seconds = 0.0;
  bool restored = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_CONFIG_H_
