#include "src/core/driver_base.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/fault/invariants.h"
#include "src/llm/model_spec.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace laminar {

namespace {
constexpr int32_t kDriverComp = ContinuationComponentId(kContFamilyDriver);

// The barrier time a blob was captured at: the first "now" field in the
// stream is driver/sim/now (SnapshotComponents always begins with the
// simulator section). Used by replay-anchored recovery to know where to
// pause and verify.
double SnapshotBarrierSeconds(const std::string& blob) {
  SnapshotReader reader;
  std::string error;
  LAMINAR_CHECK(reader.Parse(blob, &error)) << "restore_from blob: " << error;
  for (const SnapshotRecord& r : reader.records()) {
    if (r.kind == SnapshotRecordKind::kF64 && r.name == "now") {
      return SnapshotBitsF64(r.u64);
    }
  }
  LAMINAR_CHECK(false) << "restore_from blob carries no sim clock";
  return 0.0;
}
}  // namespace

DriverBase::~DriverBase() { sim_.continuations().Unregister(kDriverComp); }

void DriverBase::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  (void)p;
  LAMINAR_CHECK_EQ(kind, kContRateTick);
  rate_task_->Fire();
}

void DriverBase::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                     SimTime at) {
  (void)p;
  LAMINAR_CHECK_EQ(kind, kContRateTick);
  LAMINAR_CHECK(rate_task_ != nullptr)
      << "pending rate tick restored before Run() created the task";
  rate_task_->RestorePending(at);
}

DriverBase::DriverBase(RlSystemConfig config)
    : cfg_(std::move(config)), placement_(cfg_.ResolvePlacement()),
      model_(ModelForScale(cfg_.scale)), root_rng_(cfg_.seed),
      score_rng_(root_rng_.Fork("score")) {
  sim_.continuations().Register(kDriverComp, this);
  rollout_tp_ = RolloutTensorParallel(cfg_.system, cfg_.scale);

  if (cfg_.trace.enabled) {
    trace_sink_ = std::make_unique<TraceSink>(&sim_, cfg_.trace);
    sim_.set_trace(trace_sink_.get());
  }

  if (cfg_.hardware_speed != 1.0) {
    LAMINAR_CHECK_GT(cfg_.hardware_speed, 0.0);
    // Exact time dilation: every rate gains a factor k, every fixed latency
    // or period loses one. Subsystem Setup() methods scale their own
    // hard-coded constants via TimeScale().
    double k = cfg_.hardware_speed;
    double inv = 1.0 / k;
    machine_spec_.gpu.hbm_bandwidth *= k;
    machine_spec_.gpu.peak_flops_bf16 *= k;
    machine_spec_.nvlink_bandwidth *= k;
    machine_spec_.pcie_bandwidth *= k;
    machine_spec_.rdma_total_bandwidth *= k;
    machine_spec_.rdma_flow_bandwidth *= k;
    machine_spec_.rdma_startup_latency *= inv;
    machine_spec_.gpu.host_overhead_scale *= inv;
    cfg_.repack_period_seconds *= inv;
    cfg_.colocate_switch_seconds *= inv;
    cfg_.invariant_sweep_period_seconds *= inv;
    cfg_.sample_period_seconds *= inv;
    cfg_.max_sim_seconds *= inv;
    cfg_.shard_lookahead_seconds *= inv;
    cfg_.snapshot_at_seconds *= inv;
  }

  if (cfg_.shards > 1) {
    ShardOptions so;
    so.num_shards = cfg_.shards;
    so.num_workers = cfg_.shard_workers;
    // The horizon must stay below the earliest consequence any staged
    // callback can schedule. The binding floor across the systems is the
    // decode model's minimum step latency (every AssignWork lands at least
    // one prefill+step ahead); relay pulls, redirect backoffs and train
    // steps are orders of magnitude above it. Halving leaves slack, and the
    // engine's frontier/cross-shard checks turn any miscalibration into a
    // hard failure rather than silent divergence. This global scalar is the
    // boot-time horizon; once the fleet is built, Run() replaces it with
    // topology-derived per-lane horizons (full minimum step latency of the
    // replicas actually mapped onto each lane) unless an explicit
    // shard_lookahead_seconds override pins the global bound.
    so.lookahead_seconds =
        cfg_.shard_lookahead_seconds > 0.0
            ? cfg_.shard_lookahead_seconds
            : 0.5 * DecodeModel(model_, machine_spec_, rollout_tp_)
                        .StepLatency(1, 0.0);
    so.min_parallel_lanes = 2;  // a one-lane window beats serial by nothing
    so.lane_control = cfg_.shard_lane_control;
    sim_.ConfigureShards(so);
    sim_.set_window_time_cap(cfg_.max_sim_seconds);
    lane_step_floor_.assign(cfg_.shards,
                            std::numeric_limits<double>::infinity());
  }

  WorkloadConfig wl;
  wl.task = cfg_.task;
  wl.scale = cfg_.scale;
  wl.length_drift = cfg_.length_drift;
  wl.time_scale = TimeScale();
  prompts_ = std::make_unique<PromptPool>(
      WorkloadGenerator(wl, root_rng_.Fork("workload")), cfg_.group_size,
      root_rng_.Fork("prompts"));

  std::unique_ptr<SamplerPolicy> sampler;
  switch (cfg_.sampler) {
    case SamplerKind::kFifo:
      sampler = MakeFifoSampler();
      break;
    case SamplerKind::kFreshness:
      sampler = MakeFreshnessSampler();
      break;
    case SamplerKind::kStalenessCapped:
      sampler = MakeStalenessCappedSampler(cfg_.staleness_cap);
      break;
  }
  buffer_ = std::make_unique<ExperienceBuffer>(std::move(sampler));

  PolicyConfig pc;
  policy_ = std::make_unique<Policy>(pc);
}

int DriverBase::NumRolloutMachines() const {
  int gpus = placement_.colocated ? placement_.total_gpus : placement_.rollout_gpus;
  return (gpus + machine_spec_.gpus_per_machine - 1) / machine_spec_.gpus_per_machine;
}

int DriverBase::ResolvedPerReplicaBatch(int num_replicas) const {
  (void)num_replicas;
  int per = cfg_.per_replica_batch > 0 ? cfg_.per_replica_batch : cfg_.max_concurrency;
  // Whole GRPO groups only.
  per = per / cfg_.group_size * cfg_.group_size;
  return std::max(per, cfg_.group_size);
}

int64_t DriverBase::ResolvedBacklogCap() const {
  return cfg_.backlog_cap > 0 ? cfg_.backlog_cap : 2LL * cfg_.global_batch;
}

int DriverBase::RooflineBound() const {
  DecodeModel decode(model_, machine_spec_, rollout_tp_);
  double avg_ctx = prompts_->generator().ExpectedTotalTokens() * 0.6;
  int bound = decode.RooflineBatchBound(avg_ctx, 1.5);
  return std::clamp(bound, 8, cfg_.max_concurrency);
}

void DriverBase::BuildReplicas(int num_replicas, int tensor_parallel, int machine_offset,
                               double gpu_memory_utilization) {
  LAMINAR_CHECK_GT(num_replicas, 0);
  DecodeModel decode(model_, machine_spec_, tensor_parallel);
  double kv_capacity = decode.KvCapacityTokens(gpu_memory_utilization);
  for (int i = 0; i < num_replicas; ++i) {
    ReplicaConfig rc;
    rc.id = i;
    rc.machine = machine_offset +
                 i * tensor_parallel / machine_spec_.gpus_per_machine;
    if (cfg_.shards > 1) {
      // Machine affinity: replicas sharing a machine land on one lane, so a
      // machine failure's replica sweep never spans lanes mid-window.
      rc.shard = sim_.AffinityShard(rc.machine);
      // Track the minimum decode-step latency per lane for the
      // topology-derived lookahead horizons Run() installs after Setup().
      double step = decode.StepLatency(1, 0.0);
      double& floor = lane_step_floor_[rc.shard - 1];
      floor = std::min(floor, step);
    }
    rc.max_concurrency = cfg_.max_concurrency;
    rc.kv_transfer_bandwidth = machine_spec_.rdma_flow_bandwidth;
    rc.migration_fixed_overhead *= TimeScale();
    auto replica = std::make_unique<RolloutReplica>(&sim_, rc, decode, kv_capacity);
    replica_ptrs_.push_back(replica.get());
    replicas_.push_back(std::move(replica));
  }
}

int DriverBase::MegatronPipelineParallel() const {
  // Appendix A.2: Megatron PP sizes per model scale (1 / 2 / 4).
  switch (cfg_.scale) {
    case ModelScale::k7B:
      return 1;
    case ModelScale::k32B:
      return 2;
    case ModelScale::k72B:
      return 4;
  }
  return 1;
}

void DriverBase::BuildTrainer(TrainerMode mode, bool auto_continue, TrainBackend backend) {
  int pp = backend == TrainBackend::kMegatron ? MegatronPipelineParallel() : 1;
  train_cost_ = std::make_unique<TrainCostModel>(model_, machine_spec_.gpu,
                                                 placement_.train_gpus, backend, pp);
  if (cfg_.algorithm == RlAlgorithm::kDecoupledPpo) {
    // Decoupled PPO evaluates a third log-prob set (the proximal policy) on
    // top of the reference and behaviour forwards.
    train_cost_->set_flops_multiplier(1.2);
  }
  TrainerConfig tc;
  tc.global_batch = cfg_.global_batch;
  tc.num_minibatches = cfg_.num_minibatches;
  tc.mode = mode;
  tc.algorithm = cfg_.algorithm;
  tc.auto_continue = auto_continue;
  trainer_ = std::make_unique<Trainer>(&sim_, tc, *train_cost_, buffer_.get(), policy_.get());
  trainer_->set_on_iteration([this](const IterationStats& stats) {
    LAMINAR_TRACE_INSTANT(&sim_, TraceComponent::kDriver, "driver/iteration",
                          -1, static_cast<int64_t>(trainer_->iterations().size()));
    double duration = stats.completed - prev_iteration_end_;
    prev_iteration_end_ = stats.completed;
    if (duration > 0.0) {
      train_rate_.Add(stats.completed, stats.tokens / duration);
    }
    reward_series_.Add(stats.completed, policy_->EvalExpectedReward());
    train_reward_series_.Add(stats.completed, stats.mean_reward);
    OnIteration(stats);
  });
}

void DriverBase::WireCompletion() {
  for (RolloutReplica* r : replica_ptrs_) {
    // Both callbacks fire from replica events, which execute inside shard
    // windows when the simulator is sharded. They touch cross-replica state
    // (pool, buffer, RNG, trainer), so inside a window they are staged for
    // serial replay at the barrier; the InShardWindow guard keeps the serial
    // path free of the capture copy and the std::function allocation.
    r->set_on_progress([this](const TrajectoryWork& work, int replica_id) {
      if (IsServingId(work.record.id)) {
        return;  // serving work is never checkpointed into the pool
      }
      if (sim_.InShardWindow()) {
        // Snapshot: the replica keeps mutating `work` after this event, and
        // the replay must see the state the serial callback would have seen.
        sim_.RunOrStage([this, work, replica_id] {
          partial_pool_.Update(work, replica_id);
        });
      } else {
        partial_pool_.Update(work, replica_id);
      }
    });
    r->set_on_complete([this](TrajectoryRecord record) {
      if (sim_.InShardWindow()) {
        sim_.RunOrStage([this, record = std::move(record)]() mutable {
          OnTrajectoryComplete(std::move(record));
        });
      } else {
        OnTrajectoryComplete(std::move(record));
      }
    });
  }
}

void DriverBase::OnTrajectoryComplete(TrajectoryRecord record) {
  // Serving requests never touch the training data path: no pool entry, no
  // score-RNG draw, no buffer push. Route them to the manager's SLO
  // bookkeeping before any training side effect. (The pool gate below would
  // also resize its dense terminal bitmap to the 2^40 serving-id range.)
  if (IsServingId(record.id)) {
    if (serving_complete_fn_) {
      serving_complete_fn_(std::move(record));
    }
    return;
  }
  // Exactly-once gate: a duplicate completion (a stale clone racing its
  // migrated twin) must be suppressed before ANY side effect — scoring
  // consumes the shared score RNG stream, so even a scored-then-discarded
  // duplicate would perturb every later trajectory's reward.
  if (!partial_pool_.MarkCompleted(record.id)) {
    LAMINAR_TRACE_INSTANT(&sim_, TraceComponent::kData, "data/duplicate_suppressed",
                          -1, static_cast<int64_t>(record.id));
    return;
  }
  record.finish_actor_version = trainer_ ? trainer_->version() : 0;
  policy_->ScoreTrajectory(record, score_rng_);
  if (staleness_samples_.size() < 500000) {
    staleness_samples_.emplace_back(record.finished.seconds(),
                                    record.inherent_staleness());
  }
  inherent_staleness_all_.Add(static_cast<double>(record.inherent_staleness()));
  traj_durations_.Add(record.finished - record.created);
  if (invariant_checker_ != nullptr) {
    invariant_checker_->ObserveBufferPush(record);
  }
  if (cfg_.ledger_enabled) {
    ledger_.pushes.push_back({record.id, record.prompt_id, record.group_index,
                              record.spec.total_context_tokens(),
                              record.spec.num_turns(), record.generation_version()});
  }
  buffer_->Push(std::move(record));
  LAMINAR_TRACE_COUNTER(&sim_, TraceComponent::kData, "data/buffer_depth", -1,
                        static_cast<double>(buffer_->size()));
  trainer_->NotifyData();
}

std::vector<TrajectoryWork> DriverBase::MakeWorkBatch(int num_trajectories,
                                                      int weight_version) {
  std::vector<TrajectoryRecord> records = prompts_->NextBatch(num_trajectories, weight_version);
  std::vector<TrajectoryWork> works;
  works.reserve(records.size());
  for (TrajectoryRecord& rec : records) {
    rec.created = sim_.Now();
    TrajectoryWork w;
    w.record = std::move(rec);
    w.InitContext();
    works.push_back(std::move(w));
  }
  return works;
}

std::vector<std::vector<TrajectoryWork>> DriverBase::MakeGlobalBatchChunks(
    int weight_version) {
  int num_replicas = static_cast<int>(replica_ptrs_.size());
  std::vector<TrajectoryWork> all = MakeWorkBatch(cfg_.global_batch, weight_version);
  std::vector<std::vector<TrajectoryWork>> chunks(num_replicas);
  // Deal whole groups round-robin, mirroring verl's static DP sharding.
  int num_groups = cfg_.global_batch / cfg_.group_size;
  for (int g = 0; g < num_groups; ++g) {
    int target = g % num_replicas;
    for (int k = 0; k < cfg_.group_size; ++k) {
      chunks[target].push_back(std::move(all[g * cfg_.group_size + k]));
    }
  }
  return chunks;
}

double DriverBase::GlobalSyncSeconds() const {
  GlobalSyncModel sync;
  sync.weight_bytes = model_.weight_bytes();
  sync.base_bandwidth *= cfg_.hardware_speed;
  sync.barrier_overhead *= TimeScale();
  return sync.SyncSeconds(placement_.total_gpus);
}

void DriverBase::SampleRates() {
  int64_t total = 0;
  for (const RolloutReplica* r : replica_ptrs_) {
    total += r->metrics().decode_tokens;
  }
  double dt = sim_.Now() - last_rate_sample_;
  if (dt > 0.0) {
    double rate = static_cast<double>(total - last_gen_tokens_) / dt;
    gen_rate_.Add(sim_.Now(), rate);
    LAMINAR_TRACE_COUNTER(&sim_, TraceComponent::kDriver, "driver/gen_rate", -1, rate);
  }
  last_gen_tokens_ = total;
  last_rate_sample_ = sim_.Now();
  buffer_depth_.Add(sim_.Now(), static_cast<double>(buffer_->size()));
}

SystemReport DriverBase::Run() {
  auto wall_start = std::chrono::steady_clock::now();
  Setup();
  LAMINAR_CHECK(!replica_ptrs_.empty());
  LAMINAR_CHECK(trainer_ != nullptr);
  if (cfg_.shards > 1 && cfg_.shard_lookahead_seconds <= 0.0) {
    // Topology-derived per-lane horizons (DESIGN.md §12): the earliest
    // externally visible consequence of any replica-lane event is new work
    // landing on another machine — a prefill (one full weight read, never
    // faster than a minimum decode step) followed by the first decode step
    // (a second weight read). Each lane's horizon is therefore twice the
    // minimum decode-step latency of the replicas actually mapped onto it,
    // floored by the alpha-beta control latency. Lanes that somehow hold no
    // replica keep the boot-time global scalar's conservatism. An explicit
    // shard_lookahead_seconds override skips this and keeps the pure global
    // bound. LAMINAR_LOOKAHEAD_SCALE recalibrates the derived horizons for
    // slack experiments — the engine's cross-shard and frontier checks turn
    // an over-wide horizon into a hard failure, never silent divergence.
    double fallback = 0.5 * DecodeModel(model_, machine_spec_, rollout_tp_)
                                .StepLatency(1, 0.0);
    double control_floor = machine_spec_.control_latency_floor();
    double scale = 1.0;
    if (const char* env = std::getenv("LAMINAR_LOOKAHEAD_SCALE")) {
      scale = std::atof(env);
      LAMINAR_CHECK_GT(scale, 0.0) << "LAMINAR_LOOKAHEAD_SCALE must be > 0";
    }
    std::vector<double> lanes(static_cast<size_t>(cfg_.shards), fallback);
    for (int s = 0; s < cfg_.shards; ++s) {
      if (std::isfinite(lane_step_floor_[s])) {
        lanes[static_cast<size_t>(s)] =
            std::max(control_floor, 2.0 * lane_step_floor_[s] * scale);
      }
    }
    sim_.SetLaneLookahead(lanes);
  }
  WireCompletion();
  rate_task_ = std::make_unique<PeriodicTask>(&sim_, cfg_.sample_period_seconds,
                                              kDriverComp, kContRateTick,
                                              [this] { SampleRates(); });
  if (restoring()) {
    // Direct boot: adopt every component's state from the blob, re-mint the
    // pending event heap, and resume. Begin() never runs — the adopted
    // running flags and re-minted periodic ticks carry the whole schedule.
    auto restore_start = std::chrono::steady_clock::now();
    AdoptSnapshot(*cfg_.restore_from);
    restore_wall_seconds_ = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - restore_start)
                                .count();
    // Boot-barrier re-snapshot: no event has executed since adoption, so
    // this blob must be byte-identical to the one the run booted from — the
    // restore oracle's cheapest equivalence check. It is also what a later
    // VerifySnapshot diff (cfg_.snapshot_verify) runs against.
    snapshot_blob_ = TakeSnapshot();
    snapshot_taken_at_ = sim_.Now().seconds();
    if (cfg_.snapshot_verify != nullptr) {
      snapshot_mismatches_ = VerifySnapshot(*cfg_.snapshot_verify);
    }
  } else {
    rate_task_->Start();
    last_rate_sample_ = sim_.Now();
    prev_iteration_end_ = sim_.Now();
    Begin();
  }

  int target = cfg_.warmup_iterations + cfg_.measure_iterations;
  auto stop = [&] {
    return static_cast<int>(trainer_->iterations().size()) >= target ||
           sim_.Now().seconds() > cfg_.max_sim_seconds;
  };
  bool done = true;
  double snap_at = cfg_.snapshot_at_seconds;
  std::shared_ptr<const std::string> verify_blob = cfg_.snapshot_verify;
  if (replay_restoring()) {
    // Replay-anchored recovery: the barrier time and the reference state both
    // come from the warm-start blob itself.
    snap_at = SnapshotBarrierSeconds(*cfg_.restore_from);
    verify_blob = cfg_.restore_from;
  }
  if (snap_at > 0.0 && !restoring()) {
    // Pre-snapshot segment: stop after the first event at or past snap_at.
    // When sharded, cap lookahead windows just below the snapshot time so no
    // event at or beyond it ever executes inside a window — the run reaches
    // the barrier on the identical event boundary the serial engine stops
    // on, and the captured state is shard-count-invariant.
    if (cfg_.shards > 1) {
      sim_.set_window_time_cap(std::nextafter(snap_at, 0.0));
    }
    done = sim_.RunUntilTrue([&] { return stop() || sim_.Now().seconds() >= snap_at; });
    if (cfg_.shards > 1) {
      sim_.set_window_time_cap(cfg_.max_sim_seconds);
    }
    if (!stop()) {
      snapshot_blob_ = TakeSnapshot();
      snapshot_taken_at_ = sim_.Now().seconds();
      if (replay_restoring()) {
        // Replay recovery "cost": everything from process start to the
        // barrier — the prefix re-execution IS the restore, so this scales
        // with barrier time where direct boot does not.
        restore_wall_seconds_ = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - wall_start)
                                    .count();
      }
      if (verify_blob != nullptr) {
        snapshot_mismatches_ = VerifySnapshot(*verify_blob);
      }
    }
  }
  if (done && !stop()) {
    done = sim_.RunUntilTrue(stop);
  }
  if (!done) {
    LAMINAR_LOG(kWarning) << cfg_.Label() << ": simulation drained before " << target
                          << " iterations (" << trainer_->iterations().size()
                          << " completed)";
  }
  rate_task_->Stop();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return AssembleReport(wall);
}

SystemReport DriverBase::AssembleReport(double wall_seconds) {
  SystemReport rep;
  rep.label = cfg_.Label();
  rep.system = cfg_.system;
  rep.total_gpus = placement_.total_gpus;
  rep.train_gpus = placement_.train_gpus;
  rep.rollout_gpus = placement_.rollout_gpus;
  rep.num_replicas = static_cast<int>(replica_ptrs_.size());
  rep.iterations = trainer_->iterations();
  rep.iterations_completed = static_cast<int>(rep.iterations.size());
  rep.simulated_events = sim_.executed_events();
  rep.simulated_seconds = sim_.Now().seconds();
  rep.wall_seconds = wall_seconds;

  // Throughput over measured iterations (duration between consecutive actor
  // update completions).
  size_t first = static_cast<size_t>(cfg_.warmup_iterations);
  double tokens = 0.0;
  double duration = 0.0;
  for (size_t i = first; i < rep.iterations.size(); ++i) {
    SimTime prev_end = i == 0 ? SimTime::Zero() : rep.iterations[i - 1].completed;
    tokens += rep.iterations[i].tokens;
    duration += rep.iterations[i].completed - prev_end;
  }
  if (duration > 0.0) {
    rep.throughput_tokens_per_sec = tokens / duration;
    rep.mean_iteration_seconds =
        duration / static_cast<double>(rep.iterations.size() - first);
  }

  double phase_total =
      generation_phase_seconds_ + training_phase_seconds_ + other_phase_seconds_;
  if (phase_total > 0.0) {
    rep.generation_fraction = generation_phase_seconds_ / phase_total;
    rep.train_fraction = training_phase_seconds_ / phase_total;
  }

  const SampleSet& consume = trainer_->consume_staleness();
  if (!consume.empty()) {
    rep.mean_consume_staleness = consume.mean();
    rep.max_consume_staleness = consume.max();
  }
  if (!inherent_staleness_all_.empty()) {
    rep.mean_inherent_staleness = inherent_staleness_all_.mean();
    rep.max_inherent_staleness = inherent_staleness_all_.max();
  }
  double mixed = 0.0;
  for (const IterationStats& it : rep.iterations) {
    mixed += it.mixed_version_fraction;
  }
  if (!rep.iterations.empty()) {
    rep.mixed_version_fraction = mixed / static_cast<double>(rep.iterations.size());
  }

  if (!actor_stall_seconds_.empty()) {
    rep.actor_stall_mean_seconds = actor_stall_seconds_.mean();
  }
  if (!rollout_wait_seconds_.empty()) {
    rep.rollout_wait_mean_seconds = rollout_wait_seconds_.mean();
    rep.rollout_wait_best_seconds = rollout_wait_seconds_.min();
    rep.rollout_wait_p99_seconds = rollout_wait_seconds_.Quantile(0.99);
  }

  double kv_sum = 0.0;
  double batch_sum = 0.0;
  double busy_sum = 0.0;
  for (const RolloutReplica* r : replica_ptrs_) {
    kv_sum += r->metrics().kv_used_tokens.AverageUntil(sim_.Now()) / r->kv_capacity_tokens();
    batch_sum += r->metrics().batch_size.AverageUntil(sim_.Now());
    busy_sum += r->metrics().busy.AverageUntil(sim_.Now());
    rep.total_decode_tokens += r->metrics().decode_tokens;
    rep.total_prefill_tokens += r->metrics().prefill_tokens;
    rep.total_preemptions += r->metrics().preemptions;
  }
  double n_rep = static_cast<double>(replica_ptrs_.size());
  rep.avg_kv_utilization = kv_sum / n_rep;
  rep.avg_decode_batch = batch_sum / n_rep;
  rep.rollout_busy_fraction = busy_sum / n_rep;
  if (!traj_durations_.empty()) {
    rep.mean_traj_seconds = traj_durations_.mean();
    rep.max_traj_seconds = traj_durations_.max();
  }

  rep.final_eval_reward = policy_->EvalExpectedReward();
  rep.reward_series = reward_series_;
  rep.train_reward_series = train_reward_series_;
  rep.generation_rate = gen_rate_;
  rep.training_rate = train_rate_;
  rep.buffer_depth = buffer_depth_;
  rep.staleness_samples = staleness_samples_;

  if (trace_sink_ != nullptr) {
    rep.trace = trace_sink_->shared_buffer();
  }
  if (cfg_.ledger_enabled) {
    ledger_.prompts_issued = prompts_->prompts_issued();
    ledger_.trajectories_issued = prompts_->trajectories_issued();
    ledger_.trajectories_consumed = buffer_->total_sampled();
    ledger_.trajectories_discarded = trainer_->trajectories_discarded();
    rep.ledger = std::make_shared<RunLedger>(std::move(ledger_));
  }
  if (!snapshot_blob_.empty()) {
    rep.snapshot = std::make_shared<const std::string>(std::move(snapshot_blob_));
    rep.snapshot_taken_at_seconds = snapshot_taken_at_;
    rep.snapshot_mismatches = std::move(snapshot_mismatches_);
  }
  rep.restored = cfg_.restore_from != nullptr;
  rep.restore_wall_seconds = restore_wall_seconds_;

  Finalize(rep);
  return rep;
}

void DriverBase::AdoptSnapshot(const std::string& blob) {
  SnapshotReader reader;
  std::string error;
  LAMINAR_CHECK(reader.Parse(blob, &error)) << "restore_from blob: " << error;
  SnapshotTx tx(&reader, SnapshotMode::kAdopt);
  SnapshotComponents(tx);
  LAMINAR_CHECK(tx.mismatches().empty())
      << "direct-boot adoption walked a different field sequence than the "
         "blob; first: "
      << tx.mismatches().front();
  sim_.RemintRestoredEvents();
}

std::string DriverBase::TakeSnapshot() {
  SnapshotWriter writer;
  SnapshotTx tx(&writer);
  SnapshotComponents(tx);
  return writer.Finish();
}

std::vector<std::string> DriverBase::VerifySnapshot(const std::string& blob) {
  SnapshotReader reader;
  std::string error;
  if (!reader.Parse(blob, &error)) {
    return {"snapshot parse failed: " + error};
  }
  SnapshotTx tx(&reader, SnapshotMode::kVerify);
  SnapshotComponents(tx);
  return tx.mismatches();
}

void DriverBase::SnapshotComponents(SnapshotTx& tx) {
  tx.Begin("driver");
  sim_.Snapshot(tx);
  tx.Begin("root_rng");
  root_rng_.Snapshot(tx);
  tx.End();
  tx.Begin("score_rng");
  score_rng_.Snapshot(tx);
  tx.End();
  prompts_->Snapshot(tx);
  partial_pool_.Snapshot(tx);
  buffer_->Snapshot(tx);
  trainer_->Snapshot(tx);
  tx.DigestU64("replicas", replica_ptrs_.size());
  for (RolloutReplica* r : replica_ptrs_) {
    r->SnapshotState(tx);
  }
  tx.Begin("driver_stats");
  tx.Begin("traj_durations");
  traj_durations_.Snapshot(tx);
  tx.End();
  tx.Begin("inherent_staleness_all");
  inherent_staleness_all_.Snapshot(tx);
  tx.End();
  tx.Begin("rollout_wait_seconds");
  rollout_wait_seconds_.Snapshot(tx);
  tx.End();
  tx.Begin("actor_stall_seconds");
  actor_stall_seconds_.Snapshot(tx);
  tx.End();
  tx.Begin("gen_rate");
  gen_rate_.Snapshot(tx);
  tx.End();
  tx.Begin("train_rate");
  train_rate_.Snapshot(tx);
  tx.End();
  tx.Begin("buffer_depth");
  buffer_depth_.Snapshot(tx);
  tx.End();
  tx.Begin("reward_series");
  reward_series_.Snapshot(tx);
  tx.End();
  tx.Begin("train_reward_series");
  train_reward_series_.Snapshot(tx);
  tx.End();
  SnapshotPacked(
      tx, "staleness_samples",
      [this](ByteSink& s) {
        s.U64(staleness_samples_.size());
        for (const auto& [t, staleness] : staleness_samples_) {
          s.F64(t);
          s.I64(staleness);
        }
      },
      [this](ByteSource& s) {
        staleness_samples_.clear();
        uint64_t n = s.U64();
        staleness_samples_.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n; ++i) {
          double t = s.F64();
          int staleness = static_cast<int>(s.I64());
          staleness_samples_.emplace_back(t, staleness);
        }
      });
  tx.I64("last_gen_tokens", &last_gen_tokens_);
  SnapshotPacked(
      tx, "rate_clock",
      [this](ByteSink& s) {
        s.Time(last_rate_sample_);
        s.Time(prev_iteration_end_);
        s.F64(generation_phase_seconds_);
        s.F64(training_phase_seconds_);
        s.F64(other_phase_seconds_);
      },
      [this](ByteSource& s) {
        last_rate_sample_ = s.Time();
        prev_iteration_end_ = s.Time();
        generation_phase_seconds_ = s.F64();
        training_phase_seconds_ = s.F64();
        other_phase_seconds_ = s.F64();
      });
  if (cfg_.ledger_enabled) {
    SnapshotPacked(
        tx, "ledger",
        [this](ByteSink& s) {
          s.U64(ledger_.pushes.size());
          for (const LedgerEntry& e : ledger_.pushes) {
            s.I64(e.id);
            s.I64(e.prompt_id);
            s.I32(e.group_index);
            s.I64(e.total_tokens);
            s.I32(e.num_segments);
            s.I32(e.generation_version);
          }
        },
        [this](ByteSource& s) {
          ledger_.pushes.clear();
          uint64_t n = s.U64();
          ledger_.pushes.reserve(static_cast<size_t>(n));
          for (uint64_t i = 0; i < n; ++i) {
            LedgerEntry e;
            e.id = s.I64();
            e.prompt_id = s.I64();
            e.group_index = s.I32();
            e.total_tokens = s.I64();
            e.num_segments = s.I32();
            e.generation_version = s.I32();
            ledger_.pushes.push_back(e);
          }
        });
  }
  if (trace_sink_ != nullptr) {
    // The full binary trace rides in the blob so a direct boot reproduces the
    // whole-run trace hash, not just the post-restore suffix. Ring mode would
    // lose the eviction cursor across the round trip, so direct boot requires
    // full capture; the witness/verify paths accept either.
    if (tx.adopting()) {
      LAMINAR_CHECK_EQ(cfg_.trace.ring_capacity, 0u)
          << "direct-boot restore requires full-capture tracing";
      // Decode straight out of the blob — the trace is the largest section,
      // so skipping the intermediate string copy is a measurable share of
      // restore wall-clock.
      LAMINAR_CHECK(
          TraceFromBinary(tx.BytesView("trace"), trace_sink_->mutable_buffer()))
          << "malformed trace section in restore_from blob";
    } else {
      std::string trace_bytes = TraceToBinary(trace_sink_->buffer());
      tx.Bytes("trace", &trace_bytes);
    }
  }
  tx.End();
  tx.End();
}

}  // namespace laminar
