// Shared infrastructure for the five RL system drivers.
//
// A driver owns one simulated RL post-training job: the cluster, the rollout
// replicas, the data module, the policy and the trainer. Subclasses differ
// only in orchestration — how generation, training and weight synchronization
// depend on each other — which is exactly the paper's comparison axis.
#ifndef LAMINAR_SRC_CORE_DRIVER_BASE_H_
#define LAMINAR_SRC_CORE_DRIVER_BASE_H_

#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/data/experience_buffer.h"
#include "src/data/partial_response_pool.h"
#include "src/data/prompt_pool.h"
#include "src/llm/decode_model.h"
#include "src/llm/train_cost.h"
#include "src/relay/weight_sync.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"
#include "src/trainer/trainer.h"

namespace laminar {

class InvariantChecker;
class SnapshotTx;

class DriverBase : public ContinuationClient {
 public:
  // Continuation kinds owned by the driver itself (kContFamilyDriver). The
  // registry dispatches by virtual call, so a subclass registered under its
  // own component id still receives these through its override and delegates
  // back here — the 0xF000 base keeps driver kinds disjoint from any
  // subclass's kind space.
  enum Continuation : uint16_t {
    kContRateTick = 0xF000,  // periodic throughput/buffer-depth sampling
  };

  explicit DriverBase(RlSystemConfig config);
  ~DriverBase() override;
  DriverBase(const DriverBase&) = delete;
  DriverBase& operator=(const DriverBase&) = delete;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Builds, runs and reports one experiment. With cfg_.restore_from set the
  // run direct-boots instead: Setup() wires a fresh system, AdoptSnapshot()
  // seats every component's serialized state, the event heap is re-minted
  // through the continuation registry, and the run resumes from the barrier
  // without executing Begin() or replaying the prefix.
  SystemReport Run();

  // Snapshot / restore (src/snapshot, DESIGN.md §13) ----------------------------
  // Serializes every stateful component into one LMSNAP1 blob. Only valid at
  // an event boundary (never from inside a shard window); Run() calls it at
  // the cfg_.snapshot_at_seconds barrier.
  std::string TakeSnapshot();
  // Walks the identical traversal in verify mode against `blob`; returns the
  // field-level mismatches (empty = the live state is byte-identical to the
  // snapshot).
  std::vector<std::string> VerifySnapshot(const std::string& blob);

  Simulator& sim() { return sim_; }
  Trainer& trainer() { return *trainer_; }
  const RlSystemConfig& config() const { return cfg_; }
  const Placement& placement() const { return placement_; }

 protected:
  // System-specific wiring (replicas, relays, publish_fn, callbacks).
  virtual void Setup() = 0;
  // Kicks off generation/training.
  virtual void Begin() = 0;
  // Lets subclasses add their own report fields.
  virtual void Finalize(SystemReport& report) { (void)report; }
  // Called after every trainer iteration (before auto-continue logic).
  virtual void OnIteration(const IterationStats& stats) { (void)stats; }
  // Field enumeration behind TakeSnapshot/VerifySnapshot. The base covers the
  // simulator, RNG streams, data pools, trainer, replicas and the driver's
  // own accumulators; subclasses override to append their subsystems (and
  // must call the base first so traversal order is stable).
  virtual void SnapshotComponents(SnapshotTx& tx);

  // Builders used by Setup() ---------------------------------------------------
  // Creates `num_replicas` rollout replicas of `tensor_parallel` GPUs each;
  // machine ids start at `machine_offset` with 8 GPUs per machine.
  // `gpu_memory_utilization` is the fraction of GPU memory the serving
  // engine may use: ~0.9 disaggregated, much lower when colocated with the
  // training framework (resident FSDP state squeezes the KVCache).
  void BuildReplicas(int num_replicas, int tensor_parallel, int machine_offset = 0,
                     double gpu_memory_utilization = 0.90);
  void BuildTrainer(TrainerMode mode, bool auto_continue, TrainBackend backend);
  int MegatronPipelineParallel() const;
  // Wires completion/progress callbacks on all replicas (score + buffer push).
  void WireCompletion();

  // Creates one global batch of fresh work, split into per-replica chunks of
  // whole GRPO groups (static sharding, as verl-family systems do).
  std::vector<std::vector<TrajectoryWork>> MakeGlobalBatchChunks(int weight_version);
  std::vector<TrajectoryWork> MakeWorkBatch(int num_trajectories, int weight_version);

  // The GPU-direct global synchronization cost for baselines.
  double GlobalSyncSeconds() const;

  int NumRolloutMachines() const;
  int ResolvedPerReplicaBatch(int num_replicas) const;
  int64_t ResolvedBacklogCap() const;
  int RooflineBound() const;

  // Time dilation factor for fixed latencies/periods under
  // cfg_.hardware_speed (1 / hardware_speed). Subsystem Setup() methods
  // multiply their hard-coded time constants by this.
  double TimeScale() const { return 1.0 / cfg_.hardware_speed; }

  // True when this run direct-boots from cfg_.restore_from. Setup() methods
  // must not schedule events (scripted faults, initial pumps) in that case:
  // every pending event comes back from the blob's event_heap section.
  bool restoring() const {
    return cfg_.restore_from != nullptr &&
           cfg_.restore_mode == RestoreMode::kDirect;
  }
  // True when this run recovers from cfg_.restore_from by replaying the
  // prefix (RestoreMode::kReplay). The run cold-starts normally — Setup()
  // schedules everything as usual — then pauses at the blob's barrier to
  // verify the re-reached state against it.
  bool replay_restoring() const {
    return cfg_.restore_from != nullptr &&
           cfg_.restore_mode == RestoreMode::kReplay;
  }

  // Data/state ------------------------------------------------------------------
  RlSystemConfig cfg_;
  Placement placement_;
  Simulator sim_;
  // Owns the capture buffer when cfg_.trace.enabled; armed on sim_ before
  // Setup() so every scheduled callback can emit.
  std::unique_ptr<TraceSink> trace_sink_;
  ModelSpec model_;
  MachineSpec machine_spec_;
  Rng root_rng_;
  Rng score_rng_;
  int rollout_tp_ = 1;
  // Minimum decode-step latency seen per replica lane (entry i = lane i+1),
  // accumulated by BuildReplicas when sharded; +inf for lanes with no
  // replica. Feeds the topology-derived lookahead Run() installs.
  std::vector<double> lane_step_floor_;

  std::unique_ptr<PromptPool> prompts_;
  PartialResponsePool partial_pool_;
  std::unique_ptr<ExperienceBuffer> buffer_;
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<TrainCostModel> train_cost_;
  std::unique_ptr<Trainer> trainer_;
  std::vector<std::unique_ptr<RolloutReplica>> replicas_;
  std::vector<RolloutReplica*> replica_ptrs_;

  // Lockstep drivers report their phase split here (Figure 1b).
  double generation_phase_seconds_ = 0.0;
  double training_phase_seconds_ = 0.0;
  double other_phase_seconds_ = 0.0;

  // Rollout waiting-time samples for systems not using the relay tier.
  SampleSet rollout_wait_seconds_;
  SampleSet actor_stall_seconds_;

  // Armed by subclasses (before WireCompletion runs) when the run should be
  // audited; completions stream buffer pushes to it. Not owned.
  InvariantChecker* invariant_checker_ = nullptr;

  // Online serving completion route (DESIGN.md §14). Serving ids (the
  // kServingIdBase range) are intercepted at the top of OnTrajectoryComplete
  // — before the exactly-once pool gate, scoring, the ledger and the buffer —
  // and handed here instead. Unset when the serving tier is off.
  std::function<void(TrajectoryRecord)> serving_complete_fn_;

 private:
  void SampleRates();
  void OnTrajectoryComplete(TrajectoryRecord record);
  SystemReport AssembleReport(double wall_seconds);
  // Direct-boot adoption: parses `blob`, walks SnapshotComponents in adopt
  // mode so every component seats its serialized state, then re-mints the
  // pending event heap through the continuation registry. CHECK-fails on a
  // malformed blob or a non-reconstructible (closure) heap entry.
  void AdoptSnapshot(const std::string& blob);

  RunLedger ledger_;  // populated only when cfg_.ledger_enabled
  TimeSeries gen_rate_;
  TimeSeries train_rate_;
  TimeSeries buffer_depth_;
  TimeSeries reward_series_;
  TimeSeries train_reward_series_;
  SampleSet traj_durations_;
  std::vector<std::pair<double, int>> staleness_samples_;
  SampleSet inherent_staleness_all_;
  int64_t last_gen_tokens_ = 0;
  SimTime last_rate_sample_;
  SimTime prev_iteration_end_;
  std::unique_ptr<PeriodicTask> rate_task_;
  // Captured at the cfg_.snapshot_at_seconds barrier, attached to the report.
  std::string snapshot_blob_;
  double snapshot_taken_at_ = 0.0;
  std::vector<std::string> snapshot_mismatches_;
  // Direct-boot diagnostics: adoption wall-clock (parse + adopt + re-mint).
  double restore_wall_seconds_ = 0.0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_DRIVER_BASE_H_
