#include "src/core/laminar_system.h"

#include "src/common/logging.h"
#include "src/relay/broadcast_model.h"

namespace laminar {

void LaminarSystem::Setup() {
  LAMINAR_CHECK(!placement_.colocated);
  int num_replicas = placement_.rollout_gpus / rollout_tp_;
  BuildReplicas(num_replicas, rollout_tp_, /*machine_offset=*/0);

  RelayTierConfig relay_cfg;
  relay_cfg.num_relays = NumRolloutMachines();
  relay_cfg.weight_bytes = model_.weight_bytes();
  // The chain uses two of the machine's eight 400 Gbps NICs per hop, which
  // reproduces the paper's <1.6 s broadcast of 72B weights to 127 relays.
  relay_cfg.rdma_bandwidth = 2.0 * machine_spec_.rdma_flow_bandwidth;
  relay_cfg.rdma_startup = machine_spec_.rdma_startup_latency;
  relay_cfg.pcie_bandwidth = machine_spec_.pcie_bandwidth;
  relays_ = std::make_unique<RelayTier>(&sim_, relay_cfg);

  BuildTrainer(TrainerMode::kFullBatch, /*auto_continue=*/true, TrainBackend::kFsdp);

  RolloutManagerConfig mgr_cfg;
  mgr_cfg.repack_enabled = cfg_.repack_enabled;
  mgr_cfg.use_static_threshold = cfg_.repack_static_threshold;
  mgr_cfg.static_threshold_requests = cfg_.repack_static_threshold_requests;
  mgr_cfg.repack_period_seconds = cfg_.repack_period_seconds;
  mgr_cfg.repack.batch_bound = RooflineBound();
  mgr_cfg.per_replica_batch = ResolvedPerReplicaBatch(num_replicas);
  mgr_cfg.backlog_cap = ResolvedBacklogCap();
  manager_ = std::make_unique<RolloutManager>(&sim_, mgr_cfg, replica_ptrs_, relays_.get(),
                                              prompts_.get(), &partial_pool_);
  manager_->set_backlog_fn([this] { return static_cast<int64_t>(buffer_->size()); });
  for (RolloutReplica* r : replica_ptrs_) {
    r->set_on_batch_done([this](RolloutReplica* replica) { manager_->OnBatchDone(replica); });
  }

  // The trainer hands new weights to the master relay (sub-second stall) and
  // keeps training; the broadcast chain propagates in the background. The
  // publish-triggered repack fires once the broadcast has landed on the
  // relays, so the replicas it releases find the new weights already cached.
  BroadcastParams bc;
  bc.message_bytes = relay_cfg.weight_bytes;
  bc.byte_time = 1.0 / relay_cfg.rdma_bandwidth;
  bc.startup_time = relay_cfg.rdma_startup;
  double distribution_delay = relay_cfg.weight_bytes / relay_cfg.actor_push_bandwidth +
                              relay_cfg.reshard_seconds +
                              OptimalBroadcastTime(bc, relay_cfg.num_relays) + 0.1;
  trainer_->set_publish_fn([this, distribution_delay](int version) {
    double stall = relays_->Publish(version);
    sim_.ScheduleAfter(distribution_delay,
                       [this, version] { manager_->OnActorPublish(version); });
    if (cfg_.laminar_partial_rollout) {
      ApplyPartialRollout(version);
    }
    return stall;
  });

  heartbeats_ = std::make_unique<HeartbeatMonitor>(
      &sim_, /*period=*/1.0, /*miss_threshold=*/2,
      [this](int machine) { manager_->OnMachineFailure(machine); });
  for (int m = 0; m < NumRolloutMachines(); ++m) {
    heartbeats_->Register(m);
  }
}

void LaminarSystem::ApplyPartialRollout(int version) {
  // Every replica still generating under an older version switches to the
  // new weights as soon as its local relay can serve them: the in-flight
  // trajectories continue (mixed-version) after a full KV recomputation.
  for (RolloutReplica* r : replica_ptrs_) {
    if (r->phase() != ReplicaPhase::kGenerating || r->weight_version() >= version) {
      continue;
    }
    int machine = r->config().machine;
    int tp = r->decode_model().tensor_parallel();
    relays_->PullLatest(machine, tp, r->weight_version(), [r](int got, double /*wait*/) {
      if (r->phase() == ReplicaPhase::kGenerating && r->weight_version() < got) {
        r->Pause();
        r->Resume(got, /*recompute_kv=*/true);
      }
    });
  }
}

void LaminarSystem::Begin() {
  heartbeats_->Start();
  manager_->Start();
  trainer_->Start();
}

void LaminarSystem::Finalize(SystemReport& report) {
  const SampleSet& pulls = relays_->pull_wait_seconds();
  if (!pulls.empty()) {
    report.rollout_wait_mean_seconds = pulls.mean();
    report.rollout_wait_best_seconds = pulls.min();
    report.rollout_wait_p99_seconds = pulls.Quantile(0.99);
  }
  if (!relays_->actor_stall_seconds().empty()) {
    report.actor_stall_mean_seconds = relays_->actor_stall_seconds().mean();
  }
  const RolloutManagerStats& ms = manager_->stats();
  report.repack_events = ms.repack_events;
  report.repack_sources_released = ms.sources_released;
  report.repack_trajectories_migrated = ms.trajectories_migrated;
  if (!ms.repack_overhead_seconds.empty()) {
    report.repack_overhead_mean_seconds = ms.repack_overhead_seconds.mean();
  }
}

}  // namespace laminar
