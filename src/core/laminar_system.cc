#include "src/core/laminar_system.h"

#include "src/common/logging.h"
#include "src/relay/broadcast_model.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"

namespace laminar {

namespace {
constexpr int32_t kSystemComp = ContinuationComponentId(kContFamilySystem);
}  // namespace

LaminarSystem::~LaminarSystem() { sim_.continuations().Unregister(kSystemComp); }

void LaminarSystem::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  switch (kind) {
    case kContActorPublish:
      manager_->OnActorPublish(static_cast<int>(p.a));
      return;
    case kContHeartbeatRevive:
      OnHeartbeatRevive(static_cast<int>(p.a));
      return;
    case kContRelayRestart:
      OnRelayRestartFire(static_cast<int>(p.a));
      return;
    case kContSpeedRestore:
      OnSpeedRestore(static_cast<int>(p.a));
      return;
    case kContServingArrival:
      OnServingArrivalFire();
      return;
    case kContInvariantSweep:
      invariant_sweep_->Fire();
      return;
    case kContRefreshPull:
      OnRefreshPull(static_cast<int>(p.a), static_cast<int>(p.c));
      return;
  }
  // Driver-owned kinds (disjoint 0xF000+ range) arrive through this override
  // too, because the registry dispatches virtually on the shared object.
  DriverBase::RunContinuation(kind, p);
}

void LaminarSystem::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                        SimTime at) {
  switch (kind) {
    case kContActorPublish:
    case kContHeartbeatRevive:
    case kContRelayRestart:
    case kContSpeedRestore:
    case kContServingArrival:
      sim_.ScheduleContinuationAt(at, kSystemComp, kind, p);
      return;
    case kContInvariantSweep:
      LAMINAR_CHECK(invariant_sweep_ != nullptr);
      invariant_sweep_->RestorePending(at);
      return;
    case kContRefreshPull:
      // Only ever fires synchronously through a relay pull ticket; it can
      // never be parked on the event heap.
      LAMINAR_CHECK(false) << "kContRefreshPull cannot be pending on the heap";
      return;
  }
  DriverBase::RestoreContinuation(kind, p, at);
}

void LaminarSystem::Setup() {
  LAMINAR_CHECK(!placement_.colocated);
  sim_.continuations().Register(kSystemComp, this);
  int num_replicas = placement_.rollout_gpus / rollout_tp_;
  BuildReplicas(num_replicas, rollout_tp_, /*machine_offset=*/0);

  RelayTierConfig relay_cfg;
  relay_cfg.num_relays = NumRolloutMachines();
  relay_cfg.weight_bytes = model_.weight_bytes();
  // The chain uses two of the machine's eight 400 Gbps NICs per hop, which
  // reproduces the paper's <1.6 s broadcast of 72B weights to 127 relays.
  relay_cfg.rdma_bandwidth = 2.0 * machine_spec_.rdma_flow_bandwidth;
  relay_cfg.rdma_startup = machine_spec_.rdma_startup_latency;
  relay_cfg.pcie_bandwidth = machine_spec_.pcie_bandwidth;
  // hardware_speed dilation: rates scale up, fixed latencies/periods scale
  // down (machine_spec_ rates were already scaled by DriverBase).
  relay_cfg.actor_push_bandwidth *= cfg_.hardware_speed;
  relay_cfg.reshard_seconds *= TimeScale();
  relay_cfg.rebuild_seconds *= TimeScale();
  relay_cfg.master_elect_seconds *= TimeScale();
  relay_cfg.hop_timeout_guard *= TimeScale();
  relay_cfg.master_elect_backoff_cap_seconds *= TimeScale();
  relay_cfg.election_stability_window_seconds *= TimeScale();
  relays_ = std::make_unique<RelayTier>(&sim_, relay_cfg);

  BuildTrainer(TrainerMode::kFullBatch, /*auto_continue=*/true, TrainBackend::kFsdp);

  RolloutManagerConfig mgr_cfg;
  mgr_cfg.repack_enabled = cfg_.repack_enabled;
  mgr_cfg.use_static_threshold = cfg_.repack_static_threshold;
  mgr_cfg.static_threshold_requests = cfg_.repack_static_threshold_requests;
  mgr_cfg.repack_period_seconds = cfg_.repack_period_seconds;
  mgr_cfg.repack.batch_bound = RooflineBound();
  mgr_cfg.per_replica_batch = ResolvedPerReplicaBatch(num_replicas);
  mgr_cfg.backlog_cap = ResolvedBacklogCap();
  mgr_cfg.machine_replacement_seconds *= TimeScale();
  mgr_cfg.replica_init_seconds *= TimeScale();
  mgr_cfg.redirect_backoff_base_seconds *= TimeScale();
  mgr_cfg.redirect_backoff_cap_seconds *= TimeScale();
  if (cfg_.serving.enabled) {
    LAMINAR_CHECK_LT(cfg_.serving.dedicated_replicas, num_replicas);
    mgr_cfg.serving_enabled = true;
    mgr_cfg.serving_dedicated_replicas = cfg_.serving.dedicated_replicas;
    mgr_cfg.serving_retry_period_seconds *= TimeScale();
  }
  manager_ = std::make_unique<RolloutManager>(&sim_, mgr_cfg, replica_ptrs_, relays_.get(),
                                              prompts_.get(), &partial_pool_);
  manager_->set_backlog_fn([this] { return static_cast<int64_t>(buffer_->size()); });
  if (cfg_.serving.enabled) {
    // hardware_speed dilation: the arrival rate is a rate (scales up); the
    // diurnal period, SLO terms and start offset are times (scale down).
    ServingTrafficConfig sc = cfg_.serving;
    sc.base_rate_per_sec *= cfg_.hardware_speed;
    sc.diurnal_period_seconds *= TimeScale();
    sc.start_seconds *= TimeScale();
    sc.slo_base_seconds *= TimeScale();
    sc.slo_per_token_seconds *= TimeScale();
    serving_traffic_ =
        std::make_unique<ServingTrafficGenerator>(sc, root_rng_.Fork("serving"));
    // Completions arrive through the driver's serving intercept (already
    // staged for serial replay under sharding by the on_complete wrapper).
    serving_complete_fn_ = [this](TrajectoryRecord record) {
      manager_->OnServingComplete(record);
    };
  }
  for (RolloutReplica* r : replica_ptrs_) {
    // Fires from a replica event; the manager touches relays, the prompt
    // pool and global stats, so under sharded execution it is staged for
    // serial replay.
    r->set_on_batch_done([this](RolloutReplica* replica) {
      sim_.RunOrStage([this, replica] { manager_->OnBatchDone(replica); });
    });
  }

  // The trainer hands new weights to the master relay (sub-second stall) and
  // keeps training; the broadcast chain propagates in the background. The
  // publish-triggered repack fires once the broadcast has landed on the
  // relays, so the replicas it releases find the new weights already cached.
  BroadcastParams bc;
  bc.message_bytes = relay_cfg.weight_bytes;
  bc.byte_time = 1.0 / relay_cfg.rdma_bandwidth;
  bc.startup_time = relay_cfg.rdma_startup;
  distribution_delay_ = relay_cfg.weight_bytes / relay_cfg.actor_push_bandwidth +
                        relay_cfg.reshard_seconds +
                        OptimalBroadcastTime(bc, relay_cfg.num_relays) +
                        0.1 * TimeScale();
  trainer_->set_publish_fn([this](int version) {
    double stall = relays_->Publish(version);
    sim_.ScheduleContinuationAfter(distribution_delay_, kSystemComp, kContActorPublish,
                                   ContinuationPayload::Of(version));
    if (cfg_.laminar_partial_rollout) {
      ApplyPartialRollout(version);
    }
    return stall;
  });

  heartbeats_ = std::make_unique<HeartbeatMonitor>(
      &sim_, /*period=*/1.0 * TimeScale(), /*miss_threshold=*/2, [this](int machine) {
        manager_->OnMachineFailure(machine);
        // The replacement machine beats again once its engines are up, so a
        // later fault on the same slot is detectable (chaos schedules can
        // hit one machine repeatedly).
        double replaced_in = manager_->config().machine_replacement_seconds +
                             manager_->config().replica_init_seconds;
        sim_.ScheduleContinuationAfter(replaced_in, kSystemComp, kContHeartbeatRevive,
                                       ContinuationPayload::Of(machine));
      });
  for (int m = 0; m < NumRolloutMachines(); ++m) {
    heartbeats_->Register(m);
  }

  // Gray-failure detection: the manager's windowed decode-efficiency probe
  // feeds the monitor's slowness score; a detection quarantines the replica
  // and drains its work, recovery lifts the quarantine.
  for (RolloutReplica* r : replica_ptrs_) {
    heartbeats_->RegisterRateSource(r->config().id);
  }
  manager_->set_rate_observer([this](int replica_id, double efficiency) {
    heartbeats_->ObserveRate(replica_id, efficiency);
  });
  heartbeats_->set_on_slow([this](int replica_id) { manager_->OnReplicaSlow(replica_id); });
  heartbeats_->set_on_slow_recovered(
      [this](int replica_id) { manager_->OnReplicaSlowRecovered(replica_id); });

  // Fault injection: every kind is wired whether or not chaos is enabled, so
  // scripted drills (ScheduleFault) and the seeded Poisson schedule share one
  // path through the system.
  injector_ = std::make_unique<FaultInjector>(&sim_);
  injector_->set_num_machines(NumRolloutMachines());
  injector_->set_num_replicas(static_cast<int>(replica_ptrs_.size()));
  injector_->set_heartbeats(heartbeats_.get());
  injector_->set_on_relay_fault([this](int machine) {
    relays_->KillRelay(machine);
    RestartRelayAfter(machine, cfg_.chaos.relay_restart_seconds);
  });
  injector_->set_on_master_fault([this] {
    int machine = relays_->master();
    relays_->KillRelay(machine);
    RestartRelayAfter(machine, cfg_.chaos.relay_restart_seconds);
  });
  injector_->set_on_trainer_fault([this] {
    trainer_->Kill(cfg_.chaos.trainer_recovery_seconds);
    // The recovered process checkpoints on boot.
    trainer_checkpoint_ = trainer_->Checkpoint();
  });
  injector_->set_on_crash_restart([this](double restart_delay) {
    // A scripted drill can fire before Begin() installed the first
    // checkpoint; an empty blob would fail to parse, so fall back to
    // checkpointing the pristine state on the spot.
    if (trainer_checkpoint_.empty()) {
      trainer_checkpoint_ = trainer_->Checkpoint();
    }
    trainer_->CrashRestart(trainer_checkpoint_, restart_delay);
    trainer_checkpoint_ = trainer_->Checkpoint();
  });
  injector_->set_on_machine_stall([this](int machine, double duration) {
    heartbeats_->Stall(machine, duration);
    manager_->OnMachineStall(machine, duration);
  });
  injector_->set_on_link_flap(
      [this](int machine, double duration) { relays_->FlapLink(machine, duration); });
  injector_->set_on_replica_slow([this](int replica_id, double severity, double duration) {
    RolloutReplica* r = replica_ptrs_[replica_id];
    if (r->phase() == ReplicaPhase::kDead) {
      return;
    }
    r->SetSpeedFactor(severity);
    sim_.ScheduleContinuationAfter(duration, kSystemComp, kContSpeedRestore,
                                   ContinuationPayload::Of(replica_id));
  });
  injector_->set_on_message_drop(
      [this](int machine) { relays_->DropNextArrival(machine); });

  // On a direct boot every unfired fault comes back through the blob's
  // event_heap section; scheduling the script again would double-fire it.
  if (!restoring()) {
    if (cfg_.chaos_enabled) {
      FaultProcessConfig pc = cfg_.chaos;
      if (pc.horizon_seconds <= 0.0) {
        pc.horizon_seconds = cfg_.max_sim_seconds;
      }
      if (pc.num_machines == 0) {
        pc.num_machines = NumRolloutMachines();
      }
      if (pc.num_replicas == 0) {
        pc.num_replicas = static_cast<int>(replica_ptrs_.size());
      }
      injector_->ScheduleAll(FaultProcess(pc).Generate(cfg_.chaos_seed));
    }
    injector_->ScheduleAll(pending_faults_);
  }
  pending_faults_.clear();

  if (cfg_.invariants_enabled) {
    InvariantCheckerConfig ic;
    ic.max_inherent_staleness = cfg_.invariant_max_inherent_staleness;
    invariants_ = std::make_unique<InvariantChecker>(&sim_, ic);
    invariants_->set_issued_fn([this] { return prompts_->trajectories_issued(); });
    invariants_->set_inflight_fn([this] { return manager_->inflight_trajectories(); });
    invariants_->set_pool(&partial_pool_);
    for (RolloutReplica* r : replica_ptrs_) {
      invariants_->AddReplica(r);
    }
    if (cfg_.serving.enabled) {
      invariants_->set_serving_fn([this] {
        ServingStats ss = manager_->serving_stats();
        ServingCounts c;
        c.requests = ss.requests;
        c.rejected = ss.rejected;
        c.queued = ss.queued_now;
        c.resident = ss.resident_now;
        c.completed = ss.completed;
        c.timed_out = ss.timed_out;
        c.failed = ss.failed;
        c.deadline_hits = ss.deadline_hits;
        c.deadline_misses = ss.deadline_misses;
        return c;
      });
    }
    // DriverBase::Run calls Setup before WireCompletion, so arming the
    // pointer here routes every buffer push through the checker.
    invariant_checker_ = invariants_.get();
    invariant_sweep_ = std::make_unique<PeriodicTask>(
        &sim_, cfg_.invariant_sweep_period_seconds, kSystemComp, kContInvariantSweep,
        [this] { invariants_->CheckSweep(); });
  }
}

void LaminarSystem::ScheduleFault(const FaultEvent& event) {
  if (injector_ != nullptr) {
    injector_->Schedule(event);
  } else {
    pending_faults_.push_back(event);
  }
}

void LaminarSystem::RestartRelayAfter(int machine, double delay_seconds) {
  sim_.ScheduleContinuationAfter(delay_seconds, kSystemComp, kContRelayRestart,
                                 ContinuationPayload::Of(machine));
}

void LaminarSystem::OnRelayRestartFire(int machine) {
  // A machine failure may have claimed the relay meanwhile; the replacement
  // machine brings its own relay, so leave revival to that path.
  for (RolloutReplica* r : replica_ptrs_) {
    if (r->config().machine == machine && r->phase() == ReplicaPhase::kDead) {
      return;
    }
  }
  relays_->ReviveRelay(machine);
  // Replicas that were mid-pull when the relay died lost their waiters;
  // re-issue those pulls against the revived relay.
  manager_->OnRelayRestarted(machine);
}

void LaminarSystem::OnHeartbeatRevive(int machine) { heartbeats_->Revive(machine); }

void LaminarSystem::OnSpeedRestore(int replica_id) {
  RolloutReplica* r = replica_ptrs_[replica_id];
  if (r->phase() != ReplicaPhase::kDead) {
    r->SetSpeedFactor(1.0);
  }
}

void LaminarSystem::ApplyPartialRollout(int version) {
  // Every replica still generating under an older version switches to the
  // new weights as soon as its local relay can serve them: the in-flight
  // trajectories continue (mixed-version) after a full KV recomputation.
  for (RolloutReplica* r : replica_ptrs_) {
    if (r->phase() != ReplicaPhase::kGenerating || r->weight_version() >= version) {
      continue;
    }
    int machine = r->config().machine;
    int tp = r->decode_model().tensor_parallel();
    relays_->PullLatest(machine, tp, r->weight_version(),
                        PullTicket{kSystemComp, kContRefreshPull, r->config().id, 0});
  }
}

void LaminarSystem::OnRefreshPull(int replica_id, int got) {
  RolloutReplica* r = replica_ptrs_[replica_id];
  if (r->phase() == ReplicaPhase::kGenerating && r->weight_version() < got) {
    r->Pause();
    r->Resume(got, /*recompute_kv=*/true);
  }
}

void LaminarSystem::Begin() {
  trainer_checkpoint_ = trainer_->Checkpoint();
  heartbeats_->Start();
  manager_->Start();
  trainer_->Start();
  if (invariant_sweep_ != nullptr) {
    invariant_sweep_->Start();
  }
  if (serving_traffic_ != nullptr) {
    PumpServing();
  }
}

void LaminarSystem::PumpServing() {
  ServingRequest req = serving_traffic_->Next();
  if (req.arrival_seconds > cfg_.max_sim_seconds) {
    return;  // past the horizon; the pump stays quiet for the rest of the run
  }
  // The request itself is parked on the driver (and serialized there); the
  // heap event carries no payload beyond its kind. Arrivals land on the
  // control lane: admission touches the whole fleet, so it must never run
  // inside a shard window.
  pending_serving_ = req;
  serving_pending_ = true;
  sim_.ScheduleContinuationAt(SimTime(req.arrival_seconds), kSystemComp,
                              kContServingArrival);
}

void LaminarSystem::OnServingArrivalFire() {
  LAMINAR_CHECK(serving_pending_);
  serving_pending_ = false;
  manager_->OnServingArrival(pending_serving_);
  PumpServing();
}

void LaminarSystem::OnIteration(const IterationStats& stats) {
  (void)stats;
  trainer_checkpoint_ = trainer_->Checkpoint();
}

void LaminarSystem::SnapshotComponents(SnapshotTx& tx) {
  DriverBase::SnapshotComponents(tx);
  tx.Begin("laminar");
  relays_->Snapshot(tx);
  manager_->Snapshot(tx);
  heartbeats_->Snapshot(tx);
  injector_->Snapshot(tx);
  // The full durable-checkpoint blob rides along: a direct boot must be able
  // to service a later kCrashRestart fault without the original process.
  tx.Bytes("trainer_checkpoint", &trainer_checkpoint_);
  if (serving_traffic_ != nullptr) {
    tx.Begin("serving_traffic");
    serving_traffic_->Snapshot(tx);
    tx.Bool("serving_pending", &serving_pending_);
    SnapshotPacked(
        tx, "pending_serving",
        [this](ByteSink& s) {
          s.I64(pending_serving_.seq);
          s.F64(pending_serving_.arrival_seconds);
          s.I64(pending_serving_.prompt_tokens);
          s.I64(pending_serving_.decode_tokens);
          s.F64(pending_serving_.deadline_seconds);
        },
        [this](ByteSource& s) {
          pending_serving_.seq = s.I64();
          pending_serving_.arrival_seconds = s.F64();
          pending_serving_.prompt_tokens = s.I64();
          pending_serving_.decode_tokens = s.I64();
          pending_serving_.deadline_seconds = s.F64();
        });
  }
  if (invariants_ != nullptr) {
    invariants_->Snapshot(tx);
  }
  tx.End();
}

void LaminarSystem::Finalize(SystemReport& report) {
  const SampleSet& pulls = relays_->pull_wait_seconds();
  if (!pulls.empty()) {
    report.rollout_wait_mean_seconds = pulls.mean();
    report.rollout_wait_best_seconds = pulls.min();
    report.rollout_wait_p99_seconds = pulls.Quantile(0.99);
  }
  if (!relays_->actor_stall_seconds().empty()) {
    report.actor_stall_mean_seconds = relays_->actor_stall_seconds().mean();
  }
  const RolloutManagerStats& ms = manager_->stats();
  report.repack_events = ms.repack_events;
  report.repack_sources_released = ms.sources_released;
  report.repack_trajectories_migrated = ms.trajectories_migrated;
  if (!ms.repack_overhead_seconds.empty()) {
    report.repack_overhead_mean_seconds = ms.repack_overhead_seconds.mean();
  }
  report.slow_events = ms.slow_events;
  report.slow_recoveries = ms.slow_recoveries;
  report.trajectories_dropped = ms.trajectories_dropped;
  report.duplicates_suppressed = partial_pool_.duplicate_completions();
  if (injector_ != nullptr) {
    report.faults_injected = injector_->injected();
  }
  if (invariants_ != nullptr) {
    invariants_->CheckFinal();
    report.invariant_checks = invariants_->checks_run();
    report.invariant_violations = invariants_->violation_count();
  }
  if (cfg_.serving.enabled) {
    report.serving_enabled = true;
    ServingStats ss = manager_->serving_stats();
    report.serving_requests = ss.requests;
    report.serving_admitted = ss.admitted;
    report.serving_rejected = ss.rejected;
    report.serving_completed = ss.completed;
    report.serving_timed_out = ss.timed_out;
    report.serving_failed = ss.failed;
    report.serving_deadline_hits = ss.deadline_hits;
    report.serving_deadline_misses = ss.deadline_misses;
    report.serving_preemptions = ss.rollout_preempted;
    report.serving_inflight_at_end = ss.queued_now + ss.resident_now;
    if (!ss.latency_seconds.empty()) {
      report.serving_latency_mean_seconds = ss.latency_seconds.mean();
      report.serving_latency_p50_seconds = ss.latency_seconds.Quantile(0.50);
      report.serving_latency_p99_seconds = ss.latency_seconds.Quantile(0.99);
    }
    int64_t terminal = ss.completed + ss.timed_out + ss.failed;
    if (terminal > 0) {
      report.serving_slo_attainment =
          static_cast<double>(ss.deadline_hits) / static_cast<double>(terminal);
    }
  }
}

}  // namespace laminar
