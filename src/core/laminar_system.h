// The full Laminar system (paper §3): trajectory-level asynchrony via the
// relay tier, the rollout manager with dynamic repack, the partial-response
// pool, and an asynchronous trainer.
#ifndef LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_
#define LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_

#include <memory>

#include "src/core/driver_base.h"
#include "src/fault/heartbeat.h"
#include "src/relay/relay_tier.h"
#include "src/rollout/manager.h"

namespace laminar {

class LaminarSystem : public DriverBase {
 public:
  explicit LaminarSystem(RlSystemConfig config) : DriverBase(config) {}

  // Exposed for fault-injection benches and tests.
  RelayTier* relays() { return relays_.get(); }
  RolloutManager* manager() { return manager_.get(); }
  HeartbeatMonitor* heartbeats() { return heartbeats_.get(); }

 protected:
  void Setup() override;
  void Begin() override;
  void Finalize(SystemReport& report) override;

 private:
  // Appendix-C hybrid: mid-generation weight adoption on top of Laminar.
  void ApplyPartialRollout(int version);

  std::unique_ptr<RelayTier> relays_;
  std::unique_ptr<RolloutManager> manager_;
  std::unique_ptr<HeartbeatMonitor> heartbeats_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_
