// The full Laminar system (paper §3): trajectory-level asynchrony via the
// relay tier, the rollout manager with dynamic repack, the partial-response
// pool, and an asynchronous trainer.
#ifndef LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_
#define LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/core/driver_base.h"
#include "src/fault/fault_process.h"
#include "src/fault/heartbeat.h"
#include "src/fault/injector.h"
#include "src/fault/invariants.h"
#include "src/relay/relay_tier.h"
#include "src/rollout/manager.h"

namespace laminar {

class LaminarSystem : public DriverBase {
 public:
  // Continuation kinds for the system driver's pending events (DESIGN.md
  // §13). kContRefreshPull only ever fires synchronously through a relay
  // PullTicket; the rest park on the event heap.
  enum Continuation : uint16_t {
    kContActorPublish = 0,    // broadcast landed: {a=version}
    kContHeartbeatRevive = 1, // replacement machine beats again: {a=machine}
    kContRelayRestart = 2,    // relay process revival: {a=machine}
    kContSpeedRestore = 3,    // fail-slow severity lifts: {a=replica}
    kContServingArrival = 4,  // pending_serving_ arrives
    kContInvariantSweep = 5,  // periodic invariant sweep tick
    kContRefreshPull = 6,     // partial-rollout pull: {a=replica, c=got}
  };

  explicit LaminarSystem(RlSystemConfig config) : DriverBase(std::move(config)) {}
  ~LaminarSystem() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Exposed for fault-injection benches and tests.
  RelayTier* relays() { return relays_.get(); }
  RolloutManager* manager() { return manager_.get(); }
  HeartbeatMonitor* heartbeats() { return heartbeats_.get(); }
  FaultInjector* injector() { return injector_.get(); }
  InvariantChecker* invariants() { return invariants_.get(); }

  // Queues a scripted fault. Callable before Run() (the event is handed to
  // the injector once Setup builds it) or from inside the simulation; both
  // routes share the chaos engine's handlers and validation.
  void ScheduleFault(const FaultEvent& event);

 protected:
  void Setup() override;
  void Begin() override;
  void Finalize(SystemReport& report) override;
  void OnIteration(const IterationStats& stats) override;
  // Appends the Laminar subsystems (relay tier, manager, heartbeats,
  // injector, trainer checkpoint) to the base witness.
  void SnapshotComponents(SnapshotTx& tx) override;

 private:
  // Appendix-C hybrid: mid-generation weight adoption on top of Laminar.
  void ApplyPartialRollout(int version);
  void OnRefreshPull(int replica_id, int got);
  void RestartRelayAfter(int machine, double delay_seconds);
  void OnRelayRestartFire(int machine);
  void OnHeartbeatRevive(int machine);
  void OnSpeedRestore(int replica_id);
  // Online serving tier (DESIGN.md §14): schedules the next generated
  // arrival on the control lane; each arrival re-arms the pump.
  void PumpServing();
  void OnServingArrivalFire();

  std::unique_ptr<RelayTier> relays_;
  std::unique_ptr<RolloutManager> manager_;
  // Null unless cfg_.serving.enabled; seeded from root_rng_.Fork("serving"),
  // so arming it never perturbs the existing RNG streams.
  std::unique_ptr<ServingTrafficGenerator> serving_traffic_;
  std::unique_ptr<HeartbeatMonitor> heartbeats_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<InvariantChecker> invariants_;
  std::unique_ptr<PeriodicTask> invariant_sweep_;
  std::vector<FaultEvent> pending_faults_;
  // The one in-flight serving arrival (the pump schedules exactly one ahead);
  // serialized so a direct boot re-delivers it without replaying the
  // generator.
  ServingRequest pending_serving_;
  bool serving_pending_ = false;
  // Publish -> broadcast-landed delay, derived from the relay config at
  // Setup(); the pending kContActorPublish event carries only the version.
  double distribution_delay_ = 0.0;
  // The trainer's last durable checkpoint (LMSNAP1): taken at Begin(),
  // refreshed after every completed iteration and after every trainer fault.
  // kCrashRestart restores from exactly this blob.
  std::string trainer_checkpoint_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_LAMINAR_SYSTEM_H_
