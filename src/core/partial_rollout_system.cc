#include "src/core/partial_rollout_system.h"

#include "src/common/logging.h"

namespace laminar {

void PartialRolloutSystem::Setup() {
  LAMINAR_CHECK(!placement_.colocated);
  int num_replicas = placement_.rollout_gpus / rollout_tp_;
  BuildReplicas(num_replicas, rollout_tp_);
  per_replica_batch_ = ResolvedPerReplicaBatch(num_replicas);
  BuildTrainer(TrainerMode::kFullBatch, /*auto_continue=*/true, TrainBackend::kMegatron);

  // Publication = partial rollout: interrupt everyone, GPU-direct broadcast,
  // resume mid-trajectory under the new weights with KV recomputation.
  trainer_->set_publish_fn([this](int version) {
    double sync = GlobalSyncSeconds();
    actor_stall_seconds_.Add(sync);
    for (RolloutReplica* r : replica_ptrs_) {
      if (r->phase() == ReplicaPhase::kDead) {
        continue;
      }
      rollout_wait_seconds_.Add(sync);
      r->Pause();
    }
    sim_.ScheduleAfter(sync, [this, version] {
      for (RolloutReplica* r : replica_ptrs_) {
        if (r->phase() == ReplicaPhase::kPaused) {
          r->Resume(version, /*recompute_kv=*/true);
        }
      }
    });
    return sync;
  });

  for (RolloutReplica* r : replica_ptrs_) {
    // Fires from a replica event; refeeding draws on the shared prompt pool
    // and buffer, so under sharded execution it is staged for serial replay.
    r->set_on_batch_done([this](RolloutReplica* replica) {
      sim_.RunOrStage([this, replica] { FeedReplica(replica); });
    });
  }
  retry_task_ =
      std::make_unique<PeriodicTask>(&sim_, 5.0 * TimeScale(), [this] { RetryStarved(); });
}

void PartialRolloutSystem::FeedReplica(RolloutReplica* replica) {
  if (replica->phase() == ReplicaPhase::kDead) {
    return;
  }
  if (static_cast<int64_t>(buffer_->size()) >= ResolvedBacklogCap()) {
    starved_.push_back(replica);
    return;
  }
  replica->AssignWork(MakeWorkBatch(per_replica_batch_, replica->weight_version()));
}

void PartialRolloutSystem::RetryStarved() {
  std::vector<RolloutReplica*> starved = std::move(starved_);
  starved_.clear();
  for (RolloutReplica* r : starved) {
    if (r->phase() == ReplicaPhase::kIdle || r->phase() == ReplicaPhase::kPaused) {
      FeedReplica(r);
    } else if (r->phase() != ReplicaPhase::kDead && !r->busy()) {
      FeedReplica(r);
    }
  }
}

void PartialRolloutSystem::Begin() {
  retry_task_->Start();
  trainer_->Start();
  for (RolloutReplica* r : replica_ptrs_) {
    FeedReplica(r);
  }
}

}  // namespace laminar
