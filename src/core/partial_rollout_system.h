// AReaL-style partial-rollout system (paper baseline 4, Figure 3d).
//
// Rollouts generate continuously with unbounded staleness; whenever the
// trainer publishes new weights, every rollout is interrupted, synchronized
// over GPU-direct broadcast, and resumes its in-flight trajectories under the
// new weights — paying full KVCache recomputation and producing
// mixed-version trajectories (trained with decoupled PPO).
#ifndef LAMINAR_SRC_CORE_PARTIAL_ROLLOUT_SYSTEM_H_
#define LAMINAR_SRC_CORE_PARTIAL_ROLLOUT_SYSTEM_H_

#include <memory>
#include <utility>

#include "src/core/driver_base.h"

namespace laminar {

class PartialRolloutSystem : public DriverBase {
 public:
  explicit PartialRolloutSystem(RlSystemConfig config) : DriverBase(std::move(config)) {
    // AReaL trains with its decoupled-PPO correction by default.
    if (cfg_.algorithm == RlAlgorithm::kGrpo) {
      cfg_.algorithm = RlAlgorithm::kDecoupledPpo;
    }
  }

 protected:
  void Setup() override;
  void Begin() override;

 private:
  void FeedReplica(RolloutReplica* replica);
  void RetryStarved();

  int per_replica_batch_ = 0;
  std::vector<RolloutReplica*> starved_;
  std::unique_ptr<PeriodicTask> retry_task_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_PARTIAL_ROLLOUT_SYSTEM_H_
