#include "src/core/pipeline_system.h"

#include "src/common/logging.h"

namespace laminar {

void PipelineSystem::Setup() {
  LAMINAR_CHECK(!placement_.colocated);
  int num_replicas = placement_.rollout_gpus / rollout_tp_;
  BuildReplicas(num_replicas, rollout_tp_);
  BuildTrainer(stream_mode() ? TrainerMode::kStreaming : TrainerMode::kFullBatch,
               /*auto_continue=*/stream_mode(), TrainBackend::kFsdp);
  // The weight hand-off happens at the round barrier (global NCCL sync), not
  // at publish time; publish itself is free here.
  trainer_->set_publish_fn([](int) { return 0.0; });
  if (stream_mode()) {
    // Mini-batches may start whenever the round is open; the barrier between
    // rounds closes the gate.
    trainer_->set_begin_gate([this] { return round_open_; });
  } else {
    // One-step: exactly one training launch per round, armed by StartRound.
    trainer_->set_begin_gate([this] { return train_allowed_; });
  }
  for (RolloutReplica* r : replica_ptrs_) {
    // Fires from a replica event; the round barrier is global state, so
    // under sharded execution it is staged for serial replay.
    r->set_on_batch_done([this](RolloutReplica*) {
      sim_.RunOrStage([this] { OnReplicaBatchDone(); });
    });
  }
}

void PipelineSystem::Begin() {
  trainer_->Start();
  StartRound();
}

void PipelineSystem::StartRound() {
  round_open_ = true;
  generation_done_ = false;
  // Round 0 has no previous batch to train on.
  training_done_ = !stream_mode() && round_ == 0;
  generation_started_ = sim_.Now();

  std::vector<std::vector<TrajectoryWork>> chunks =
      MakeGlobalBatchChunks(trainer_->version());
  outstanding_replicas_ = 0;
  for (const auto& chunk : chunks) {
    if (!chunk.empty()) {
      ++outstanding_replicas_;
    }
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!chunks[i].empty()) {
      replica_ptrs_[i]->AssignWork(std::move(chunks[i]));
    }
  }
  if (!stream_mode() && round_ >= 1) {
    // The previous round's batch is fully buffered; launch its training now,
    // concurrent with this round's generation (Figure 3b).
    train_allowed_ = true;
    trainer_->NotifyData();
    train_allowed_ = false;
  }
  if (stream_mode()) {
    trainer_->NotifyData();
  }
}

void PipelineSystem::OnReplicaBatchDone() {
  LAMINAR_CHECK_GT(outstanding_replicas_, 0);
  if (--outstanding_replicas_ == 0) {
    generation_done_ = true;
    generation_phase_seconds_ += sim_.Now() - generation_started_;
    MaybeEndRound();
  }
}

void PipelineSystem::OnIteration(const IterationStats& stats) {
  training_phase_seconds_ += stats.train_seconds;
  training_done_ = true;
  MaybeEndRound();
}

void PipelineSystem::MaybeEndRound() {
  if (round_open_ && generation_done_ && training_done_) {
    EndRound();
  }
}

void PipelineSystem::EndRound() {
  round_open_ = false;
  // Global GPU-direct weight synchronization: actor and every rollout stall.
  double sync = round_ == 0 && trainer_->version() == 0 ? 0.0 : GlobalSyncSeconds();
  if (sync > 0.0) {
    actor_stall_seconds_.Add(sync);
    for (size_t i = 0; i < replica_ptrs_.size(); ++i) {
      rollout_wait_seconds_.Add(sync);
    }
    other_phase_seconds_ += sync;
  }
  sim_.ScheduleAfter(sync, [this] {
    for (RolloutReplica* r : replica_ptrs_) {
      r->SetWeightVersion(trainer_->version());
    }
    ++round_;
    StartRound();
  });
}

}  // namespace laminar
