// Disaggregated k=1-staleness pipelines (paper baselines 2 and 3, Figure 3b/c).
//
//  * One-step staleness: rollouts generate batch n under version n-1 while
//    the trainer trains on the fully generated batch n-1. A GPU-direct
//    global weight synchronization separates rounds.
//  * Stream generation: the trainer consumes the *current* batch's early
//    completions mini-batch by mini-batch (short trajectories first), but
//    the round still ends only when the whole batch is generated and
//    trained, followed by the same global synchronization.
#ifndef LAMINAR_SRC_CORE_PIPELINE_SYSTEM_H_
#define LAMINAR_SRC_CORE_PIPELINE_SYSTEM_H_

#include <utility>

#include "src/core/driver_base.h"

namespace laminar {

class PipelineSystem : public DriverBase {
 public:
  explicit PipelineSystem(RlSystemConfig config) : DriverBase(std::move(config)) {}

 protected:
  void Setup() override;
  void Begin() override;
  void OnIteration(const IterationStats& stats) override;

 private:
  bool stream_mode() const { return cfg_.system == SystemKind::kStreamGen; }
  void StartRound();
  void OnReplicaBatchDone();
  void MaybeEndRound();
  void EndRound();

  int round_ = 0;
  int outstanding_replicas_ = 0;
  bool generation_done_ = false;
  bool training_done_ = false;
  bool round_open_ = false;
  bool train_allowed_ = false;
  SimTime generation_started_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_PIPELINE_SYSTEM_H_
