#include "src/core/report_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/logging.h"

namespace laminar {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string SafeLabel(const SystemReport& report) {
  std::string label = report.label;
  for (char& c : label) {
    if (c == '/') {
      c = '-';
    }
  }
  return label;
}

}  // namespace

std::string ReportSummaryCsv(const SystemReport& report) {
  std::string out = "metric,value\n";
  auto row = [&out](const std::string& k, double v) { out += k + "," + Num(v) + "\n"; };
  out += "label," + report.label + "\n";
  row("total_gpus", report.total_gpus);
  row("train_gpus", report.train_gpus);
  row("rollout_gpus", report.rollout_gpus);
  row("num_replicas", report.num_replicas);
  row("throughput_tokens_per_sec", report.throughput_tokens_per_sec);
  row("mean_iteration_seconds", report.mean_iteration_seconds);
  row("iterations_completed", report.iterations_completed);
  row("generation_fraction", report.generation_fraction);
  row("train_fraction", report.train_fraction);
  row("mean_consume_staleness", report.mean_consume_staleness);
  row("max_consume_staleness", report.max_consume_staleness);
  row("mean_inherent_staleness", report.mean_inherent_staleness);
  row("max_inherent_staleness", report.max_inherent_staleness);
  row("mixed_version_fraction", report.mixed_version_fraction);
  row("actor_stall_mean_seconds", report.actor_stall_mean_seconds);
  row("rollout_wait_mean_seconds", report.rollout_wait_mean_seconds);
  row("avg_kv_utilization", report.avg_kv_utilization);
  row("avg_decode_batch", report.avg_decode_batch);
  row("rollout_busy_fraction", report.rollout_busy_fraction);
  row("repack_events", static_cast<double>(report.repack_events));
  row("repack_sources_released", static_cast<double>(report.repack_sources_released));
  row("repack_overhead_mean_seconds", report.repack_overhead_mean_seconds);
  row("final_eval_reward", report.final_eval_reward);
  row("simulated_seconds", report.simulated_seconds);
  row("simulated_events", static_cast<double>(report.simulated_events));
  return out;
}

std::string IterationsCsv(const SystemReport& report) {
  std::string out =
      "version,started_s,completed_s,data_wait_s,train_s,publish_stall_s,tokens,"
      "mean_reward,mean_consume_staleness,max_consume_staleness,mixed_fraction,"
      "clip_fraction\n";
  for (const IterationStats& it : report.iterations) {
    out += Num(it.version) + "," + Num(it.started.seconds()) + "," +
           Num(it.completed.seconds()) + "," + Num(it.data_wait_seconds) + "," +
           Num(it.train_seconds) + "," + Num(it.publish_stall_seconds) + "," +
           Num(it.tokens) + "," + Num(it.mean_reward) + "," +
           Num(it.mean_consume_staleness) + "," + Num(it.max_consume_staleness) + "," +
           Num(it.mixed_version_fraction) + "," + Num(it.clip_fraction) + "\n";
  }
  return out;
}

std::string SeriesCsv(const SystemReport& report, double bucket_seconds) {
  auto gen = report.generation_rate.Resample(bucket_seconds);
  auto buf = report.buffer_depth.Resample(bucket_seconds);
  std::string out = "time_s,generation_tokens_per_sec,buffer_depth,training_tokens_per_sec,"
                    "eval_reward\n";
  size_t n = std::max(gen.size(), buf.size());
  auto value_at = [](const TimeSeries& series, double t) {
    double v = 0.0;
    for (const TimePoint& p : series.points()) {
      if (p.time.seconds() <= t) {
        v = p.value;
      } else {
        break;
      }
    }
    return v;
  };
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i) * bucket_seconds;
    double g = i < gen.size() ? gen[i].value : 0.0;
    double b = i < buf.size() ? buf[i].value : 0.0;
    out += Num(t) + "," + Num(g) + "," + Num(b) + "," +
           Num(value_at(report.training_rate, t)) + "," +
           Num(value_at(report.reward_series, t)) + "\n";
  }
  return out;
}

std::string StalenessCsv(const SystemReport& report) {
  std::string out = "finish_time_s,inherent_staleness\n";
  for (const auto& [t, s] : report.staleness_samples) {
    out += Num(t) + "," + Num(s) + "\n";
  }
  return out;
}

bool WriteReportCsv(const SystemReport& report, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    LAMINAR_LOG(kError) << "cannot create " << directory << ": " << ec.message();
    return false;
  }
  std::string base = directory + "/" + SafeLabel(report);
  struct File {
    const char* suffix;
    std::string content;
  };
  File files[] = {{"_summary.csv", ReportSummaryCsv(report)},
                  {"_iterations.csv", IterationsCsv(report)},
                  {"_series.csv", SeriesCsv(report)},
                  {"_staleness.csv", StalenessCsv(report)}};
  for (const File& f : files) {
    std::ofstream out(base + f.suffix);
    if (!out) {
      LAMINAR_LOG(kError) << "cannot write " << base << f.suffix;
      return false;
    }
    out << f.content;
  }
  return true;
}

}  // namespace laminar
