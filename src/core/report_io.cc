#include "src/core/report_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/common/logging.h"

namespace laminar {
namespace {

// Appends a "%.6g"-formatted value with no temporary string. These
// CSVs are rebuilt for every run fingerprint the fuzz oracles take, so the
// per-value allocations were hot (see DESIGN.md §11).
void AppendNum(std::string& out, double v) {
  char buf[64];
  out.append(buf, static_cast<size_t>(std::snprintf(buf, sizeof(buf), "%.6g", v)));
}

std::string SafeLabel(const SystemReport& report) {
  std::string label = report.label;
  for (char& c : label) {
    if (c == '/') {
      c = '-';
    }
  }
  return label;
}

}  // namespace

std::string ReportSummaryCsv(const SystemReport& report) {
  std::string out = "metric,value\n";
  out.reserve(1024);
  auto row = [&out](const char* k, double v) {
    out += k;
    out += ',';
    AppendNum(out, v);
    out += '\n';
  };
  out += "label," + report.label + "\n";
  row("total_gpus", report.total_gpus);
  row("train_gpus", report.train_gpus);
  row("rollout_gpus", report.rollout_gpus);
  row("num_replicas", report.num_replicas);
  row("throughput_tokens_per_sec", report.throughput_tokens_per_sec);
  row("mean_iteration_seconds", report.mean_iteration_seconds);
  row("iterations_completed", report.iterations_completed);
  row("generation_fraction", report.generation_fraction);
  row("train_fraction", report.train_fraction);
  row("mean_consume_staleness", report.mean_consume_staleness);
  row("max_consume_staleness", report.max_consume_staleness);
  row("mean_inherent_staleness", report.mean_inherent_staleness);
  row("max_inherent_staleness", report.max_inherent_staleness);
  row("mixed_version_fraction", report.mixed_version_fraction);
  row("actor_stall_mean_seconds", report.actor_stall_mean_seconds);
  row("rollout_wait_mean_seconds", report.rollout_wait_mean_seconds);
  row("avg_kv_utilization", report.avg_kv_utilization);
  row("avg_decode_batch", report.avg_decode_batch);
  row("rollout_busy_fraction", report.rollout_busy_fraction);
  row("repack_events", static_cast<double>(report.repack_events));
  row("repack_sources_released", static_cast<double>(report.repack_sources_released));
  row("repack_overhead_mean_seconds", report.repack_overhead_mean_seconds);
  row("final_eval_reward", report.final_eval_reward);
  row("simulated_seconds", report.simulated_seconds);
  row("simulated_events", static_cast<double>(report.simulated_events));
  if (report.serving_enabled) {
    // Gated on the tier being armed so serving-off summaries (and every
    // fingerprint derived from them) stay byte-identical to history.
    row("serving_requests", static_cast<double>(report.serving_requests));
    row("serving_admitted", static_cast<double>(report.serving_admitted));
    row("serving_rejected", static_cast<double>(report.serving_rejected));
    row("serving_completed", static_cast<double>(report.serving_completed));
    row("serving_timed_out", static_cast<double>(report.serving_timed_out));
    row("serving_failed", static_cast<double>(report.serving_failed));
    row("serving_deadline_hits", static_cast<double>(report.serving_deadline_hits));
    row("serving_deadline_misses", static_cast<double>(report.serving_deadline_misses));
    row("serving_preemptions", static_cast<double>(report.serving_preemptions));
    row("serving_inflight_at_end", static_cast<double>(report.serving_inflight_at_end));
    row("serving_latency_mean_seconds", report.serving_latency_mean_seconds);
    row("serving_latency_p50_seconds", report.serving_latency_p50_seconds);
    row("serving_latency_p99_seconds", report.serving_latency_p99_seconds);
    row("serving_slo_attainment", report.serving_slo_attainment);
  }
  return out;
}

std::string IterationsCsv(const SystemReport& report) {
  std::string out =
      "version,started_s,completed_s,data_wait_s,train_s,publish_stall_s,tokens,"
      "mean_reward,mean_consume_staleness,max_consume_staleness,mixed_fraction,"
      "clip_fraction\n";
  out.reserve(out.size() + 128 * report.iterations.size());
  for (const IterationStats& it : report.iterations) {
    const double values[] = {static_cast<double>(it.version),
                             it.started.seconds(),
                             it.completed.seconds(),
                             it.data_wait_seconds,
                             it.train_seconds,
                             it.publish_stall_seconds,
                             static_cast<double>(it.tokens),
                             it.mean_reward,
                             it.mean_consume_staleness,
                             static_cast<double>(it.max_consume_staleness),
                             it.mixed_version_fraction,
                             it.clip_fraction};
    for (size_t i = 0; i < std::size(values); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendNum(out, values[i]);
    }
    out += '\n';
  }
  return out;
}

std::string SeriesCsv(const SystemReport& report, double bucket_seconds) {
  auto gen = report.generation_rate.Resample(bucket_seconds);
  auto buf = report.buffer_depth.Resample(bucket_seconds);
  std::string out = "time_s,generation_tokens_per_sec,buffer_depth,training_tokens_per_sec,"
                    "eval_reward\n";
  size_t n = std::max(gen.size(), buf.size());
  // Query times are monotonically increasing, so each series is walked once
  // with a cursor. For every t this visits exactly the prefix up to the
  // first point past t — the same points, in the same order, as the old
  // from-scratch rescan — so the selected values are identical.
  struct Cursor {
    const std::vector<TimePoint>& points;
    size_t next = 0;
    double v = 0.0;
    double At(double t) {
      while (next < points.size() && points[next].time.seconds() <= t) {
        v = points[next].value;
        ++next;
      }
      return v;
    }
  };
  Cursor training{report.training_rate.points()};
  Cursor reward{report.reward_series.points()};
  out.reserve(out.size() + 64 * n);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i) * bucket_seconds;
    double g = i < gen.size() ? gen[i].value : 0.0;
    double b = i < buf.size() ? buf[i].value : 0.0;
    AppendNum(out, t);
    out += ',';
    AppendNum(out, g);
    out += ',';
    AppendNum(out, b);
    out += ',';
    AppendNum(out, training.At(t));
    out += ',';
    AppendNum(out, reward.At(t));
    out += '\n';
  }
  return out;
}

std::string StalenessCsv(const SystemReport& report) {
  std::string out = "finish_time_s,inherent_staleness\n";
  out.reserve(out.size() + 32 * report.staleness_samples.size());
  for (const auto& [t, s] : report.staleness_samples) {
    AppendNum(out, t);
    out += ',';
    AppendNum(out, s);
    out += '\n';
  }
  return out;
}

bool WriteReportCsv(const SystemReport& report, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    LAMINAR_LOG(kError) << "cannot create " << directory << ": " << ec.message();
    return false;
  }
  std::string base = directory + "/" + SafeLabel(report);
  struct File {
    const char* suffix;
    std::string content;
  };
  File files[] = {{"_summary.csv", ReportSummaryCsv(report)},
                  {"_iterations.csv", IterationsCsv(report)},
                  {"_series.csv", SeriesCsv(report)},
                  {"_staleness.csv", StalenessCsv(report)}};
  for (const File& f : files) {
    std::ofstream out(base + f.suffix);
    if (!out) {
      LAMINAR_LOG(kError) << "cannot write " << base << f.suffix;
      return false;
    }
    out << f.content;
  }
  return true;
}

}  // namespace laminar
