// Serialization of SystemReport results to CSV, for plotting and offline
// analysis of simulation runs.
#ifndef LAMINAR_SRC_CORE_REPORT_IO_H_
#define LAMINAR_SRC_CORE_REPORT_IO_H_

#include <string>

#include "src/core/config.h"

namespace laminar {

// Writes the report's headline metrics as a two-column CSV.
std::string ReportSummaryCsv(const SystemReport& report);

// Writes one row per iteration: version, timings, reward, staleness.
std::string IterationsCsv(const SystemReport& report);

// Writes the time series (generation rate, training rate, buffer depth,
// eval reward) resampled onto a common bucket grid.
std::string SeriesCsv(const SystemReport& report, double bucket_seconds = 30.0);

// Writes (finish_time, inherent_staleness) pairs (Figure 10's raw data).
std::string StalenessCsv(const SystemReport& report);

// Writes all four files into `directory` (created if needed), named
// <label>_{summary,iterations,series,staleness}.csv with '/' replaced by '-'.
// Returns false (with a log message) on I/O failure.
bool WriteReportCsv(const SystemReport& report, const std::string& directory);

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_REPORT_IO_H_
