#include "src/core/run.h"

#include "src/core/laminar_system.h"
#include "src/core/partial_rollout_system.h"
#include "src/core/pipeline_system.h"
#include "src/core/sync_system.h"

namespace laminar {

std::unique_ptr<DriverBase> MakeDriver(const RlSystemConfig& config) {
  switch (config.system) {
    case SystemKind::kVerlSync:
      return std::make_unique<SyncSystem>(config);
    case SystemKind::kOneStep:
    case SystemKind::kStreamGen:
      return std::make_unique<PipelineSystem>(config);
    case SystemKind::kPartialRollout:
      return std::make_unique<PartialRolloutSystem>(config);
    case SystemKind::kLaminar:
      return std::make_unique<LaminarSystem>(config);
  }
  return nullptr;
}

SystemReport RunExperiment(const RlSystemConfig& config) {
  return MakeDriver(config)->Run();
}

}  // namespace laminar
