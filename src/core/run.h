// Experiment entry point: builds the right driver for a config and runs it.
#ifndef LAMINAR_SRC_CORE_RUN_H_
#define LAMINAR_SRC_CORE_RUN_H_

#include <memory>

#include "src/core/config.h"
#include "src/core/driver_base.h"

namespace laminar {

// Instantiates the driver matching `config.system`.
std::unique_ptr<DriverBase> MakeDriver(const RlSystemConfig& config);

// One-shot: build, run, report.
SystemReport RunExperiment(const RlSystemConfig& config);

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_RUN_H_
