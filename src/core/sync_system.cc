#include "src/core/sync_system.h"

#include "src/common/logging.h"

namespace laminar {

void SyncSystem::Setup() {
  LAMINAR_CHECK(placement_.colocated);
  int num_replicas = placement_.total_gpus / rollout_tp_;
  // Colocation tax: the training framework's parameters, gradients and
  // optimizer state stay resident during generation, so the serving engine
  // runs with a far smaller KVCache than a dedicated rollout machine.
  BuildReplicas(num_replicas, rollout_tp_, /*machine_offset=*/0,
                /*gpu_memory_utilization=*/0.55);
  BuildTrainer(TrainerMode::kFullBatch, /*auto_continue=*/true, TrainBackend::kFsdp);
  // Both HybridEngine switches (train->rollout and rollout->train) stall the
  // whole cluster; we bill them with the publish step.
  trainer_->set_publish_fn([this](int /*version*/) {
    double stall = 2.0 * cfg_.colocate_switch_seconds;
    other_phase_seconds_ += stall;
    actor_stall_seconds_.Add(stall);
    return stall;
  });
  for (RolloutReplica* r : replica_ptrs_) {
    // Fires from a replica event; the straggler countdown is global state,
    // so under sharded execution it is staged for serial replay.
    r->set_on_batch_done([this](RolloutReplica*) {
      sim_.RunOrStage([this] { OnReplicaBatchDone(); });
    });
  }
}

void SyncSystem::Begin() {
  trainer_->Start();
  StartGeneration();
}

void SyncSystem::StartGeneration() {
  generation_started_ = sim_.Now();
  std::vector<std::vector<TrajectoryWork>> chunks =
      MakeGlobalBatchChunks(trainer_->version());
  outstanding_replicas_ = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!chunks[i].empty()) {
      ++outstanding_replicas_;
    }
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!chunks[i].empty()) {
      replica_ptrs_[i]->AssignWork(std::move(chunks[i]));
    }
  }
}

void SyncSystem::OnReplicaBatchDone() {
  LAMINAR_CHECK_GT(outstanding_replicas_, 0);
  if (--outstanding_replicas_ == 0) {
    // Last straggler finished: the generation stage of this iteration ends.
    generation_phase_seconds_ += sim_.Now() - generation_started_;
    // The trainer has already been notified trajectory-by-trajectory and
    // starts at this instant (the buffer just reached a full global batch).
  }
}

void SyncSystem::OnIteration(const IterationStats& stats) {
  training_phase_seconds_ += stats.train_seconds;
  // Colocated weight update: rollouts adopt the new version via the switch.
  for (RolloutReplica* r : replica_ptrs_) {
    r->SetWeightVersion(trainer_->version());
  }
  StartGeneration();
}

}  // namespace laminar
