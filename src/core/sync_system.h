// verl-style synchronous, colocated system (paper baseline 1, Figure 3a).
//
// Every GPU alternates between rollout and training duty within an RL
// iteration: generate the full global batch (paying the long-tail wait),
// context-switch the engines, train, switch back. Weight "synchronization"
// is the in-place reshard during the switch.
#ifndef LAMINAR_SRC_CORE_SYNC_SYSTEM_H_
#define LAMINAR_SRC_CORE_SYNC_SYSTEM_H_

#include <utility>

#include "src/core/driver_base.h"

namespace laminar {

class SyncSystem : public DriverBase {
 public:
  explicit SyncSystem(RlSystemConfig config) : DriverBase(std::move(config)) {}

 protected:
  void Setup() override;
  void Begin() override;
  void OnIteration(const IterationStats& stats) override;

 private:
  void StartGeneration();
  void OnReplicaBatchDone();

  int outstanding_replicas_ = 0;
  SimTime generation_started_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_CORE_SYNC_SYSTEM_H_
