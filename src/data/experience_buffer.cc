#include "src/data/experience_buffer.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/data/trajectory_digest.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"

namespace laminar {
namespace {

class FifoSampler : public SamplerPolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::vector<size_t> Pick(const std::deque<TrajectoryRecord>& buffer, size_t n,
                           int /*actor_version*/) override {
    LAMINAR_CHECK_GE(buffer.size(), n);
    std::vector<size_t> out(n);
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
};

class FreshnessSampler : public SamplerPolicy {
 public:
  const char* name() const override { return "freshness"; }
  std::vector<size_t> Pick(const std::deque<TrajectoryRecord>& buffer, size_t n,
                           int /*actor_version*/) override {
    LAMINAR_CHECK_GE(buffer.size(), n);
    std::vector<size_t> idx(buffer.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&buffer](size_t a, size_t b) {
      return buffer[a].generation_version() > buffer[b].generation_version();
    });
    idx.resize(n);
    return idx;
  }
};

class StalenessCappedSampler : public SamplerPolicy {
 public:
  explicit StalenessCappedSampler(int bound) : bound_(bound) {}
  const char* name() const override { return "staleness-capped"; }
  std::vector<size_t> Pick(const std::deque<TrajectoryRecord>& buffer, size_t n,
                           int actor_version) override {
    LAMINAR_CHECK_GE(buffer.size(), n);
    // Classify every record: the fallback must see the whole buffer to rank
    // the over-bound records by staleness.
    std::vector<size_t> fresh;
    std::vector<size_t> stale;
    for (size_t i = 0; i < buffer.size(); ++i) {
      int staleness = actor_version - buffer[i].generation_version();
      (staleness <= bound_ ? fresh : stale).push_back(i);
    }
    if (fresh.size() > n) {
      fresh.resize(n);  // FIFO among within-bound records
    } else if (fresh.size() < n) {
      // Fall back onto the *least*-stale over-bound records (newest
      // generation version first, FIFO within a version) — not the lowest
      // buffer index, which is the oldest and most-stale data.
      std::stable_sort(stale.begin(), stale.end(), [&buffer](size_t a, size_t b) {
        return buffer[a].generation_version() > buffer[b].generation_version();
      });
      for (size_t i = 0; fresh.size() < n && i < stale.size(); ++i) {
        fresh.push_back(stale[i]);
      }
    }
    std::sort(fresh.begin(), fresh.end());
    return fresh;
  }

 private:
  int bound_;
};

}  // namespace

std::unique_ptr<SamplerPolicy> MakeFifoSampler() { return std::make_unique<FifoSampler>(); }

std::unique_ptr<SamplerPolicy> MakeFreshnessSampler() {
  return std::make_unique<FreshnessSampler>();
}

std::unique_ptr<SamplerPolicy> MakeStalenessCappedSampler(int bound) {
  return std::make_unique<StalenessCappedSampler>(bound);
}

ExperienceBuffer::ExperienceBuffer(std::unique_ptr<SamplerPolicy> sampler, size_t capacity,
                                   EvictionPolicy eviction)
    : sampler_(std::move(sampler)), capacity_(capacity), eviction_(eviction) {
  LAMINAR_CHECK(sampler_ != nullptr);
}

void ExperienceBuffer::Push(TrajectoryRecord record) {
  tokens_pushed_ += record.total_tokens();
  ++pushed_;
  buffer_.push_back(std::move(record));
  EvictIfNeeded();
}

void ExperienceBuffer::EvictIfNeeded() {
  if (eviction_ == EvictionPolicy::kNone || capacity_ == 0) {
    return;
  }
  while (buffer_.size() > capacity_) {
    if (eviction_ == EvictionPolicy::kDropOldest) {
      buffer_.pop_front();
    } else {
      auto it = std::min_element(buffer_.begin(), buffer_.end(),
                                 [](const TrajectoryRecord& a, const TrajectoryRecord& b) {
                                   return a.generation_version() < b.generation_version();
                                 });
      buffer_.erase(it);
    }
    ++evicted_;
  }
}

std::vector<TrajectoryRecord> ExperienceBuffer::Sample(size_t n, int actor_version) {
  LAMINAR_CHECK(CanSample(n)) << "buffer has " << buffer_.size() << ", need " << n;
  if (n == 0) {
    return {};
  }
  std::vector<size_t> picked = sampler_->Pick(buffer_, n, actor_version);
  LAMINAR_CHECK_EQ(picked.size(), n);
  std::vector<size_t> sorted = picked;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    LAMINAR_CHECK_NE(sorted[i], sorted[i - 1]) << "sampler returned duplicate index";
  }
  std::vector<TrajectoryRecord> out;
  out.reserve(n);
  // Move the picked records out (the hollowed-out shells stay behind until
  // the compaction below) instead of copying them — a record owns its
  // segment list and version vector, so a copy here was the single hottest
  // operation in a full-system run.
  for (size_t idx : picked) {
    TrajectoryRecord& rec = buffer_[idx];
    rec.consume_actor_version = actor_version;
    out.push_back(std::move(rec));
  }
  if (sorted.back() - sorted.front() + 1 == n) {
    // Contiguous block (FIFO and usually staleness-capped): erase it in one
    // range operation; the deque shifts whichever side is shorter.
    auto first = buffer_.begin() + static_cast<int64_t>(sorted.front());
    buffer_.erase(first, first + static_cast<int64_t>(n));
  } else {
    // Scattered picks: one stable left-shift pass over the suffix, then drop
    // the tail — O(size) moves instead of one deque erase per pick.
    size_t write = sorted.front();
    size_t next_hole = 0;
    for (size_t read = sorted.front(); read < buffer_.size(); ++read) {
      if (next_hole < sorted.size() && read == sorted[next_hole]) {
        ++next_hole;
        continue;
      }
      buffer_[write++] = std::move(buffer_[read]);
    }
    buffer_.resize(write);
  }
  sampled_ += static_cast<int64_t>(n);
  return out;
}

const char* ExperienceBuffer::sampler_name() const { return sampler_->name(); }

void ExperienceBuffer::Snapshot(SnapshotTx& tx) {
  tx.Begin("experience_buffer");
  tx.I64("pushed", &pushed_);
  tx.I64("sampled", &sampled_);
  tx.I64("evicted", &evicted_);
  tx.I64("tokens_pushed", &tokens_pushed_);
  SnapshotPacked(
      tx, "contents",
      [this](ByteSink& s) {
        s.U64(buffer_.size());
        for (const TrajectoryRecord& rec : buffer_) {
          PackRecord(s, rec);
        }
      },
      [this](ByteSource& s) {
        buffer_.clear();
        for (uint64_t i = 0, n = s.U64(); i < n; ++i) {
          buffer_.push_back(UnpackRecord(s));
        }
      });
  // Cheap order-sensitive cross-check; read-and-skipped on adopt.
  uint64_t h = 1469598103934665603ull;
  for (const TrajectoryRecord& rec : buffer_) {
    h = TrajectoryRecordDigest(rec, h);
  }
  tx.DigestU64("contents_fnv", h);
  tx.End();
}

}  // namespace laminar
