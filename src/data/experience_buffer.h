// Experience buffer: completed trajectories awaiting trainer consumption
// (paper §3.1). Interaction happens through a writer (rollouts push) and a
// sampler (trainer pulls); both sampling strategy and eviction strategy are
// pluggable, mirroring the paper's "flexible APIs".
#ifndef LAMINAR_SRC_DATA_EXPERIENCE_BUFFER_H_
#define LAMINAR_SRC_DATA_EXPERIENCE_BUFFER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/data/trajectory.h"

namespace laminar {

class ExperienceBuffer;
class SnapshotTx;

// Strategy deciding which buffered trajectories the trainer consumes next.
class SamplerPolicy {
 public:
  virtual ~SamplerPolicy() = default;
  virtual const char* name() const = 0;
  // Picks `n` indices into `buffer` (which has >= n entries). Indices must be
  // unique; picked entries are removed by the buffer afterwards.
  virtual std::vector<size_t> Pick(const std::deque<TrajectoryRecord>& buffer, size_t n,
                                   int actor_version) = 0;
};

// Oldest-first (the paper's default for Laminar and AReaL).
std::unique_ptr<SamplerPolicy> MakeFifoSampler();
// Freshest-first by generation version, FIFO within a version. Reduces
// consume-time staleness at the cost of starving old data.
std::unique_ptr<SamplerPolicy> MakeFreshnessSampler();
// FIFO, but skips trajectories whose consume staleness would exceed `bound`
// ... unless too few remain, in which case the batch is topped up with the
// least-stale over-bound records.
std::unique_ptr<SamplerPolicy> MakeStalenessCappedSampler(int bound);

enum class EvictionPolicy {
  kNone,        // unbounded buffer
  kDropOldest,  // bounded: discard the oldest experience on overflow
  kDropStalest, // bounded: discard the lowest generation version on overflow
};

class ExperienceBuffer {
 public:
  explicit ExperienceBuffer(std::unique_ptr<SamplerPolicy> sampler,
                            size_t capacity = 0,
                            EvictionPolicy eviction = EvictionPolicy::kNone);

  // Writer API -------------------------------------------------------------
  void Push(TrajectoryRecord record);

  // Sampler API ------------------------------------------------------------
  bool CanSample(size_t n) const { return buffer_.size() >= n; }
  // Removes and returns `n` trajectories chosen by the sampler policy,
  // stamping consume_actor_version. Requires CanSample(n).
  std::vector<TrajectoryRecord> Sample(size_t n, int actor_version);

  // Introspection ----------------------------------------------------------
  size_t size() const { return buffer_.size(); }
  int64_t total_pushed() const { return pushed_; }
  int64_t total_sampled() const { return sampled_; }
  int64_t total_evicted() const { return evicted_; }
  int64_t total_tokens_pushed() const { return tokens_pushed_; }
  const std::deque<TrajectoryRecord>& contents() const { return buffer_; }
  const char* sampler_name() const;

  // Snapshot (src/snapshot, DESIGN.md §13): counters plus the full packed
  // record contents in deque order, so a direct boot re-seats the buffer
  // exactly (sampling order, eviction order and digests all depend on it).
  void Snapshot(SnapshotTx& tx);

 private:
  void EvictIfNeeded();

  std::unique_ptr<SamplerPolicy> sampler_;
  size_t capacity_;
  EvictionPolicy eviction_;
  std::deque<TrajectoryRecord> buffer_;
  int64_t pushed_ = 0;
  int64_t sampled_ = 0;
  int64_t evicted_ = 0;
  int64_t tokens_pushed_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_EXPERIENCE_BUFFER_H_
