#include "src/data/partial_response_pool.h"

namespace laminar {

void PartialResponsePool::Update(const TrajectoryWork& work, int owner_replica) {
  Entry& e = entries_[work.record.id];
  e.work = work;
  e.owner_replica = owner_replica;
  ++updates_;
}

bool PartialResponsePool::Remove(TrajId id) { return entries_.erase(id) > 0; }

std::vector<TrajectoryWork> PartialResponsePool::TakeByReplica(int replica) {
  std::vector<TrajectoryWork> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner_replica == replica) {
      TrajectoryWork work = it->second.work;
      work.kv_resident = false;
      out.push_back(std::move(work));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

int64_t PartialResponsePool::total_context_tokens() const {
  int64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.work.context_tokens;
  }
  return total;
}

}  // namespace laminar
