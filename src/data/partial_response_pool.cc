#include "src/data/partial_response_pool.h"

#include <utility>

#include "src/data/trajectory_digest.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"

namespace laminar {

bool PartialResponsePool::SetTerminal(TrajId id) {
  LAMINAR_CHECK_GE(id, 0);
  size_t idx = static_cast<size_t>(id);
  if (idx >= terminal_.size()) {
    terminal_.resize(idx + 1, 0);
  }
  if (terminal_[idx] != 0) {
    return false;
  }
  terminal_[idx] = 1;
  return true;
}

bool PartialResponsePool::Update(const TrajectoryWork& work, int owner_replica) {
  TrajId id = work.record.id;
  if (IsTerminal(id)) {
    ++stale_updates_;
    return false;
  }
  EntityHandle& handle = index_[id];
  if (Entry* e = table_.Get(handle)) {
    e->work = work;
    e->owner_replica = owner_replica;
  } else {
    handle = table_.Insert({work, owner_replica});
  }
  ++updates_;
  return true;
}

bool PartialResponsePool::MarkCompleted(TrajId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    table_.Remove(it->second);
    index_.erase(it);
  }
  if (!SetTerminal(id)) {
    ++duplicate_completions_;
    return false;
  }
  ++completed_;
  return true;
}

bool PartialResponsePool::MarkDropped(TrajId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    table_.Remove(it->second);
    index_.erase(it);
  }
  if (!SetTerminal(id)) {
    return false;
  }
  ++dropped_;
  return true;
}

bool PartialResponsePool::Remove(TrajId id) {
  bool had_entry = index_.count(id) > 0;
  MarkCompleted(id);
  return had_entry;
}

std::vector<TrajectoryWork> PartialResponsePool::TakeByReplica(int replica) {
  std::vector<TrajectoryWork> out;
  for (auto it = index_.begin(); it != index_.end();) {
    Entry* e = table_.Get(it->second);
    if (e != nullptr && e->owner_replica == replica) {
      // The entry is leaving the pool either way, so move the payload out of
      // the slab instead of copying it.
      TrajectoryWork work = std::move(table_.Remove(it->second).work);
      work.kv_resident = false;
      // A checkpoint taken at a sandbox-call boundary (FinishSegment reports
      // progress before advancing the segment) has its current segment fully
      // decoded. The sandbox call outlives the dead replica, so resolve the
      // interaction the same way RolloutReplica::ExtractAllWork does: append
      // the feedback and resume at the next segment on the destination.
      if (!work.finished() && work.remaining_in_segment() == 0 &&
          work.segment_index + 1 < static_cast<int>(work.record.spec.num_segments())) {
        work.context_tokens += work.current_segment().feedback_tokens;
        work.segment_index += 1;
        work.decoded_in_segment = 0;
      }
      out.push_back(std::move(work));
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

int64_t PartialResponsePool::total_context_tokens() const {
  int64_t total = 0;
  table_.ForEach([&total](EntityHandle /*h*/, const Entry& entry) {
    total += entry.work.context_tokens;
  });
  return total;
}

void PartialResponsePool::Snapshot(SnapshotTx& tx) {
  tx.Begin("partial_pool");
  tx.I64("updates", &updates_);
  tx.I64("completed", &completed_);
  tx.I64("dropped", &dropped_);
  tx.I64("duplicate_completions", &duplicate_completions_);
  tx.I64("stale_updates", &stale_updates_);
  SnapshotPacked(
      tx, "terminal",
      [this](ByteSink& s) {
        s.U64(terminal_.size());
        s.Raw(terminal_.data(), terminal_.size());
      },
      [this](ByteSource& s) {
        terminal_.resize(static_cast<size_t>(s.U64()));
        s.Raw(terminal_.data(), terminal_.size());
      });
  // Every live entry in index iteration order — the order TakeByReplica
  // recovers work in — plus the index's bucket count. Together they pin the
  // exact table layout (bucket runs are contiguous in iteration order), so
  // adoption rebuilds a pool that recovers work identically to the run that
  // wrote the blob. Slab handles are NOT serialized: they are reassigned on
  // adopt and never influence behavior or bytes.
  SnapshotPacked(
      tx, "entries",
      [this](ByteSink& s) {
        s.U64(index_.bucket_count());
        s.U64(index_.size());
        for (const auto& [id, handle] : index_) {
          const Entry* entry = table_.Get(handle);
          LAMINAR_CHECK(entry != nullptr) << "dangling pool index entry " << id;
          s.I64(id);
          s.I32(entry->owner_replica);
          PackWork(s, entry->work);
        }
      },
      [this](ByteSource& s) {
        table_.Clear();
        size_t bucket_count = static_cast<size_t>(s.U64());
        size_t n = static_cast<size_t>(s.U64());
        table_.Reserve(n);
        std::vector<std::pair<TrajId, EntityHandle>> order;
        order.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          TrajId id = s.I64();
          int owner = s.I32();
          TrajectoryWork work = UnpackWork(s);
          order.emplace_back(id, table_.Insert({std::move(work), owner}));
        }
        index_.RebuildFromOrder(bucket_count, order);
      });
  tx.DigestU64("size", index_.size());
  tx.DigestI64("context_tokens", total_context_tokens());
  // The legacy order witness, unchanged from the transitional-map era: folds
  // (id, owner, work digest) in iteration order so verify mode cheaply spots
  // recovery-order drift between two executions.
  uint64_t h = 1469598103934665603ull;
  for (const auto& [id, handle] : index_) {
    const Entry* entry = table_.Get(handle);
    h = SnapshotFoldI64(h, id);
    if (entry != nullptr) {
      h = SnapshotFoldI64(h, entry->owner_replica);
      h = TrajectoryWorkDigest(entry->work, h);
    }
  }
  tx.DigestU64("order_witness_fnv", h);
  tx.End();
}

}  // namespace laminar
