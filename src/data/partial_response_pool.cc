#include "src/data/partial_response_pool.h"

namespace laminar {

bool PartialResponsePool::Update(const TrajectoryWork& work, int owner_replica) {
  TrajId id = work.record.id;
  if (terminal_.count(id) > 0) {
    ++stale_updates_;
    return false;
  }
  Entry& e = entries_[id];
  e.work = work;
  e.owner_replica = owner_replica;
  ++updates_;
  return true;
}

bool PartialResponsePool::MarkCompleted(TrajId id) {
  entries_.erase(id);
  if (!terminal_.insert(id).second) {
    ++duplicate_completions_;
    return false;
  }
  ++completed_;
  return true;
}

bool PartialResponsePool::MarkDropped(TrajId id) {
  entries_.erase(id);
  if (!terminal_.insert(id).second) {
    return false;
  }
  ++dropped_;
  return true;
}

bool PartialResponsePool::Remove(TrajId id) {
  bool had_entry = entries_.count(id) > 0;
  MarkCompleted(id);
  return had_entry;
}

std::vector<TrajectoryWork> PartialResponsePool::TakeByReplica(int replica) {
  std::vector<TrajectoryWork> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner_replica == replica) {
      TrajectoryWork work = it->second.work;
      work.kv_resident = false;
      // A checkpoint taken at a sandbox-call boundary (FinishSegment reports
      // progress before advancing the segment) has its current segment fully
      // decoded. The sandbox call outlives the dead replica, so resolve the
      // interaction the same way RolloutReplica::ExtractAllWork does: append
      // the feedback and resume at the next segment on the destination.
      if (!work.finished() && work.remaining_in_segment() == 0 &&
          work.segment_index + 1 < static_cast<int>(work.record.spec.segments.size())) {
        work.context_tokens += work.current_segment().feedback_tokens;
        work.segment_index += 1;
        work.decoded_in_segment = 0;
      }
      out.push_back(std::move(work));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

int64_t PartialResponsePool::total_context_tokens() const {
  int64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.work.context_tokens;
  }
  return total;
}

}  // namespace laminar
