// Partial-response pool: central, CPU-resident store of in-progress
// trajectory state (paper §3.1, step 2 of the workflow).
//
// Rollouts stream progress here so that a machine failure loses no work: the
// rollout manager redirects the interrupted TrajectoryWork items to healthy
// replicas, which re-prefill the saved context and continue decoding.
#ifndef LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_
#define LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/data/trajectory.h"

namespace laminar {

class PartialResponsePool {
 public:
  // Records/overwrites the saved state for a trajectory. `owner_replica`
  // identifies which replica currently generates it.
  void Update(const TrajectoryWork& work, int owner_replica);

  // Removes a completed/aborted trajectory. Returns true if it was present.
  bool Remove(TrajId id);

  // All in-progress work owned by `replica`, e.g. everything lost when its
  // machine dies. The returned copies have kv_resident=false (the cache died
  // with the machine).
  std::vector<TrajectoryWork> TakeByReplica(int replica);

  bool Contains(TrajId id) const { return entries_.count(id) > 0; }
  size_t size() const { return entries_.size(); }
  int64_t updates() const { return updates_; }
  // Total context tokens held (a proxy for the pool's memory footprint).
  int64_t total_context_tokens() const;

 private:
  struct Entry {
    TrajectoryWork work;
    int owner_replica = -1;
  };
  std::unordered_map<TrajId, Entry> entries_;
  int64_t updates_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_
