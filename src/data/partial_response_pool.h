// Partial-response pool: central, CPU-resident store of in-progress
// trajectory state (paper §3.1, step 2 of the workflow).
//
// Rollouts stream progress here so that a machine failure loses no work: the
// rollout manager redirects the interrupted TrajectoryWork items to healthy
// replicas, which re-prefill the saved context and continue decoding.
//
// The pool is also the system's exactly-once ledger for trajectory outcomes:
// every trajectory ends terminal exactly once — completed (MarkCompleted) or
// explicitly dropped (MarkDropped) — and terminal ids are tombstoned so a
// late Update from a stale owner (e.g. a drained gray-failure replica racing
// its migrated clone) can never resurrect the entry, and a duplicate
// completion is suppressed rather than double-counted.
//
// Layout (DESIGN.md §11): the heavy TrajectoryWork payloads live in a
// generation-tagged slab (EntityTable) and the terminal tombstones in a
// dense bitmap indexed by TrajId — trajectory ids are issued sequentially
// from 0, so the bitmap is equivalent to the old hash set at a fraction of
// the cost. The id index is a RecoveryOrderIndex from TrajId to slab handle
// that performs exactly the insert/erase sequence the old TrajId->Entry map
// did. TakeByReplica's recovery order — which feeds the manager's
// round-robin redirect sharding and therefore the simulation's event
// sequence — is that index's iteration order, a pure function of the
// operation sequence with explicit, serialized layout rules; a direct-boot
// restore reconstructs the exact layout and keeps recovering work in the
// same order the uninterrupted run would have.
#ifndef LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_
#define LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/entity_table.h"
#include "src/data/recovery_order_index.h"
#include "src/data/trajectory.h"

namespace laminar {

class SnapshotTx;

class PartialResponsePool {
 public:
  // Records/overwrites the saved state for a trajectory. `owner_replica`
  // identifies which replica currently generates it (a re-Update by a new
  // owner after migration simply moves ownership). Returns false — and
  // changes nothing — if the trajectory is already terminal (stale update).
  bool Update(const TrajectoryWork& work, int owner_replica);

  // Marks a trajectory terminal-completed and erases its saved state.
  // Returns true the first time; false for a duplicate completion (the
  // caller should suppress the duplicate's side effects).
  bool MarkCompleted(TrajId id);
  // Marks a trajectory terminal-dropped (explicitly abandoned, e.g. work
  // that died with a machine before ever being checkpointed). Returns true
  // the first time; false if the trajectory was already terminal.
  bool MarkDropped(TrajId id);

  // Legacy completion API: MarkCompleted + "was a live entry erased".
  bool Remove(TrajId id);

  // All in-progress work owned by `replica`, e.g. everything lost when its
  // machine dies. The returned items have kv_resident=false (the cache died
  // with the machine). Order follows the pool's internal layout, which is a
  // pure function of the operation sequence — identical runs recover work in
  // identical order.
  std::vector<TrajectoryWork> TakeByReplica(int replica);

  bool Contains(TrajId id) const { return index_.count(id) > 0; }
  bool IsTerminal(TrajId id) const {
    return id >= 0 && static_cast<size_t>(id) < terminal_.size() &&
           terminal_[static_cast<size_t>(id)] != 0;
  }
  size_t size() const { return index_.size(); }
  int64_t updates() const { return updates_; }
  int64_t completed() const { return completed_; }
  int64_t dropped() const { return dropped_; }
  int64_t duplicate_completions() const { return duplicate_completions_; }
  int64_t stale_updates() const { return stale_updates_; }
  // Total context tokens held (a proxy for the pool's memory footprint).
  int64_t total_context_tokens() const;

  // Snapshot (src/snapshot, DESIGN.md §13): counters, the terminal bitmap,
  // and every live entry — id, owner and full work payload — serialized in
  // index iteration order alongside the index's bucket count, so a direct
  // boot reconstructs the exact recovery order. The legacy order-witness
  // digest rides along unchanged for cheap verify-mode drift detection.
  void Snapshot(SnapshotTx& tx);

 private:
  struct Entry {
    TrajectoryWork work;
    int owner_replica = -1;
  };

  // Returns false if `id` was already terminal (the first call wins).
  bool SetTerminal(TrajId id);

  EntityTable<Entry> table_;
  // Id -> slab handle. Doubles as the recovery-order witness: see the file
  // comment. Do not add or reorder structural operations (insert/erase) on
  // it without mirroring what the pre-slab TrajId->Entry map performed.
  RecoveryOrderIndex index_;
  std::vector<uint8_t> terminal_;  // tombstone bitmap, indexed by TrajId
  int64_t updates_ = 0;
  int64_t completed_ = 0;
  int64_t dropped_ = 0;
  int64_t duplicate_completions_ = 0;
  int64_t stale_updates_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_PARTIAL_RESPONSE_POOL_H_
