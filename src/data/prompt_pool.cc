#include "src/data/prompt_pool.h"

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

void PromptPool::Snapshot(SnapshotTx& tx) {
  tx.Begin("prompt_pool");
  tx.I64("next_prompt_id", &next_prompt_id_);
  tx.I64As("next_traj_id", &next_traj_id_);
  rng_.Snapshot(tx);
  tx.Begin("generator");
  generator_.Snapshot(tx);
  tx.End();
  tx.End();
}

PromptPool::PromptPool(WorkloadGenerator generator, int group_size, Rng rng)
    : generator_(std::move(generator)), group_size_(group_size), rng_(rng) {
  LAMINAR_CHECK_GT(group_size_, 0);
}

std::vector<TrajectoryRecord> PromptPool::NextGroup(int weight_version) {
  std::vector<TrajectoryRecord> group;
  group.reserve(group_size_);
  int64_t prompt_id = next_prompt_id_++;
  double difficulty = rng_.Uniform();
  for (int g = 0; g < group_size_; ++g) {
    TrajectoryRecord rec;
    rec.id = next_traj_id_++;
    rec.prompt_id = prompt_id;
    rec.group_index = g;
    rec.difficulty = difficulty;
    rec.spec = generator_.Sample(weight_version);
    group.push_back(std::move(rec));
  }
  return group;
}

std::vector<TrajectoryRecord> PromptPool::NextBatch(int num_trajectories, int weight_version) {
  LAMINAR_CHECK_EQ(num_trajectories % group_size_, 0)
      << "batch must be a whole number of GRPO groups";
  std::vector<TrajectoryRecord> batch;
  batch.reserve(num_trajectories);
  for (int i = 0; i < num_trajectories / group_size_; ++i) {
    auto group = NextGroup(weight_version);
    for (auto& rec : group) {
      batch.push_back(std::move(rec));
    }
  }
  return batch;
}

}  // namespace laminar
