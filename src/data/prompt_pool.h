// Prompt pool: supplies prompts (initial states) for trajectory generation.
//
// Each prompt spawns a GRPO group of `group_size` trajectories. The pool is
// effectively unbounded (the dataset is recycled), so generation never
// starves for prompts; it exists to hand out stable prompt ids and to track
// how many prompts have been consumed.
#ifndef LAMINAR_SRC_DATA_PROMPT_POOL_H_
#define LAMINAR_SRC_DATA_PROMPT_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/trajectory.h"
#include "src/workload/generator.h"

namespace laminar {

class PromptPool {
 public:
  PromptPool(WorkloadGenerator generator, int group_size, Rng rng);

  // Creates the records for one prompt's full group, sampling the generation
  // plan under `weight_version` (lengths may drift with the version).
  std::vector<TrajectoryRecord> NextGroup(int weight_version);

  // Creates `num_trajectories` worth of groups (must be a multiple of the
  // group size).
  std::vector<TrajectoryRecord> NextBatch(int num_trajectories, int weight_version);

  int group_size() const { return group_size_; }
  int64_t prompts_issued() const { return next_prompt_id_; }
  int64_t trajectories_issued() const { return next_traj_id_; }
  const WorkloadGenerator& generator() const { return generator_; }

  // Snapshot of the id counters and the sampling stream (src/snapshot).
  void Snapshot(SnapshotTx& tx);

 private:
  WorkloadGenerator generator_;
  int group_size_;
  Rng rng_;
  int64_t next_prompt_id_ = 0;
  TrajId next_traj_id_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_PROMPT_POOL_H_
