// Deterministic, serializable recovery-order index (DESIGN.md §11).
//
// PR 5 left a transitional std::unordered_map<TrajId, EntityHandle> inside
// the partial-response pool as an implicit order witness: TakeByReplica's
// recovery order is that map's iteration order, which feeds the rollout
// manager's round-robin redirect sharding and therefore the post-fault event
// sequence of every chaos run. Committed corpus fingerprints pin that order,
// but nothing in the repo stated its rules — they were inherited from
// whatever the standard library happened to do, and the layout could not be
// serialized, which blocked direct-boot restore.
//
// This class replaces the map with an open-hashing table whose layout rules
// are explicit, pinned, and round-trippable:
//
//   - one global singly-linked list holds iteration order; the bucket array
//     maps bucket -> the node *preceding* that bucket's first node, so every
//     bucket's chain is a contiguous run of the global list;
//   - a new key inserts at the head of its bucket's run (at the global list
//     head when the bucket was empty, making the previous head's bucket
//     point at the new node);
//   - erasing splices a node out of its run with before-pointer fixups;
//   - the table grows along the fixed chain 1 -> 13 -> 29 -> ... whenever
//     an insert would push size past the bucket count, re-threading nodes in
//     global order into the new buckets;
//   - bucket index = static_cast<uint64_t>(key) % bucket_count.
//
// These rules reproduce the iteration order of the transitional map on this
// repo's toolchain exactly — asserted operation-for-operation against
// std::unordered_map by the property suite in data_test.cc, and end-to-end
// by the committed corpus fingerprints. Unlike the map, the layout is fully
// determined by (bucket_count, entries in iteration order): bucket runs are
// contiguous, so RebuildFromOrder() reconstructs the exact structure from a
// snapshot and the restored table keeps making the same layout decisions.
#ifndef LAMINAR_SRC_DATA_RECOVERY_ORDER_INDEX_H_
#define LAMINAR_SRC_DATA_RECOVERY_ORDER_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/entity_table.h"
#include "src/common/logging.h"
#include "src/data/trajectory.h"

namespace laminar {

class RecoveryOrderIndex {
 private:
  struct Node;
  struct NodeBase {
    Node* next = nullptr;
  };
  struct Node : NodeBase {
    std::pair<const TrajId, EntityHandle> kv;
    Node(TrajId id, EntityHandle h) : kv(id, h) {}
  };

 public:
  using value_type = std::pair<const TrajId, EntityHandle>;

  RecoveryOrderIndex() = default;
  ~RecoveryOrderIndex() { clear(); }
  RecoveryOrderIndex(const RecoveryOrderIndex&) = delete;
  RecoveryOrderIndex& operator=(const RecoveryOrderIndex&) = delete;

  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return n_->kv; }
    value_type* operator->() const { return &n_->kv; }
    iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) = default;

   private:
    friend class RecoveryOrderIndex;
    explicit iterator(Node* n) : n_(n) {}
    Node* n_ = nullptr;
  };

  class const_iterator {
   public:
    const_iterator() = default;
    const value_type& operator*() const { return n_->kv; }
    const value_type* operator->() const { return &n_->kv; }
    const_iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) = default;

   private:
    friend class RecoveryOrderIndex;
    explicit const_iterator(const Node* n) : n_(n) {}
    const Node* n_ = nullptr;
  };

  iterator begin() { return iterator(head_.next); }
  iterator end() { return iterator(nullptr); }
  const_iterator begin() const { return const_iterator(head_.next); }
  const_iterator end() const { return const_iterator(nullptr); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t bucket_count() const { return bucket_count_; }

  // Insert-if-absent, returning the (possibly fresh, zero-initialized)
  // mapped handle — the same contract as std::unordered_map::operator[].
  EntityHandle& operator[](TrajId id) {
    size_t bkt = BucketOf(id, bucket_count_);
    if (Node* n = FindInBucket(bkt, id)) {
      return n->kv.second;
    }
    if (size_ + 1 > threshold_) {
      Rehash(NextBucketCount(bucket_count_));
      bkt = BucketOf(id, bucket_count_);
    }
    Node* node = new Node(id, EntityHandle{});
    InsertBucketBegin(bkt, node);
    ++size_;
    return node->kv.second;
  }

  iterator find(TrajId id) {
    return iterator(FindInBucket(BucketOf(id, bucket_count_), id));
  }
  const_iterator find(TrajId id) const {
    return const_iterator(FindInBucket(BucketOf(id, bucket_count_), id));
  }
  size_t count(TrajId id) const {
    return FindInBucket(BucketOf(id, bucket_count_), id) != nullptr ? 1 : 0;
  }

  // Unlinks `pos` (with bucket before-pointer fixups) and returns the next
  // node in iteration order. Erase never shrinks the bucket array.
  iterator erase(iterator pos) {
    Node* n = pos.n_;
    size_t bkt = BucketOf(n->kv.first, bucket_count_);
    NodeBase* prev = buckets_[bkt];
    while (prev->next != n) {
      prev = prev->next;
    }
    Node* next = n->next;
    if (prev == buckets_[bkt]) {
      // n heads its bucket's run. If the run ends here the bucket empties:
      // the next bucket inherits n's before-node and this bucket unhooks.
      size_t next_bkt = next != nullptr ? BucketOf(next->kv.first, bucket_count_) : 0;
      if (next == nullptr || next_bkt != bkt) {
        if (next != nullptr) {
          buckets_[next_bkt] = buckets_[bkt];
        }
        buckets_[bkt] = nullptr;
      }
    } else if (next != nullptr) {
      // Mid-run erase whose successor starts the next bucket's run: that
      // bucket's before-node moves back to n's predecessor.
      size_t next_bkt = BucketOf(next->kv.first, bucket_count_);
      if (next_bkt != bkt) {
        buckets_[next_bkt] = prev;
      }
    }
    prev->next = next;
    delete n;
    --size_;
    return iterator(next);
  }

  void clear() {
    Node* n = head_.next;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
    head_.next = nullptr;
    buckets_.assign(1, nullptr);
    bucket_count_ = 1;
    threshold_ = 0;
    size_ = 0;
  }

  // Snapshot adoption (DESIGN.md §13): reconstructs the exact table from its
  // serialized witness — the bucket count plus (key, handle) pairs in
  // iteration order. CHECK-fails if the entry order is not a valid layout
  // (bucket runs must be contiguous).
  void RebuildFromOrder(size_t bucket_count,
                        const std::vector<std::pair<TrajId, EntityHandle>>& entries) {
    clear();
    LAMINAR_CHECK_GE(bucket_count, 1u);
    if (bucket_count == 1) {
      LAMINAR_CHECK(entries.empty()) << "recovery index cannot hold entries pre-growth";
      return;
    }
    LAMINAR_CHECK_LE(entries.size(), bucket_count);
    bucket_count_ = bucket_count;
    threshold_ = bucket_count;
    buckets_.assign(bucket_count, nullptr);
    NodeBase* prev = &head_;
    size_t prev_bkt = static_cast<size_t>(-1);
    for (const auto& [id, handle] : entries) {
      Node* n = new Node(id, handle);
      prev->next = n;
      size_t bkt = BucketOf(id, bucket_count_);
      if (bkt != prev_bkt) {
        LAMINAR_CHECK(buckets_[bkt] == nullptr)
            << "recovery index bucket " << bkt << " split across runs";
        buckets_[bkt] = prev;
        prev_bkt = bkt;
      }
      prev = n;
      ++size_;
    }
  }

 private:
  static size_t BucketOf(TrajId id, size_t bucket_count) {
    return static_cast<size_t>(static_cast<uint64_t>(id)) % bucket_count;
  }

  // The fixed growth chain. Pinned because committed fingerprints depend on
  // recovery order, and recovery order depends on exactly when the table
  // grows; the first insert immediately leaves the 1-bucket initial state.
  static size_t NextBucketCount(size_t current) {
    static constexpr size_t kChain[] = {
        1,       13,      29,      59,      127,      257,      541,  1109,
        2357,    5087,    10273,   20753,   42043,    85229,    172933,
        351061,  712697,  1447153, 2938679, 5967347,  12117689, 24607243};
    for (size_t i = 0; i + 1 < sizeof(kChain) / sizeof(kChain[0]); ++i) {
      if (kChain[i] == current) {
        return kChain[i + 1];
      }
    }
    LAMINAR_CHECK(false) << "recovery index growth chain exhausted at " << current;
    return 0;
  }

  Node* FindInBucket(size_t bkt, TrajId id) const {
    NodeBase* before = buckets_[bkt];
    if (before == nullptr) {
      return nullptr;
    }
    for (Node* n = before->next;
         n != nullptr && BucketOf(n->kv.first, bucket_count_) == bkt; n = n->next) {
      if (n->kv.first == id) {
        return n;
      }
    }
    return nullptr;
  }

  void InsertBucketBegin(size_t bkt, Node* node) {
    if (buckets_[bkt] != nullptr) {
      node->next = buckets_[bkt]->next;
      buckets_[bkt]->next = node;
    } else {
      node->next = head_.next;
      head_.next = node;
      if (node->next != nullptr) {
        buckets_[BucketOf(node->next->kv.first, bucket_count_)] = node;
      }
      buckets_[bkt] = &head_;
    }
  }

  void Rehash(size_t new_count) {
    std::vector<NodeBase*> fresh(new_count, nullptr);
    Node* p = head_.next;
    head_.next = nullptr;
    size_t head_bkt = 0;  // bucket currently headed by the global list head
    while (p != nullptr) {
      Node* next = p->next;
      size_t bkt = BucketOf(p->kv.first, new_count);
      if (fresh[bkt] == nullptr) {
        p->next = head_.next;
        head_.next = p;
        fresh[bkt] = &head_;
        if (p->next != nullptr) {
          fresh[head_bkt] = p;
        }
        head_bkt = bkt;
      } else {
        p->next = fresh[bkt]->next;
        fresh[bkt]->next = p;
      }
      p = next;
    }
    buckets_ = std::move(fresh);
    bucket_count_ = new_count;
    threshold_ = new_count;
  }

  NodeBase head_;  // sentinel before the global list's first node
  // buckets_[b] points at the node *before* bucket b's first node (&head_
  // when the bucket's run heads the global list); nullptr = empty bucket.
  std::vector<NodeBase*> buckets_ = std::vector<NodeBase*>(1, nullptr);
  size_t bucket_count_ = 1;
  size_t threshold_ = 0;  // rehash when an insert would push size past this
  size_t size_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_RECOVERY_ORDER_INDEX_H_
