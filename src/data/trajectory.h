// Trajectory records and in-progress work state.
//
// A TrajectoryRecord is the durable description of one trajectory: its
// generation plan, the policy version(s) that produced it, its reward and
// its timing. TrajectoryWork wraps a record with generation progress; it is
// the unit that moves between rollout replicas (repack, failure redirect)
// and is checkpointed in the partial-response pool.
#ifndef LAMINAR_SRC_DATA_TRAJECTORY_H_
#define LAMINAR_SRC_DATA_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/workload/trajectory_spec.h"

namespace laminar {

using TrajId = int64_t;
constexpr TrajId kInvalidTrajId = -1;

// Online serving requests (DESIGN.md §14) ride the replica engine as
// TrajectoryWork but never enter the training data path (prompt ledger,
// PartialResponsePool, experience buffer — all of which index dense rollout
// ids). They live in their own id range so every layer can tell the two
// apart with one comparison.
constexpr TrajId kServingIdBase = TrajId{1} << 40;
inline constexpr bool IsServingId(TrajId id) { return id >= kServingIdBase; }

struct TrajectoryRecord {
  TrajId id = kInvalidTrajId;
  int64_t prompt_id = -1;
  int group_index = 0;  // index within the prompt's GRPO group
  TrajectorySpec spec;

  // Policy versions used across the trajectory's lifetime. A single entry for
  // ordinary generation; multiple entries when partial rollout switched
  // weights mid-generation (the paper's "mixed-version" pathology).
  std::vector<int> weight_versions;

  // Outcome (filled by the reward function at completion).
  double reward = 0.0;
  // Probability the generating policy assigned to the sampled outcome; used
  // for importance ratios in the policy update (src/policy).
  double behavior_prob = 0.0;
  double difficulty = 0.5;
  bool success = false;

  SimTime created = SimTime::Zero();
  SimTime finished = SimTime::Zero();
  // Actor version at the moment generation finished: the paper's inherent
  // staleness is finish_actor_version - generation version (§6).
  int finish_actor_version = 0;
  int consume_actor_version = 0;

  int generation_version() const {
    return weight_versions.empty() ? 0 : weight_versions.front();
  }
  int latest_version() const {
    return weight_versions.empty() ? 0 : weight_versions.back();
  }
  bool mixed_version() const {
    for (size_t i = 1; i < weight_versions.size(); ++i) {
      if (weight_versions[i] != weight_versions[0]) {
        return true;
      }
    }
    return false;
  }
  int num_versions() const {
    int n = weight_versions.empty() ? 0 : 1;
    for (size_t i = 1; i < weight_versions.size(); ++i) {
      if (weight_versions[i] != weight_versions[i - 1]) {
        ++n;
      }
    }
    return n;
  }
  int inherent_staleness() const { return finish_actor_version - generation_version(); }
  int consume_staleness() const { return consume_actor_version - generation_version(); }
  // Prompt + response + env feedback tokens: the paper's throughput metric
  // counts all of them.
  int64_t total_tokens() const { return spec.total_context_tokens(); }
};

// Generation progress for an in-flight trajectory.
struct TrajectoryWork {
  TrajectoryRecord record;
  int segment_index = 0;
  int64_t decoded_in_segment = 0;
  // Tokens currently in context (prompt + everything decoded + feedback so far).
  int64_t context_tokens = 0;
  // True while the context is materialized in some replica's KVCache. A work
  // item that lost its cache (preemption, migration, failure) must re-prefill
  // `context_tokens` before decoding resumes.
  bool kv_resident = false;

  void InitContext() { context_tokens = record.spec.prompt_tokens; }

  bool finished() const {
    return segment_index >= static_cast<int>(record.spec.num_segments());
  }
  const TrajectorySegment& current_segment() const {
    return record.spec.segments()[segment_index];
  }
  int64_t remaining_in_segment() const {
    return current_segment().decode_tokens - decoded_in_segment;
  }
  int64_t remaining_decode_tokens() const {
    if (finished()) {
      return 0;
    }
    int64_t n = remaining_in_segment();
    const std::vector<TrajectorySegment>& segments = record.spec.segments();
    for (size_t i = segment_index + 1; i < segments.size(); ++i) {
      n += segments[i].decode_tokens;
    }
    return n;
  }
};

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_TRAJECTORY_H_
