// Order-sensitive FNV digests over trajectory payloads, used by the
// snapshot witnesses of the data-path pools (DESIGN.md §13). Trajectory
// payloads are never adopted field-by-field — restore replays the run — so
// the pools serialize these digests instead of the heavy records.
#ifndef LAMINAR_SRC_DATA_TRAJECTORY_DIGEST_H_
#define LAMINAR_SRC_DATA_TRAJECTORY_DIGEST_H_

#include <cstdint>

#include "src/data/trajectory.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

inline uint64_t SnapshotFoldU64(uint64_t h, uint64_t v) {
  return SnapshotFnv1a(&v, sizeof(v), h);
}
inline uint64_t SnapshotFoldI64(uint64_t h, int64_t v) {
  return SnapshotFoldU64(h, static_cast<uint64_t>(v));
}
inline uint64_t SnapshotFoldF64(uint64_t h, double v) {
  return SnapshotFoldU64(h, SnapshotF64Bits(v));
}

inline uint64_t TrajectorySpecDigest(const TrajectorySpec& spec, uint64_t h) {
  h = SnapshotFoldI64(h, spec.prompt_tokens);
  h = SnapshotFoldU64(h, spec.num_segments());
  for (const TrajectorySegment& seg : spec.segments()) {
    h = SnapshotFoldI64(h, seg.decode_tokens);
    h = SnapshotFoldF64(h, seg.env_latency);
    h = SnapshotFoldI64(h, seg.feedback_tokens);
  }
  return h;
}

inline uint64_t TrajectoryRecordDigest(const TrajectoryRecord& r, uint64_t h) {
  h = SnapshotFoldI64(h, r.id);
  h = SnapshotFoldI64(h, r.prompt_id);
  h = SnapshotFoldI64(h, r.group_index);
  h = TrajectorySpecDigest(r.spec, h);
  h = SnapshotFoldU64(h, r.weight_versions.size());
  for (int v : r.weight_versions) {
    h = SnapshotFoldI64(h, v);
  }
  h = SnapshotFoldF64(h, r.reward);
  h = SnapshotFoldF64(h, r.behavior_prob);
  h = SnapshotFoldF64(h, r.difficulty);
  h = SnapshotFoldU64(h, r.success ? 1 : 0);
  h = SnapshotFoldF64(h, r.created.seconds());
  h = SnapshotFoldF64(h, r.finished.seconds());
  h = SnapshotFoldI64(h, r.finish_actor_version);
  h = SnapshotFoldI64(h, r.consume_actor_version);
  return h;
}

inline uint64_t TrajectoryWorkDigest(const TrajectoryWork& w, uint64_t h) {
  h = TrajectoryRecordDigest(w.record, h);
  h = SnapshotFoldI64(h, w.segment_index);
  h = SnapshotFoldI64(h, w.decoded_in_segment);
  h = SnapshotFoldI64(h, w.context_tokens);
  h = SnapshotFoldU64(h, w.kv_resident ? 1 : 0);
  return h;
}

}  // namespace laminar

#endif  // LAMINAR_SRC_DATA_TRAJECTORY_DIGEST_H_
