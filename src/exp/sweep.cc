#include "src/exp/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/core/run.h"

namespace laminar {

std::vector<SystemReport> RunExperiments(const std::vector<RlSystemConfig>& configs,
                                         const SweepOptions& options) {
  std::vector<SystemReport> reports(configs.size());
  if (configs.empty()) {
    return reports;
  }

  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  if (threads > configs.size()) {
    threads = configs.size();
  }

  if (threads == 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      reports[i] = RunExperiment(configs[i]);
    }
    return reports;
  }

  // Work-stealing by atomic counter: each worker claims the next unstarted
  // config. Claim order varies across runs; result contents do not, because
  // every simulation is self-contained (own clock, own Rng streams).
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size() || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        reports[i] = RunExperiment(configs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return reports;
}

}  // namespace laminar
