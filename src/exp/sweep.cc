#include "src/exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/thread_budget.h"
#include "src/core/run.h"

namespace laminar {

std::vector<SystemReport> RunExperiments(const std::vector<RlSystemConfig>& configs,
                                         const SweepOptions& options) {
  std::vector<SystemReport> reports(configs.size());
  if (configs.empty()) {
    return reports;
  }

  // Auto-sized sweeps draw from the process-wide thread budget shared with
  // the sharded simulator's worker pools, so a sweep of sharded configs
  // doesn't oversubscribe (run-level parallelism wins; inner shard pools
  // degrade to inline). Explicit num_threads bypasses the budget.
  int budget_grant = 0;
  size_t threads = options.num_threads;
  if (threads == 0) {
    budget_grant = ThreadBudget::Acquire(
        static_cast<int>(std::min(configs.size(), static_cast<size_t>(256))));
    threads = static_cast<size_t>(budget_grant) + 1;  // caller's thread runs too
  }
  if (threads > configs.size()) {
    threads = configs.size();
  }

  if (threads == 1) {
    ThreadBudget::Release(budget_grant);
    for (size_t i = 0; i < configs.size(); ++i) {
      reports[i] = RunExperiment(configs[i]);
    }
    return reports;
  }

  // Work-stealing by atomic counter: each worker claims the next unstarted
  // config. Claim order varies across runs; result contents do not, because
  // every simulation is self-contained (own clock, own Rng streams).
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size() || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        reports[i] = RunExperiment(configs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  ThreadBudget::Release(budget_grant);
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return reports;
}

}  // namespace laminar
