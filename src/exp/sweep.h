// Parallel experiment sweeps.
//
// Every figure in the paper is a grid of independent experiments — systems x
// model scales x cluster sizes — and each experiment is one single-threaded,
// bit-deterministic simulation. The two facts compose: a sweep can fan the
// grid out across OS threads with no effect on any result. RunExperiments()
// is that seam; reports come back in submission order, byte-identical to
// running RunExperiment() serially over the same configs (see DESIGN.md
// "Simulation engine internals" for the determinism contract).
#ifndef LAMINAR_SRC_EXP_SWEEP_H_
#define LAMINAR_SRC_EXP_SWEEP_H_

#include <vector>

#include "src/core/config.h"

namespace laminar {

struct SweepOptions {
  // Worker threads to fan out across; 0 means one per hardware thread.
  // The sweep never uses more threads than configs.
  unsigned num_threads = 0;
};

// Runs each config as an independent simulation, in parallel across a thread
// pool. reports[i] corresponds to configs[i].
std::vector<SystemReport> RunExperiments(const std::vector<RlSystemConfig>& configs,
                                         const SweepOptions& options = {});

}  // namespace laminar

#endif  // LAMINAR_SRC_EXP_SWEEP_H_
