#include "src/fault/fault_process.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace laminar {
namespace {

// Log-uniform draw over [lo, hi]: transient fault durations span orders of
// magnitude (a half-second hiccup vs a minutes-long brownout), and real
// incident data is heavy-tailed in exactly this way.
double LogUniform(Rng& rng, double lo, double hi) {
  LAMINAR_CHECK_GT(lo, 0.0);
  LAMINAR_CHECK_GE(hi, lo);
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

FaultProcess::FaultProcess(FaultProcessConfig config) : config_(config) {
  LAMINAR_CHECK_GE(config_.start_seconds, 0.0);
  LAMINAR_CHECK_GE(config_.horizon_seconds, 0.0);
}

std::vector<FaultEvent> FaultProcess::Generate(uint64_t seed) const {
  std::vector<FaultEvent> schedule;
  const double start = config_.start_seconds;
  const double end = start + config_.horizon_seconds;
  Rng root(seed);

  // One Poisson arrival stream per component class; `fill` decorates each
  // arrival with its class-specific target/duration/severity draws.
  auto emit = [&](const char* stream, double per_hour,
                  const std::function<void(Rng&, FaultEvent&)>& fill) {
    if (per_hour <= 0.0 || end <= start) {
      return;
    }
    Rng rng = root.Fork(stream);
    double rate = per_hour / 3600.0;
    double t = start;
    for (;;) {
      t += rng.Exponential(rate);
      if (t >= end) {
        break;
      }
      FaultEvent e;
      e.at_seconds = t;
      fill(rng, e);
      schedule.push_back(e);
    }
  };

  const int machines = config_.num_machines;
  const int replicas = config_.num_replicas;
  if (machines > 0) {
    emit("machine-fail", config_.machine_fail_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kRolloutMachine;
      e.target = static_cast<int>(rng.UniformInt(0, machines - 1));
    });
    emit("relay-fail", config_.relay_fail_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kRelayProcess;
      e.target = static_cast<int>(rng.UniformInt(0, machines - 1));
    });
    emit("machine-stall", config_.machine_stall_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kMachineStall;
      e.target = static_cast<int>(rng.UniformInt(0, machines - 1));
      e.duration_seconds =
          LogUniform(rng, config_.stall_duration_lo, config_.stall_duration_hi);
    });
    emit("link-flap", config_.link_flap_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kLinkFlap;
      e.target = static_cast<int>(rng.UniformInt(0, machines - 1));
      e.duration_seconds =
          LogUniform(rng, config_.flap_duration_lo, config_.flap_duration_hi);
    });
    emit("message-drop", config_.message_drop_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kMessageDrop;
      e.target = static_cast<int>(rng.UniformInt(0, machines - 1));
    });
  }
  emit("master-fail", config_.master_fail_per_hour, [&](Rng&, FaultEvent& e) {
    e.kind = FaultKind::kMasterRelay;
    e.target = 0;  // resolved to the current master at fire time
  });
  emit("trainer-fail", config_.trainer_fail_per_hour, [&](Rng&, FaultEvent& e) {
    e.kind = FaultKind::kTrainerWorker;
    e.target = 0;
  });
  emit("crash-restart", config_.crash_restart_per_hour, [&](Rng&, FaultEvent& e) {
    e.kind = FaultKind::kCrashRestart;
    e.target = 0;
    e.duration_seconds = config_.crash_restart_recovery_seconds;
  });
  if (replicas > 0) {
    emit("replica-slow", config_.replica_slow_per_hour, [&](Rng& rng, FaultEvent& e) {
      e.kind = FaultKind::kReplicaSlow;
      e.target = static_cast<int>(rng.UniformInt(0, replicas - 1));
      e.severity = rng.Uniform(config_.slow_factor_lo, config_.slow_factor_hi);
      e.duration_seconds =
          LogUniform(rng, config_.slow_duration_lo, config_.slow_duration_hi);
    });
  }

  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at_seconds != b.at_seconds) {
                       return a.at_seconds < b.at_seconds;
                     }
                     if (a.kind != b.kind) {
                       return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                     }
                     return a.target < b.target;
                   });
  return schedule;
}

}  // namespace laminar
