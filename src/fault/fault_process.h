// Stochastic chaos engine: seeded, deterministic generation of fault
// schedules for the injector.
//
// Each component class (machines, relays, the master, the trainer, links,
// replicas, broadcast messages) fails as an independent Poisson process:
// inter-arrival times are exponential in the class's configured rate, and
// each arrival picks a uniform target plus — for transient kinds — a
// log-uniform duration and, for fail-slow, a uniform throughput multiplier.
// Every class draws from its own Rng stream forked from the schedule seed,
// so enabling one class never perturbs another, and the merged schedule is
// sorted by (time, kind, target) so identical seeds produce byte-identical
// schedules on every platform.
#ifndef LAMINAR_SRC_FAULT_FAULT_PROCESS_H_
#define LAMINAR_SRC_FAULT_FAULT_PROCESS_H_

#include <cstdint>
#include <vector>

#include "src/fault/injector.h"

namespace laminar {

struct FaultProcessConfig {
  // Schedule window: faults arrive in [start_seconds, start_seconds +
  // horizon_seconds). The start offset lets the system warm up first.
  double start_seconds = 120.0;
  double horizon_seconds = 0.0;  // 0 = caller resolves (e.g. max_sim_seconds)

  // Target ranges. Machine-addressed kinds draw from [0, num_machines),
  // fail-slow from [0, num_replicas). Classes with a zero range are skipped.
  int num_machines = 0;
  int num_replicas = 0;

  // Poisson arrival rates, in expected events per hour across the whole
  // component class (not per component). Zero disables the class.
  double machine_fail_per_hour = 0.0;
  double relay_fail_per_hour = 0.0;
  double master_fail_per_hour = 0.0;
  double trainer_fail_per_hour = 0.0;
  double machine_stall_per_hour = 0.0;
  double link_flap_per_hour = 0.0;
  double replica_slow_per_hour = 0.0;
  double message_drop_per_hour = 0.0;
  double crash_restart_per_hour = 0.0;

  // Transient fault durations, sampled log-uniformly from [lo, hi] seconds.
  double stall_duration_lo = 0.5;
  double stall_duration_hi = 8.0;
  double flap_duration_lo = 0.2;
  double flap_duration_hi = 5.0;
  double slow_duration_lo = 60.0;
  double slow_duration_hi = 400.0;
  // Fail-slow throughput multiplier, sampled uniformly from [lo, hi].
  double slow_factor_lo = 0.2;
  double slow_factor_hi = 0.5;

  // Recovery knobs consumed by the system wiring (not by Generate()): how
  // long a dead relay process / trainer worker takes to restart.
  double relay_restart_seconds = 30.0;
  double trainer_recovery_seconds = 45.0;
  // kCrashRestart only: how long the crashed trainer process takes to come
  // back up from its last checkpoint snapshot. Baked into the event's
  // duration by Generate(), unlike the wiring-consumed knobs above.
  double crash_restart_recovery_seconds = 60.0;
};

class FaultProcess {
 public:
  explicit FaultProcess(FaultProcessConfig config);

  // Generates the full fault schedule for `seed`. Pure: same seed + config
  // always yields the same vector, independent of call order or platform.
  std::vector<FaultEvent> Generate(uint64_t seed) const;

  const FaultProcessConfig& config() const { return config_; }

 private:
  FaultProcessConfig config_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_FAULT_PROCESS_H_
