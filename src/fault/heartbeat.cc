#include "src/fault/heartbeat.h"

#include "src/common/logging.h"

namespace laminar {

HeartbeatMonitor::HeartbeatMonitor(Simulator* sim, double period, int miss_threshold,
                                   FailureHandler on_failure)
    : sim_(sim), period_(period), miss_threshold_(miss_threshold),
      on_failure_(std::move(on_failure)) {
  LAMINAR_CHECK_GT(period_, 0.0);
  LAMINAR_CHECK_GT(miss_threshold_, 0);
  sweep_ = std::make_unique<PeriodicTask>(sim_, period_, [this] { Sweep(); });
}

void HeartbeatMonitor::Start() { sweep_->Start(); }

void HeartbeatMonitor::Stop() { sweep_->Stop(); }

void HeartbeatMonitor::Register(int node) {
  nodes_[node] = Node{true, false, sim_->Now()};
}

void HeartbeatMonitor::MarkDead(int node) {
  auto it = nodes_.find(node);
  LAMINAR_CHECK(it != nodes_.end());
  it->second.beating = false;
}

void HeartbeatMonitor::Revive(int node) {
  nodes_[node] = Node{true, false, sim_->Now()};
}

bool HeartbeatMonitor::IsMonitored(int node) const { return nodes_.count(node) > 0; }

void HeartbeatMonitor::Sweep() {
  SimTime now = sim_->Now();
  for (auto& [id, node] : nodes_) {
    if (node.beating) {
      node.last_beat = now;  // healthy nodes beat at least once per sweep
      continue;
    }
    if (!node.reported && now - node.last_beat > period_ * miss_threshold_) {
      node.reported = true;
      ++failures_reported_;
      if (on_failure_) {
        on_failure_(id);
      }
    }
  }
}

}  // namespace laminar
