#include "src/fault/heartbeat.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"

namespace laminar {
namespace {

constexpr double kLn10 = 2.302585092994046;

// -log10 of the standard-normal lower-tail probability at deficit z (in
// deviations below the mean). Zero for at-or-above-mean observations.
double PhiOfDeficit(double z) {
  if (z <= 0.0) {
    return 0.0;
  }
  double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (tail <= 0.0) {
    // erfc underflows around z ~ 38; the score there is astronomically
    // conclusive anyway. Cap keeps the value finite and comparable.
    return 350.0;
  }
  return -std::log10(tail);
}

}  // namespace

HeartbeatMonitor::HeartbeatMonitor(Simulator* sim, double period, int miss_threshold,
                                   FailureHandler on_failure)
    : sim_(sim), period_(period), miss_threshold_(miss_threshold),
      on_failure_(std::move(on_failure)) {
  LAMINAR_CHECK_GT(period_, 0.0);
  LAMINAR_CHECK_GT(miss_threshold_, 0);
  sweep_ = std::make_unique<PeriodicTask>(
      sim_, period_, ContinuationComponentId(kContFamilyHeartbeat), kContSweep,
      [this] { Sweep(); });
  sim_->continuations().Register(ContinuationComponentId(kContFamilyHeartbeat), this);
}

HeartbeatMonitor::~HeartbeatMonitor() {
  for (auto& [id, node] : nodes_) {
    if (node.stall_heal != kInvalidEventId) {
      sim_->Cancel(node.stall_heal);
    }
  }
  sim_->continuations().Unregister(ContinuationComponentId(kContFamilyHeartbeat));
}

void HeartbeatMonitor::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  switch (kind) {
    case kContStallHeal:
      HealStall(static_cast<int>(p.a));
      return;
    case kContSweep:
      sweep_->Fire();
      return;
  }
  LAMINAR_CHECK(false) << "unknown heartbeat continuation kind " << kind;
}

void HeartbeatMonitor::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                           SimTime at) {
  switch (kind) {
    case kContStallHeal: {
      auto it = nodes_.find(static_cast<int>(p.a));
      LAMINAR_CHECK(it != nodes_.end()) << "pending stall heal for unknown node " << p.a;
      it->second.stall_heal = sim_->ScheduleContinuationAt(
          at, ContinuationComponentId(kContFamilyHeartbeat), kind, p);
      return;
    }
    case kContSweep:
      sweep_->RestorePending(at);
      return;
  }
  LAMINAR_CHECK(false) << "heartbeat continuation kind " << kind
                       << " cannot be pending on the heap";
}

void HeartbeatMonitor::Start() { sweep_->Start(); }

void HeartbeatMonitor::Stop() { sweep_->Stop(); }

void HeartbeatMonitor::Register(int node) {
  Node& n = nodes_[node];
  if (n.stall_heal != kInvalidEventId) {
    sim_->Cancel(n.stall_heal);
  }
  n = Node{true, false, sim_->Now(), kInvalidEventId};
}

void HeartbeatMonitor::MarkDead(int node) {
  auto it = nodes_.find(node);
  LAMINAR_CHECK(it != nodes_.end()) << "MarkDead on unregistered node " << node;
  it->second.beating = false;
  // A crash supersedes any in-flight stall heal: the node must stay silent.
  if (it->second.stall_heal != kInvalidEventId) {
    sim_->Cancel(it->second.stall_heal);
    it->second.stall_heal = kInvalidEventId;
  }
}

void HeartbeatMonitor::Revive(int node) {
  auto it = nodes_.find(node);
  LAMINAR_CHECK(it != nodes_.end()) << "Revive on unregistered node " << node;
  if (it->second.stall_heal != kInvalidEventId) {
    sim_->Cancel(it->second.stall_heal);
  }
  it->second = Node{true, false, sim_->Now(), kInvalidEventId};
}

void HeartbeatMonitor::Stall(int node, double duration_seconds) {
  auto it = nodes_.find(node);
  LAMINAR_CHECK(it != nodes_.end()) << "Stall on unregistered node " << node;
  LAMINAR_CHECK_GE(duration_seconds, 0.0);
  Node& n = it->second;
  if (!n.beating && n.stall_heal == kInvalidEventId) {
    return;  // already dead outright; a stall on a corpse is a no-op
  }
  n.beating = false;
  // Overlapping stalls extend to the later heal time.
  if (n.stall_heal != kInvalidEventId) {
    sim_->Cancel(n.stall_heal);
  }
  n.stall_heal = sim_->ScheduleContinuationAfter(
      duration_seconds, ContinuationComponentId(kContFamilyHeartbeat), kContStallHeal,
      ContinuationPayload::Of(node));
}

void HeartbeatMonitor::HealStall(int node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return;
  }
  Node& n = it->second;
  n.stall_heal = kInvalidEventId;
  if (n.reported) {
    return;  // the stall outlived the miss threshold: treated as a crash
  }
  n.beating = true;
  n.last_beat = sim_->Now();
}

bool HeartbeatMonitor::IsMonitored(int node) const { return nodes_.count(node) > 0; }

double HeartbeatMonitor::PhiScore(int node) const {
  auto it = nodes_.find(node);
  LAMINAR_CHECK(it != nodes_.end()) << "PhiScore on unregistered node " << node;
  double silent = sim_->Now() - it->second.last_beat;
  return std::max(0.0, silent / period_) / kLn10;
}

void HeartbeatMonitor::Sweep() {
  SimTime now = sim_->Now();
  for (auto& [id, node] : nodes_) {
    if (node.beating) {
      node.last_beat = now;  // healthy nodes beat at least once per sweep
      continue;
    }
    if (!node.reported && now - node.last_beat > period_ * miss_threshold_) {
      node.reported = true;
      ++failures_reported_;
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kFault, "fault/suspect_dead", id, 0,
                            now - node.last_beat);
      if (on_failure_) {
        on_failure_(id);
      }
    }
  }
}

void HeartbeatMonitor::RegisterRateSource(int source) {
  rate_sources_[source] = RateSource{};
}

bool HeartbeatMonitor::IsSlow(int source) const {
  auto it = rate_sources_.find(source);
  LAMINAR_CHECK(it != rate_sources_.end()) << "unknown rate source " << source;
  return it->second.slow;
}

double HeartbeatMonitor::SlownessScore(int source) const {
  auto it = rate_sources_.find(source);
  LAMINAR_CHECK(it != rate_sources_.end()) << "unknown rate source " << source;
  return it->second.last_phi;
}

double HeartbeatMonitor::BaselineRate(int source) const {
  auto it = rate_sources_.find(source);
  LAMINAR_CHECK(it != rate_sources_.end()) << "unknown rate source " << source;
  return it->second.mean;
}

void HeartbeatMonitor::ObserveRate(int source, double rate) {
  auto it = rate_sources_.find(source);
  LAMINAR_CHECK(it != rate_sources_.end()) << "unknown rate source " << source;
  RateSource& s = it->second;

  auto absorb = [&](double x) {
    if (s.observations == 0) {
      s.mean = x;
      s.var = 0.0;
    } else {
      double d = x - s.mean;
      s.mean += slowness_.ewma_alpha * d;
      s.var = (1.0 - slowness_.ewma_alpha) * (s.var + slowness_.ewma_alpha * d * d);
    }
    ++s.observations;
  };

  if (s.observations < slowness_.warmup_observations) {
    absorb(rate);
    return;
  }

  double dev = std::max(std::sqrt(s.var), slowness_.min_relative_deviation * s.mean);
  if (dev <= 0.0) {
    absorb(rate);
    return;
  }
  double phi = PhiOfDeficit((s.mean - rate) / dev);
  s.last_phi = phi;

  if (s.slow) {
    // Recovery is judged against the healthy baseline, which stays frozen
    // while the source is suspected (sick samples must not poison it).
    if (rate >= slowness_.recovery_ratio * s.mean) {
      s.slow = false;
      s.strikes = 0;
      ++slow_recovered_;
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kFault, "fault/slow_recover", source,
                            0, rate);
      if (on_slow_recovered_) {
        on_slow_recovered_(source);
      }
    }
    return;
  }
  if (phi >= slowness_.phi_threshold) {
    if (++s.strikes >= slowness_.consecutive_strikes) {
      s.slow = true;
      ++slow_reported_;
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kFault, "fault/slow_detect", source,
                            0, phi);
      LAMINAR_LOG(kInfo) << "rate source " << source << " flagged slow: rate=" << rate
                         << " baseline=" << s.mean << " phi=" << phi;
      if (on_slow_) {
        on_slow_(source);
      }
    }
    return;  // suspicious samples never enter the baseline
  }
  s.strikes = 0;
  absorb(rate);
}

void HeartbeatMonitor::Snapshot(SnapshotTx& tx) {
  tx.Begin("heartbeats");
  SnapshotPacked(
      tx, "nodes",
      [this](ByteSink& s) {
        s.U64(nodes_.size());
        for (const auto& [id, node] : nodes_) {
          s.I32(id);
          s.Bool(node.beating);
          s.Bool(node.reported);
          s.Time(node.last_beat);
        }
      },
      [this](ByteSource& s) {
        nodes_.clear();
        for (uint64_t i = 0, n = s.U64(); i < n; ++i) {
          int id = s.I32();
          Node& node = nodes_[id];
          node.beating = s.Bool();
          node.reported = s.Bool();
          node.last_beat = s.Time();
          // Pending heal events are re-seated by RestoreContinuation.
          node.stall_heal = kInvalidEventId;
        }
      });
  SnapshotPacked(
      tx, "rate_sources",
      [this](ByteSink& s) {
        s.U64(rate_sources_.size());
        for (const auto& [id, src] : rate_sources_) {
          s.I32(id);
          s.F64(src.mean);
          s.F64(src.var);
          s.I32(src.observations);
          s.I32(src.strikes);
          s.Bool(src.slow);
          s.F64(src.last_phi);
        }
      },
      [this](ByteSource& s) {
        rate_sources_.clear();
        for (uint64_t i = 0, n = s.U64(); i < n; ++i) {
          int id = s.I32();
          RateSource& src = rate_sources_[id];
          src.mean = s.F64();
          src.var = s.F64();
          src.observations = s.I32();
          src.strikes = s.I32();
          src.slow = s.Bool();
          src.last_phi = s.F64();
        }
      });
  tx.I64As("failures_reported", &failures_reported_);
  tx.I64As("slow_reported", &slow_reported_);
  tx.I64As("slow_recovered", &slow_recovered_);
  tx.End();
}

}  // namespace laminar
