// Heartbeat-based failure detection (paper §3.3, §4.3).
//
// Monitored nodes beat every `period`; the monitor sweeps at the same period
// and reports any node whose last beat is older than `period * miss_threshold`.
// Detection latency is therefore bounded by (miss_threshold + 1) periods.
#ifndef LAMINAR_SRC_FAULT_HEARTBEAT_H_
#define LAMINAR_SRC_FAULT_HEARTBEAT_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/sim/simulator.h"

namespace laminar {

class HeartbeatMonitor {
 public:
  using FailureHandler = std::function<void(int node)>;

  HeartbeatMonitor(Simulator* sim, double period, int miss_threshold,
                   FailureHandler on_failure);

  // Registers a node and starts its beats.
  void Register(int node);
  // The node's process dies: beats stop; the sweep will notice.
  void MarkDead(int node);
  // A replacement comes up; beats resume and the node is monitored again.
  void Revive(int node);
  void Start();
  void Stop();

  bool IsMonitored(int node) const;
  int64_t failures_reported() const { return failures_reported_; }

 private:
  void Sweep();

  struct Node {
    bool beating = true;
    bool reported = false;
    SimTime last_beat;
  };

  Simulator* sim_;
  double period_;
  int miss_threshold_;
  FailureHandler on_failure_;
  std::unordered_map<int, Node> nodes_;
  std::unique_ptr<PeriodicTask> sweep_;
  int64_t failures_reported_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_HEARTBEAT_H_
