// Heartbeat-based failure detection (paper §3.3, §4.3) plus gray-failure
// (fail-slow) detection.
//
// Fail-stop: monitored nodes beat every `period`; the monitor sweeps at the
// same period and reports any node whose last beat is older than
// `period * miss_threshold`. Detection latency is therefore bounded by
// (miss_threshold + 1) periods. Sweeps iterate nodes in sorted id order, so
// the failure-report order is stable across runs and platforms.
//
// Fail-slow: a degraded component keeps beating — heartbeats alone can never
// flag it. The monitor therefore also accepts per-source throughput
// observations (e.g. per-replica decode rates) and maintains a
// phi-accrual-style suspicion score: each source's healthy rate is modelled
// as Normal(mean, dev) learned by EWMA from non-suspicious samples, and an
// observation's score is -log10 of the lower-tail probability of a healthy
// source producing a rate that low. Scores above `phi_threshold` for
// `consecutive_strikes` observations report the source slow; a slow source
// recovers once its rate returns to `recovery_ratio` of its baseline.
#ifndef LAMINAR_SRC_FAULT_HEARTBEAT_H_
#define LAMINAR_SRC_FAULT_HEARTBEAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/sim/simulator.h"

namespace laminar {

class SnapshotTx;

struct SlownessConfig {
  // Report threshold on the phi score (-log10 of the healthy-tail
  // probability); 8 corresponds to roughly a 5.6-sigma deficit.
  double phi_threshold = 8.0;
  // Observations in a row that must exceed the threshold; filters transient
  // dips (batch-boundary prefill bursts) without slowing real detection much.
  int consecutive_strikes = 2;
  // EWMA factor for the healthy-baseline mean/variance.
  double ewma_alpha = 0.2;
  // Deviation floor as a fraction of the mean, so a near-constant healthy
  // rate doesn't make the detector hair-triggered.
  double min_relative_deviation = 0.10;
  // Baseline-learning observations before scoring starts.
  int warmup_observations = 3;
  // A slow source recovers when its rate returns to this fraction of the
  // learned baseline mean.
  double recovery_ratio = 0.85;
};

class HeartbeatMonitor : public ContinuationClient {
 public:
  // Continuation kinds for the monitor's pending events (DESIGN.md §13).
  enum Continuation : uint16_t {
    kContStallHeal = 0,  // transient stall ends: {a=node}
    kContSweep = 1,      // periodic miss-detection sweep
  };

  using FailureHandler = std::function<void(int node)>;
  using SlowHandler = std::function<void(int source)>;

  HeartbeatMonitor(Simulator* sim, double period, int miss_threshold,
                   FailureHandler on_failure);
  ~HeartbeatMonitor() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Registers a node and starts its beats.
  void Register(int node);
  // The node's process dies: beats stop; the sweep will notice.
  // Check-fails on an unregistered node.
  void MarkDead(int node);
  // A replacement comes up; beats resume and the node is monitored again.
  // Check-fails on an unregistered node (Register creates, Revive resets).
  void Revive(int node);
  // Transient stall: beats stop for `duration_seconds`, then resume on their
  // own. A stall outliving the miss threshold is reported dead first — from
  // the monitor's view it is indistinguishable from a crash, exactly as in
  // production; the heal is then ignored (the replacement path owns the
  // node). Check-fails on an unregistered node.
  void Stall(int node, double duration_seconds);
  void Start();
  void Stop();

  bool IsMonitored(int node) const;
  int64_t failures_reported() const { return failures_reported_; }
  // Beat-based phi score: time since the node's last beat, in periods,
  // scaled by 1/ln(10) (phi-accrual with exponential inter-arrivals).
  // Healthy nodes stay below ~0.5; a silent node's score grows linearly.
  double PhiScore(int node) const;

  // Gray-failure detection ----------------------------------------------------
  // Rate sources live in their own id space (replica ids, not machine ids).
  void set_slowness_config(const SlownessConfig& config) { slowness_ = config; }
  void set_on_slow(SlowHandler fn) { on_slow_ = std::move(fn); }
  void set_on_slow_recovered(SlowHandler fn) { on_slow_recovered_ = std::move(fn); }
  void RegisterRateSource(int source);
  // Feeds one throughput observation (e.g. decode tokens/s over the last
  // monitoring tick). Check-fails on an unregistered source.
  void ObserveRate(int source, double rate);
  bool IsSlow(int source) const;
  // The source's latest phi score (0 until warmed up).
  double SlownessScore(int source) const;
  double BaselineRate(int source) const;
  int64_t slow_reported() const { return slow_reported_; }
  int64_t slow_recovered() const { return slow_recovered_; }

  // Snapshot witness (src/snapshot, DESIGN.md §13): per-node beat state and
  // the full phi-accrual learning state of every rate source, fully
  // adoptable. Pending stall-heal events are re-minted from the simulator's
  // event_heap section.
  void Snapshot(SnapshotTx& tx);

 private:
  struct Node {
    bool beating = true;
    bool reported = false;
    SimTime last_beat;
    EventId stall_heal = kInvalidEventId;
  };
  struct RateSource {
    double mean = 0.0;
    double var = 0.0;
    int observations = 0;
    int strikes = 0;
    bool slow = false;
    double last_phi = 0.0;
  };

  void Sweep();
  void HealStall(int node);

  Simulator* sim_;
  double period_;
  int miss_threshold_;
  FailureHandler on_failure_;
  // Sorted containers: sweep/report order must not depend on hash layout.
  std::map<int, Node> nodes_;
  std::map<int, RateSource> rate_sources_;
  std::unique_ptr<PeriodicTask> sweep_;
  SlownessConfig slowness_;
  SlowHandler on_slow_;
  SlowHandler on_slow_recovered_;
  int64_t failures_reported_ = 0;
  int64_t slow_reported_ = 0;
  int64_t slow_recovered_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_HEARTBEAT_H_
