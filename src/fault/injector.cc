#include "src/fault/injector.h"

#include "src/common/logging.h"

namespace laminar {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRolloutMachine:
      return "rollout-machine";
    case FaultKind::kRelayProcess:
      return "relay-process";
    case FaultKind::kMasterRelay:
      return "master-relay";
    case FaultKind::kTrainerWorker:
      return "trainer-worker";
  }
  return "?";
}

void FaultInjector::Schedule(const FaultEvent& event) {
  sim_->ScheduleAt(SimTime(event.at_seconds), [this, event] { Fire(event); });
}

void FaultInjector::ScheduleAll(const std::vector<FaultEvent>& events) {
  for (const FaultEvent& e : events) {
    Schedule(e);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  ++injected_;
  LAMINAR_LOG(kInfo) << "injecting fault " << FaultKindName(event.kind) << " target="
                     << event.target << " at t=" << sim_->Now().seconds();
  switch (event.kind) {
    case FaultKind::kRolloutMachine:
      LAMINAR_CHECK(heartbeats_ != nullptr);
      heartbeats_->MarkDead(event.target);
      break;
    case FaultKind::kRelayProcess:
      if (on_relay_fault_) {
        on_relay_fault_(event.target);
      }
      break;
    case FaultKind::kMasterRelay:
      if (on_master_fault_) {
        on_master_fault_();
      }
      break;
    case FaultKind::kTrainerWorker:
      if (on_trainer_fault_) {
        on_trainer_fault_();
      }
      break;
  }
}

}  // namespace laminar
