#include "src/fault/injector.h"

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/trace/trace.h"

namespace laminar {
namespace {

// Trace names must be string literals with static storage; map each fault
// kind to its "fault/<kind>" spelling here rather than concatenating.
const char* FaultTraceName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRolloutMachine:
      return "fault/rollout-machine";
    case FaultKind::kRelayProcess:
      return "fault/relay-process";
    case FaultKind::kMasterRelay:
      return "fault/master-relay";
    case FaultKind::kTrainerWorker:
      return "fault/trainer-worker";
    case FaultKind::kMachineStall:
      return "fault/machine-stall";
    case FaultKind::kLinkFlap:
      return "fault/link-flap";
    case FaultKind::kReplicaSlow:
      return "fault/replica-slow";
    case FaultKind::kMessageDrop:
      return "fault/message-drop";
    case FaultKind::kCrashRestart:
      return "fault/crash-restart";
  }
  return "fault/unknown";
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRolloutMachine:
      return "rollout-machine";
    case FaultKind::kRelayProcess:
      return "relay-process";
    case FaultKind::kMasterRelay:
      return "master-relay";
    case FaultKind::kTrainerWorker:
      return "trainer-worker";
    case FaultKind::kMachineStall:
      return "machine-stall";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kReplicaSlow:
      return "replica-slow";
    case FaultKind::kMessageDrop:
      return "message-drop";
    case FaultKind::kCrashRestart:
      return "crash-restart";
  }
  return "?";
}

void FaultInjector::Validate(const FaultEvent& event) const {
  LAMINAR_CHECK_GE(event.at_seconds, sim_->Now().seconds())
      << "fault " << FaultKindName(event.kind) << " scheduled in the past";
  LAMINAR_CHECK_GE(event.duration_seconds, 0.0)
      << "fault " << FaultKindName(event.kind) << " has a negative duration";
  LAMINAR_CHECK(event.severity > 0.0 && event.severity <= 1.0)
      << "fault severity must lie in (0, 1], got " << event.severity;
  switch (event.kind) {
    case FaultKind::kRolloutMachine:
    case FaultKind::kRelayProcess:
    case FaultKind::kMachineStall:
    case FaultKind::kLinkFlap:
    case FaultKind::kMessageDrop:
      if (num_machines_ > 0) {
        LAMINAR_CHECK(event.target >= 0 && event.target < num_machines_)
            << "fault " << FaultKindName(event.kind) << " targets machine "
            << event.target << ", have " << num_machines_;
      }
      break;
    case FaultKind::kReplicaSlow:
      if (num_replicas_ > 0) {
        LAMINAR_CHECK(event.target >= 0 && event.target < num_replicas_)
            << "fault replica-slow targets replica " << event.target << ", have "
            << num_replicas_;
      }
      break;
    case FaultKind::kMasterRelay:
    case FaultKind::kTrainerWorker:
    case FaultKind::kCrashRestart:
      break;  // target ignored: the current master / the trainer
  }
}

void FaultInjector::Schedule(const FaultEvent& event) {
  Validate(event);
  sim_->ScheduleContinuationAt(
      SimTime(event.at_seconds), ContinuationComponentId(kContFamilyInjector), kContFire,
      ContinuationPayload::Of(static_cast<int64_t>(event.kind), event.target,
                              ContinuationPayload::FromF64(event.duration_seconds),
                              ContinuationPayload::FromF64(event.severity)));
}

void FaultInjector::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  LAMINAR_CHECK_EQ(kind, kContFire);
  FaultEvent event;
  event.at_seconds = sim_->Now().seconds();
  event.kind = static_cast<FaultKind>(p.a);
  event.target = static_cast<int>(p.b);
  event.duration_seconds = ContinuationPayload::ToF64(p.c);
  event.severity = ContinuationPayload::ToF64(p.d);
  Fire(event);
}

void FaultInjector::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                        SimTime at) {
  LAMINAR_CHECK_EQ(kind, kContFire);
  sim_->ScheduleContinuationAt(at, ContinuationComponentId(kContFamilyInjector), kind, p);
}

void FaultInjector::ScheduleAll(const std::vector<FaultEvent>& events) {
  for (const FaultEvent& e : events) {
    Schedule(e);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  ++injected_;
  ++counts_[static_cast<int>(event.kind)];
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kFault, FaultTraceName(event.kind),
                        event.target, 0, event.duration_seconds);
  LAMINAR_LOG(kInfo) << "injecting fault " << FaultKindName(event.kind) << " target="
                     << event.target << " at t=" << sim_->Now().seconds();
  switch (event.kind) {
    case FaultKind::kRolloutMachine:
      LAMINAR_CHECK(heartbeats_ != nullptr);
      heartbeats_->MarkDead(event.target);
      break;
    case FaultKind::kRelayProcess:
      if (on_relay_fault_) {
        on_relay_fault_(event.target);
      }
      break;
    case FaultKind::kMasterRelay:
      if (on_master_fault_) {
        on_master_fault_();
      }
      break;
    case FaultKind::kTrainerWorker:
      if (on_trainer_fault_) {
        on_trainer_fault_();
      }
      break;
    case FaultKind::kMachineStall:
      if (on_machine_stall_) {
        on_machine_stall_(event.target, event.duration_seconds);
      }
      break;
    case FaultKind::kLinkFlap:
      if (on_link_flap_) {
        on_link_flap_(event.target, event.duration_seconds);
      }
      break;
    case FaultKind::kReplicaSlow:
      if (on_replica_slow_) {
        on_replica_slow_(event.target, event.severity, event.duration_seconds);
      }
      break;
    case FaultKind::kMessageDrop:
      if (on_message_drop_) {
        on_message_drop_(event.target);
      }
      break;
    case FaultKind::kCrashRestart:
      if (on_crash_restart_) {
        on_crash_restart_(event.duration_seconds);
      }
      break;
  }
}

void FaultInjector::Snapshot(SnapshotTx& tx) {
  tx.Begin("fault_injector");
  tx.I64As("injected", &injected_);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    tx.I64As(FaultKindName(static_cast<FaultKind>(i)), &counts_[i]);
  }
  tx.End();
}

}  // namespace laminar
