// Scripted fault injection for robustness experiments (paper §8.5), extended
// with the transient/gray fault kinds the stochastic chaos engine
// (fault_process.h) generates. Fail-stop kinds route through the
// HeartbeatMonitor (detected after missed beats) or straight to handlers
// (process faults whose peers see the broken connection instantly, §4.3);
// transient kinds carry a sampled duration and, for fail-slow, a severity.
#ifndef LAMINAR_SRC_FAULT_INJECTOR_H_
#define LAMINAR_SRC_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/fault/heartbeat.h"
#include "src/sim/simulator.h"

namespace laminar {

enum class FaultKind {
  kRolloutMachine,  // whole machine dies: replicas + relay
  kRelayProcess,    // only the relay worker process dies
  kMasterRelay,     // the relay currently acting as master dies
  kTrainerWorker,   // a trainer worker dies (checkpoint recovery)
  kMachineStall,    // transient: machine freezes, heals after duration
  kLinkFlap,        // transient: a relay-chain hop's link degrades/flaps
  kReplicaSlow,     // gray: replica throughput drops to `severity` (no crash)
  kMessageDrop,     // one chain-broadcast message to a relay is lost
  kCrashRestart,    // trainer process state is destroyed and restored from
                    // its last checkpoint snapshot after `duration_seconds`
};
inline constexpr int kNumFaultKinds = 9;

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  double at_seconds = 0.0;
  FaultKind kind = FaultKind::kRolloutMachine;
  int target = 0;  // machine index (replica index for kReplicaSlow)
  // Transient kinds only: how long the fault lasts before healing.
  double duration_seconds = 0.0;
  // kReplicaSlow only: throughput multiplier in (0, 1].
  double severity = 1.0;
};

class FaultInjector : public ContinuationClient {
 public:
  // Continuation kind for a scheduled-but-unfired fault. The whole FaultEvent
  // rides in the payload (kind, target, duration bits, severity bits; the
  // fire time is the event's own timestamp), so pending faults serialize with
  // the event heap and need no side table.
  enum Continuation : uint16_t {
    kContFire = 0,
  };

  explicit FaultInjector(Simulator* sim) : sim_(sim) {
    sim_->continuations().Register(ContinuationComponentId(kContFamilyInjector), this);
  }
  ~FaultInjector() override {
    sim_->continuations().Unregister(ContinuationComponentId(kContFamilyInjector));
  }

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  void set_heartbeats(HeartbeatMonitor* monitor) { heartbeats_ = monitor; }
  void set_on_relay_fault(std::function<void(int machine)> fn) {
    on_relay_fault_ = std::move(fn);
  }
  void set_on_master_fault(std::function<void()> fn) { on_master_fault_ = std::move(fn); }
  void set_on_trainer_fault(std::function<void()> fn) { on_trainer_fault_ = std::move(fn); }
  void set_on_machine_stall(std::function<void(int machine, double duration)> fn) {
    on_machine_stall_ = std::move(fn);
  }
  void set_on_link_flap(std::function<void(int machine, double duration)> fn) {
    on_link_flap_ = std::move(fn);
  }
  void set_on_replica_slow(std::function<void(int replica, double severity, double duration)> fn) {
    on_replica_slow_ = std::move(fn);
  }
  void set_on_message_drop(std::function<void(int machine)> fn) {
    on_message_drop_ = std::move(fn);
  }
  void set_on_crash_restart(std::function<void(double restart_delay)> fn) {
    on_crash_restart_ = std::move(fn);
  }

  // Arms target-range validation: machine-addressed kinds must name a machine
  // in [0, num_machines) and kReplicaSlow a replica in [0, num_replicas).
  // Zero (the default) leaves that range unchecked, for harnesses that wire
  // handlers directly without a full system.
  void set_num_machines(int n) { num_machines_ = n; }
  void set_num_replicas(int n) { num_replicas_ = n; }

  // Check-fails on a fault time in the past, an out-of-range target (when the
  // ranges are armed), a negative duration, or a severity outside (0, 1].
  void Schedule(const FaultEvent& event);
  void ScheduleAll(const std::vector<FaultEvent>& events);

  int64_t injected() const { return injected_; }
  // Fired faults broken down by kind, indexed by static_cast<int>(FaultKind).
  const std::array<int64_t, kNumFaultKinds>& counts() const { return counts_; }
  int64_t count(FaultKind kind) const { return counts_[static_cast<int>(kind)]; }

  // Snapshot witness: injected count and the per-kind fire counters
  // (src/snapshot), fully adoptable. Unfired scheduled faults live in the
  // simulator's event heap as kContFire continuations and restore with it.
  void Snapshot(SnapshotTx& tx);

 private:
  void Validate(const FaultEvent& event) const;
  void Fire(const FaultEvent& event);

  Simulator* sim_;
  HeartbeatMonitor* heartbeats_ = nullptr;
  std::function<void(int)> on_relay_fault_;
  std::function<void()> on_master_fault_;
  std::function<void()> on_trainer_fault_;
  std::function<void(int, double)> on_machine_stall_;
  std::function<void(int, double)> on_link_flap_;
  std::function<void(int, double, double)> on_replica_slow_;
  std::function<void(int)> on_message_drop_;
  std::function<void(double)> on_crash_restart_;
  int num_machines_ = 0;
  int num_replicas_ = 0;
  int64_t injected_ = 0;
  std::array<int64_t, kNumFaultKinds> counts_ = {};
};

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_INJECTOR_H_
