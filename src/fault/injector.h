// Scripted fault injection for robustness experiments (paper §8.5).
#ifndef LAMINAR_SRC_FAULT_INJECTOR_H_
#define LAMINAR_SRC_FAULT_INJECTOR_H_

#include <functional>
#include <vector>

#include "src/fault/heartbeat.h"
#include "src/sim/simulator.h"

namespace laminar {

enum class FaultKind {
  kRolloutMachine,  // whole machine dies: replicas + relay
  kRelayProcess,    // only the relay worker process dies
  kMasterRelay,     // the relay currently acting as master dies
  kTrainerWorker,   // a trainer worker dies (checkpoint recovery)
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  double at_seconds = 0.0;
  FaultKind kind = FaultKind::kRolloutMachine;
  int target = 0;  // machine index where applicable
};

// Routes scripted faults either through a HeartbeatMonitor (machine faults,
// detected after missed beats) or directly to handlers (process faults whose
// peers see the broken connection instantly, per §4.3).
class FaultInjector {
 public:
  explicit FaultInjector(Simulator* sim) : sim_(sim) {}

  void set_heartbeats(HeartbeatMonitor* monitor) { heartbeats_ = monitor; }
  void set_on_relay_fault(std::function<void(int machine)> fn) {
    on_relay_fault_ = std::move(fn);
  }
  void set_on_master_fault(std::function<void()> fn) { on_master_fault_ = std::move(fn); }
  void set_on_trainer_fault(std::function<void()> fn) { on_trainer_fault_ = std::move(fn); }

  void Schedule(const FaultEvent& event);
  void ScheduleAll(const std::vector<FaultEvent>& events);

  int64_t injected() const { return injected_; }

 private:
  void Fire(const FaultEvent& event);

  Simulator* sim_;
  HeartbeatMonitor* heartbeats_ = nullptr;
  std::function<void(int)> on_relay_fault_;
  std::function<void()> on_master_fault_;
  std::function<void()> on_trainer_fault_;
  int64_t injected_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_INJECTOR_H_
