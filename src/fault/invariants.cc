#include "src/fault/invariants.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"

namespace laminar {

InvariantChecker::InvariantChecker(Simulator* sim, InvariantCheckerConfig config)
    : sim_(sim), config_(config) {
  LAMINAR_CHECK(sim_ != nullptr);
}

void InvariantChecker::Report(const std::string& what) {
  std::ostringstream oss;
  oss << "t=" << sim_->Now().seconds() << "s: " << what;
  LAMINAR_CHECK(!config_.fail_fast) << "invariant violated at " << oss.str();
  ++violation_count_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kInvariant, "invariant/violation", -1,
                        violation_count_);
  if (violations_.size() < config_.max_recorded_violations) {
    violations_.push_back(oss.str());
  }
  LAMINAR_LOG(kWarning) << "invariant violated at " << oss.str();
}

void InvariantChecker::ObserveBufferPush(const TrajectoryRecord& record) {
  size_t idx = record.id >= 0 ? static_cast<size_t>(record.id) : 0;
  if (record.id >= 0 && idx >= pushed_.size()) {
    pushed_.resize(idx + 1, 0);
  }
  if (record.id < 0 || pushed_[idx] != 0) {
    std::ostringstream oss;
    oss << "duplicate experience-buffer entry for trajectory " << record.id;
    Report(oss.str());
  } else {
    pushed_[idx] = 1;
    ++pushes_;
  }
  if (record.inherent_staleness() < 0) {
    std::ostringstream oss;
    oss << "negative inherent staleness " << record.inherent_staleness()
        << " for trajectory " << record.id;
    Report(oss.str());
  }
  if (config_.max_inherent_staleness > 0 &&
      record.inherent_staleness() > config_.max_inherent_staleness) {
    std::ostringstream oss;
    oss << "inherent staleness " << record.inherent_staleness() << " of trajectory "
        << record.id << " exceeds bound " << config_.max_inherent_staleness;
    Report(oss.str());
  }
}

void InvariantChecker::CheckSweep() {
  ++checks_run_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kInvariant, "invariant/check", -1,
                        checks_run_, static_cast<double>(violation_count_));
  if (issued_fn_ && inflight_fn_ && pool_ != nullptr) {
    int64_t issued = issued_fn_();
    int64_t inflight = inflight_fn_();
    int64_t terminal = pool_->completed() + pool_->dropped();
    if (issued != inflight + terminal) {
      std::ostringstream oss;
      oss << "prompt ledger broken: issued=" << issued << " != inflight=" << inflight
          << " + completed=" << pool_->completed() << " + dropped=" << pool_->dropped();
      Report(oss.str());
    }
  }
  for (const RolloutReplica* r : replicas_) {
    double accounted = r->kv_used_tokens();
    double resident = r->ResidentKvTokens();
    if (std::abs(accounted - resident) > config_.kv_epsilon_tokens) {
      std::ostringstream oss;
      oss << "KV token leak on replica " << r->config().id << ": accounted="
          << accounted << " resident=" << resident;
      Report(oss.str());
    }
  }
  if (serving_fn_) {
    // Admitted-request conservation: every arrival is in exactly one of the
    // six states. (The KV check above doubles as the serving/rollout
    // no-double-count audit — resident serving tokens are charged to the
    // same per-replica accounting rollout work uses.)
    ServingCounts c = serving_fn_();
    int64_t accounted = c.rejected + c.queued + c.resident + c.completed +
                        c.timed_out + c.failed;
    if (c.requests != accounted) {
      std::ostringstream oss;
      oss << "serving request leak: requests=" << c.requests
          << " != rejected=" << c.rejected << " + queued=" << c.queued
          << " + resident=" << c.resident << " + completed=" << c.completed
          << " + timed_out=" << c.timed_out << " + failed=" << c.failed;
      Report(oss.str());
    }
    if (c.deadline_hits + c.deadline_misses != c.completed) {
      std::ostringstream oss;
      oss << "serving deadline bookkeeping broken: hits=" << c.deadline_hits
          << " + misses=" << c.deadline_misses << " != completed=" << c.completed;
      Report(oss.str());
    }
    if (c.queued < 0 || c.resident < 0) {
      std::ostringstream oss;
      oss << "negative serving queue depth: queued=" << c.queued
          << " resident=" << c.resident;
      Report(oss.str());
    }
  }
}

void InvariantChecker::CheckFinal() {
  CheckSweep();
  if (pool_ != nullptr) {
    // Every completion observed by the pool must have produced exactly one
    // buffer push (duplicates were suppressed before pushing).
    if (buffer_pushes() != pool_->completed()) {
      std::ostringstream oss;
      oss << "completion/push mismatch: " << pool_->completed()
          << " completions vs " << buffer_pushes() << " buffer pushes";
      Report(oss.str());
    }
  }
}

void InvariantChecker::Snapshot(SnapshotTx& tx) {
  tx.Begin("invariants");
  tx.I64As("pushes", &pushes_);
  tx.I64As("checks_run", &checks_run_);
  tx.I64As("violation_count", &violation_count_);
  tx.I64As("faults_injected", &faults_injected_);
  SnapshotPacked(
      tx, "state",
      [this](ByteSink& s) {
        s.U64(pushed_.size());
        for (uint8_t b : pushed_) {
          s.U8(b);
        }
        s.U64(violations_.size());
        for (const std::string& v : violations_) {
          s.Str(v);
        }
      },
      [this](ByteSource& s) {
        pushed_.resize(static_cast<size_t>(s.U64()));
        for (uint8_t& b : pushed_) {
          b = s.U8();
        }
        violations_.resize(static_cast<size_t>(s.U64()));
        for (std::string& v : violations_) {
          v = s.Str();
        }
      });
  tx.End();
}

bool ThroughputRecovered(const TimeSeries& series, SimTime fault_start,
                         SimTime recovered_by, double window_seconds, double ratio) {
  double baseline =
      series.MeanInWindow(fault_start - window_seconds, fault_start);
  if (baseline <= 0.0) {
    return true;
  }
  double after =
      series.MeanInWindow(recovered_by, recovered_by + window_seconds);
  return after >= ratio * baseline;
}

}  // namespace laminar
