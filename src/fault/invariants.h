// System-wide invariant checker (armed during chaos runs).
//
// The chaos engine can only prove robustness if something watches the whole
// system while faults fire. The checker audits four global properties:
//
//  1. Exactly-once prompt ledger: every trajectory the prompt pool issued is,
//     at all times, in flight (on a replica or parked in the manager),
//     terminal-completed, or terminal-dropped — never lost, never duplicated.
//  2. No duplicate experience: a trajectory id enters the experience buffer
//     at most once.
//  3. KVCache token conservation: each replica's kv_used_tokens accounting
//     equals the sum of context tokens of its cache-resident work.
//  4. Staleness sanity: inherent staleness of every buffered record is
//     non-negative and (optionally) within a configured bound.
//
// Violations are recorded (or check-fail under fail_fast) with the sim time
// and a description, so a chaos seed that breaks an invariant is directly
// replayable.
#ifndef LAMINAR_SRC_FAULT_INVARIANTS_H_
#define LAMINAR_SRC_FAULT_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/data/partial_response_pool.h"
#include "src/data/trajectory.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"

namespace laminar {

class SnapshotTx;

struct InvariantCheckerConfig {
  // Tolerance for the per-replica KV token conservation check. Token counts
  // are integer-valued doubles, so anything below 1 means "exact".
  double kv_epsilon_tokens = 0.5;
  // 0 = unchecked; otherwise every buffered record's inherent staleness must
  // be <= this bound.
  int max_inherent_staleness = 0;
  // Check-fail on the first violation instead of recording it.
  bool fail_fast = false;
  // Recorded violation strings are capped (the count keeps increasing).
  size_t max_recorded_violations = 64;
};

// Serving-tier counters sampled for the admission-conservation audit
// (DESIGN.md §14). Populated by a driver-provided callback so the checker
// stays decoupled from the rollout manager.
struct ServingCounts {
  int64_t requests = 0;
  int64_t rejected = 0;
  int64_t queued = 0;
  int64_t resident = 0;
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t failed = 0;
  int64_t deadline_hits = 0;
  int64_t deadline_misses = 0;
};

class InvariantChecker {
 public:
  InvariantChecker(Simulator* sim, InvariantCheckerConfig config);

  // Wiring -------------------------------------------------------------------
  // Total trajectories the prompt pool has handed out.
  void set_issued_fn(std::function<int64_t()> fn) { issued_fn_ = std::move(fn); }
  // Trajectories currently on replicas or parked in the rollout manager.
  void set_inflight_fn(std::function<int64_t()> fn) { inflight_fn_ = std::move(fn); }
  void set_pool(const PartialResponsePool* pool) { pool_ = pool; }
  void AddReplica(const RolloutReplica* replica) { replicas_.push_back(replica); }
  // Arms the serving-tier audit: every sweep additionally checks admitted-
  // request conservation (each request in exactly one terminal-or-queued
  // state) and deadline-bookkeeping sanity (hits + misses == completions).
  // Unset (the default, serving off) adds no checks.
  void set_serving_fn(std::function<ServingCounts()> fn) {
    serving_fn_ = std::move(fn);
  }

  // Observations -------------------------------------------------------------
  void ObserveBufferPush(const TrajectoryRecord& record);
  void ObserveFaultInjected() { ++faults_injected_; }

  // Checks -------------------------------------------------------------------
  // Periodic sweep: prompt-ledger conservation + per-replica KV accounting.
  void CheckSweep();
  // End-of-run audit: one final sweep plus ledger/buffer cross-checks.
  void CheckFinal();

  int64_t checks_run() const { return checks_run_; }
  int64_t violation_count() const { return violation_count_; }
  int64_t faults_injected() const { return faults_injected_; }
  int64_t buffer_pushes() const { return pushes_; }
  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violation_count_ == 0; }

  // Snapshot witness (src/snapshot, DESIGN.md §13): counters, the recorded
  // violation strings and the duplicate-push bitmap, all fully adoptable so a
  // direct boot keeps auditing from where the blob left off.
  void Snapshot(SnapshotTx& tx);

 private:
  void Report(const std::string& what);

  Simulator* sim_;
  InvariantCheckerConfig config_;
  std::function<int64_t()> issued_fn_;
  std::function<int64_t()> inflight_fn_;
  std::function<ServingCounts()> serving_fn_;
  const PartialResponsePool* pool_ = nullptr;
  std::vector<const RolloutReplica*> replicas_;

  // Trajectory ids are issued sequentially from 0, so the duplicate-push set
  // is a dense bitmap (this observation runs on every completion).
  std::vector<uint8_t> pushed_;
  int64_t pushes_ = 0;
  int64_t checks_run_ = 0;
  int64_t violation_count_ = 0;
  int64_t faults_injected_ = 0;
  std::vector<std::string> violations_;
};

// Throughput-recovery predicate for fault drills: compares the mean of
// `series` over the `window_seconds` before `fault_start` against the mean
// over the `window_seconds` after `recovered_by`, and returns true when the
// post-recovery mean reaches `ratio` of the pre-fault baseline. An empty
// baseline window counts as recovered (nothing to regress from).
bool ThroughputRecovered(const TimeSeries& series, SimTime fault_start,
                         SimTime recovered_by, double window_seconds, double ratio);

}  // namespace laminar

#endif  // LAMINAR_SRC_FAULT_INVARIANTS_H_
