#include "src/llm/decode_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace laminar {

DecodeModel::DecodeModel(ModelSpec model, MachineSpec machine, int tensor_parallel)
    : model_(std::move(model)), machine_(std::move(machine)), tp_(tensor_parallel) {
  LAMINAR_CHECK_GT(tp_, 0);
  LAMINAR_CHECK_LE(tp_, machine_.gpus_per_machine);
  weight_shard_bytes_ = model_.weight_bytes() / tp_;
  kv_bytes_per_token_ = model_.kv_bytes_per_token();
  forward_flops_ = model_.forward_flops_per_token();
  attn_layers_x4_ = 4.0 * model_.num_layers;
  decode_flops_divisor_ =
      tp_ * machine_.gpu.peak_flops_bf16 * machine_.gpu.decode_flops_efficiency;
  prefill_flops_divisor_ =
      tp_ * machine_.gpu.peak_flops_bf16 * machine_.gpu.prefill_flops_efficiency;
  // CPU-side scheduling (serving-engine step overhead) plus per-layer
  // kernel launches.
  constexpr double kPerLayer = 12.0e-6;
  constexpr double kFixed = 1000.0e-6;
  kernel_overhead_ = (kFixed + kPerLayer * model_.num_layers) * machine_.gpu.host_overhead_scale;
  roofline_weight_read_ = model_.weight_bytes() / tp_ / machine_.gpu.effective_hbm();
}

double DecodeModel::HbmAtBatch(int batch) const {
  size_t idx = static_cast<size_t>(batch);
  if (idx >= hbm_at_batch_.size()) {
    hbm_at_batch_.resize(idx + 1, -1.0);
  }
  double& row = hbm_at_batch_[idx];
  if (row < 0.0) {
    row = machine_.gpu.effective_hbm_at_batch(batch);
  }
  return row;
}

double DecodeModel::TpCommAtBatch(int batch) const {
  size_t idx = static_cast<size_t>(batch);
  if (idx >= tp_comm_at_batch_.size()) {
    tp_comm_at_batch_.resize(idx + 1, -1.0);
  }
  double& row = tp_comm_at_batch_[idx];
  if (row < 0.0) {
    // Two ring all-reduces per layer over the activations of the whole batch.
    double bytes_per_allreduce =
        static_cast<double>(batch) * model_.hidden_size * model_.bytes_per_param;
    double ring_factor = 2.0 * (tp_ - 1) / static_cast<double>(tp_);
    double transfer = bytes_per_allreduce * ring_factor / machine_.nvlink_bandwidth;
    // Per-all-reduce launch latency dominates for the tiny decode activations.
    const double launch = 8.0e-6 * machine_.gpu.host_overhead_scale;
    row = 2.0 * model_.num_layers * (transfer + launch);
  }
  return row;
}

double DecodeModel::MemoryTime(int batch, double avg_context_tokens) const {
  // Each GPU streams its weight shard once per step plus its share of every
  // running sequence's KV. Shards are read in parallel, so per-GPU traffic is
  // the step's critical path.
  double kv_read =
      static_cast<double>(batch) * avg_context_tokens * kv_bytes_per_token_ / tp_;
  return (weight_shard_bytes_ + kv_read) / HbmAtBatch(batch);
}

double DecodeModel::ComputeTime(int batch, double avg_context_tokens) const {
  double flops_per_token =
      forward_flops_ +
      attn_layers_x4_ * avg_context_tokens * model_.num_heads * model_.head_dim;
  double flops = static_cast<double>(batch) * flops_per_token;
  return flops / decode_flops_divisor_;
}

double DecodeModel::TpCommTime(int batch) const {
  if (tp_ == 1) {
    return 0.0;
  }
  return TpCommAtBatch(batch);
}

double DecodeModel::StepLatency(int batch, double avg_context_tokens) const {
  LAMINAR_CHECK_GE(batch, 0);
  if (batch == 0) {
    return 0.0;
  }
  // Direct-mapped lookup: row = (batch, quantized context bucket), hit only
  // on bit-equal context. Nearby contexts that share a bucket evict each
  // other; correctness never depends on the bucketing.
  size_t bucket =
      static_cast<size_t>(avg_context_tokens * (1.0 / 256.0)) % kCtxBuckets;
  size_t idx = static_cast<size_t>(batch) * kCtxBuckets + bucket;
  if (idx >= step_cache_.size()) {
    step_cache_.resize(idx + kCtxBuckets);
  }
  StepEntry& entry = step_cache_[idx];
  if (entry.ctx == avg_context_tokens) {
    ++step_cache_hits_;
    return entry.latency;
  }
  ++step_cache_misses_;
  double mem = MemoryTime(batch, avg_context_tokens);
  double compute = ComputeTime(batch, avg_context_tokens);
  double latency = std::max(mem, compute) + TpCommTime(batch) + KernelOverhead();
  entry.ctx = avg_context_tokens;
  entry.latency = latency;
  return latency;
}

double DecodeModel::PrefillLatency(double tokens) const {
  if (tokens <= 0.0) {
    return 0.0;
  }
  if (tokens == prefill_last_tokens_) {
    return prefill_last_latency_;
  }
  double flops = tokens * forward_flops_;
  double compute = flops / prefill_flops_divisor_;
  double latency = compute + KernelOverhead();
  prefill_last_tokens_ = tokens;
  prefill_last_latency_ = latency;
  return latency;
}

int DecodeModel::RooflineBatchBound(double avg_context_tokens, double slack) const {
  LAMINAR_CHECK_GE(slack, 1.0);
  // Memory-bound side: the weight-shard read is a fixed cost per step.
  // Compute side grows linearly with the batch.
  double flops_per_seq =
      forward_flops_ +
      attn_layers_x4_ * avg_context_tokens * model_.num_heads * model_.head_dim;
  double compute_per_seq = flops_per_seq / decode_flops_divisor_;
  int bound = static_cast<int>(slack * roofline_weight_read_ / compute_per_seq);
  return std::max(bound, 1);
}

double DecodeModel::KvCapacityTokens(double gpu_memory_utilization,
                                     double activation_reserve_bytes) const {
  double per_gpu_budget = machine_.gpu.memory_bytes * gpu_memory_utilization -
                          model_.weight_bytes() / tp_ - activation_reserve_bytes;
  LAMINAR_CHECK_GT(per_gpu_budget, 0.0)
      << model_.name << " does not fit on " << tp_ << " GPUs";
  double total_budget = per_gpu_budget * tp_;
  return total_budget / model_.kv_bytes_per_token();
}

}  // namespace laminar
