#include "src/llm/decode_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace laminar {

DecodeModel::DecodeModel(ModelSpec model, MachineSpec machine, int tensor_parallel)
    : model_(std::move(model)), machine_(std::move(machine)), tp_(tensor_parallel) {
  LAMINAR_CHECK_GT(tp_, 0);
  LAMINAR_CHECK_LE(tp_, machine_.gpus_per_machine);
}

double DecodeModel::MemoryTime(int batch, double avg_context_tokens) const {
  // Each GPU streams its weight shard once per step plus its share of every
  // running sequence's KV. Shards are read in parallel, so per-GPU traffic is
  // the step's critical path.
  double weight_read = model_.weight_bytes() / tp_;
  double kv_read = static_cast<double>(batch) * avg_context_tokens *
                   model_.kv_bytes_per_token() / tp_;
  return (weight_read + kv_read) / machine_.gpu.effective_hbm_at_batch(batch);
}

double DecodeModel::ComputeTime(int batch, double avg_context_tokens) const {
  double flops_per_token = model_.forward_flops_per_token() +
                           model_.attention_flops_per_token(avg_context_tokens);
  double flops = static_cast<double>(batch) * flops_per_token;
  return flops / (tp_ * machine_.gpu.peak_flops_bf16 * machine_.gpu.decode_flops_efficiency);
}

double DecodeModel::TpCommTime(int batch) const {
  if (tp_ == 1) {
    return 0.0;
  }
  // Two ring all-reduces per layer over the activations of the whole batch.
  double bytes_per_allreduce =
      static_cast<double>(batch) * model_.hidden_size * model_.bytes_per_param;
  double ring_factor = 2.0 * (tp_ - 1) / static_cast<double>(tp_);
  double transfer = bytes_per_allreduce * ring_factor / machine_.nvlink_bandwidth;
  // Per-all-reduce launch latency dominates for the tiny decode activations.
  const double launch = 8.0e-6 * machine_.gpu.host_overhead_scale;
  return 2.0 * model_.num_layers * (transfer + launch);
}

double DecodeModel::KernelOverhead() const {
  // CPU-side scheduling (serving-engine step overhead) plus per-layer
  // kernel launches.
  constexpr double kPerLayer = 12.0e-6;
  constexpr double kFixed = 1000.0e-6;
  return (kFixed + kPerLayer * model_.num_layers) * machine_.gpu.host_overhead_scale;
}

double DecodeModel::StepLatency(int batch, double avg_context_tokens) const {
  LAMINAR_CHECK_GE(batch, 0);
  if (batch == 0) {
    return 0.0;
  }
  double mem = MemoryTime(batch, avg_context_tokens);
  double compute = ComputeTime(batch, avg_context_tokens);
  return std::max(mem, compute) + TpCommTime(batch) + KernelOverhead();
}

double DecodeModel::PrefillLatency(double tokens) const {
  if (tokens <= 0.0) {
    return 0.0;
  }
  double flops = tokens * model_.forward_flops_per_token();
  double compute =
      flops / (tp_ * machine_.gpu.peak_flops_bf16 * machine_.gpu.prefill_flops_efficiency);
  return compute + KernelOverhead();
}

int DecodeModel::RooflineBatchBound(double avg_context_tokens, double slack) const {
  LAMINAR_CHECK_GE(slack, 1.0);
  // Memory-bound side: the weight-shard read is a fixed cost per step.
  double weight_read = model_.weight_bytes() / tp_ / machine_.gpu.effective_hbm();
  // Compute side grows linearly with the batch.
  double flops_per_seq = model_.forward_flops_per_token() +
                         model_.attention_flops_per_token(avg_context_tokens);
  double compute_per_seq =
      flops_per_seq / (tp_ * machine_.gpu.peak_flops_bf16 * machine_.gpu.decode_flops_efficiency);
  int bound = static_cast<int>(slack * weight_read / compute_per_seq);
  return std::max(bound, 1);
}

double DecodeModel::KvCapacityTokens(double gpu_memory_utilization,
                                     double activation_reserve_bytes) const {
  double per_gpu_budget = machine_.gpu.memory_bytes * gpu_memory_utilization -
                          model_.weight_bytes() / tp_ - activation_reserve_bytes;
  LAMINAR_CHECK_GT(per_gpu_budget, 0.0)
      << model_.name << " does not fit on " << tp_ << " GPUs";
  double total_budget = per_gpu_budget * tp_;
  return total_budget / model_.kv_bytes_per_token();
}

}  // namespace laminar
