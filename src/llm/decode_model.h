// Roofline latency model for auto-regressive decoding (paper Figure 4, §5.2).
//
// One decode step reads the weight shard plus every running sequence's
// KVCache from HBM and performs ~2*P FLOPs per sequence. Decoding is
// memory-bound until the batch is large enough that compute catches up; the
// crossover batch size is the roofline bound B used by the repack algorithm.
// Tensor parallelism shards both weights and KV heads across `tp` GPUs but
// adds per-layer all-reduce traffic over NVLink.
#ifndef LAMINAR_SRC_LLM_DECODE_MODEL_H_
#define LAMINAR_SRC_LLM_DECODE_MODEL_H_

#include "src/cluster/hardware.h"
#include "src/llm/model_spec.h"

namespace laminar {

class DecodeModel {
 public:
  DecodeModel(ModelSpec model, MachineSpec machine, int tensor_parallel);

  // Latency of one decode step (one new token for each of `batch` running
  // sequences whose mean context length is `avg_context_tokens`).
  double StepLatency(int batch, double avg_context_tokens) const;

  // Memory-traffic component of the step (weights + KV reads), seconds.
  double MemoryTime(int batch, double avg_context_tokens) const;
  // Compute component of the step, seconds.
  double ComputeTime(int batch, double avg_context_tokens) const;
  // Tensor-parallel all-reduce cost per step, seconds (0 for tp == 1).
  double TpCommTime(int batch) const;
  // Fixed kernel-launch/scheduling overhead per step, seconds.
  double KernelOverhead() const;

  // Time to prefill `tokens` of prompt/context (compute-bound), seconds.
  // Used for prompt processing, partial-rollout KV recomputation, and
  // trajectory migration during repack.
  double PrefillLatency(double tokens) const;

  // The roofline batch bound B (paper §5.2): the batch size at which one
  // decode step transitions from memory-bound (dominated by the fixed
  // weight-shard read) to compute-bound (per-sequence FLOPs). Up to B,
  // adding sequences is ~free; beyond it, latency grows with the batch.
  // `slack` scales the bound (>1 tolerates a mild latency increase).
  int RooflineBatchBound(double avg_context_tokens, double slack = 1.0) const;

  // Total KVCache capacity of a replica, in tokens (GPU memory minus weights
  // and an activation reserve, across all tp GPUs).
  double KvCapacityTokens(double gpu_memory_utilization = 0.90,
                          double activation_reserve_bytes = 2.0e9) const;

  const ModelSpec& model() const { return model_; }
  int tensor_parallel() const { return tp_; }

 private:
  ModelSpec model_;
  MachineSpec machine_;
  int tp_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_LLM_DECODE_MODEL_H_
