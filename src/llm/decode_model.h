// Roofline latency model for auto-regressive decoding (paper Figure 4, §5.2).
//
// One decode step reads the weight shard plus every running sequence's
// KVCache from HBM and performs ~2*P FLOPs per sequence. Decoding is
// memory-bound until the batch is large enough that compute catches up; the
// crossover batch size is the roofline bound B used by the repack algorithm.
// Tensor parallelism shards both weights and KV heads across `tp` GPUs but
// adds per-layer all-reduce traffic over NVLink.
//
// The model is evaluated once per replica advance, which makes it the
// innermost arithmetic of the whole simulation. All spec-derived terms
// (weight-shard bytes, KV bytes/token, FLOP divisors) are hoisted into
// constants at construction, the batch-only terms (HBM ramp, TP all-reduce)
// are memoized per batch size, and full (batch, context) step latencies are
// cached in a small direct-mapped table keyed by quantized context bucket.
// Every cached value is EXACT: hoisting only precomputes subexpressions the
// original formulas evaluated first anyway (no reassociation), and a context
// cache entry only hits on bit-equality of the query, so cached and direct
// evaluation are bit-identical (decode_model_test.cc asserts this).
#ifndef LAMINAR_SRC_LLM_DECODE_MODEL_H_
#define LAMINAR_SRC_LLM_DECODE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/cluster/hardware.h"
#include "src/llm/model_spec.h"

namespace laminar {

class DecodeModel {
 public:
  DecodeModel(ModelSpec model, MachineSpec machine, int tensor_parallel);

  // Latency of one decode step (one new token for each of `batch` running
  // sequences whose mean context length is `avg_context_tokens`).
  double StepLatency(int batch, double avg_context_tokens) const;

  // Memory-traffic component of the step (weights + KV reads), seconds.
  double MemoryTime(int batch, double avg_context_tokens) const;
  // Compute component of the step, seconds.
  double ComputeTime(int batch, double avg_context_tokens) const;
  // Tensor-parallel all-reduce cost per step, seconds (0 for tp == 1).
  double TpCommTime(int batch) const;
  // Fixed kernel-launch/scheduling overhead per step, seconds.
  double KernelOverhead() const { return kernel_overhead_; }

  // Time to prefill `tokens` of prompt/context (compute-bound), seconds.
  // Used for prompt processing, partial-rollout KV recomputation, and
  // trajectory migration during repack.
  double PrefillLatency(double tokens) const;

  // The roofline batch bound B (paper §5.2): the batch size at which one
  // decode step transitions from memory-bound (dominated by the fixed
  // weight-shard read) to compute-bound (per-sequence FLOPs). Up to B,
  // adding sequences is ~free; beyond it, latency grows with the batch.
  // `slack` scales the bound (>1 tolerates a mild latency increase).
  int RooflineBatchBound(double avg_context_tokens, double slack = 1.0) const;

  // Total KVCache capacity of a replica, in tokens (GPU memory minus weights
  // and an activation reserve, across all tp GPUs).
  double KvCapacityTokens(double gpu_memory_utilization = 0.90,
                          double activation_reserve_bytes = 2.0e9) const;

  const ModelSpec& model() const { return model_; }
  int tensor_parallel() const { return tp_; }

  // Memo instrumentation (decode_model_test.cc).
  int64_t step_cache_hits() const { return step_cache_hits_; }
  int64_t step_cache_misses() const { return step_cache_misses_; }

 private:
  // Batch-only memo rows, grown on demand (-1 marks an unfilled row).
  double HbmAtBatch(int batch) const;
  double TpCommAtBatch(int batch) const;

  ModelSpec model_;
  MachineSpec machine_;
  int tp_;

  // Spec-derived constants, hoisted at construction. Each is exactly the
  // subexpression the un-hoisted formula computed first anyway (same
  // operation order), so results are bit-identical.
  double weight_shard_bytes_ = 0.0;   // weight_bytes() / tp
  double kv_bytes_per_token_ = 0.0;   // model_.kv_bytes_per_token()
  double forward_flops_ = 0.0;        // model_.forward_flops_per_token()
  double attn_layers_x4_ = 0.0;       // 4.0 * num_layers (attention prefix)
  double decode_flops_divisor_ = 0.0;   // tp * peak_bf16 * decode_efficiency
  double prefill_flops_divisor_ = 0.0;  // tp * peak_bf16 * prefill_efficiency
  double kernel_overhead_ = 0.0;
  double roofline_weight_read_ = 0.0;  // weight_bytes() / tp / effective_hbm()

  mutable std::vector<double> hbm_at_batch_;
  mutable std::vector<double> tp_comm_at_batch_;

  // Direct-mapped (batch, context-bucket) step-latency cache. A row hits
  // only when the stored context is bit-equal to the query, so a hit returns
  // exactly what a fresh evaluation would.
  static constexpr int kCtxBuckets = 16;
  struct StepEntry {
    double ctx = -1.0;  // contexts are >= 0, so -1 marks empty
    double latency = 0.0;
  };
  mutable std::vector<StepEntry> step_cache_;  // batch * kCtxBuckets + bucket
  mutable int64_t step_cache_hits_ = 0;
  mutable int64_t step_cache_misses_ = 0;

  // Single-entry prefill memo (feedback/prompt token counts repeat heavily).
  mutable double prefill_last_tokens_ = -1.0;
  mutable double prefill_last_latency_ = 0.0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_LLM_DECODE_MODEL_H_
