#include "src/llm/model_spec.h"

#include "src/common/logging.h"

namespace laminar {

ModelSpec Qwen25_7B() {
  ModelSpec m;
  m.name = "Qwen2.5-7B";
  m.num_params = 7.62e9;
  m.num_layers = 28;
  m.hidden_size = 3584;
  m.num_heads = 28;
  m.num_kv_heads = 4;
  m.head_dim = 128;
  m.intermediate_size = 18944;
  m.vocab_size = 152064;
  return m;
}

ModelSpec Qwen25_32B() {
  ModelSpec m;
  m.name = "Qwen2.5-32B";
  m.num_params = 32.8e9;
  m.num_layers = 64;
  m.hidden_size = 5120;
  m.num_heads = 40;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate_size = 27648;
  m.vocab_size = 152064;
  return m;
}

ModelSpec Qwen25_72B() {
  ModelSpec m;
  m.name = "Qwen2.5-72B";
  m.num_params = 72.7e9;
  m.num_layers = 80;
  m.hidden_size = 8192;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate_size = 29568;
  m.vocab_size = 152064;
  return m;
}

ModelSpec ModelForScale(ModelScale scale) {
  switch (scale) {
    case ModelScale::k7B:
      return Qwen25_7B();
    case ModelScale::k32B:
      return Qwen25_32B();
    case ModelScale::k72B:
      return Qwen25_72B();
  }
  LAMINAR_LOG(kFatal) << "unknown model scale";
  return Qwen25_7B();
}

}  // namespace laminar
