// Transformer model descriptions and derived byte/FLOP accounting.
//
// Covers the Qwen2.5 7B/32B/72B checkpoints used throughout the paper's
// evaluation. Architecture numbers follow the Qwen2.5 technical report
// (GQA attention, hence the small kv-head counts that set KVCache size).
#ifndef LAMINAR_SRC_LLM_MODEL_SPEC_H_
#define LAMINAR_SRC_LLM_MODEL_SPEC_H_

#include <cstdint>
#include <string>

#include "src/cluster/placement.h"

namespace laminar {

struct ModelSpec {
  std::string name;
  double num_params = 0.0;  // total parameters
  int num_layers = 0;
  int hidden_size = 0;
  int num_heads = 0;
  int num_kv_heads = 0;
  int head_dim = 0;
  int intermediate_size = 0;
  int vocab_size = 0;
  int bytes_per_param = 2;  // BF16

  // Total weight bytes (BF16).
  double weight_bytes() const { return num_params * bytes_per_param; }

  // KVCache bytes stored per token (both K and V, all layers, BF16).
  double kv_bytes_per_token() const {
    return 2.0 * num_layers * num_kv_heads * head_dim * bytes_per_param;
  }

  // FLOPs for one forward pass over one token (dense approximation 2*P).
  double forward_flops_per_token() const { return 2.0 * num_params; }
  // FLOPs for one training step over one token (forward + backward ~ 6*P).
  double train_flops_per_token() const { return 6.0 * num_params; }

  // Extra attention FLOPs per generated token given its context length
  // (2 * 2 * layers * context * kv-projected width per token).
  double attention_flops_per_token(double context_tokens) const {
    return 4.0 * num_layers * context_tokens * num_heads * head_dim;
  }
};

// The three evaluated checkpoints.
ModelSpec Qwen25_7B();
ModelSpec Qwen25_32B();
ModelSpec Qwen25_72B();
ModelSpec ModelForScale(ModelScale scale);

}  // namespace laminar

#endif  // LAMINAR_SRC_LLM_MODEL_SPEC_H_
