#include "src/llm/train_cost.h"

#include "src/common/logging.h"

namespace laminar {

TrainCostModel::TrainCostModel(ModelSpec model, GpuSpec gpu, int train_gpus,
                               TrainBackend backend, int pipeline_parallel)
    : model_(std::move(model)), gpu_(gpu), train_gpus_(train_gpus) {
  LAMINAR_CHECK_GT(train_gpus_, 0);
  LAMINAR_CHECK_GT(pipeline_parallel, 0);
  if (backend == TrainBackend::kMegatron) {
    // Pipeline bubble with ~8 in-flight micro-batches per mini-batch step.
    constexpr double kMicroBatches = 16.0;
    double bubble = kMicroBatches / (kMicroBatches + pipeline_parallel - 1);
    mfu_ = 0.34 * bubble;
  } else {
    mfu_ = gpu_.train_flops_efficiency;
  }
}

double TrainCostModel::MinibatchTime(double tokens) const {
  double flops = tokens * model_.train_flops_per_token() * flops_multiplier_;
  return flops / (train_gpus_ * gpu_.peak_flops_bf16 * mfu_) +
         fixed_minibatch_overhead_ * gpu_.host_overhead_scale;
}

double TrainCostModel::ExperiencePrepTime(double tokens) const {
  // Two inference forwards (reference log-probs + behaviour log-probs).
  double flops = 2.0 * tokens * model_.forward_flops_per_token() * flops_multiplier_;
  return flops / (train_gpus_ * gpu_.peak_flops_bf16 * mfu_);
}

double TrainCostModel::IterationTime(double global_tokens, int num_minibatches) const {
  LAMINAR_CHECK_GT(num_minibatches, 0);
  double per_mb = global_tokens / num_minibatches;
  return ExperiencePrepTime(global_tokens) + num_minibatches * MinibatchTime(per_mb);
}

}  // namespace laminar
