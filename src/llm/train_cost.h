// Cost model for the trainer's policy-update step.
//
// An RL iteration trains one global batch (e.g. 8192 trajectories) as a
// sequence of mini-batch updates. Per-token work is ~6*P FLOPs for the
// forward+backward pass plus ~2*P per auxiliary forward (reference-model
// log-probs / experience preparation, paper §2.2's 7.3% share). The model is
// parallelism-agnostic: FSDP vs Megatron differ only in achievable MFU.
#ifndef LAMINAR_SRC_LLM_TRAIN_COST_H_
#define LAMINAR_SRC_LLM_TRAIN_COST_H_

#include "src/cluster/hardware.h"
#include "src/llm/model_spec.h"

namespace laminar {

enum class TrainBackend {
  kFsdp,      // Torch FSDP + Ulysses SP (verl-family systems)
  kMegatron,  // Megatron-LM hybrid parallelism (AReaL)
};

class TrainCostModel {
 public:
  // `pipeline_parallel` only matters for the Megatron backend, whose MFU is
  // discounted by the pipeline bubble (p-1)/(m+p-1) at m micro-batches.
  TrainCostModel(ModelSpec model, GpuSpec gpu, int train_gpus,
                 TrainBackend backend = TrainBackend::kFsdp, int pipeline_parallel = 1);

  // Wall time of one mini-batch update over `tokens` tokens.
  double MinibatchTime(double tokens) const;

  // Wall time of experience preparation for `tokens` tokens (reference and
  // old-policy log-prob forwards), overlappable in stream-generation systems.
  double ExperiencePrepTime(double tokens) const;

  // Full iteration: prep + `num_minibatches` updates over `global_tokens`.
  double IterationTime(double global_tokens, int num_minibatches) const;

  // Extra multiplier on per-token training FLOPs; decoupled PPO pays an
  // additional proximal-policy forward pass (~1.2x).
  void set_flops_multiplier(double m) { flops_multiplier_ = m; }

  int train_gpus() const { return train_gpus_; }
  double mfu() const { return mfu_; }
  const ModelSpec& model() const { return model_; }

 private:
  ModelSpec model_;
  GpuSpec gpu_;
  int train_gpus_;
  double mfu_;
  double flops_multiplier_ = 1.0;
  // Fixed per-mini-batch overhead: optimizer step, gradient sync tail, etc.
  double fixed_minibatch_overhead_ = 0.4;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_LLM_TRAIN_COST_H_
