#include "src/policy/policy.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Memo-table geometry (powers of two; direct-mapped).
constexpr size_t kFeatureCacheSize = 64;
constexpr size_t kProbCacheSize = 1024;
constexpr size_t kCurrentCacheSize = 256;

uint64_t BitsOf(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

size_t SlotFor(uint64_t key, size_t table_size) {
  return (key * 0x9E3779B97F4A7C15ull) >> 32 & (table_size - 1);
}

}  // namespace

const char* RlAlgorithmName(RlAlgorithm algorithm) {
  switch (algorithm) {
    case RlAlgorithm::kGrpo:
      return "GRPO";
    case RlAlgorithm::kDecoupledPpo:
      return "Decoupled-PPO";
  }
  return "?";
}

Policy::Policy(PolicyConfig config) : config_(config) {
  LAMINAR_CHECK_GT(config_.num_features, 0);
  theta_.assign(config_.num_features, 0.0);
  history_.push_back(theta_);  // version 0
  feature_cache_.resize(kFeatureCacheSize);
  prob_cache_.resize(kProbCacheSize);
  current_cache_.resize(kCurrentCacheSize);
}

std::vector<double> Policy::Features(double difficulty) const {
  std::vector<double> phi(config_.num_features);
  double norm = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    double center = config_.num_features == 1
                        ? 0.5
                        : static_cast<double>(j) / (config_.num_features - 1);
    double z = (difficulty - center) / config_.feature_width;
    phi[j] = std::exp(-0.5 * z * z);
    norm += phi[j] * phi[j];
  }
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& v : phi) {
      v /= norm;
    }
  }
  return phi;
}

// Memoized features: the RBF expansion depends only on the (immutable)
// config, so a bit-equal difficulty always maps to the same vector. The
// cached vector is computed by Features() itself, so hits are bit-identical.
const std::vector<double>& Policy::FeaturesCached(double difficulty) const {
  FeatureEntry& entry =
      feature_cache_[SlotFor(BitsOf(difficulty), kFeatureCacheSize)];
  if (!entry.valid || entry.d != difficulty) {
    entry.phi = Features(difficulty);
    entry.d = difficulty;
    entry.valid = true;
  }
  return entry.phi;
}

double Policy::Logit(const std::vector<double>& theta, double difficulty) const {
  const std::vector<double>& phi = FeaturesCached(difficulty);
  double dot = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    dot += theta[j] * phi[j];
  }
  return dot - (config_.offset_base + config_.offset_slope * difficulty);
}

int Policy::PublishVersion() {
  history_.push_back(theta_);
  return latest_version();
}

void Policy::RestoreVersion(int version) {
  LAMINAR_CHECK_GE(version, 0);
  LAMINAR_CHECK_LE(version, latest_version());
  theta_ = history_[version];
  ++theta_epoch_;
}

double Policy::SuccessProb(int version, double difficulty) const {
  LAMINAR_CHECK_GE(version, 0);
  int v = std::min<int>(version, latest_version());
  // Keyed on the clamped version: history_[v] never mutates once pushed, so
  // an entry stays exact forever.
  ProbEntry& entry = prob_cache_[SlotFor(
      BitsOf(difficulty) ^ static_cast<uint64_t>(v), kProbCacheSize)];
  if (!entry.valid || entry.version != v || entry.d != difficulty) {
    entry.p = Sigmoid(Logit(history_[v], difficulty));
    entry.version = v;
    entry.d = difficulty;
    entry.valid = true;
  }
  return entry.p;
}

double Policy::CurrentSuccessProb(double difficulty) const {
  // Keyed on the live-parameter epoch: any in-place theta_ mutation bumps it
  // and implicitly invalidates the whole table.
  CurrentEntry& entry = current_cache_[SlotFor(
      BitsOf(difficulty) ^ (theta_epoch_ * 0x100000001B3ull), kCurrentCacheSize)];
  if (!entry.valid || entry.epoch != theta_epoch_ || entry.d != difficulty) {
    entry.p = Sigmoid(Logit(theta_, difficulty));
    entry.epoch = theta_epoch_;
    entry.d = difficulty;
    entry.valid = true;
  }
  return entry.p;
}

void Policy::ScoreTrajectory(TrajectoryRecord& record, Rng& rng) const {
  LAMINAR_CHECK(!record.weight_versions.empty());
  // True sampler: the mixture of every policy version the trajectory used
  // (equal weights; the simulator does not track per-version token counts).
  std::set<int> distinct(record.weight_versions.begin(), record.weight_versions.end());
  double p_true = 0.0;
  for (int v : distinct) {
    p_true += SuccessProb(v, record.difficulty);
  }
  p_true /= static_cast<double>(distinct.size());
  record.success = rng.Bernoulli(p_true);
  record.reward = record.success ? 1.0 : 0.0;
  // What the training stack assumes: the trajectory was produced by the
  // single policy version it is attributed to (its generation version, which
  // also defines its GRPO group's consistency). Exact for single-version
  // trajectories; misspecified for mixed-version ones, whose true sampler is
  // the mixture — the partial-rollout pathology (§2.3, Appendix C).
  record.behavior_prob = SuccessProb(record.generation_version(), record.difficulty);
}

UpdateStats Policy::UpdateMinibatch(const std::vector<TrajectoryRecord>& minibatch,
                                    RlAlgorithm algorithm) {
  UpdateStats stats;
  if (minibatch.empty()) {
    return stats;
  }
  // GRPO advantages: normalize rewards within each prompt group.
  std::map<int64_t, std::vector<const TrajectoryRecord*>> groups;
  for (const TrajectoryRecord& rec : minibatch) {
    groups[rec.prompt_id].push_back(&rec);
  }
  std::map<int64_t, std::pair<double, double>> group_stats;  // mean, std
  for (const auto& [pid, members] : groups) {
    double mean = 0.0;
    for (const auto* rec : members) {
      mean += rec->reward;
    }
    mean /= static_cast<double>(members.size());
    double var = 0.0;
    for (const auto* rec : members) {
      var += (rec->reward - mean) * (rec->reward - mean);
    }
    var /= static_cast<double>(members.size());
    group_stats[pid] = {mean, std::sqrt(var)};
  }

  std::vector<double> grad(config_.num_features, 0.0);
  for (const TrajectoryRecord& rec : minibatch) {
    stats.mean_reward += rec.reward;
    auto [mean, stddev] = group_stats[rec.prompt_id];
    if (stddev < 1e-9) {
      continue;  // all-success or all-failure group carries no GRPO signal
    }
    double advantage = (rec.reward - mean) / (stddev + 1e-6);
    bool y = rec.success;

    double p_new = CurrentSuccessProb(rec.difficulty);
    double pi_new = y ? p_new : 1.0 - p_new;

    double behavior = std::clamp(rec.behavior_prob, 1e-6, 1.0 - 1e-6);
    double pi_behavior = y ? behavior : 1.0 - behavior;

    double weight = 1.0;
    double ratio;
    if (algorithm == RlAlgorithm::kDecoupledPpo) {
      // Proximal policy: the actor version live when generation finished.
      double prox = SuccessProb(rec.finish_actor_version, rec.difficulty);
      prox = std::clamp(prox, 1e-6, 1.0 - 1e-6);
      double pi_prox = y ? prox : 1.0 - prox;
      weight = std::min(pi_prox / pi_behavior, config_.behavior_ratio_cap);
      ratio = pi_new / pi_prox;
    } else {
      ratio = pi_new / pi_behavior;
    }
    stats.mean_abs_log_ratio += std::fabs(std::log(std::max(ratio, 1e-9)));

    // PPO-clip: the gradient vanishes on the clipped side.
    bool clipped = (advantage > 0.0 && ratio > 1.0 + config_.clip_high) ||
                   (advantage < 0.0 && ratio < 1.0 - config_.clip_low);
    if (clipped) {
      stats.clip_fraction += 1.0;
      continue;
    }
    // d/dtheta [w * ratio * A] = w * A * ratio * (y - p_new) * phi(d).
    const std::vector<double>& phi = FeaturesCached(rec.difficulty);
    double scale = weight * advantage * ratio * (y ? 1.0 - p_new : -p_new);
    for (int j = 0; j < config_.num_features; ++j) {
      grad[j] += scale * phi[j];
    }
  }
  double n = static_cast<double>(minibatch.size());
  stats.mean_reward /= n;
  stats.clip_fraction /= n;
  stats.mean_abs_log_ratio /= n;
  stats.num_samples = static_cast<int>(minibatch.size());

  double norm = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    grad[j] /= n;
    norm += grad[j] * grad[j];
  }
  stats.grad_norm = std::sqrt(norm);
  // Plain SGD ascent on the clipped surrogate.
  for (int j = 0; j < config_.num_features; ++j) {
    theta_[j] += config_.learning_rate * grad[j];
  }
  ++theta_epoch_;
  return stats;
}

void Policy::Snapshot(SnapshotTx& tx) {
  tx.Begin("policy");
  tx.F64Vec("theta", &theta_);
  uint64_t versions = history_.size();
  tx.U64("versions", &versions);
  if (tx.adopting()) {
    history_.assign(versions, {});
  }
  for (std::vector<double>& h : history_) {
    tx.F64Vec("history", &h);
  }
  if (tx.adopting()) {
    // The current-parameter memo is keyed on the epoch; bump it so stale
    // pre-adoption entries can never satisfy a post-adoption query.
    ++theta_epoch_;
  }
  tx.End();
}

double Policy::EvalExpectedReward() const {
  // Trapezoidal integration of p(theta, d) over d in [0, 1].
  constexpr int kGrid = 200;
  double sum = 0.0;
  for (int i = 0; i <= kGrid; ++i) {
    double d = static_cast<double>(i) / kGrid;
    double w = (i == 0 || i == kGrid) ? 0.5 : 1.0;
    sum += w * CurrentSuccessProb(d);
  }
  return sum / kGrid;
}

double Policy::EvalExpectedRewardAt(int version) const {
  constexpr int kGrid = 200;
  double sum = 0.0;
  for (int i = 0; i <= kGrid; ++i) {
    double d = static_cast<double>(i) / kGrid;
    double w = (i == 0 || i == kGrid) ? 0.5 : 1.0;
    sum += w * SuccessProb(version, d);
  }
  return sum / kGrid;
}

}  // namespace laminar
