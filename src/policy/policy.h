// Learnable policy over a synthetic reasoning task, driving the convergence
// experiments (paper Figure 13, Table 3).
//
// The real system trains an LLM with GRPO; what the convergence comparison
// actually measures is how data staleness and mixed-version trajectories
// degrade learning progress per wall-clock second. We reproduce that causal
// chain with a small but genuine RL problem:
//
//  * A prompt has difficulty d ~ U[0,1]; the policy is a linear model over
//    radial-basis features of d whose sigmoid gives the success probability.
//  * A trajectory's binary reward is sampled under the policy version(s) it
//    was generated with; the recorded behaviour probability is what the
//    serving system believes, which diverges from the true sampler when a
//    trajectory mixes versions (partial rollout).
//  * Updates use the PPO-clip surrogate with GRPO group advantages
//    (Clip-Higher, eps_high > eps_low) or AReaL's decoupled-PPO correction.
//
// Staleness therefore hurts exactly the way the paper describes: stale or
// misspecified importance ratios fall outside the clip range and contribute
// zero gradient, so throughput gains can be nullified by data quality.
#ifndef LAMINAR_SRC_POLICY_POLICY_H_
#define LAMINAR_SRC_POLICY_POLICY_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/trajectory.h"

namespace laminar {

class SnapshotTx;

enum class RlAlgorithm {
  kGrpo,          // GRPO + Clip-Higher (verl, one-step, stream-gen, Laminar)
  kDecoupledPpo,  // AReaL's decoupled PPO (behaviour/proximal split)
};

const char* RlAlgorithmName(RlAlgorithm algorithm);

struct PolicyConfig {
  int num_features = 12;
  // Calibrated so one published version drifts importance ratios by
  // |log ratio| ~ 0.07: staleness <= 4 costs little (as the paper observes
  // for Laminar/AReaL), deep staleness visibly degrades learning.
  double learning_rate = 0.10;
  double clip_low = 0.2;    // eps_low  (Table 3)
  double clip_high = 0.28;  // eps_high (Clip-Higher)
  // Decoupled PPO truncation bound on the behaviour ratio.
  double behavior_ratio_cap = 2.0;
  // Task shape: required skill grows with difficulty.
  double offset_base = 1.0;
  double offset_slope = 3.5;
  double feature_width = 0.16;
};

struct UpdateStats {
  double mean_reward = 0.0;
  double clip_fraction = 0.0;      // samples with zero gradient due to clipping
  double mean_abs_log_ratio = 0.0;
  double grad_norm = 0.0;
  int num_samples = 0;
};

class Policy {
 public:
  explicit Policy(PolicyConfig config);

  // Versioning ---------------------------------------------------------------
  // Snapshot of the current parameters becomes version (num_versions). The
  // initial parameters are version 0.
  int PublishVersion();
  int latest_version() const { return static_cast<int>(history_.size()) - 1; }
  // Resets the live parameters to snapshot `version` (checkpoint recovery
  // after a trainer failure discards unpublished mini-batch updates).
  void RestoreVersion(int version);

  // Generation side ------------------------------------------------------------
  // Success probability of the policy snapshot `version` on difficulty `d`.
  double SuccessProb(int version, double difficulty) const;
  double CurrentSuccessProb(double difficulty) const;
  // Samples the outcome of a finished trajectory: draws success under the
  // true (possibly mixed-version) sampler, sets reward/success and the
  // behaviour probability the serving stack would have recorded (the final
  // version's probability — correct iff the trajectory is single-version).
  void ScoreTrajectory(TrajectoryRecord& record, Rng& rng) const;

  // Training side ---------------------------------------------------------------
  // One mini-batch policy update. Records must carry reward, behaviour prob,
  // difficulty and version metadata (ScoreTrajectory fills all of them).
  // Groups records by prompt_id for GRPO advantages.
  UpdateStats UpdateMinibatch(const std::vector<TrajectoryRecord>& minibatch,
                              RlAlgorithm algorithm);

  // Exact expected reward of the current parameters over the difficulty
  // distribution (numerical integration) — the smooth convergence metric.
  double EvalExpectedReward() const;
  double EvalExpectedRewardAt(int version) const;

  const PolicyConfig& config() const { return config_; }
  const std::vector<double>& parameters() const { return theta_; }

  // Full-state snapshot (LMSNAP1 v2): live parameters plus the published
  // version history. The memo tables are exact caches keyed on inputs, so
  // they are rebuilt lazily after adoption rather than serialized.
  void Snapshot(SnapshotTx& tx);

 private:
  std::vector<double> Features(double difficulty) const;
  const std::vector<double>& FeaturesCached(double difficulty) const;
  double Logit(const std::vector<double>& theta, double difficulty) const;

  PolicyConfig config_;
  std::vector<double> theta_;
  std::vector<std::vector<double>> history_;  // snapshots per version

  // Exact memo tables (DESIGN.md §11). Policy evaluation is inner-loop work —
  // every trajectory score and every GRPO record evaluates RBF features and a
  // sigmoid, and prompt difficulties repeat heavily (one difficulty per
  // prompt, group_size records per prompt; the expected-reward integral
  // re-walks a fixed grid). A cache row hits only on bit-equality of the
  // query (and, where parameters can change, an equal epoch/version), so a
  // hit returns exactly what a fresh evaluation would: feature vectors are
  // config-only, `history_` snapshots are append-only and immutable, and
  // `theta_epoch_` advances whenever the live parameters mutate.
  struct FeatureEntry {
    bool valid = false;
    double d = 0.0;
    std::vector<double> phi;
  };
  struct ProbEntry {
    bool valid = false;
    int version = 0;
    double d = 0.0;
    double p = 0.0;
  };
  struct CurrentEntry {
    bool valid = false;
    uint64_t epoch = 0;
    double d = 0.0;
    double p = 0.0;
  };
  mutable std::vector<FeatureEntry> feature_cache_;
  mutable std::vector<ProbEntry> prob_cache_;
  mutable std::vector<CurrentEntry> current_cache_;
  uint64_t theta_epoch_ = 0;  // bumped on every in-place theta_ mutation
};

}  // namespace laminar

#endif  // LAMINAR_SRC_POLICY_POLICY_H_
