#include "src/relay/broadcast_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace laminar {

double ChunkTime(const BroadcastParams& params, int num_chunks) {
  LAMINAR_CHECK_GT(num_chunks, 0);
  return params.message_bytes / num_chunks * params.byte_time + params.startup_time;
}

double BroadcastTime(const BroadcastParams& params, int num_nodes, int num_chunks) {
  LAMINAR_CHECK_GE(num_nodes, 1);
  if (num_nodes == 1) {
    return 0.0;  // master only; nothing to broadcast
  }
  return (num_nodes + num_chunks - 2) * ChunkTime(params, num_chunks);
}

int OptimalChunkCount(const BroadcastParams& params, int num_nodes) {
  if (num_nodes <= 2 || params.startup_time <= 0.0) {
    return 1;
  }
  double k = std::sqrt((num_nodes - 2) * params.message_bytes * params.byte_time /
                       params.startup_time);
  int k_floor = std::max<int>(1, static_cast<int>(std::floor(k)));
  // T(p,k) is convex in k; check the two integer neighbours.
  double t_floor = BroadcastTime(params, num_nodes, k_floor);
  double t_ceil = BroadcastTime(params, num_nodes, k_floor + 1);
  return t_ceil < t_floor ? k_floor + 1 : k_floor;
}

double OptimalBroadcastTime(const BroadcastParams& params, int num_nodes) {
  return BroadcastTime(params, num_nodes, OptimalChunkCount(params, num_nodes));
}

double ArrivalTime(const BroadcastParams& params, int position, int num_chunks) {
  LAMINAR_CHECK_GE(position, 0);
  if (position == 0) {
    return 0.0;
  }
  return (position + num_chunks - 1) * ChunkTime(params, num_chunks);
}

BroadcastTerms DecomposeOptimalTime(const BroadcastParams& params, int num_nodes) {
  BroadcastTerms terms;
  terms.bandwidth_term = params.message_bytes * params.byte_time;
  if (num_nodes > 2) {
    terms.latency_term = (num_nodes - 2) * params.startup_time;
    terms.pipeline_term = 2.0 * std::sqrt((num_nodes - 2) * params.message_bytes *
                                          params.byte_time * params.startup_time);
  }
  return terms;
}

}  // namespace laminar
