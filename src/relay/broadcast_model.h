// Chain-based pipelined broadcast cost model (paper Appendix D).
//
// A master relay sends weights of M bytes to p-1 relays arranged in a chain.
// The message is cut into k chunks; chunk transfer time between adjacent
// nodes is t_chunk = (M/k)*T_byte + T_start. Total time for the last relay is
// T(p,k) = (p + k - 2) * t_chunk, minimized at k* = sqrt((p-2)*M*T_byte/T_start).
#ifndef LAMINAR_SRC_RELAY_BROADCAST_MODEL_H_
#define LAMINAR_SRC_RELAY_BROADCAST_MODEL_H_

#include <cstdint>

namespace laminar {

struct BroadcastParams {
  double message_bytes = 0.0;   // M
  double byte_time = 0.0;       // T_byte = 1 / bandwidth (s per byte)
  double startup_time = 5e-6;   // T_start
};

// Transfer time of one chunk between adjacent relays.
double ChunkTime(const BroadcastParams& params, int num_chunks);

// Total broadcast time T(p, k) for p nodes (master + p-1 relays), k chunks.
double BroadcastTime(const BroadcastParams& params, int num_nodes, int num_chunks);

// The analytically optimal chunk count k* (clamped to >= 1).
int OptimalChunkCount(const BroadcastParams& params, int num_nodes);

// T(p, k*) — the minimum achievable broadcast time.
double OptimalBroadcastTime(const BroadcastParams& params, int num_nodes);

// Time at which the node at `position` (master = 0) holds the complete
// message, relative to broadcast start, using `num_chunks` chunks.
double ArrivalTime(const BroadcastParams& params, int position, int num_chunks);

// Decomposition of T(p, k*) into the Appendix-D terms, for analysis benches.
struct BroadcastTerms {
  double bandwidth_term = 0.0;  // M * T_byte
  double latency_term = 0.0;    // (p-2) * T_start
  double pipeline_term = 0.0;   // 2 * sqrt((p-2) * M * T_byte * T_start)
  double total() const { return bandwidth_term + latency_term + pipeline_term; }
};
BroadcastTerms DecomposeOptimalTime(const BroadcastParams& params, int num_nodes);

}  // namespace laminar

#endif  // LAMINAR_SRC_RELAY_BROADCAST_MODEL_H_
