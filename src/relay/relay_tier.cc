#include "src/relay/relay_tier.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"

namespace laminar {
namespace {

constexpr int32_t kRelayComp = ContinuationComponentId(kContFamilyRelayTier);

}  // namespace

RelayTier::RelayTier(Simulator* sim, RelayTierConfig config)
    : sim_(sim), config_(config), relays_(config.num_relays),
      link_down_until_(config.num_relays, SimTime::Zero()),
      drop_next_(config.num_relays, 0) {
  LAMINAR_CHECK_GT(config_.num_relays, 0);
  LAMINAR_CHECK_GT(config_.weight_bytes, 0.0);
  sim_->continuations().Register(kRelayComp, this);
}

RelayTier::~RelayTier() { sim_->continuations().Unregister(kRelayComp); }

void RelayTier::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  switch (kind) {
    case kContArrival:
      OnArrival(static_cast<int>(p.a), static_cast<int>(p.b));
      return;
    case kContPullDone:
      CompletePull(p.a);
      return;
  }
  LAMINAR_CHECK(false) << "relay tier: unknown continuation kind " << kind;
}

void RelayTier::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                    SimTime at) {
  if (kind == kContPullDone) {
    // Re-anchor the pull completion on its machine's lane (one relay per
    // rollout machine). The adopted pulls_ map is already in place — the
    // driver reminted events only after the full component adoption walk.
    int shard = 0;
    auto it = pulls_.find(p.a);
    if (it != pulls_.end()) {
      shard = sim_->AffinityShard(it->second.relay);
    }
    sim_->ScheduleLaneControlAt(shard, at, kRelayComp, kind, p);
    return;
  }
  LAMINAR_CHECK_EQ(kind, kContArrival)
      << "relay tier: unknown restored continuation kind " << kind;
  // Re-anchor the arrival on its receiving relay's lane and re-seat the
  // pending-arrival bookkeeping the adopted map carries.
  EventId id = sim_->ScheduleLaneControlAt(
      sim_->AffinityShard(static_cast<int>(p.a)), at, kRelayComp, kind, p);
  relays_[static_cast<int>(p.a)].pending[static_cast<int>(p.b)] =
      PendingArrival{id, at};
}

void RelayTier::ScheduleArrival(int relay, int version, SimTime at) {
  // Chain arrivals touch the receiving relay's own state plus relay-tier
  // control-plane bookkeeping no window event ever reads, and every
  // relay-state mutator is itself a serial event — so an arrival rides its
  // machine's replica lane (one relay per rollout machine) instead of
  // fencing shard windows on lane 0 (DESIGN.md §12). The master's fan-out
  // and waiter pull loads it triggers run from serial context, where the
  // engine's frontier checks guard every downstream schedule.
  EventId eid = sim_->ScheduleLaneControlAt(
      sim_->AffinityShard(relay), at, kRelayComp, kContArrival,
      ContinuationPayload::Of(relay, version));
  relays_[relay].pending[version] = PendingArrival{eid, at};
}

void RelayTier::StartPullLoad(int relay, int got, SimTime requested, PullTicket ticket,
                              double load_seconds) {
  int64_t seq = next_pull_seq_++;
  pulls_[seq] = PendingPull{relay, got, requested, ticket};
  // Pull completions touch only this machine's replica (plus control-plane
  // state no window event reads), so they ride the machine's replica lane
  // instead of fencing every shard window on lane 0 (DESIGN.md §12).
  sim_->ScheduleLaneControlAfter(sim_->AffinityShard(relay), load_seconds,
                                 kRelayComp, kContPullDone,
                                 ContinuationPayload::Of(seq));
}

void RelayTier::CompletePull(int64_t seq) {
  auto it = pulls_.find(seq);
  LAMINAR_CHECK(it != pulls_.end()) << "unknown pull seq " << seq;
  PendingPull p = it->second;
  pulls_.erase(it);
  double wait = sim_->Now() - p.requested;
  pull_waits_.Add(wait);
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kRelay, "relay/pull_wait", p.relay,
                        p.requested, sim_->Now(), p.got);
  CompleteTicket(p.ticket, p.got, wait);
}

void RelayTier::CompleteTicket(const PullTicket& ticket, int version,
                               double wait_seconds) {
  sim_->continuations().Run(
      ticket.comp, ticket.kind,
      ContinuationPayload::Of(ticket.a, ticket.b, version,
                              ContinuationPayload::FromF64(wait_seconds)));
}

int RelayTier::VersionAt(int relay) const {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  return relays_[relay].version;
}

bool RelayTier::IsAlive(int relay) const { return relays_[relay].alive; }

double RelayTier::PullLoadSeconds(int tensor_parallel) const {
  LAMINAR_CHECK_GT(tensor_parallel, 0);
  // Each GPU loads its own shard over its own PCIe link, in parallel.
  return config_.weight_bytes / tensor_parallel / config_.pcie_bandwidth;
}

std::vector<int> RelayTier::AliveChain() const {
  std::vector<int> chain;
  chain.push_back(master_);
  for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
    if (i != master_ && relays_[i].alive) {
      chain.push_back(i);
    }
  }
  return chain;
}

double RelayTier::Publish(int version) {
  LAMINAR_CHECK_GT(version, latest_published_) << "versions must be published in order";
  latest_published_ = version;
  ++publishes_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/publish", master_, version);
  double stall = config_.weight_bytes / config_.actor_push_bandwidth;
  actor_stalls_.Add(stall);
  SimTime master_ready =
      std::max(sim_->Now() + stall + config_.reshard_seconds, master_ready_at_);
  // The master relay "receives" once the push + reshard completes; the chain
  // broadcast then fans out from OnArrival (so failure-driven rescheduling
  // keeps the continuation).
  ScheduleArrival(master_, version, master_ready);
  broadcast_starts_[version] = sim_->Now();
  return stall;
}

void RelayTier::StartBroadcast(int version, SimTime master_ready) {
  std::vector<int> chain = AliveChain();
  int p = static_cast<int>(chain.size());
  if (p <= 1) {
    return;
  }
  BroadcastParams params;
  params.message_bytes = config_.weight_bytes;
  params.byte_time = 1.0 / config_.rdma_bandwidth;
  params.startup_time = config_.rdma_startup;
  int k = OptimalChunkCount(params, p);
  for (int pos = 1; pos < p; ++pos) {
    int relay = chain[pos];
    SimTime at = master_ready + ArrivalTime(params, pos, k);
    at = std::max(at, sim_->Now());
    ScheduleArrival(relay, version, at);
  }
}

void RelayTier::OnArrival(int relay, int version) {
  Relay& r = relays_[relay];
  if (r.alive && drop_next_[relay] > 0) {
    // The chain message was lost in flight. The receiver's per-hop timeout
    // guard notices the gap and the upstream relay retransmits the chunk.
    --drop_next_[relay];
    ++messages_dropped_;
    ++arrival_retries_;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/drop", relay, version);
    ScheduleArrival(relay, version, sim_->Now() + config_.hop_timeout_guard);
    return;
  }
  if (r.alive && sim_->Now() < link_down_until_[relay]) {
    // Inbound link is flapping: the transfer stalls until the link heals and
    // the chain is rebuilt around the degraded hop.
    ++arrival_retries_;
    ScheduleArrival(relay, version, link_down_until_[relay] + config_.rebuild_seconds);
    return;
  }
  r.pending.erase(version);
  if (!r.alive) {
    return;
  }
  if (version > r.version) {
    r.version = version;
  }
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/arrival", relay, version);
  // The master fans a freshly received version down the chain exactly once.
  if (relay == master_ && broadcast_started_.insert(version).second) {
    StartBroadcast(version, sim_->Now());
  }
  // Track broadcast completion: when no relay still has this version pending,
  // the chain has fully propagated it.
  bool any_pending = false;
  for (const Relay& other : relays_) {
    if (other.alive && other.pending.count(version) > 0) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) {
    auto it = broadcast_starts_.find(version);
    if (it != broadcast_starts_.end()) {
      broadcast_times_.Add(sim_->Now() - it->second);
      LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kRelay, "relay/broadcast", master_,
                            it->second, sim_->Now(), version);
      broadcast_starts_.erase(it);
    }
  }
  // Service rollout pulls waiting for this (or an older) version.
  std::vector<Waiter> still_waiting;
  std::vector<Waiter> ready;
  for (Waiter& w : r.waiters) {
    if (r.version >= w.min_version) {
      ready.push_back(std::move(w));
    } else {
      still_waiting.push_back(std::move(w));
    }
  }
  r.waiters = std::move(still_waiting);
  for (Waiter& w : ready) {
    StartPullLoad(relay, r.version, w.requested, w.ticket,
                  PullLoadSeconds(w.tensor_parallel));
  }
}

void RelayTier::PullLatest(int relay, int tensor_parallel, int current_version,
                           PullTicket ticket) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  if (latest_published_ <= current_version) {
    CompleteTicket(ticket, current_version, 0.0);
    return;
  }
  Relay& r = relays_[relay];
  if (r.alive && r.version > current_version) {
    // The common case (paper §4.2 step 3): the local relay already caches a
    // newer version, so the rollout loads it over PCIe immediately — it
    // never waits for an in-flight resharding/broadcast to complete.
    StartPullLoad(relay, r.version, sim_->Now(), ticket,
                  PullLoadSeconds(tensor_parallel));
    return;
  }
  // Nothing newer is resident yet: wait for the first arrival that is.
  r.waiters.push_back(Waiter{current_version + 1, tensor_parallel, sim_->Now(), ticket});
}

void RelayTier::KillRelay(int relay) {
  Relay& r = relays_[relay];
  // Clear waiters even when the relay is already down: PullLatest parks a
  // waiter on a dead relay (it fires once the relay revives and a newer
  // version arrives), so a second kill — e.g. a relay-process fault followed
  // by its machine failing — must still discard them, or a stale waiter
  // outlives the crash and completes a weight update that no longer exists.
  r.waiters.clear();
  if (!r.alive) {
    return;
  }
  r.alive = false;
  r.version = -1;
  for (auto& [version, arrival] : r.pending) {
    sim_->Cancel(arrival.event);
  }
  r.pending.clear();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/kill", relay,
                        latest_published_);

  ++chain_rebuilds_;
  double extra = config_.rebuild_seconds;
  if (relay == master_) {
    // Elect the surviving relay with the newest weights as the new master.
    int best = -1;
    for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
      if (relays_[i].alive && (best == -1 || relays_[i].version > relays_[best].version)) {
        best = i;
      }
    }
    if (best == -1) {
      LAMINAR_LOG(kWarning) << "all relays dead; weight distribution suspended";
      return;
    }
    master_ = best;
    ++master_elections_;
    extra = NextElectionDelay();
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/election", best,
                          latest_published_, extra);
    master_ready_at_ = sim_->Now() + extra;
    // If a publication was lost with the old master, the trainer re-sends it
    // to the newly elected master once notified.
    if (latest_published_ >= 0 && relays_[best].version < latest_published_ &&
        relays_[best].pending.count(latest_published_) == 0) {
      double resend = config_.weight_bytes / config_.actor_push_bandwidth +
                      config_.reshard_seconds;
      ScheduleArrival(best, latest_published_, master_ready_at_ + resend);
    }
  }
  // The scheduler rebuilds the chain around the failure; in-flight chunk
  // streams to downstream relays resume after the O(1) repair delay.
  for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
    Relay& other = relays_[i];
    if (!other.alive) {
      continue;
    }
    for (auto& [version, arrival] : other.pending) {
      // Reschedule: original arrival time plus the repair delay.
      if (!sim_->IsPending(arrival.event)) {
        continue;
      }
      sim_->Cancel(arrival.event);
      SimTime at = std::max(arrival.at + extra, sim_->Now());
      arrival.at = at;
      arrival.event = sim_->ScheduleContinuationAt(
          at, kRelayComp, kContArrival, ContinuationPayload::Of(i, version));
    }
  }
}

double RelayTier::NextElectionDelay() {
  SimTime now = sim_->Now();
  if (consecutive_elections_ > 0 &&
      now - last_election_ <= config_.election_stability_window_seconds) {
    ++consecutive_elections_;
  } else {
    consecutive_elections_ = 1;
  }
  last_election_ = now;
  double delay =
      config_.master_elect_seconds * std::pow(2.0, consecutive_elections_ - 1);
  return std::min(delay, config_.master_elect_backoff_cap_seconds);
}

void RelayTier::FlapLink(int relay, double duration_seconds) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  LAMINAR_CHECK_GE(duration_seconds, 0.0);
  ++link_flaps_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/link_flap", relay, 0,
                        duration_seconds);
  SimTime heal = sim_->Now() + duration_seconds;
  link_down_until_[relay] = std::max(link_down_until_[relay], heal);
  Relay& r = relays_[relay];
  if (!r.alive) {
    return;  // a dead relay's link state is moot
  }
  ++chain_rebuilds_;
  // In-flight chunk streams into this relay stall until the link heals and
  // the scheduler rebuilds the chain around the degraded hop.
  for (auto& [version, arrival] : r.pending) {
    if (!sim_->IsPending(arrival.event)) {
      continue;
    }
    sim_->Cancel(arrival.event);
    SimTime at = std::max(arrival.at, link_down_until_[relay] + config_.rebuild_seconds);
    arrival.at = at;
    arrival.event = sim_->ScheduleContinuationAt(
        at, kRelayComp, kContArrival, ContinuationPayload::Of(relay, version));
  }
}

void RelayTier::DropNextArrival(int relay) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  ++drop_next_[relay];
}

void RelayTier::ReviveRelay(int relay) {
  Relay& r = relays_[relay];
  if (r.alive) {
    return;
  }
  r.alive = true;
  r.version = -1;
  r.pending.clear();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/revive", relay,
                        latest_published_);
  if (!relays_[master_].alive) {
    // Everyone had died; the revived relay becomes master and the trainer is
    // notified to re-send the newest published weights.
    master_ = relay;
    ++master_elections_;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/election", relay,
                          latest_published_);
    master_ready_at_ = std::max(master_ready_at_, sim_->Now() + NextElectionDelay());
  }
  if (relay == master_) {
    if (latest_published_ >= 0 && r.version < latest_published_) {
      int version = latest_published_;
      // A fresh publication already in flight to this master supersedes this.
      if (r.pending.count(version) == 0) {
        double resend = config_.weight_bytes / config_.actor_push_bandwidth +
                        config_.reshard_seconds;
        ScheduleArrival(relay, version, std::max(master_ready_at_, sim_->Now()) + resend);
      }
    }
    return;
  }
  // Sync the newest weights from the master over one RDMA hop.
  const Relay& m = relays_[master_];
  if (m.version >= 0) {
    double hop = config_.weight_bytes / config_.rdma_bandwidth + config_.rdma_startup;
    ScheduleArrival(relay, m.version, sim_->Now() + hop);
  }
}

void RelayTier::Snapshot(SnapshotTx& tx) {
  tx.Begin("relay_tier");
  tx.I64As("master", &master_);
  tx.I64As("latest_published", &latest_published_);
  double master_ready_at = master_ready_at_.seconds();
  tx.F64("master_ready_at", &master_ready_at);
  SnapshotPacked(
      tx, "relays",
      [this](ByteSink& s) {
        for (size_t i = 0; i < relays_.size(); ++i) {
          const Relay& r = relays_[i];
          s.Bool(r.alive);
          s.I32(r.version);
          s.U64(r.pending.size());
          for (const auto& [version, arrival] : r.pending) {
            s.I32(version);
            s.Time(arrival.at);
          }
          s.U64(r.waiters.size());
          for (const Waiter& w : r.waiters) {
            s.I32(w.min_version);
            s.I32(w.tensor_parallel);
            s.Time(w.requested);
            s.I32(w.ticket.comp);
            s.U32(w.ticket.kind);
            s.I64(w.ticket.a);
            s.I64(w.ticket.b);
          }
          s.Time(link_down_until_[i]);
          s.I32(drop_next_[i]);
        }
      },
      [this](ByteSource& s) {
        for (size_t i = 0; i < relays_.size(); ++i) {
          Relay& r = relays_[i];
          r.alive = s.Bool();
          r.version = s.I32();
          r.pending.clear();
          uint64_t pending = s.U64();
          for (uint64_t j = 0; j < pending; ++j) {
            int version = s.I32();
            // Event ids re-seat when RestoreContinuation re-mints the heap.
            r.pending[version] = PendingArrival{kInvalidEventId, s.Time()};
          }
          r.waiters.clear();
          uint64_t waiters = s.U64();
          for (uint64_t j = 0; j < waiters; ++j) {
            Waiter w;
            w.min_version = s.I32();
            w.tensor_parallel = s.I32();
            w.requested = s.Time();
            w.ticket.comp = s.I32();
            w.ticket.kind = static_cast<uint16_t>(s.U32());
            w.ticket.a = s.I64();
            w.ticket.b = s.I64();
            r.waiters.push_back(w);
          }
          link_down_until_[i] = s.Time();
          drop_next_[i] = s.I32();
        }
      });
  tx.I64As("consecutive_elections", &consecutive_elections_);
  double last_election = last_election_.seconds();
  tx.F64("last_election", &last_election);
  tx.I64("publishes", &publishes_);
  tx.I64("chain_rebuilds", &chain_rebuilds_);
  tx.I64("master_elections", &master_elections_);
  tx.I64("link_flaps", &link_flaps_);
  tx.I64("messages_dropped", &messages_dropped_);
  tx.I64("arrival_retries", &arrival_retries_);
  SnapshotPacked(
      tx, "broadcasts",
      [this](ByteSink& s) {
        s.U64(broadcast_starts_.size());
        for (const auto& [version, at] : broadcast_starts_) {
          s.I32(version);
          s.Time(at);
        }
        s.U64(broadcast_started_.size());
        for (int version : broadcast_started_) {
          s.I32(version);
        }
      },
      [this](ByteSource& s) {
        broadcast_starts_.clear();
        uint64_t starts = s.U64();
        for (uint64_t j = 0; j < starts; ++j) {
          int version = s.I32();
          broadcast_starts_[version] = s.Time();
        }
        broadcast_started_.clear();
        uint64_t started = s.U64();
        for (uint64_t j = 0; j < started; ++j) {
          broadcast_started_.insert(s.I32());
        }
      });
  SnapshotPacked(
      tx, "pulls",
      [this](ByteSink& s) {
        s.I64(next_pull_seq_);
        s.U64(pulls_.size());
        for (const auto& [seq, p] : pulls_) {
          s.I64(seq);
          s.I32(p.relay);
          s.I32(p.got);
          s.Time(p.requested);
          s.I32(p.ticket.comp);
          s.U32(p.ticket.kind);
          s.I64(p.ticket.a);
          s.I64(p.ticket.b);
        }
      },
      [this](ByteSource& s) {
        next_pull_seq_ = s.I64();
        pulls_.clear();
        uint64_t n = s.U64();
        for (uint64_t j = 0; j < n; ++j) {
          int64_t seq = s.I64();
          PendingPull p;
          p.relay = s.I32();
          p.got = s.I32();
          p.requested = s.Time();
          p.ticket.comp = s.I32();
          p.ticket.kind = static_cast<uint16_t>(s.U32());
          p.ticket.a = s.I64();
          p.ticket.b = s.I64();
          pulls_[seq] = p;
        }
      });
  if (tx.adopting()) {
    master_ready_at_ = SimTime(master_ready_at);
    last_election_ = SimTime(last_election);
  }
  tx.Begin("pull_waits");
  pull_waits_.Snapshot(tx);
  tx.End();
  tx.Begin("broadcast_times");
  broadcast_times_.Snapshot(tx);
  tx.End();
  tx.Begin("actor_stalls");
  actor_stalls_.Snapshot(tx);
  tx.End();
  tx.End();
}

}  // namespace laminar
