#include "src/relay/relay_tier.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/trace/trace.h"

namespace laminar {

RelayTier::RelayTier(Simulator* sim, RelayTierConfig config)
    : sim_(sim), config_(config), relays_(config.num_relays),
      link_down_until_(config.num_relays, SimTime::Zero()),
      drop_next_(config.num_relays, 0) {
  LAMINAR_CHECK_GT(config_.num_relays, 0);
  LAMINAR_CHECK_GT(config_.weight_bytes, 0.0);
}

int RelayTier::VersionAt(int relay) const {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  return relays_[relay].version;
}

bool RelayTier::IsAlive(int relay) const { return relays_[relay].alive; }

double RelayTier::PullLoadSeconds(int tensor_parallel) const {
  LAMINAR_CHECK_GT(tensor_parallel, 0);
  // Each GPU loads its own shard over its own PCIe link, in parallel.
  return config_.weight_bytes / tensor_parallel / config_.pcie_bandwidth;
}

std::vector<int> RelayTier::AliveChain() const {
  std::vector<int> chain;
  chain.push_back(master_);
  for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
    if (i != master_ && relays_[i].alive) {
      chain.push_back(i);
    }
  }
  return chain;
}

double RelayTier::Publish(int version) {
  LAMINAR_CHECK_GT(version, latest_published_) << "versions must be published in order";
  latest_published_ = version;
  ++publishes_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/publish", master_, version);
  double stall = config_.weight_bytes / config_.actor_push_bandwidth;
  actor_stalls_.Add(stall);
  SimTime master_ready =
      std::max(sim_->Now() + stall + config_.reshard_seconds, master_ready_at_);
  // The master relay "receives" once the push + reshard completes; the chain
  // broadcast then fans out from OnArrival (so failure-driven rescheduling
  // keeps the continuation).
  int master = master_;
  EventId eid = sim_->ScheduleAt(
      master_ready, [this, master, version] { OnArrival(master, version); });
  relays_[master].pending[version] = PendingArrival{eid, master_ready};
  broadcast_starts_[version] = sim_->Now();
  return stall;
}

void RelayTier::StartBroadcast(int version, SimTime master_ready) {
  std::vector<int> chain = AliveChain();
  int p = static_cast<int>(chain.size());
  if (p <= 1) {
    return;
  }
  BroadcastParams params;
  params.message_bytes = config_.weight_bytes;
  params.byte_time = 1.0 / config_.rdma_bandwidth;
  params.startup_time = config_.rdma_startup;
  int k = OptimalChunkCount(params, p);
  for (int pos = 1; pos < p; ++pos) {
    int relay = chain[pos];
    SimTime at = master_ready + ArrivalTime(params, pos, k);
    at = std::max(at, sim_->Now());
    EventId eid = sim_->ScheduleAt(at, [this, relay, version] { OnArrival(relay, version); });
    relays_[relay].pending[version] = PendingArrival{eid, at};
  }
}

void RelayTier::OnArrival(int relay, int version) {
  Relay& r = relays_[relay];
  if (r.alive && drop_next_[relay] > 0) {
    // The chain message was lost in flight. The receiver's per-hop timeout
    // guard notices the gap and the upstream relay retransmits the chunk.
    --drop_next_[relay];
    ++messages_dropped_;
    ++arrival_retries_;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/drop", relay, version);
    SimTime at = sim_->Now() + config_.hop_timeout_guard;
    EventId eid = sim_->ScheduleAt(at, [this, relay, version] { OnArrival(relay, version); });
    r.pending[version] = PendingArrival{eid, at};
    return;
  }
  if (r.alive && sim_->Now() < link_down_until_[relay]) {
    // Inbound link is flapping: the transfer stalls until the link heals and
    // the chain is rebuilt around the degraded hop.
    ++arrival_retries_;
    SimTime at = link_down_until_[relay] + config_.rebuild_seconds;
    EventId eid = sim_->ScheduleAt(at, [this, relay, version] { OnArrival(relay, version); });
    r.pending[version] = PendingArrival{eid, at};
    return;
  }
  r.pending.erase(version);
  if (!r.alive) {
    return;
  }
  if (version > r.version) {
    r.version = version;
  }
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/arrival", relay, version);
  // The master fans a freshly received version down the chain exactly once.
  if (relay == master_ && broadcast_started_.insert(version).second) {
    StartBroadcast(version, sim_->Now());
  }
  // Track broadcast completion: when no relay still has this version pending,
  // the chain has fully propagated it.
  bool any_pending = false;
  for (const Relay& other : relays_) {
    if (other.alive && other.pending.count(version) > 0) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) {
    auto it = broadcast_starts_.find(version);
    if (it != broadcast_starts_.end()) {
      broadcast_times_.Add(sim_->Now() - it->second);
      LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kRelay, "relay/broadcast", master_,
                            it->second, sim_->Now(), version);
      broadcast_starts_.erase(it);
    }
  }
  // Service rollout pulls waiting for this (or an older) version.
  std::vector<Waiter> still_waiting;
  std::vector<Waiter> ready;
  for (Waiter& w : r.waiters) {
    if (r.version >= w.min_version) {
      ready.push_back(std::move(w));
    } else {
      still_waiting.push_back(std::move(w));
    }
  }
  r.waiters = std::move(still_waiting);
  for (Waiter& w : ready) {
    double load = PullLoadSeconds(w.tensor_parallel);
    int got = r.version;
    SimTime requested = w.requested;
    auto done = std::move(w.done);
    sim_->ScheduleAfter(load, [this, relay, got, requested, done = std::move(done)] {
      double wait = sim_->Now() - requested;
      pull_waits_.Add(wait);
      LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kRelay, "relay/pull_wait", relay,
                            requested, sim_->Now(), got);
      done(got, wait);
    });
  }
}

void RelayTier::PullLatest(int relay, int tensor_parallel, int current_version,
                           std::function<void(int version, double wait_seconds)> done) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  if (latest_published_ <= current_version) {
    done(current_version, 0.0);
    return;
  }
  Relay& r = relays_[relay];
  if (r.alive && r.version > current_version) {
    // The common case (paper §4.2 step 3): the local relay already caches a
    // newer version, so the rollout loads it over PCIe immediately — it
    // never waits for an in-flight resharding/broadcast to complete.
    double load = PullLoadSeconds(tensor_parallel);
    int got = r.version;
    SimTime requested = sim_->Now();
    sim_->ScheduleAfter(load, [this, relay, got, requested, done = std::move(done)] {
      double wait = sim_->Now() - requested;
      pull_waits_.Add(wait);
      LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kRelay, "relay/pull_wait", relay,
                            requested, sim_->Now(), got);
      done(got, wait);
    });
    return;
  }
  // Nothing newer is resident yet: wait for the first arrival that is.
  r.waiters.push_back(
      Waiter{current_version + 1, tensor_parallel, sim_->Now(), std::move(done)});
}

void RelayTier::KillRelay(int relay) {
  Relay& r = relays_[relay];
  // Clear waiters even when the relay is already down: PullLatest parks a
  // waiter on a dead relay (it fires once the relay revives and a newer
  // version arrives), so a second kill — e.g. a relay-process fault followed
  // by its machine failing — must still discard them, or a stale waiter
  // outlives the crash and completes a weight update that no longer exists.
  r.waiters.clear();
  if (!r.alive) {
    return;
  }
  r.alive = false;
  r.version = -1;
  for (auto& [version, arrival] : r.pending) {
    sim_->Cancel(arrival.event);
  }
  r.pending.clear();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/kill", relay,
                        latest_published_);

  ++chain_rebuilds_;
  double extra = config_.rebuild_seconds;
  if (relay == master_) {
    // Elect the surviving relay with the newest weights as the new master.
    int best = -1;
    for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
      if (relays_[i].alive && (best == -1 || relays_[i].version > relays_[best].version)) {
        best = i;
      }
    }
    if (best == -1) {
      LAMINAR_LOG(kWarning) << "all relays dead; weight distribution suspended";
      return;
    }
    master_ = best;
    ++master_elections_;
    extra = NextElectionDelay();
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/election", best,
                          latest_published_, extra);
    master_ready_at_ = sim_->Now() + extra;
    // If a publication was lost with the old master, the trainer re-sends it
    // to the newly elected master once notified.
    if (latest_published_ >= 0 && relays_[best].version < latest_published_ &&
        relays_[best].pending.count(latest_published_) == 0) {
      int version = latest_published_;
      double resend = config_.weight_bytes / config_.actor_push_bandwidth +
                      config_.reshard_seconds;
      SimTime at = master_ready_at_ + resend;
      EventId eid =
          sim_->ScheduleAt(at, [this, best, version] { OnArrival(best, version); });
      relays_[best].pending[version] = PendingArrival{eid, at};
    }
  }
  // The scheduler rebuilds the chain around the failure; in-flight chunk
  // streams to downstream relays resume after the O(1) repair delay.
  for (int i = 0; i < static_cast<int>(relays_.size()); ++i) {
    Relay& other = relays_[i];
    if (!other.alive) {
      continue;
    }
    for (auto& [version, arrival] : other.pending) {
      // Reschedule: original arrival time plus the repair delay.
      if (!sim_->IsPending(arrival.event)) {
        continue;
      }
      sim_->Cancel(arrival.event);
      int target_relay = i;
      int v = version;
      SimTime at = std::max(arrival.at + extra, sim_->Now());
      arrival.at = at;
      arrival.event =
          sim_->ScheduleAt(at, [this, target_relay, v] { OnArrival(target_relay, v); });
    }
  }
}

double RelayTier::NextElectionDelay() {
  SimTime now = sim_->Now();
  if (consecutive_elections_ > 0 &&
      now - last_election_ <= config_.election_stability_window_seconds) {
    ++consecutive_elections_;
  } else {
    consecutive_elections_ = 1;
  }
  last_election_ = now;
  double delay =
      config_.master_elect_seconds * std::pow(2.0, consecutive_elections_ - 1);
  return std::min(delay, config_.master_elect_backoff_cap_seconds);
}

void RelayTier::FlapLink(int relay, double duration_seconds) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  LAMINAR_CHECK_GE(duration_seconds, 0.0);
  ++link_flaps_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/link_flap", relay, 0,
                        duration_seconds);
  SimTime heal = sim_->Now() + duration_seconds;
  link_down_until_[relay] = std::max(link_down_until_[relay], heal);
  Relay& r = relays_[relay];
  if (!r.alive) {
    return;  // a dead relay's link state is moot
  }
  ++chain_rebuilds_;
  // In-flight chunk streams into this relay stall until the link heals and
  // the scheduler rebuilds the chain around the degraded hop.
  for (auto& [version, arrival] : r.pending) {
    if (!sim_->IsPending(arrival.event)) {
      continue;
    }
    sim_->Cancel(arrival.event);
    int v = version;
    SimTime at = std::max(arrival.at, link_down_until_[relay] + config_.rebuild_seconds);
    arrival.at = at;
    arrival.event = sim_->ScheduleAt(at, [this, relay, v] { OnArrival(relay, v); });
  }
}

void RelayTier::DropNextArrival(int relay) {
  LAMINAR_CHECK_GE(relay, 0);
  LAMINAR_CHECK_LT(relay, static_cast<int>(relays_.size()));
  ++drop_next_[relay];
}

void RelayTier::ReviveRelay(int relay) {
  Relay& r = relays_[relay];
  if (r.alive) {
    return;
  }
  r.alive = true;
  r.version = -1;
  r.pending.clear();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/revive", relay,
                        latest_published_);
  if (!relays_[master_].alive) {
    // Everyone had died; the revived relay becomes master and the trainer is
    // notified to re-send the newest published weights.
    master_ = relay;
    ++master_elections_;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kRelay, "relay/election", relay,
                          latest_published_);
    master_ready_at_ = std::max(master_ready_at_, sim_->Now() + NextElectionDelay());
  }
  if (relay == master_) {
    if (latest_published_ >= 0 && r.version < latest_published_) {
      int version = latest_published_;
      // A fresh publication already in flight to this master supersedes this.
      if (r.pending.count(version) == 0) {
        double resend = config_.weight_bytes / config_.actor_push_bandwidth +
                        config_.reshard_seconds;
        SimTime at = std::max(master_ready_at_, sim_->Now()) + resend;
        EventId eid =
            sim_->ScheduleAt(at, [this, relay, version] { OnArrival(relay, version); });
        r.pending[version] = PendingArrival{eid, at};
      }
    }
    return;
  }
  // Sync the newest weights from the master over one RDMA hop.
  const Relay& m = relays_[master_];
  if (m.version >= 0) {
    int v = m.version;
    double hop = config_.weight_bytes / config_.rdma_bandwidth + config_.rdma_startup;
    SimTime at = sim_->Now() + hop;
    EventId eid = sim_->ScheduleAt(at, [this, relay, v] { OnArrival(relay, v); });
    r.pending[v] = PendingArrival{eid, at};
  }
}

void RelayTier::Snapshot(SnapshotTx& tx) {
  auto fold_u64 = [](uint64_t h, uint64_t v) { return SnapshotFnv1a(&v, sizeof(v), h); };
  tx.Begin("relay_tier");
  tx.DigestI64("master", master_);
  tx.DigestI64("latest_published", latest_published_);
  tx.DigestF64("master_ready_at", master_ready_at_.seconds());
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < relays_.size(); ++i) {
    const Relay& r = relays_[i];
    h = fold_u64(h, r.alive ? 1 : 0);
    h = fold_u64(h, static_cast<uint64_t>(r.version));
    h = fold_u64(h, r.pending.size());
    for (const auto& [version, arrival] : r.pending) {
      h = fold_u64(h, static_cast<uint64_t>(version));
      h = fold_u64(h, SnapshotF64Bits(arrival.at.seconds()));
    }
    h = fold_u64(h, r.waiters.size());
    for (const Waiter& w : r.waiters) {
      h = fold_u64(h, static_cast<uint64_t>(w.min_version));
      h = fold_u64(h, static_cast<uint64_t>(w.tensor_parallel));
      h = fold_u64(h, SnapshotF64Bits(w.requested.seconds()));
    }
    h = fold_u64(h, SnapshotF64Bits(link_down_until_[i].seconds()));
    h = fold_u64(h, static_cast<uint64_t>(drop_next_[i]));
  }
  tx.DigestU64("relays_fnv", h);
  tx.DigestI64("consecutive_elections", consecutive_elections_);
  tx.DigestF64("last_election", last_election_.seconds());
  tx.DigestI64("publishes", publishes_);
  tx.DigestI64("chain_rebuilds", chain_rebuilds_);
  tx.DigestI64("master_elections", master_elections_);
  tx.DigestI64("link_flaps", link_flaps_);
  tx.DigestI64("messages_dropped", messages_dropped_);
  tx.DigestI64("arrival_retries", arrival_retries_);
  uint64_t b = 1469598103934665603ull;
  for (const auto& [version, at] : broadcast_starts_) {
    b = fold_u64(b, static_cast<uint64_t>(version));
    b = fold_u64(b, SnapshotF64Bits(at.seconds()));
  }
  for (int version : broadcast_started_) {
    b = fold_u64(b, static_cast<uint64_t>(version));
  }
  tx.DigestU64("broadcasts_fnv", b);
  tx.Begin("pull_waits");
  pull_waits_.Snapshot(tx);
  tx.End();
  tx.Begin("broadcast_times");
  broadcast_times_.Snapshot(tx);
  tx.End();
  tx.Begin("actor_stalls");
  actor_stalls_.Snapshot(tx);
  tx.End();
  tx.End();
}

}  // namespace laminar
