// The relay-worker tier: a distributed, CPU-memory parameter service
// (paper §4). One relay runs on each rollout machine. The trainer pushes new
// weights to a single master relay and immediately resumes; the master
// reshards and broadcasts down a chain of relays over RDMA; rollouts pull
// from their machine-local relay over PCIe at any time.
//
// The tier also implements the paper's fault-tolerance story (§4.3): killing
// a relay severs the chain, which is rebuilt in O(1) around the failure; a
// master failure triggers re-election among survivors.
#ifndef LAMINAR_SRC_RELAY_RELAY_TIER_H_
#define LAMINAR_SRC_RELAY_RELAY_TIER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/stats.h"
#include "src/relay/broadcast_model.h"
#include "src/sim/simulator.h"

namespace laminar {

class SnapshotTx;

struct RelayTierConfig {
  int num_relays = 1;
  double weight_bytes = 0.0;
  // Per-hop RDMA flow bandwidth for the chain (one NIC) and startup latency.
  double rdma_bandwidth = 50.0e9;
  double rdma_startup = 5.0e-6;
  // Effective bandwidth of the (sharded, parallel) trainer -> master push.
  // This bounds the actor's stall per publication (paper §8.3).
  double actor_push_bandwidth = 100.0e9;
  // CPU-side resharding of the received weights to the rollout layout.
  double reshard_seconds = 0.2;
  // PCIe bandwidth per GPU for relay -> rollout shard loads.
  double pcie_bandwidth = 50.0e9;
  // Chain-rebuild delay after a relay failure (paper: < 1 s, O(1)).
  double rebuild_seconds = 0.5;
  // Master re-election + trainer notification delay.
  double master_elect_seconds = 1.0;
  // Retransmit delay after a chain hop loses a message: the receiver's
  // timeout guard fires and the upstream relay resends the chunk.
  double hop_timeout_guard = 0.25;
  // Bounded exponential backoff for repeated master elections: each election
  // within the stability window of the previous one doubles the delay, up to
  // the cap (prevents election storms under flappy failure detection).
  double master_elect_backoff_cap_seconds = 8.0;
  double election_stability_window_seconds = 60.0;
};

// A reconstructible pull completion (DESIGN.md §13): instead of a captured
// closure, the requester names the continuation to invoke when the pull
// finishes. The relay tier fires it as
//
//   registry.Run(comp, kind, {a, b, version, bit_cast(wait_seconds)})
//
// so the requester's own (a, b) context rides along and the whole in-flight
// pull serializes into the snapshot.
struct PullTicket {
  int32_t comp = -1;
  uint16_t kind = 0;
  int64_t a = 0;
  int64_t b = 0;
};

class RelayTier : public ContinuationClient {
 public:
  // Continuation kinds for the tier's own pending events.
  enum Continuation : uint16_t {
    kContArrival = 0,   // chain message arrives: {a=relay, b=version}
    kContPullDone = 1,  // PCIe shard load finished: {a=pull seq}
  };

  RelayTier(Simulator* sim, RelayTierConfig config);
  ~RelayTier() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Trainer-side: publishes weight version `version`. Returns the actor's
  // stall duration (time to hand the weights to the master relay). Broadcast
  // to the remaining relays proceeds in the background.
  double Publish(int version);

  // Rollout-side: requests the newest published version via the local relay
  // `relay`. When the version is resident (immediately, or once the chain
  // broadcast delivers it), the weights are loaded over PCIe by the
  // replica's `tensor_parallel` GPUs in parallel, and `ticket` fires with
  // (version, wait_seconds), where wait_seconds spans request -> load
  // complete (the paper's Figure 14 "rollout waiting time"). If nothing
  // newer than `current_version` exists, the ticket fires synchronously
  // with (current_version, 0).
  void PullLatest(int relay, int tensor_parallel, int current_version,
                  PullTicket ticket);

  // Fault injection / recovery.
  void KillRelay(int relay);
  // A replacement relay comes up on machine `relay` and syncs the newest
  // weights from the master before serving.
  void ReviveRelay(int relay);
  // Link degradation: the RDMA link into `relay` goes down for
  // `duration_seconds`. In-flight chain arrivals stall until the link heals
  // plus the O(1) chain-rebuild delay; the relay itself stays alive.
  void FlapLink(int relay, double duration_seconds);
  // Drops the next chain message arriving at `relay`; the hop timeout guard
  // detects the loss and triggers a retransmit.
  void DropNextArrival(int relay);

  // Introspection.
  int latest_published() const { return latest_published_; }
  int VersionAt(int relay) const;
  bool IsAlive(int relay) const;
  int master() const { return master_; }
  int num_relays() const { return config_.num_relays; }

  // Metrics.
  const SampleSet& pull_wait_seconds() const { return pull_waits_; }
  const SampleSet& broadcast_seconds() const { return broadcast_times_; }
  const SampleSet& actor_stall_seconds() const { return actor_stalls_; }
  int64_t publishes() const { return publishes_; }
  int64_t chain_rebuilds() const { return chain_rebuilds_; }
  int64_t master_elections() const { return master_elections_; }
  int64_t link_flaps() const { return link_flaps_; }
  int64_t messages_dropped() const { return messages_dropped_; }
  int64_t arrival_retries() const { return arrival_retries_; }

  // PCIe shard-load duration for a `tensor_parallel`-GPU replica.
  double PullLoadSeconds(int tensor_parallel) const;

  // Snapshot witness (src/snapshot, DESIGN.md §13): chain topology, per-relay
  // versions, waiters (as tickets), in-flight pull loads, chaos horizons, and
  // the pull/stall sample sets — all fully adoptable, so a direct-boot
  // restore re-seats the tier without replay.
  void Snapshot(SnapshotTx& tx);

 private:
  struct Waiter {
    int min_version = 0;
    int tensor_parallel = 1;
    SimTime requested;
    PullTicket ticket;
  };
  struct PendingArrival {
    EventId event = kInvalidEventId;
    SimTime at;
  };
  struct Relay {
    bool alive = true;
    int version = -1;  // newest fully-received version
    // Pending in-flight arrivals: version -> scheduled event.
    std::map<int, PendingArrival> pending;
    std::vector<Waiter> waiters;
  };

  // An in-flight PCIe shard load; the pending event carries only the seq.
  struct PendingPull {
    int relay = 0;
    int got = 0;
    SimTime requested;
    PullTicket ticket;
  };

  void OnArrival(int relay, int version);
  void StartBroadcast(int version, SimTime master_ready);
  void RebuildChain(double extra_delay);
  std::vector<int> AliveChain() const;
  double NextElectionDelay();
  // Schedules a chain arrival and records it in the relay's pending map.
  void ScheduleArrival(int relay, int version, SimTime at);
  // Starts the PCIe load for a satisfied pull and parks it in pulls_.
  void StartPullLoad(int relay, int got, SimTime requested, PullTicket ticket,
                     double load_seconds);
  void CompletePull(int64_t seq);
  void CompleteTicket(const PullTicket& ticket, int version, double wait_seconds);

  Simulator* sim_;
  RelayTierConfig config_;
  std::vector<Relay> relays_;
  int master_ = 0;
  int latest_published_ = -1;
  SimTime master_ready_at_ = SimTime::Zero();

  // Per-relay chaos state: inbound-link outage horizon and pending drops.
  std::vector<SimTime> link_down_until_;
  std::vector<int> drop_next_;
  // Election-backoff state.
  int consecutive_elections_ = 0;
  SimTime last_election_ = SimTime::Zero();

  SampleSet pull_waits_;
  SampleSet broadcast_times_;
  SampleSet actor_stalls_;
  int64_t publishes_ = 0;
  int64_t chain_rebuilds_ = 0;
  int64_t master_elections_ = 0;
  int64_t link_flaps_ = 0;
  int64_t messages_dropped_ = 0;
  int64_t arrival_retries_ = 0;
  // Publish time per in-flight version, for broadcast-duration metrics.
  std::map<int, SimTime> broadcast_starts_;
  // Versions whose chain broadcast has been initiated.
  std::set<int> broadcast_started_;
  // In-flight PCIe shard loads, keyed by a serialized sequence number.
  std::map<int64_t, PendingPull> pulls_;
  int64_t next_pull_seq_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_RELAY_RELAY_TIER_H_
