#include "src/relay/weight_sync.h"

#include <cmath>

#include "src/common/logging.h"

namespace laminar {

double GlobalSyncModel::SyncSeconds(int num_gpus) const {
  LAMINAR_CHECK_GT(num_gpus, 0);
  LAMINAR_CHECK_GT(weight_bytes, 0.0);
  double doublings = std::max(0.0, std::log2(static_cast<double>(num_gpus) / 8.0));
  double effective_bw = base_bandwidth / (1.0 + scale_penalty_per_doubling * doublings);
  return barrier_overhead + weight_bytes / effective_bw;
}

double StorageSyncModel::PublishSeconds() const {
  return weight_bytes / serialize_bandwidth + weight_bytes / tcp_bandwidth;
}

double StorageSyncModel::PullSeconds() const {
  return weight_bytes / tcp_bandwidth + weight_bytes / serialize_bandwidth;
}

}  // namespace laminar
