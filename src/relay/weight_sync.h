// Alternative weight-synchronization cost models used as baselines:
//
//  * GlobalSyncModel — GPU-direct NCCL broadcast at a global synchronization
//    point, as used by verl / one-step / stream-generation systems (§8.3's
//    comparison point for Figure 14). All rollouts and the actor rendezvous;
//    coordination cost grows with cluster size.
//  * StorageSyncModel — publishing weights through a storage system
//    (NFS/Redis), the design §4.1 argues against: serialization plus TCP
//    transfer per shard, with the store as a contention bottleneck.
#ifndef LAMINAR_SRC_RELAY_WEIGHT_SYNC_H_
#define LAMINAR_SRC_RELAY_WEIGHT_SYNC_H_

namespace laminar {

struct GlobalSyncModel {
  double weight_bytes = 0.0;
  // Effective NCCL broadcast bandwidth at the smallest scale (mixed
  // NVLink + RDMA path).
  double base_bandwidth = 100.0e9;
  // Fractional slowdown per doubling of participating GPUs beyond one
  // machine (stragglers, more ring hops, cross-rail contention).
  double scale_penalty_per_doubling = 0.12;
  // Fixed rendezvous/barrier overhead, seconds.
  double barrier_overhead = 0.05;

  // Wall time of one global synchronization involving `num_gpus` GPUs.
  // Both the actor and every rollout are stalled for this duration.
  double SyncSeconds(int num_gpus) const;
};

struct StorageSyncModel {
  double weight_bytes = 0.0;
  // Measured in the paper: serializing a 4 GB shard takes ~8 s.
  double serialize_bandwidth = 0.5e9;
  double tcp_bandwidth = 1.25e9;  // ~10 Gbps effective

  // Actor-side publish: serialize + upload the full weights.
  double PublishSeconds() const;
  // One rollout's pull on an idle store: download + deserialize. Contention
  // between concurrent pulls is modelled by queueing these durations on a
  // SerialChannel.
  double PullSeconds() const;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_RELAY_WEIGHT_SYNC_H_
