#include "src/repack/best_fit.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/logging.h"

namespace laminar {
namespace {

// Shared Best-Fit matching over a pre-filtered candidate set S (Algorithm 1
// lines 4-13). Candidates are both potential sources and potential
// destinations, exactly as in the paper ("destinations are selected from the
// pool of underutilized rollouts").
RepackPlan MatchCandidates(std::vector<ReplicaSnapshot> candidates,
                           const RepackParams& params) {
  RepackPlan plan;
  // Line 4: release the smallest KVCache footprints first.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ReplicaSnapshot& a, const ReplicaSnapshot& b) {
                     return a.kv_used_frac < b.kv_used_frac;
                   });
  std::set<int> emptied;
  // Replicas already chosen as destinations. Algorithm 1 removes them from
  // the source set S: draining one later would move its received load along
  // with it, which the snapshot-based fit test cannot see, so a chained plan
  // (A->D, then D->E) could overflow C_max or B on the final destination.
  std::set<int> destinations;
  // Aggregated load already assigned to each destination in the plan.
  std::map<int, double> extra_kv;
  std::map<int, int> extra_reqs;

  auto can_fit = [&](const ReplicaSnapshot& d, const ReplicaSnapshot& s) {
    double kv_load = d.kv_used_frac + extra_kv[d.replica_id];
    int req_load = d.num_reqs + extra_reqs[d.replica_id];
    return kv_load + s.kv_used_frac <= params.c_max_frac &&
           req_load + s.num_reqs <= params.batch_bound;
  };

  for (const ReplicaSnapshot& s : candidates) {
    if (emptied.count(s.replica_id) > 0 || destinations.count(s.replica_id) > 0) {
      continue;
    }
    // Line 9: valid destinations.
    const ReplicaSnapshot* best = nullptr;
    double best_density = -1.0;
    for (const ReplicaSnapshot& d : candidates) {
      if (d.replica_id == s.replica_id || emptied.count(d.replica_id) > 0 ||
          !can_fit(d, s)) {
        continue;
      }
      // Line 11: choose the destination that ends up most densely packed.
      double density = d.kv_used_frac + extra_kv[d.replica_id];
      if (density > best_density) {
        best_density = density;
        best = &d;
      }
    }
    if (best != nullptr) {
      plan.moves.emplace_back(s.replica_id, best->replica_id);
      emptied.insert(s.replica_id);
      destinations.insert(best->replica_id);
      extra_kv[best->replica_id] += s.kv_used_frac;
      extra_reqs[best->replica_id] += s.num_reqs;
    }
  }
  return plan;
}

}  // namespace

std::vector<int> RepackPlan::ReleasedSources() const {
  std::vector<int> out;
  for (const auto& [src, dst] : moves) {
    out.push_back(src);
  }
  return out;
}

std::vector<int> RepackPlan::Destinations() const {
  std::set<int> seen;
  for (const auto& [src, dst] : moves) {
    seen.insert(dst);
  }
  return {seen.begin(), seen.end()};
}

RepackPlan BestFitConsolidation(const std::vector<ReplicaSnapshot>& replicas,
                                const RepackParams& params) {
  LAMINAR_CHECK(params.c_max_frac > 0.0 && params.c_max_frac <= 1.0);
  LAMINAR_CHECK_GT(params.batch_bound, 0);
  std::vector<ReplicaSnapshot> candidates;
  for (const ReplicaSnapshot& r : replicas) {
    if (!r.eligible || !r.busy || r.num_reqs <= 0) {
      continue;
    }
    // Line 3: ramp-down phase — the waiting queue has drained (freed cache
    // is no longer backfilled, Figure 9) and utilization is non-increasing
    // (up to the running batch's own token growth) and below C_max. A replica
    // with no previous sample (first tick after start or revival) is never in
    // ramp-down: one tick cannot show a trend.
    bool ramp_down =
        r.num_waiting == 0 && r.kv_prev_frac >= 0.0 &&
        r.kv_used_frac < std::min(params.c_max_frac, r.kv_prev_frac + params.ramp_tolerance);
    if (ramp_down && r.num_reqs < params.batch_bound) {
      candidates.push_back(r);
    }
  }
  return MatchCandidates(std::move(candidates), params);
}

RepackPlan StaticThresholdConsolidation(const std::vector<ReplicaSnapshot>& replicas,
                                        const RepackParams& params, int request_threshold) {
  std::vector<ReplicaSnapshot> candidates;
  for (const ReplicaSnapshot& r : replicas) {
    if (!r.eligible || !r.busy || r.num_reqs <= 0) {
      continue;
    }
    if (r.num_reqs < request_threshold && r.num_reqs < params.batch_bound) {
      candidates.push_back(r);
    }
  }
  return MatchCandidates(std::move(candidates), params);
}

}  // namespace laminar
