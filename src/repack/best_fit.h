// Best-Fit trajectory consolidation — the paper's Algorithm 1.
//
// Given snapshots of one weight-version group of rollout replicas, decide
// which underutilized (ramp-down phase) replicas to drain and where to pack
// their in-progress trajectories, maximizing the number of released sources
// while keeping every destination within the KVCache threshold C_max and the
// roofline batch bound B.
#ifndef LAMINAR_SRC_REPACK_BEST_FIT_H_
#define LAMINAR_SRC_REPACK_BEST_FIT_H_

#include <utility>
#include <vector>

#include "src/repack/snapshot.h"

namespace laminar {

struct RepackPlan {
  // (source replica id, destination replica id); a source appears at most
  // once, a destination may receive several sources.
  std::vector<std::pair<int, int>> moves;

  bool empty() const { return moves.empty(); }
  // Replicas drained and therefore free to pull the latest weights.
  std::vector<int> ReleasedSources() const;
  // Distinct destinations involved.
  std::vector<int> Destinations() const;
};

struct RepackParams {
  // C_max: the KVCache-utilization threshold a destination must stay under.
  double c_max_frac = 0.99;
  // B: roofline batch-size bound — max trajectories decodable in parallel
  // with negligible latency increase (from DecodeModel::RooflineBatchBound).
  int batch_bound = 256;
  // Utilization growth tolerated between monitoring ticks while still
  // counting as "non-increasing": running tail sequences keep appending one
  // token per step, so a strict C_used < C_prev test would mask ramp-down.
  double ramp_tolerance = 0.02;
};

// Algorithm 1. `replicas` must all share one weight version; entries that are
// not eligible or have no requests are ignored as candidates but are also
// never chosen as destinations.
RepackPlan BestFitConsolidation(const std::vector<ReplicaSnapshot>& replicas,
                                const RepackParams& params);

// Ablation baseline (RLHFuse-style): a replica is a source candidate iff its
// remaining request count is below a static, offline-profiled threshold;
// packing still uses Best-Fit. Used to show why the KVCache ramp-down signal
// needs no per-workload tuning.
RepackPlan StaticThresholdConsolidation(const std::vector<ReplicaSnapshot>& replicas,
                                        const RepackParams& params, int request_threshold);

}  // namespace laminar

#endif  // LAMINAR_SRC_REPACK_BEST_FIT_H_
