#include "src/repack/monitor.h"

namespace laminar {

void IdlenessMonitor::Observe(std::vector<ReplicaSnapshot>& snapshots) {
  for (ReplicaSnapshot& snap : snapshots) {
    auto it = prev_.find(snap.replica_id);
    snap.kv_prev_frac = it == prev_.end() ? kNoPrevKvSample : it->second;
    prev_[snap.replica_id] = snap.kv_used_frac;
  }
}

void IdlenessMonitor::Forget(int replica_id) { prev_.erase(replica_id); }

}  // namespace laminar
