#include "src/repack/monitor.h"

#include "src/snapshot/snapshot.h"

namespace laminar {

void IdlenessMonitor::Observe(std::vector<ReplicaSnapshot>& snapshots) {
  for (ReplicaSnapshot& snap : snapshots) {
    size_t idx = static_cast<size_t>(snap.replica_id);
    if (idx >= prev_.size()) {
      prev_.resize(idx + 1);
    }
    Slot& slot = prev_[idx];
    snap.kv_prev_frac = slot.valid ? slot.value : kNoPrevKvSample;
    if (!slot.valid) {
      slot.valid = true;
      ++tracked_;
    }
    slot.value = snap.kv_used_frac;
  }
}

void IdlenessMonitor::Forget(int replica_id) {
  size_t idx = static_cast<size_t>(replica_id);
  if (replica_id >= 0 && idx < prev_.size() && prev_[idx].valid) {
    prev_[idx].valid = false;
    --tracked_;
  }
}

void IdlenessMonitor::Snapshot(SnapshotTx& tx) const {
  tx.Begin("idleness_monitor");
  tx.DigestU64("tracked", tracked_);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < prev_.size(); ++i) {
    if (!prev_[i].valid) {
      continue;
    }
    uint64_t id = i;
    h = SnapshotFnv1a(&id, sizeof(id), h);
    uint64_t bits = SnapshotF64Bits(prev_[i].value);
    h = SnapshotFnv1a(&bits, sizeof(bits), h);
  }
  tx.DigestU64("history_fnv", h);
  tx.End();
}

}  // namespace laminar
