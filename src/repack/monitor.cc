#include "src/repack/monitor.h"

#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"

namespace laminar {

void IdlenessMonitor::Observe(std::vector<ReplicaSnapshot>& snapshots) {
  for (ReplicaSnapshot& snap : snapshots) {
    size_t idx = static_cast<size_t>(snap.replica_id);
    if (idx >= prev_.size()) {
      prev_.resize(idx + 1);
    }
    Slot& slot = prev_[idx];
    snap.kv_prev_frac = slot.valid ? slot.value : kNoPrevKvSample;
    if (!slot.valid) {
      slot.valid = true;
      ++tracked_;
    }
    slot.value = snap.kv_used_frac;
  }
}

void IdlenessMonitor::Forget(int replica_id) {
  size_t idx = static_cast<size_t>(replica_id);
  if (replica_id >= 0 && idx < prev_.size() && prev_[idx].valid) {
    prev_[idx].valid = false;
    --tracked_;
  }
}

void IdlenessMonitor::Snapshot(SnapshotTx& tx) {
  tx.Begin("idleness_monitor");
  SnapshotPacked(
      tx, "history",
      [this](ByteSink& s) {
        s.U64(prev_.size());
        for (const Slot& slot : prev_) {
          s.Bool(slot.valid);
          s.F64(slot.value);
        }
      },
      [this](ByteSource& s) {
        prev_.assign(static_cast<size_t>(s.U64()), Slot{});
        tracked_ = 0;
        for (Slot& slot : prev_) {
          slot.valid = s.Bool();
          slot.value = s.F64();
          if (slot.valid) {
            ++tracked_;
          }
        }
      });
  tx.End();
}

}  // namespace laminar
