// Idleness monitoring for the repack mechanism (paper §5.2).
//
// The rollout manager samples every replica's KVCache utilization at each
// monitoring tick. The monitor remembers the previous sample so Algorithm 1
// can test the ramp-down condition C_used < min(C_max, C_prev) without any
// per-workload threshold profiling.
#ifndef LAMINAR_SRC_REPACK_MONITOR_H_
#define LAMINAR_SRC_REPACK_MONITOR_H_

#include <cstddef>
#include <vector>

#include "src/repack/snapshot.h"

namespace laminar {

class SnapshotTx;

class IdlenessMonitor {
 public:
  // Fills each snapshot's kv_prev_frac from the stored history, then records
  // the current utilization as the new history. First-time replicas get
  // kv_prev_frac = kNoPrevKvSample, which fails the ramp-down test outright
  // (never considered ramping down on their first tick).
  void Observe(std::vector<ReplicaSnapshot>& snapshots);

  // Drops history for a replica (failure / re-init), so a revived replica is
  // not judged against its pre-failure utilization.
  void Forget(int replica_id);

  size_t tracked() const { return tracked_; }

  // Snapshot witness (src/snapshot): the per-replica utilization history the
  // ramp-down test reads on the next tick.
  void Snapshot(SnapshotTx& tx);

 private:
  // Replica ids are small and dense, so the history lives in a flat table
  // indexed by id (this runs on every monitoring tick for every replica).
  struct Slot {
    bool valid = false;
    double value = 0.0;
  };
  std::vector<Slot> prev_;
  size_t tracked_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_REPACK_MONITOR_H_
