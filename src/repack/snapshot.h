// Progress snapshot of one rollout replica, as collected by the rollout
// manager (paper Figure 8, step 1). This is the only input the repack
// algorithm sees, which keeps Algorithm 1 a pure, unit-testable function.
#ifndef LAMINAR_SRC_REPACK_SNAPSHOT_H_
#define LAMINAR_SRC_REPACK_SNAPSHOT_H_

#include <cstdint>

namespace laminar {

// Sentinel for "no previous utilization sample". Negative, so the ramp-down
// test C_used < min(C_max, C_prev + tolerance) is unsatisfiable and a replica
// seen for the first time (or just revived) can never be drained on that tick.
constexpr double kNoPrevKvSample = -1.0;

struct ReplicaSnapshot {
  int replica_id = -1;
  int weight_version = 0;
  // KVCache utilization fraction in [0, 1] (C_used / capacity).
  double kv_used_frac = 0.0;
  // Utilization at the previous monitoring tick (C_prev); the ramp-down
  // test in Algorithm 1 line 3 is C_used < min(C_max, C_prev). Defaults to
  // the no-history sentinel: a snapshot nobody has observed before cannot
  // pass the ramp-down test.
  double kv_prev_frac = kNoPrevKvSample;
  // In-progress trajectory count (N_reqs): running + env-waiting + queued.
  int num_reqs = 0;
  // Trajectories admitted but not yet decoding (the waiting queue). The
  // KVCache lifecycle's ramp-down phase begins once this reaches zero
  // (paper Figure 9: freed space is backfilled while any trajectory waits).
  int num_waiting = 0;
  // Whether the replica currently has any generation work at all.
  bool busy = false;
  // Whether the replica is eligible for repack (alive, generating, not
  // mid-weight-update).
  bool eligible = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_REPACK_SNAPSHOT_H_
