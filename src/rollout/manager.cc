#include "src/rollout/manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace laminar {

RolloutManager::RolloutManager(Simulator* sim, RolloutManagerConfig config,
                               std::vector<RolloutReplica*> replicas, RelayTier* relays,
                               PromptPool* prompts, PartialResponsePool* partial_pool)
    : sim_(sim), config_(config), replicas_(std::move(replicas)), relays_(relays),
      prompts_(prompts), partial_pool_(partial_pool) {
  LAMINAR_CHECK(!replicas_.empty());
  LAMINAR_CHECK_GT(config_.per_replica_batch, 0);
}

void RolloutManager::Start() {
  running_ = true;
  for (RolloutReplica* r : replicas_) {
    AssignFreshBatch(r);
  }
  tick_ = std::make_unique<PeriodicTask>(sim_, config_.repack_period_seconds,
                                         [this] { Tick(); });
  tick_->Start();
}

void RolloutManager::Stop() {
  running_ = false;
  if (tick_) {
    tick_->Stop();
  }
}

int64_t RolloutManager::inflight_trajectories() const {
  int64_t n = 0;
  for (const RolloutReplica* r : replicas_) {
    n += r->num_reqs();
  }
  for (const auto& [version, works] : pending_redirects_) {
    n += static_cast<int64_t>(works.size());
  }
  return n;
}

bool RolloutManager::BacklogAllowsAssignment() const {
  if (config_.backlog_cap <= 0) {
    return true;
  }
  // Gate on completed-but-unconsumed experiences only. In-flight work does
  // not count: its staleness is governed by generation latency (the paper's
  // inherent staleness), not by buffer depth.
  int64_t backlog = backlog_fn_ ? backlog_fn_() : 0;
  return backlog < config_.backlog_cap;
}

void RolloutManager::AssignFreshBatch(RolloutReplica* replica) {
  if (!running_ || replica->phase() == ReplicaPhase::kDead) {
    return;
  }
  if (!BacklogAllowsAssignment()) {
    starved_.push_back(replica);
    return;
  }
  int group = prompts_->group_size();
  int batch = std::max(group, config_.per_replica_batch / group * group);
  std::vector<TrajectoryRecord> records =
      prompts_->NextBatch(batch, replica->weight_version());
  std::vector<TrajectoryWork> works;
  works.reserve(records.size());
  for (TrajectoryRecord& rec : records) {
    rec.created = sim_->Now();
    TrajectoryWork w;
    w.record = std::move(rec);
    w.InitContext();
    works.push_back(std::move(w));
  }
  ++stats_.batches_assigned;
  replica->AssignWork(std::move(works), /*kv_transferred=*/false);
}

void RolloutManager::StartWeightUpdate(RolloutReplica* replica) {
  if (replica->phase() == ReplicaPhase::kDead) {
    return;
  }
  int current = replica->weight_version();
  if (relays_->latest_published() <= current) {
    // Nothing newer exists; go straight to the next batch.
    AssignFreshBatch(replica);
    return;
  }
  replica->BeginWeightUpdate();
  int machine = replica->config().machine;
  int tp = replica->decode_model().tensor_parallel();
  relays_->PullLatest(machine, tp, current,
                      [this, replica](int version, double wait_seconds) {
                        if (replica->phase() == ReplicaPhase::kDead) {
                          return;
                        }
                        replica->EndWeightUpdate(version, wait_seconds);
                        monitor_.Forget(replica->config().id);
                        AssignFreshBatch(replica);
                      });
}

void RolloutManager::OnBatchDone(RolloutReplica* replica) {
  if (!running_) {
    return;
  }
  // Paper workflow: a rollout fetches the latest weights as soon as it
  // completes its batch, then pulls the next prompt batch.
  StartWeightUpdate(replica);
}

void RolloutManager::OnActorPublish(int /*version*/) {
  if (!running_) {
    return;
  }
  // A fresh version means backlog just dropped by a global batch; unblock
  // starved replicas first, then consolidate long-tail stragglers so they
  // can move to the new version quickly.
  std::vector<RolloutReplica*> starved = std::move(starved_);
  starved_.clear();
  for (RolloutReplica* r : starved) {
    if (r->phase() == ReplicaPhase::kIdle) {
      StartWeightUpdate(r);
    }
  }
  if (config_.repack_enabled) {
    TriggerRepack();
  }
}

std::vector<ReplicaSnapshot> RolloutManager::CollectSnapshots() {
  std::vector<ReplicaSnapshot> snaps;
  snaps.reserve(replicas_.size());
  for (RolloutReplica* r : replicas_) {
    snaps.push_back(r->Snapshot());
  }
  return snaps;
}

void RolloutManager::TriggerRepack() {
  std::vector<ReplicaSnapshot> snaps = CollectSnapshots();
  monitor_.Observe(snaps);
  // Group by weight version (Figure 8, step 1) and plan per group.
  std::map<int, std::vector<ReplicaSnapshot>> groups;
  for (const ReplicaSnapshot& s : snaps) {
    groups[s.weight_version].push_back(s);
  }
  std::map<int, RolloutReplica*> by_id;
  for (RolloutReplica* r : replicas_) {
    by_id[r->config().id] = r;
  }
  for (auto& [version, group] : groups) {
    RepackPlan plan =
        config_.use_static_threshold
            ? StaticThresholdConsolidation(group, config_.repack,
                                           config_.static_threshold_requests)
            : BestFitConsolidation(group, config_.repack);
    if (plan.empty()) {
      continue;
    }
    ++stats_.repack_events;
    // Transfers to distinct destinations proceed in parallel; the plan's
    // overhead is the slowest destination's total KV-transfer stall.
    std::map<int, double> overhead_by_dst;
    for (const auto& [src_id, dst_id] : plan.moves) {
      RolloutReplica* src = by_id.at(src_id);
      RolloutReplica* dst = by_id.at(dst_id);
      std::vector<TrajectoryWork> works = src->ExtractAllWork();
      stats_.trajectories_migrated += static_cast<int64_t>(works.size());
      for (const TrajectoryWork& w : works) {
        if (w.kv_resident) {
          double kv_bytes = static_cast<double>(w.context_tokens) *
                            dst->decode_model().model().kv_bytes_per_token();
          overhead_by_dst[dst_id] += dst->config().migration_fixed_overhead +
                                     kv_bytes / dst->config().kv_transfer_bandwidth;
        }
      }
      dst->AssignWork(std::move(works), /*kv_transferred=*/true);
      ++stats_.sources_released;
      monitor_.Forget(src_id);
      // The drained source is now free to adopt the newest weights.
      StartWeightUpdate(src);
    }
    double overhead = 0.0;
    for (const auto& [dst, seconds] : overhead_by_dst) {
      overhead = std::max(overhead, seconds);
    }
    stats_.repack_overhead_seconds.Add(overhead);
  }
}

void RolloutManager::RedirectWork(std::vector<TrajectoryWork> works, int weight_version) {
  // Healthy replicas still on the same version can continue these
  // trajectories (after re-prefilling the saved context).
  std::vector<RolloutReplica*> hosts;
  for (RolloutReplica* r : replicas_) {
    if (r->phase() != ReplicaPhase::kDead && r->phase() != ReplicaPhase::kUpdatingWeights &&
        r->weight_version() == weight_version) {
      hosts.push_back(r);
    }
  }
  if (hosts.empty()) {
    auto& pending = pending_redirects_[weight_version];
    for (auto& w : works) {
      pending.push_back(std::move(w));
    }
    return;
  }
  // Round-robin across hosts, least-loaded first.
  std::sort(hosts.begin(), hosts.end(), [](RolloutReplica* a, RolloutReplica* b) {
    return a->num_reqs() < b->num_reqs();
  });
  std::vector<std::vector<TrajectoryWork>> shards(hosts.size());
  for (size_t i = 0; i < works.size(); ++i) {
    shards[i % hosts.size()].push_back(std::move(works[i]));
  }
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (!shards[i].empty()) {
      stats_.trajectories_redirected += static_cast<int64_t>(shards[i].size());
      hosts[i]->AssignWork(std::move(shards[i]), /*kv_transferred=*/false);
    }
  }
}

void RolloutManager::FlushPendingRedirects() {
  if (pending_redirects_.empty()) {
    return;
  }
  std::map<int, std::vector<TrajectoryWork>> pending = std::move(pending_redirects_);
  pending_redirects_.clear();
  for (auto& [version, works] : pending) {
    RedirectWork(std::move(works), version);
  }
}

void RolloutManager::OnMachineFailure(int machine) {
  ++stats_.failures_handled;
  relays_->KillRelay(machine);
  std::vector<RolloutReplica*> casualties;
  for (RolloutReplica* r : replicas_) {
    if (r->config().machine == machine && r->phase() != ReplicaPhase::kDead) {
      casualties.push_back(r);
    }
  }
  // Kill every replica on the machine before redirecting anything, so work
  // is never handed to a sibling replica that is about to die too.
  for (RolloutReplica* r : casualties) {
    r->Kill();
    monitor_.Forget(r->config().id);
  }
  for (RolloutReplica* r : casualties) {
    int id = r->config().id;
    // In-progress state survives in the partial-response pool; everything the
    // dead replica owned is redirected (re-prefill on arrival).
    std::vector<TrajectoryWork> recovered = partial_pool_->TakeByReplica(id);
    LAMINAR_LOG(kInfo) << "machine " << machine << " failed; redirecting "
                       << recovered.size() << " trajectories from replica " << id;
    if (!recovered.empty()) {
      RedirectWork(std::move(recovered), r->weight_version());
    }
  }
  // Replacement machine: allocate, re-init engine + relay, pull weights.
  double delay = config_.machine_replacement_seconds + config_.replica_init_seconds;
  sim_->ScheduleAfter(delay, [this, machine, casualties] {
    relays_->ReviveRelay(machine);
    for (RolloutReplica* r : casualties) {
      r->Revive();
    }
    // Interrupted work whose policy version no longer runs anywhere is
    // adopted by the fresh replicas, which load that specific checkpointed
    // version (paper §3.3) so the trajectories stay single-version.
    size_t next = 0;
    if (!pending_redirects_.empty()) {
      std::map<int, std::vector<TrajectoryWork>> pending = std::move(pending_redirects_);
      pending_redirects_.clear();
      for (auto& [version, works] : pending) {
        if (next < casualties.size()) {
          RolloutReplica* host = casualties[next++];
          host->LoadCheckpointVersion(version);
          stats_.trajectories_redirected += static_cast<int64_t>(works.size());
          host->AssignWork(std::move(works), /*kv_transferred=*/false);
        } else {
          pending_redirects_[version] = std::move(works);
        }
      }
    }
    for (size_t i = next; i < casualties.size(); ++i) {
      StartWeightUpdate(casualties[i]);
    }
    FlushPendingRedirects();
  });
}

void RolloutManager::Tick() {
  if (!running_) {
    return;
  }
  FlushPendingRedirects();
  // Retry starved replicas.
  std::vector<RolloutReplica*> starved = std::move(starved_);
  starved_.clear();
  for (RolloutReplica* r : starved) {
    if (r->phase() == ReplicaPhase::kIdle) {
      StartWeightUpdate(r);
    }
  }
  if (config_.repack_enabled) {
    TriggerRepack();
  }
}

}  // namespace laminar
