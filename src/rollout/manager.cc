#include "src/rollout/manager.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/data/trajectory_digest.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"

namespace laminar {
namespace {

// Owner id for recovered work parked in the manager (pending_redirects_):
// no replica matches it, so a machine death can never resurrect a stale
// pooled copy of work the manager already holds.
constexpr int kManagerOwner = -1;

constexpr int32_t kManagerComp = ContinuationComponentId(kContFamilyManager);

// Returns the work list for `version` in a flat version->works vector kept
// sorted ascending, inserting an empty slot if absent. Matches std::map's
// operator[] semantics (and its ascending iteration order) without the
// per-node allocations.
std::vector<TrajectoryWork>& WorksForVersion(
    std::vector<std::pair<int, std::vector<TrajectoryWork>>>& vw, int version) {
  auto it = std::lower_bound(
      vw.begin(), vw.end(), version,
      [](const std::pair<int, std::vector<TrajectoryWork>>& entry, int v) {
        return entry.first < v;
      });
  if (it == vw.end() || it->first != version) {
    it = vw.insert(it, {version, {}});
  }
  return it->second;
}

}  // namespace

RolloutManager::RolloutManager(Simulator* sim, RolloutManagerConfig config,
                               std::vector<RolloutReplica*> replicas, RelayTier* relays,
                               PromptPool* prompts, PartialResponsePool* partial_pool)
    : sim_(sim), config_(config), replicas_(std::move(replicas)), relays_(relays),
      prompts_(prompts), partial_pool_(partial_pool) {
  LAMINAR_CHECK(!replicas_.empty());
  LAMINAR_CHECK_GT(config_.per_replica_batch, 0);
  probes_.resize(replicas_.size());
  for (RolloutReplica* r : replicas_) {
    int id = r->config().id;
    LAMINAR_CHECK_GE(id, 0);
    if (static_cast<size_t>(id) >= replica_by_id_.size()) {
      replica_by_id_.resize(static_cast<size_t>(id) + 1, nullptr);
    }
    replica_by_id_[static_cast<size_t>(id)] = r;
  }
  ctr_repack_events_ = metrics_.Counter("manager/repack_events");
  ctr_sources_released_ = metrics_.Counter("manager/sources_released");
  ctr_trajectories_migrated_ = metrics_.Counter("manager/trajectories_migrated");
  ctr_batches_assigned_ = metrics_.Counter("manager/batches_assigned");
  ctr_failures_handled_ = metrics_.Counter("manager/failures_handled");
  ctr_trajectories_redirected_ = metrics_.Counter("manager/trajectories_redirected");
  ctr_slow_events_ = metrics_.Counter("manager/slow_events");
  ctr_slow_recoveries_ = metrics_.Counter("manager/slow_recoveries");
  ctr_trajectories_drained_slow_ = metrics_.Counter("manager/trajectories_drained_slow");
  ctr_redirect_retries_ = metrics_.Counter("manager/redirect_retries");
  ctr_trajectories_dropped_ = metrics_.Counter("manager/trajectories_dropped");
  ctr_machine_stalls_ = metrics_.Counter("manager/machine_stalls");
  repack_overhead_seconds_ = metrics_.Samples("manager/repack_overhead_seconds");
  ctr_serving_requests_ = metrics_.Counter("manager/serving_requests");
  ctr_serving_admitted_ = metrics_.Counter("manager/serving_admitted");
  ctr_serving_rejected_ = metrics_.Counter("manager/serving_rejected");
  ctr_serving_completed_ = metrics_.Counter("manager/serving_completed");
  ctr_serving_timed_out_ = metrics_.Counter("manager/serving_timed_out");
  ctr_serving_failed_ = metrics_.Counter("manager/serving_failed");
  ctr_serving_deadline_hits_ = metrics_.Counter("manager/serving_deadline_hits");
  ctr_serving_deadline_misses_ = metrics_.Counter("manager/serving_deadline_misses");
  ctr_serving_rollout_preempted_ = metrics_.Counter("manager/serving_rollout_preempted");
  serving_latency_seconds_ = metrics_.Samples("manager/serving_latency_seconds");
  // The periodic tasks exist from construction (Start() only arms them) so a
  // direct-boot restore can re-seat a pending tick before Start() runs.
  tick_ = std::make_unique<PeriodicTask>(sim_, config_.repack_period_seconds,
                                         kManagerComp, kContTick, [this] { Tick(); });
  if (config_.serving_enabled) {
    serving_tick_ = std::make_unique<PeriodicTask>(
        sim_, config_.serving_retry_period_seconds, kManagerComp, kContServingTick,
        [this] { ServingSweep(); });
  }
  sim_->continuations().Register(kManagerComp, this);
}

RolloutManager::~RolloutManager() { sim_->continuations().Unregister(kManagerComp); }

void RolloutManager::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  switch (kind) {
    case kContPullComplete:
      OnPullComplete(static_cast<int>(p.a), p.b, static_cast<int>(p.c),
                     ContinuationPayload::ToF64(p.d));
      return;
    case kContRedirectRetry:
      OnRedirectRetryFire();
      return;
    case kContMachineReplaced:
      OnMachineReplaced(p.a);
      return;
    case kContStallThaw:
      OnStallThaw(p.a);
      return;
    case kContTick:
      tick_->Fire();
      return;
    case kContServingTick:
      LAMINAR_CHECK(serving_tick_ != nullptr);
      serving_tick_->Fire();
      return;
  }
  LAMINAR_CHECK(false) << "unknown manager continuation kind " << kind;
}

void RolloutManager::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                         SimTime at) {
  switch (kind) {
    case kContRedirectRetry:
      redirect_retry_event_ =
          sim_->ScheduleContinuationAt(at, kManagerComp, kind, p);
      return;
    case kContMachineReplaced:
      sim_->ScheduleContinuationAt(at, kManagerComp, kind, p);
      return;
    case kContStallThaw: {
      // Re-anchor the thaw on its machine's lane: the adopted thaw_jobs_ map
      // names the paused replicas, all on one machine. Lane placement never
      // changes results — a control-lane fallback only narrows windows.
      int shard = 0;
      auto it = thaw_jobs_.find(p.a);
      if (it != thaw_jobs_.end() && !it->second.empty()) {
        if (RolloutReplica* r = FindReplica(it->second.front())) {
          shard = sim_->AffinityShard(r->config().machine);
        }
      }
      sim_->ScheduleLaneControlAt(shard, at, kManagerComp, kind, p);
      return;
    }
    case kContTick:
      tick_->RestorePending(at);
      return;
    case kContServingTick:
      LAMINAR_CHECK(serving_tick_ != nullptr);
      serving_tick_->RestorePending(at);
      return;
  }
  LAMINAR_CHECK(false) << "manager continuation kind " << kind
                       << " cannot be pending on the heap";
}

ServingStats RolloutManager::serving_stats() const {
  ServingStats s;
  s.requests = ctr_serving_requests_->value();
  s.admitted = ctr_serving_admitted_->value();
  s.rejected = ctr_serving_rejected_->value();
  s.completed = ctr_serving_completed_->value();
  s.timed_out = ctr_serving_timed_out_->value();
  s.failed = ctr_serving_failed_->value();
  s.deadline_hits = ctr_serving_deadline_hits_->value();
  s.deadline_misses = ctr_serving_deadline_misses_->value();
  s.rollout_preempted = ctr_serving_rollout_preempted_->value();
  s.queued_now = static_cast<int64_t>(serving_backlog_.size());
  for (const RolloutReplica* r : replicas_) {
    s.resident_now += r->num_serving();
  }
  s.latency_seconds = *serving_latency_seconds_;
  return s;
}

RolloutManagerStats RolloutManager::stats() const {
  RolloutManagerStats s;
  s.repack_events = ctr_repack_events_->value();
  s.sources_released = ctr_sources_released_->value();
  s.trajectories_migrated = ctr_trajectories_migrated_->value();
  s.batches_assigned = ctr_batches_assigned_->value();
  s.failures_handled = ctr_failures_handled_->value();
  s.trajectories_redirected = ctr_trajectories_redirected_->value();
  s.slow_events = ctr_slow_events_->value();
  s.slow_recoveries = ctr_slow_recoveries_->value();
  s.trajectories_drained_slow = ctr_trajectories_drained_slow_->value();
  s.redirect_retries = ctr_redirect_retries_->value();
  s.trajectories_dropped = ctr_trajectories_dropped_->value();
  s.machine_stalls = ctr_machine_stalls_->value();
  s.repack_overhead_seconds = *repack_overhead_seconds_;
  return s;
}

RolloutReplica* RolloutManager::FindReplica(int replica_id) const {
  if (replica_id < 0 || static_cast<size_t>(replica_id) >= replica_by_id_.size()) {
    return nullptr;
  }
  return replica_by_id_[static_cast<size_t>(replica_id)];
}

bool RolloutManager::SetQuarantined(int replica_id) {
  LAMINAR_CHECK_GE(replica_id, 0);
  size_t idx = static_cast<size_t>(replica_id);
  if (idx >= quarantined_.size()) {
    quarantined_.resize(idx + 1, 0);
  }
  if (quarantined_[idx] != 0) {
    return false;
  }
  quarantined_[idx] = 1;
  return true;
}

bool RolloutManager::ClearQuarantined(int replica_id) {
  if (replica_id < 0 || static_cast<size_t>(replica_id) >= quarantined_.size() ||
      quarantined_[static_cast<size_t>(replica_id)] == 0) {
    return false;
  }
  quarantined_[static_cast<size_t>(replica_id)] = 0;
  return true;
}

void RolloutManager::Start() {
  running_ = true;
  for (RolloutReplica* r : replicas_) {
    AssignFreshBatch(r);
  }
  tick_->Start();
  if (serving_tick_) {
    serving_tick_->Start();
  }
}

void RolloutManager::Stop() {
  running_ = false;
  if (tick_) {
    tick_->Stop();
  }
  if (serving_tick_) {
    serving_tick_->Stop();
  }
  if (redirect_retry_event_ != kInvalidEventId) {
    sim_->Cancel(redirect_retry_event_);
    redirect_retry_event_ = kInvalidEventId;
  }
}

int64_t RolloutManager::inflight_trajectories() const {
  int64_t n = 0;
  for (const RolloutReplica* r : replicas_) {
    // Serving requests never come from the prompt pool; the exactly-once
    // prompt accounting counts rollout work only.
    n += r->num_reqs() - r->num_serving();
  }
  for (const auto& [version, works] : pending_redirects_) {
    n += static_cast<int64_t>(works.size());
  }
  return n;
}

bool RolloutManager::BacklogAllowsAssignment() const {
  if (config_.backlog_cap <= 0) {
    return true;
  }
  // Gate on completed-but-unconsumed experiences only. In-flight work does
  // not count: its staleness is governed by generation latency (the paper's
  // inherent staleness), not by buffer depth.
  int64_t backlog = backlog_fn_ ? backlog_fn_() : 0;
  return backlog < config_.backlog_cap;
}

void RolloutManager::AssignFreshBatch(RolloutReplica* replica) {
  if (!running_ || replica->phase() == ReplicaPhase::kDead) {
    return;
  }
  if (ServesOnly(replica)) {
    return;  // statically partitioned serving replicas never take prompts
  }
  if (!BacklogAllowsAssignment()) {
    starved_.push_back(replica);
    return;
  }
  int group = prompts_->group_size();
  int batch = std::max(group, config_.per_replica_batch / group * group);
  if (IsQuarantined(replica->config().id)) {
    // Probe load only: enough to keep the decode rate observable, little
    // enough that a still-sick replica cannot hold real throughput hostage.
    batch = group * std::max(1, config_.probe_groups);
  }
  std::vector<TrajectoryRecord> records =
      prompts_->NextBatch(batch, replica->weight_version());
  std::vector<TrajectoryWork> works;
  works.reserve(records.size());
  for (TrajectoryRecord& rec : records) {
    rec.created = sim_->Now();
    TrajectoryWork w;
    w.record = std::move(rec);
    w.InitContext();
    works.push_back(std::move(w));
  }
  ctr_batches_assigned_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/assign_batch",
                        replica->config().id, static_cast<int64_t>(works.size()));
  replica->AssignWork(std::move(works), /*kv_transferred=*/false);
}

void RolloutManager::StartWeightUpdate(RolloutReplica* replica) {
  if (replica->phase() == ReplicaPhase::kDead) {
    return;
  }
  if (ServesOnly(replica)) {
    return;  // dedicated serving replicas keep their boot weights
  }
  if (replica->phase() == ReplicaPhase::kGenerating) {
    // Serving work stays resident through drains, so a repack source may
    // still be decoding here; the update waits for its batch boundary.
    // Unreachable with the serving tier off (sources drain to idle).
    return;
  }
  int current = replica->weight_version();
  if (relays_->latest_published() <= current) {
    // Nothing newer exists; go straight to the next batch.
    AssignFreshBatch(replica);
    return;
  }
  int64_t epoch = replica->BeginWeightUpdate();
  int machine = replica->config().machine;
  int tp = replica->decode_model().tensor_parallel();
  relays_->PullLatest(machine, tp, current,
                      PullTicket{kManagerComp, kContPullComplete,
                                 replica->config().id, epoch});
}

void RolloutManager::OnPullComplete(int replica_id, int64_t epoch, int version,
                                    double wait_seconds) {
  RolloutReplica* replica = FindReplica(replica_id);
  LAMINAR_CHECK(replica != nullptr);
  // The epoch guard rejects completions whose update was aborted (relay
  // restart) or superseded (replica died and revived while the waiter sat on
  // a dead relay).
  if (!replica->EndWeightUpdate(epoch, version, wait_seconds)) {
    return;
  }
  monitor_.Forget(replica_id);
  AssignFreshBatch(replica);
}

void RolloutManager::OnBatchDone(RolloutReplica* replica) {
  if (!running_) {
    return;
  }
  // Paper workflow: a rollout fetches the latest weights as soon as it
  // completes its batch, then pulls the next prompt batch.
  StartWeightUpdate(replica);
}

void RolloutManager::OnActorPublish(int /*version*/) {
  if (!running_) {
    return;
  }
  // A fresh version means backlog just dropped by a global batch; unblock
  // starved replicas first, then consolidate long-tail stragglers so they
  // can move to the new version quickly.
  std::vector<RolloutReplica*> starved = std::move(starved_);
  starved_.clear();
  for (RolloutReplica* r : starved) {
    if (r->phase() == ReplicaPhase::kIdle) {
      StartWeightUpdate(r);
    }
  }
  if (config_.repack_enabled) {
    TriggerRepack();
  }
}

std::vector<ReplicaSnapshot> RolloutManager::CollectSnapshots() {
  std::vector<ReplicaSnapshot> snaps;
  snaps.reserve(replicas_.size());
  for (RolloutReplica* r : replicas_) {
    ReplicaSnapshot s = r->Snapshot();
    if (IsQuarantined(r->config().id) || ServesOnly(r)) {
      s.eligible = false;  // fail-slow or serving-dedicated: absorbs no load
    }
    snaps.push_back(s);
  }
  return snaps;
}

void RolloutManager::TriggerRepack() {
  std::vector<ReplicaSnapshot> snaps = CollectSnapshots();
  monitor_.Observe(snaps);
  // Group by weight version (Figure 8, step 1) and plan per group. A stable
  // sort of snapshot indices yields the same groups, visited in the same
  // ascending-version order with the same within-group snapshot order, as the
  // std::map-of-vectors this replaces — without the per-version allocations.
  std::vector<size_t> order(snaps.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&snaps](size_t a, size_t b) {
    return snaps[a].weight_version < snaps[b].weight_version;
  });
  for (size_t begin = 0; begin < order.size();) {
    int version = snaps[order[begin]].weight_version;
    size_t end = begin;
    std::vector<ReplicaSnapshot> group;
    while (end < order.size() && snaps[order[end]].weight_version == version) {
      group.push_back(snaps[order[end]]);
      ++end;
    }
    begin = end;
    RepackPlan plan =
        config_.use_static_threshold
            ? StaticThresholdConsolidation(group, config_.repack,
                                           config_.static_threshold_requests)
            : BestFitConsolidation(group, config_.repack);
    if (plan.empty()) {
      continue;
    }
    ctr_repack_events_->Add();
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/repack", -1,
                          static_cast<int64_t>(plan.moves.size()));
    // Transfers to distinct destinations proceed in parallel; the plan's
    // overhead is the slowest destination's total KV-transfer stall. A flat
    // per-destination accumulator (few distinct destinations per plan)
    // replaces a std::map; the final max over destinations is
    // order-independent, so the visit order does not matter.
    std::vector<std::pair<int, double>> overhead_by_dst;
    auto overhead_slot = [&overhead_by_dst](int dst) -> double& {
      for (auto& entry : overhead_by_dst) {
        if (entry.first == dst) {
          return entry.second;
        }
      }
      overhead_by_dst.emplace_back(dst, 0.0);
      return overhead_by_dst.back().second;
    };
    for (const auto& [src_id, dst_id] : plan.moves) {
      RolloutReplica* src = FindReplica(src_id);
      RolloutReplica* dst = FindReplica(dst_id);
      LAMINAR_CHECK(src != nullptr && dst != nullptr);
      std::vector<TrajectoryWork> works = src->ExtractAllWork();
      ctr_trajectories_migrated_->Add(static_cast<int64_t>(works.size()));
      for (const TrajectoryWork& w : works) {
        // Re-home the pooled checkpoint to the destination now, not at
        // admission: if the source machine dies while the work still queues
        // on `dst`, a stale source-owned pool entry would otherwise be
        // redirected as a duplicate of the live copy.
        if (partial_pool_->Contains(w.record.id)) {
          partial_pool_->Update(w, dst_id);
        }
        if (w.kv_resident) {
          double kv_bytes = static_cast<double>(w.context_tokens) *
                            dst->decode_model().model().kv_bytes_per_token();
          overhead_slot(dst_id) += dst->config().migration_fixed_overhead +
                                   kv_bytes / dst->config().kv_transfer_bandwidth;
        }
      }
      dst->AssignWork(std::move(works), /*kv_transferred=*/true);
      ctr_sources_released_->Add();
      monitor_.Forget(src_id);
      // The drained source is now free to adopt the newest weights.
      StartWeightUpdate(src);
    }
    double overhead = 0.0;
    for (const auto& entry : overhead_by_dst) {
      overhead = std::max(overhead, entry.second);
    }
    repack_overhead_seconds_->Add(overhead);
  }
}

void RolloutManager::RedirectWork(std::vector<TrajectoryWork> works, int weight_version) {
  // Healthy replicas still on the same version can continue these
  // trajectories (after re-prefilling the saved context). Quarantined
  // (fail-slow) replicas are excluded: handing recovered work back to a sick
  // machine defeats the drain.
  std::vector<RolloutReplica*> hosts;
  for (RolloutReplica* r : replicas_) {
    if (r->phase() != ReplicaPhase::kDead && r->phase() != ReplicaPhase::kUpdatingWeights &&
        r->weight_version() == weight_version && !IsQuarantined(r->config().id) &&
        !ServesOnly(r)) {
      hosts.push_back(r);
    }
  }
  if (hosts.empty()) {
    auto& pending = WorksForVersion(pending_redirects_, weight_version);
    for (auto& w : works) {
      if (partial_pool_->Contains(w.record.id)) {
        partial_pool_->Update(w, kManagerOwner);
      }
      pending.push_back(std::move(w));
    }
    ScheduleRedirectRetry();
    return;
  }
  // Round-robin across hosts, least-loaded first.
  std::sort(hosts.begin(), hosts.end(), [](RolloutReplica* a, RolloutReplica* b) {
    return a->num_reqs() < b->num_reqs();
  });
  std::vector<std::vector<TrajectoryWork>> shards(hosts.size());
  for (size_t i = 0; i < works.size(); ++i) {
    shards[i % hosts.size()].push_back(std::move(works[i]));
  }
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (!shards[i].empty()) {
      for (const TrajectoryWork& w : shards[i]) {
        if (partial_pool_->Contains(w.record.id)) {
          partial_pool_->Update(w, hosts[i]->config().id);
        }
      }
      ctr_trajectories_redirected_->Add(static_cast<int64_t>(shards[i].size()));
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/redirect",
                            hosts[i]->config().id,
                            static_cast<int64_t>(shards[i].size()), weight_version);
      hosts[i]->AssignWork(std::move(shards[i]), /*kv_transferred=*/false);
    }
  }
  redirect_retry_attempts_ = 0;
}

void RolloutManager::ScheduleRedirectRetry() {
  if (redirect_retry_event_ != kInvalidEventId) {
    return;
  }
  double delay = std::min(
      config_.redirect_backoff_base_seconds * std::pow(2.0, redirect_retry_attempts_),
      config_.redirect_backoff_cap_seconds);
  ++redirect_retry_attempts_;
  redirect_retry_event_ =
      sim_->ScheduleContinuationAfter(delay, kManagerComp, kContRedirectRetry);
}

void RolloutManager::OnRedirectRetryFire() {
  redirect_retry_event_ = kInvalidEventId;
  ctr_redirect_retries_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/redirect_retry", -1,
                        redirect_retry_attempts_);
  FlushPendingRedirects();
  if (!pending_redirects_.empty()) {
    ScheduleRedirectRetry();
  }
}

void RolloutManager::RedirectByVersion(std::vector<TrajectoryWork> works,
                                       int fallback_version) {
  VersionWorks by_version;
  for (TrajectoryWork& w : works) {
    int v = w.record.weight_versions.empty() ? fallback_version
                                             : w.record.weight_versions.back();
    WorksForVersion(by_version, v).push_back(std::move(w));
  }
  for (auto& [version, group] : by_version) {
    RedirectWork(std::move(group), version);
  }
}

void RolloutManager::FlushPendingRedirects() {
  if (pending_redirects_.empty()) {
    return;
  }
  VersionWorks pending = std::move(pending_redirects_);
  pending_redirects_.clear();
  for (auto& [version, works] : pending) {
    RedirectWork(std::move(works), version);
  }
}

void RolloutManager::OnMachineFailure(int machine) {
  ctr_failures_handled_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/machine_failure",
                        machine);
  relays_->KillRelay(machine);
  std::vector<RolloutReplica*> casualties;
  for (RolloutReplica* r : replicas_) {
    if (r->config().machine == machine && r->phase() != ReplicaPhase::kDead) {
      casualties.push_back(r);
    }
  }
  // Kill every replica on the machine before redirecting anything, so work
  // is never handed to a sibling replica that is about to die too.
  std::vector<std::vector<TrajectoryWork>> never_admitted(casualties.size());
  for (size_t i = 0; i < casualties.size(); ++i) {
    never_admitted[i] = casualties[i]->Kill();
    monitor_.Forget(casualties[i]->config().id);
    ClearQuarantined(casualties[i]->config().id);  // crash supersedes fail-slow
  }
  if (config_.serving_enabled && !casualties.empty()) {
    // Serving requests have no pooled checkpoint; everything resident on the
    // dead machine (running or queued) is lost and its ticket goes terminal.
    for (ServingTicket& t : serving_tickets_) {
      if (t.state != ServingTicketState::kRunning) {
        continue;
      }
      for (const RolloutReplica* r : casualties) {
        if (t.replica == r->config().id) {
          t.state = ServingTicketState::kFailed;
          ctr_serving_failed_->Add();
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < casualties.size(); ++i) {
    RolloutReplica* r = casualties[i];
    int id = r->config().id;
    // In-progress state survives in the partial-response pool; everything the
    // dead replica owned is redirected (re-prefill on arrival).
    std::vector<TrajectoryWork> recovered = partial_pool_->TakeByReplica(id);
    std::vector<TrajId> recovered_ids;
    recovered_ids.reserve(recovered.size());
    for (const TrajectoryWork& w : recovered) {
      recovered_ids.push_back(w.record.id);
    }
    std::sort(recovered_ids.begin(), recovered_ids.end());
    // Queued work that never streamed a checkpoint anywhere died with the
    // machine; mark it terminal-dropped so the prompt ledger stays exact.
    for (const TrajectoryWork& w : never_admitted[i]) {
      if (IsServingId(w.record.id)) {
        continue;  // no prompt ledger entry; the ticket sweep above counted it
      }
      if (std::binary_search(recovered_ids.begin(), recovered_ids.end(),
                             w.record.id)) {
        continue;  // a pooled checkpoint survives and will be redirected
      }
      if (partial_pool_->MarkDropped(w.record.id)) {
        ctr_trajectories_dropped_->Add();
      }
    }
    LAMINAR_LOG(kInfo) << "machine " << machine << " failed; redirecting "
                       << recovered.size() << " trajectories from replica " << id;
    if (!recovered.empty()) {
      RedirectWork(std::move(recovered), r->weight_version());
    }
  }
  // Replacement machine: allocate, re-init engine + relay, pull weights. The
  // pending event carries only a job seq; the job body serializes with the
  // snapshot.
  double delay = config_.machine_replacement_seconds + config_.replica_init_seconds;
  int64_t seq = next_replacement_seq_++;
  ReplacementJob& job = replacement_jobs_[seq];
  job.machine = machine;
  job.casualties.reserve(casualties.size());
  for (const RolloutReplica* r : casualties) {
    job.casualties.push_back(r->config().id);
  }
  sim_->ScheduleContinuationAfter(delay, kManagerComp, kContMachineReplaced,
                                  ContinuationPayload::Of(seq));
}

void RolloutManager::OnMachineReplaced(int64_t seq) {
  auto it = replacement_jobs_.find(seq);
  LAMINAR_CHECK(it != replacement_jobs_.end());
  ReplacementJob job = std::move(it->second);
  replacement_jobs_.erase(it);
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/machine_replaced",
                        job.machine);
  relays_->ReviveRelay(job.machine);
  std::vector<RolloutReplica*> casualties;
  casualties.reserve(job.casualties.size());
  for (int id : job.casualties) {
    RolloutReplica* r = FindReplica(id);
    LAMINAR_CHECK(r != nullptr);
    casualties.push_back(r);
    r->Revive();
  }
  // Interrupted work whose policy version no longer runs anywhere is
  // adopted by the fresh replicas, which load that specific checkpointed
  // version (paper §3.3) so the trajectories stay single-version.
  size_t next = 0;
  if (!pending_redirects_.empty()) {
    VersionWorks pending = std::move(pending_redirects_);
    pending_redirects_.clear();
    for (auto& [version, works] : pending) {
      if (next < casualties.size()) {
        RolloutReplica* host = casualties[next++];
        host->LoadCheckpointVersion(version);
        ctr_trajectories_redirected_->Add(static_cast<int64_t>(works.size()));
        host->AssignWork(std::move(works), /*kv_transferred=*/false);
      } else {
        WorksForVersion(pending_redirects_, version) = std::move(works);
      }
    }
  }
  for (size_t i = next; i < casualties.size(); ++i) {
    StartWeightUpdate(casualties[i]);
  }
  FlushPendingRedirects();
}

void RolloutManager::OnReplicaSlow(int replica_id) {
  RolloutReplica* r = FindReplica(replica_id);
  if (r == nullptr || r->phase() == ReplicaPhase::kDead || IsQuarantined(replica_id)) {
    return;
  }
  ctr_slow_events_->Add();
  SetQuarantined(replica_id);
  std::vector<TrajectoryWork> drained = r->ExtractAllWork();
  ctr_trajectories_drained_slow_->Add(static_cast<int64_t>(drained.size()));
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/quarantine",
                        replica_id, static_cast<int64_t>(drained.size()));
  LAMINAR_LOG(kInfo) << "replica " << replica_id
                     << " quarantined as fail-slow; draining " << drained.size()
                     << " trajectories";
  if (!drained.empty()) {
    RedirectByVersion(std::move(drained), r->weight_version());
  }
  if (running_ && r->phase() == ReplicaPhase::kIdle) {
    AssignFreshBatch(r);  // probe load keeps its decode rate observable
  }
}

void RolloutManager::OnReplicaSlowRecovered(int replica_id) {
  if (!ClearQuarantined(replica_id)) {
    return;
  }
  ctr_slow_recoveries_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/quarantine_lift",
                        replica_id);
  LAMINAR_LOG(kInfo) << "replica " << replica_id << " recovered from fail-slow";
  RolloutReplica* r = FindReplica(replica_id);
  if (running_ && r != nullptr && r->phase() == ReplicaPhase::kIdle) {
    StartWeightUpdate(r);
  }
  FlushPendingRedirects();
}

void RolloutManager::OnMachineStall(int machine, double duration_seconds) {
  ctr_machine_stalls_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/machine_stall", machine,
                        0, duration_seconds);
  std::vector<int> paused;
  for (RolloutReplica* r : replicas_) {
    if (r->config().machine != machine) {
      continue;
    }
    if (r->phase() == ReplicaPhase::kGenerating || r->phase() == ReplicaPhase::kIdle) {
      r->Pause();
      paused.push_back(r->config().id);
    }
  }
  if (paused.empty()) {
    return;
  }
  int64_t seq = next_thaw_seq_++;
  thaw_jobs_[seq] = std::move(paused);
  // The thaw resumes replicas on exactly one machine (plus manager-side
  // bookkeeping no window event reads), so it rides that machine's replica
  // lane instead of fencing every shard window on lane 0 (DESIGN.md §12).
  sim_->ScheduleLaneControlAfter(sim_->AffinityShard(machine), duration_seconds,
                                 kManagerComp, kContStallThaw,
                                 ContinuationPayload::Of(seq));
}

void RolloutManager::OnStallThaw(int64_t seq) {
  auto it = thaw_jobs_.find(seq);
  LAMINAR_CHECK(it != thaw_jobs_.end());
  std::vector<int> paused = std::move(it->second);
  thaw_jobs_.erase(it);
  for (int id : paused) {
    RolloutReplica* r = FindReplica(id);
    if (r == nullptr || r->phase() != ReplicaPhase::kPaused) {
      continue;  // the stall escalated to a crash (or the replica moved on)
    }
    r->Resume();
    if (running_ && r->phase() == ReplicaPhase::kIdle) {
      StartWeightUpdate(r);
    }
  }
}

void RolloutManager::OnRelayRestarted(int machine) {
  for (RolloutReplica* r : replicas_) {
    if (r->config().machine != machine ||
        r->phase() != ReplicaPhase::kUpdatingWeights) {
      continue;
    }
    // The relay death cleared this replica's pull waiter, so the update can
    // never complete on its own. Abort (invalidating the lost pull's epoch)
    // and re-issue the pull against the revived relay.
    r->AbortWeightUpdate();
    StartWeightUpdate(r);
  }
}

void RolloutManager::ObserveRates() {
  if (!rate_observer_) {
    return;
  }
  SimTime now = sim_->Now();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    RolloutReplica* r = replicas_[i];
    RateProbe& p = probes_[i];
    if (r->phase() == ReplicaPhase::kDead) {
      p.valid = false;
      continue;
    }
    RolloutReplica::DecodeProbeSample s = r->ObservedDecodeProbe();
    if (p.valid && now > p.at) {
      double elapsed = now - p.at;
      double busy = s.busy_seconds - p.sample.busy_seconds;
      double req_seconds = s.request_seconds - p.sample.request_seconds;
      // Only windows that actually spent time decoding say anything about
      // decode speed; prefill-burst, env-blocked, paused or drained windows
      // contribute no busy time and are skipped (a wall-clock denominator
      // would read them as spuriously slow).
      if (busy > 0.25 * elapsed && req_seconds > 0.0) {
        double tokens_delta = static_cast<double>(s.tokens - p.sample.tokens);
        int avg_batch = std::max(1, static_cast<int>(std::lround(req_seconds / busy)));
        double avg_ctx = std::max(
            0.0, (s.ctx_request_seconds - p.sample.ctx_request_seconds) / req_seconds);
        double modeled = r->decode_model().StepLatency(avg_batch, avg_ctx);
        // Observed per-request token rate times the modeled step latency:
        // ~1.0 on a healthy replica for any batch shape, ~speed_factor on a
        // fail-slow one.
        double efficiency = (tokens_delta / req_seconds) * modeled;
        rate_observer_(r->config().id, efficiency);
      }
    }
    p = RateProbe{true, now, s};
  }
}

void RolloutManager::Tick() {
  if (!running_) {
    return;
  }
  ObserveRates();
  FlushPendingRedirects();
  // Retry starved replicas.
  std::vector<RolloutReplica*> starved = std::move(starved_);
  starved_.clear();
  for (RolloutReplica* r : starved) {
    if (r->phase() == ReplicaPhase::kIdle) {
      StartWeightUpdate(r);
    }
  }
  if (config_.repack_enabled) {
    TriggerRepack();
  }
}

RolloutManager::ServingTicket& RolloutManager::TicketFor(TrajId id) {
  LAMINAR_CHECK(IsServingId(id));
  size_t idx = static_cast<size_t>(id - kServingIdBase);
  LAMINAR_CHECK(idx < serving_tickets_.size());
  return serving_tickets_[idx];
}

void RolloutManager::OnServingArrival(const ServingRequest& request) {
  ctr_serving_requests_->Add();
  size_t idx = static_cast<size_t>(request.seq);
  if (idx >= serving_tickets_.size()) {
    serving_tickets_.resize(idx + 1);
  }
  ServingTicket& t = serving_tickets_[idx];
  t.arrival = sim_->Now();
  t.deadline_seconds = request.deadline_seconds;
  t.replica = -1;
  t.state = ServingTicketState::kQueued;

  TrajectoryWork w;
  w.record.id = kServingIdBase + request.seq;
  w.record.created = sim_->Now();
  TrajectorySpec spec;
  spec.prompt_tokens = request.prompt_tokens;
  spec.AppendSegment({request.decode_tokens, 0.0, 0});
  w.record.spec = std::move(spec);
  w.InitContext();
  TryPlaceServing(std::move(w), /*admission=*/true);
}

// The one serving-expiry boundary (ISSUE 9 satellite): a request is late iff
// its deadline is STRICTLY LESS than the clock. A deadline exactly equal to
// the sweep timestamp is not expiry — the request stays placeable, so its
// terminal class never depends on whether a host happens to be eligible at
// that instant.
bool RolloutManager::ServingDeadlinePassed(double deadline_seconds) const {
  return deadline_seconds < sim_->Now().seconds();
}

bool RolloutManager::TryPlaceServing(TrajectoryWork work, bool admission) {
  if (!running_) {
    serving_backlog_.push_back(std::move(work));
    return false;
  }
  if (!admission && ServingDeadlinePassed(TicketFor(work.record.id).deadline_seconds)) {
    // Applied before every placement retry, ahead of the host scan: an
    // expired queued request times out — it is never re-routed through the
    // admission gate where host availability would decide its terminal class.
    ServingTicket& t = TicketFor(work.record.id);
    t.state = ServingTicketState::kTimedOut;
    ctr_serving_timed_out_->Add();
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/serving_timeout",
                          -1, work.record.id);
    return true;
  }
  // Admission host: the healthy replica with the most free KVCache. With a
  // static partition (serving_dedicated_replicas > 0) only the dedicated
  // replicas qualify; colocated mode considers the whole fleet.
  RolloutReplica* best = nullptr;
  double best_free = -1.0;
  for (RolloutReplica* r : replicas_) {
    if (r->phase() == ReplicaPhase::kDead || r->phase() == ReplicaPhase::kUpdatingWeights ||
        r->phase() == ReplicaPhase::kPaused || IsQuarantined(r->config().id)) {
      continue;
    }
    if (config_.serving_dedicated_replicas > 0 && !ServesOnly(r)) {
      continue;
    }
    double free = r->kv_capacity_tokens() - r->kv_used_tokens();
    if (free > best_free) {
      best_free = free;
      best = r;
    }
  }
  if (best == nullptr) {
    serving_backlog_.push_back(std::move(work));
    return false;
  }
  ServingTicket& t = TicketFor(work.record.id);
  int64_t decode_tokens = work.record.spec.total_decode_tokens();
  // SLO feasibility: prefill plus a decode estimate at the post-admission
  // batch shape. An infeasible request is rejected up front (load shedding)
  // rather than admitted to miss — the paper-standard admission-control move.
  // Admission-time only: once a request is queued, rejection would make its
  // terminal class depend on which sweep finds a host (a request whose
  // deadline equals the sweep timestamp always fails this estimate), so
  // retries either place or run out the clock above.
  if (admission) {
    double step = best->decode_model().StepLatency(
        best->num_reqs() + 1,
        static_cast<double>(work.context_tokens) + 0.5 * static_cast<double>(decode_tokens));
    double est = best->decode_model().PrefillLatency(static_cast<double>(work.context_tokens)) +
                 static_cast<double>(decode_tokens) * step;
    if (sim_->Now().seconds() + est > t.deadline_seconds) {
      t.state = ServingTicketState::kRejected;
      ctr_serving_rejected_->Add();
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/serving_reject",
                            best->config().id, work.record.id);
      return true;
    }
  }
  // Serving preempts decode: when the best host lacks KV headroom, evict
  // in-flight rollout sequences (newest first) and park them exactly as the
  // machine-loss path does — pool checkpoint re-homed to the manager, then
  // version-bucketed for redirect.
  double needed = static_cast<double>(work.context_tokens) +
                  static_cast<double>(decode_tokens);
  if (best_free < needed) {
    std::vector<TrajectoryWork> evicted = best->PreemptRolloutForServing(needed);
    if (!evicted.empty()) {
      ctr_serving_rollout_preempted_->Add(static_cast<int64_t>(evicted.size()));
      LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/serving_preempt",
                            best->config().id, static_cast<int64_t>(evicted.size()));
      for (TrajectoryWork& ew : evicted) {
        if (partial_pool_->Contains(ew.record.id)) {
          partial_pool_->Update(ew, kManagerOwner);
        }
        int v = ew.record.weight_versions.empty() ? best->weight_version()
                                                  : ew.record.weight_versions.back();
        WorksForVersion(pending_redirects_, v).push_back(std::move(ew));
      }
      ScheduleRedirectRetry();
    }
  }
  t.state = ServingTicketState::kRunning;
  t.replica = best->config().id;
  ctr_serving_admitted_->Add();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kManager, "manager/serving_admit",
                        best->config().id, work.record.id);
  std::vector<TrajectoryWork> one;
  one.push_back(std::move(work));
  best->AssignServingWork(std::move(one));
  return true;
}

void RolloutManager::ServingSweep() {
  if (!running_ || serving_backlog_.empty()) {
    return;
  }
  size_t n = serving_backlog_.size();
  for (size_t i = 0; i < n; ++i) {
    TrajectoryWork w = std::move(serving_backlog_.front());
    serving_backlog_.pop_front();
    // Expiry (deadline strictly before now) is classified inside the retry
    // itself, so the sweep and the placement path share one boundary.
    TryPlaceServing(std::move(w), /*admission=*/false);  // re-queues at the back on failure
  }
}

void RolloutManager::OnServingComplete(const TrajectoryRecord& record) {
  ServingTicket& t = TicketFor(record.id);
  LAMINAR_CHECK(t.state == ServingTicketState::kRunning);
  t.state = ServingTicketState::kCompleted;
  ctr_serving_completed_->Add();
  SimTime now = sim_->Now();
  double latency = now.seconds() - t.arrival.seconds();
  serving_latency_seconds_->Add(latency);
  bool hit = !ServingDeadlinePassed(t.deadline_seconds);
  if (hit) {
    ctr_serving_deadline_hits_->Add();
  } else {
    ctr_serving_deadline_misses_->Add();
  }
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kManager,
                        hit ? "manager/serving_hit" : "manager/serving_miss",
                        t.replica, t.arrival, now, record.id, latency);
}

void RolloutManager::Snapshot(SnapshotTx& tx) {
  tx.Begin("rollout_manager");
  tx.Bool("running", &running_);
  SnapshotPacked(
      tx, "pending_redirects",
      [this](ByteSink& s) {
        s.U64(pending_redirects_.size());
        for (const auto& [version, works] : pending_redirects_) {
          s.I32(version);
          s.U64(works.size());
          for (const TrajectoryWork& w : works) {
            PackWork(s, w);
          }
        }
      },
      [this](ByteSource& s) {
        pending_redirects_.clear();
        uint64_t nv = s.U64();
        for (uint64_t i = 0; i < nv; ++i) {
          int version = s.I32();
          uint64_t nw = s.U64();
          std::vector<TrajectoryWork>& works =
              WorksForVersion(pending_redirects_, version);
          works.reserve(static_cast<size_t>(nw));
          for (uint64_t j = 0; j < nw; ++j) {
            works.push_back(UnpackWork(s));
          }
        }
      });
  SnapshotPacked(
      tx, "starved",
      [this](ByteSink& s) {
        s.U64(starved_.size());
        for (const RolloutReplica* r : starved_) {
          s.I32(r->config().id);
        }
      },
      [this](ByteSource& s) {
        starved_.clear();
        uint64_t n = s.U64();
        for (uint64_t i = 0; i < n; ++i) {
          RolloutReplica* r = FindReplica(s.I32());
          LAMINAR_CHECK(r != nullptr);
          starved_.push_back(r);
        }
      });
  SnapshotPacked(
      tx, "quarantined",
      [this](ByteSink& s) {
        s.U64(quarantined_.size());
        for (uint8_t q : quarantined_) {
          s.U8(q);
        }
      },
      [this](ByteSource& s) {
        quarantined_.assign(static_cast<size_t>(s.U64()), 0);
        for (uint8_t& q : quarantined_) {
          q = s.U8();
        }
      });
  SnapshotPacked(
      tx, "probes",
      [this](ByteSink& s) {
        s.U64(probes_.size());
        for (const RateProbe& p : probes_) {
          s.Bool(p.valid);
          s.Time(p.at);
          s.F64(p.sample.busy_seconds);
          s.F64(p.sample.request_seconds);
          s.F64(p.sample.ctx_request_seconds);
          s.I64(p.sample.tokens);
        }
      },
      [this](ByteSource& s) {
        probes_.assign(static_cast<size_t>(s.U64()), RateProbe{});
        for (RateProbe& p : probes_) {
          p.valid = s.Bool();
          p.at = s.Time();
          p.sample.busy_seconds = s.F64();
          p.sample.request_seconds = s.F64();
          p.sample.ctx_request_seconds = s.F64();
          p.sample.tokens = s.I64();
        }
      });
  tx.I64As("redirect_retry_attempts", &redirect_retry_attempts_);
  SnapshotPacked(
      tx, "pending_jobs",
      [this](ByteSink& s) {
        s.I64(next_replacement_seq_);
        s.U64(replacement_jobs_.size());
        for (const auto& [seq, job] : replacement_jobs_) {
          s.I64(seq);
          s.I32(job.machine);
          s.U64(job.casualties.size());
          for (int id : job.casualties) {
            s.I32(id);
          }
        }
        s.I64(next_thaw_seq_);
        s.U64(thaw_jobs_.size());
        for (const auto& [seq, paused] : thaw_jobs_) {
          s.I64(seq);
          s.U64(paused.size());
          for (int id : paused) {
            s.I32(id);
          }
        }
      },
      [this](ByteSource& s) {
        next_replacement_seq_ = s.I64();
        replacement_jobs_.clear();
        uint64_t nr = s.U64();
        for (uint64_t i = 0; i < nr; ++i) {
          int64_t seq = s.I64();
          ReplacementJob& job = replacement_jobs_[seq];
          job.machine = s.I32();
          job.casualties.assign(static_cast<size_t>(s.U64()), 0);
          for (int& id : job.casualties) {
            id = s.I32();
          }
        }
        next_thaw_seq_ = s.I64();
        thaw_jobs_.clear();
        uint64_t nt = s.U64();
        for (uint64_t i = 0; i < nt; ++i) {
          int64_t seq = s.I64();
          std::vector<int>& paused = thaw_jobs_[seq];
          paused.assign(static_cast<size_t>(s.U64()), 0);
          for (int& id : paused) {
            id = s.I32();
          }
        }
      });
  if (tx.adopting()) {
    // The pending retry event (if any) is re-seated from the event heap by
    // RestoreContinuation; only the attempt counter travels here.
    redirect_retry_event_ = kInvalidEventId;
  }
  if (config_.serving_enabled) {
    // Gated on the config flag so serving-off blobs keep the historical
    // section layout byte-for-byte.
    SnapshotPacked(
        tx, "serving_tickets",
        [this](ByteSink& s) {
          s.U64(serving_tickets_.size());
          for (const ServingTicket& t : serving_tickets_) {
            s.Time(t.arrival);
            s.F64(t.deadline_seconds);
            s.I32(t.replica);
            s.U8(static_cast<uint8_t>(t.state));
          }
        },
        [this](ByteSource& s) {
          serving_tickets_.assign(static_cast<size_t>(s.U64()), ServingTicket{});
          for (ServingTicket& t : serving_tickets_) {
            t.arrival = s.Time();
            t.deadline_seconds = s.F64();
            t.replica = s.I32();
            t.state = static_cast<ServingTicketState>(s.U8());
          }
        });
    SnapshotPacked(
        tx, "serving_backlog",
        [this](ByteSink& s) {
          s.U64(serving_backlog_.size());
          for (const TrajectoryWork& w : serving_backlog_) {
            PackWork(s, w);
          }
        },
        [this](ByteSource& s) {
          serving_backlog_.clear();
          uint64_t n = s.U64();
          for (uint64_t i = 0; i < n; ++i) {
            serving_backlog_.push_back(UnpackWork(s));
          }
        });
  }
  monitor_.Snapshot(tx);
  metrics_.Snapshot(tx, "manager_metrics");
  tx.End();
}

}  // namespace laminar
