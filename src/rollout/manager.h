// Rollout manager (paper §3.1, §5): the CPU-side coordinator of all rollout
// replicas. It assigns prompt batches, monitors replica health and idleness,
// runs the repack algorithm on a periodic tick (and immediately after each
// actor update), drives per-replica weight updates through the relay tier,
// and recovers from machine failures using the partial-response pool.
#ifndef LAMINAR_SRC_ROLLOUT_MANAGER_H_
#define LAMINAR_SRC_ROLLOUT_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/data/partial_response_pool.h"
#include "src/data/prompt_pool.h"
#include "src/relay/relay_tier.h"
#include "src/repack/best_fit.h"
#include "src/repack/monitor.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"

namespace laminar {

struct RolloutManagerConfig {
  bool repack_enabled = true;
  // Use the static request-count threshold detector instead of the KVCache
  // ramp-down signal (ablation; paper argues against this).
  bool use_static_threshold = false;
  int static_threshold_requests = 8;
  double repack_period_seconds = 5.0;  // paper: periodic check, e.g. 5 s
  RepackParams repack;
  // Trajectories per prompt-batch assignment (the replica's generation cycle).
  int per_replica_batch = 1024;
  // Stop assigning fresh prompts when this many trajectories are already
  // generated-but-unconsumed or in flight (keeps staleness bounded when
  // generation outpaces training).
  int64_t backlog_cap = 0;  // 0 = no cap
  // Failure handling.
  double machine_replacement_seconds = 210.0;  // allocate a standby machine
  double replica_init_seconds = 35.0;          // engine bring-up on the new machine
};

struct RolloutManagerStats {
  int64_t repack_events = 0;       // plans with at least one move
  int64_t sources_released = 0;    // replicas freed by repack
  int64_t trajectories_migrated = 0;
  int64_t batches_assigned = 0;
  int64_t failures_handled = 0;
  int64_t trajectories_redirected = 0;
  SampleSet repack_overhead_seconds;  // per-plan migration stall estimate
};

class RolloutManager {
 public:
  RolloutManager(Simulator* sim, RolloutManagerConfig config,
                 std::vector<RolloutReplica*> replicas, RelayTier* relays,
                 PromptPool* prompts, PartialResponsePool* partial_pool);

  // Starts generation: assigns the first prompt batch everywhere and begins
  // the periodic monitoring tick. The driver must have wired each replica's
  // on_batch_done to OnBatchDone() beforehand.
  void Start();
  void Stop();

  // Replica lifecycle callbacks -------------------------------------------------
  void OnBatchDone(RolloutReplica* replica);
  // Notification from the trainer that a new weight version exists; triggers
  // an immediate repack pass (paper §5.1) and unblocks backlog-gated replicas.
  void OnActorPublish(int version);

  // Fault handling ---------------------------------------------------------------
  // A rollout machine died (detected via heartbeat). Kills its replicas and
  // relay, redirects interrupted trajectories, and schedules a replacement.
  void OnMachineFailure(int machine);

  // Backlog source: total completed-but-unconsumed trajectories (experience
  // buffer size); used with backlog_cap.
  void set_backlog_fn(std::function<int64_t()> fn) { backlog_fn_ = std::move(fn); }

  // Runs one repack pass now (also used by tests and benches).
  void TriggerRepack();

  const RolloutManagerStats& stats() const { return stats_; }
  int64_t inflight_trajectories() const;
  const RolloutManagerConfig& config() const { return config_; }

 private:
  void AssignFreshBatch(RolloutReplica* replica);
  void StartWeightUpdate(RolloutReplica* replica);
  bool BacklogAllowsAssignment() const;
  void RedirectWork(std::vector<TrajectoryWork> works, int weight_version);
  void FlushPendingRedirects();
  std::vector<ReplicaSnapshot> CollectSnapshots();
  void Tick();

  Simulator* sim_;
  RolloutManagerConfig config_;
  std::vector<RolloutReplica*> replicas_;
  RelayTier* relays_;
  PromptPool* prompts_;
  PartialResponsePool* partial_pool_;
  std::function<int64_t()> backlog_fn_;

  IdlenessMonitor monitor_;
  std::unique_ptr<PeriodicTask> tick_;
  // Recovered work waiting for a healthy replica with a matching version.
  std::map<int, std::vector<TrajectoryWork>> pending_redirects_;
  // Replicas that finished a batch but were backlog-gated.
  std::vector<RolloutReplica*> starved_;
  RolloutManagerStats stats_;
  bool running_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_ROLLOUT_MANAGER_H_
