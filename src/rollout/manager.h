// Rollout manager (paper §3.1, §5): the CPU-side coordinator of all rollout
// replicas. It assigns prompt batches, monitors replica health and idleness,
// runs the repack algorithm on a periodic tick (and immediately after each
// actor update), drives per-replica weight updates through the relay tier,
// and recovers from machine failures using the partial-response pool.
#ifndef LAMINAR_SRC_ROLLOUT_MANAGER_H_
#define LAMINAR_SRC_ROLLOUT_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/data/partial_response_pool.h"
#include "src/data/prompt_pool.h"
#include "src/relay/relay_tier.h"
#include "src/repack/best_fit.h"
#include "src/repack/monitor.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"
#include "src/trace/metrics.h"
#include "src/workload/serving_traffic.h"

namespace laminar {

class SnapshotTx;

struct RolloutManagerConfig {
  bool repack_enabled = true;
  // Use the static request-count threshold detector instead of the KVCache
  // ramp-down signal (ablation; paper argues against this).
  bool use_static_threshold = false;
  int static_threshold_requests = 8;
  double repack_period_seconds = 5.0;  // paper: periodic check, e.g. 5 s
  RepackParams repack;
  // Trajectories per prompt-batch assignment (the replica's generation cycle).
  int per_replica_batch = 1024;
  // Stop assigning fresh prompts when this many trajectories are already
  // generated-but-unconsumed or in flight (keeps staleness bounded when
  // generation outpaces training).
  int64_t backlog_cap = 0;  // 0 = no cap
  // Failure handling.
  double machine_replacement_seconds = 210.0;  // allocate a standby machine
  double replica_init_seconds = 35.0;          // engine bring-up on the new machine
  // When recovered work finds no eligible host, retry placement with
  // exponential backoff (base * 2^attempt, capped) instead of waiting a full
  // repack tick.
  double redirect_backoff_base_seconds = 0.5;
  double redirect_backoff_cap_seconds = 16.0;
  // A quarantined (fail-slow) replica keeps generating small probe batches of
  // this many prompt groups, so its decode rate stays observable and recovery
  // can be detected without trusting the sick replica with real load.
  int probe_groups = 1;
  // Online serving tier (DESIGN.md §14). With serving_dedicated_replicas == 0
  // serving is admitted onto any healthy replica (colocated, the Laminar
  // policy); N > 0 statically partitions the fleet — replicas [0, N) serve
  // exclusively and never take prompts or weight updates.
  bool serving_enabled = false;
  int serving_dedicated_replicas = 0;
  // Backlogged serving requests retry placement (and expire past their
  // deadline) on this cadence.
  double serving_retry_period_seconds = 0.5;
};

// Point-in-time snapshot of the manager's metrics registry (stats() builds
// one on demand). Kept as a plain struct so report assembly and tests read
// named fields rather than registry strings.
struct RolloutManagerStats {
  int64_t repack_events = 0;       // plans with at least one move
  int64_t sources_released = 0;    // replicas freed by repack
  int64_t trajectories_migrated = 0;
  int64_t batches_assigned = 0;
  int64_t failures_handled = 0;
  int64_t trajectories_redirected = 0;
  int64_t slow_events = 0;             // replicas quarantined as fail-slow
  int64_t slow_recoveries = 0;         // quarantines lifted
  int64_t trajectories_drained_slow = 0;
  int64_t redirect_retries = 0;        // backoff retry firings
  int64_t trajectories_dropped = 0;    // never-checkpointed work lost to a crash
  int64_t machine_stalls = 0;
  SampleSet repack_overhead_seconds;  // per-plan migration stall estimate
};

// Serving-tier counters and queue depths (serving_stats()). Every request is
// in exactly one of: rejected, queued_now, resident_now, completed,
// timed_out, failed — the conservation invariant the checker audits.
struct ServingStats {
  int64_t requests = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t failed = 0;
  int64_t deadline_hits = 0;
  int64_t deadline_misses = 0;
  int64_t rollout_preempted = 0;  // rollout works evicted for serving KV
  int64_t queued_now = 0;         // backlog awaiting placement
  int64_t resident_now = 0;       // placed on replicas, not yet finished
  SampleSet latency_seconds;      // arrival -> completion, completions only
};

class RolloutManager : public ContinuationClient {
 public:
  // Continuation kinds for the manager's pending events (DESIGN.md §13).
  enum Continuation : uint16_t {
    // Relay pull finished: {a=replica id, b=epoch, c=version, d=wait bits}.
    // Fired synchronously through the registry by the relay tier; never
    // parked on the event heap.
    kContPullComplete = 0,
    kContRedirectRetry = 1,    // backoff retry for parked redirects
    kContMachineReplaced = 2,  // {a=seq into replacement_jobs_}
    kContStallThaw = 3,        // {a=seq into thaw_jobs_}
    kContTick = 4,             // periodic monitoring tick
    kContServingTick = 5,      // periodic serving sweep
  };

  RolloutManager(Simulator* sim, RolloutManagerConfig config,
                 std::vector<RolloutReplica*> replicas, RelayTier* relays,
                 PromptPool* prompts, PartialResponsePool* partial_pool);
  ~RolloutManager() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Starts generation: assigns the first prompt batch everywhere and begins
  // the periodic monitoring tick. The driver must have wired each replica's
  // on_batch_done to OnBatchDone() beforehand.
  void Start();
  void Stop();

  // Replica lifecycle callbacks -------------------------------------------------
  void OnBatchDone(RolloutReplica* replica);
  // Notification from the trainer that a new weight version exists; triggers
  // an immediate repack pass (paper §5.1) and unblocks backlog-gated replicas.
  void OnActorPublish(int version);

  // Fault handling ---------------------------------------------------------------
  // A rollout machine died (detected via heartbeat). Kills its replicas and
  // relay, redirects interrupted trajectories, and schedules a replacement.
  void OnMachineFailure(int machine);

  // Gray failure: a replica's decode rate collapsed without its heartbeat
  // missing (detected via the slowness score). Quarantines the replica,
  // drains its in-flight work onto healthy peers, and keeps it on probe
  // batches until the detector reports recovery.
  void OnReplicaSlow(int replica_id);
  void OnReplicaSlowRecovered(int replica_id);
  bool IsQuarantined(int replica_id) const {
    return replica_id >= 0 && static_cast<size_t>(replica_id) < quarantined_.size() &&
           quarantined_[static_cast<size_t>(replica_id)] != 0;
  }

  // Transient machine stall: replicas freeze (no decode progress, no
  // heartbeats) and thaw unharmed after `duration_seconds` unless the stall
  // outlives the heartbeat miss threshold and is escalated to a failure.
  void OnMachineStall(int machine, double duration_seconds);

  // Online serving (DESIGN.md §14) ---------------------------------------------
  // A serving request arrived: place it on the least-loaded eligible replica
  // with SLO-feasibility admission control, preempting rollout decode when
  // the KVCache is short. Infeasible requests are rejected immediately; when
  // no host is eligible the request queues and retries on the serving sweep.
  void OnServingArrival(const ServingRequest& request);
  // A serving request finished decoding (routed here by the driver's
  // completion intercept — serving ids never touch the training data path).
  void OnServingComplete(const TrajectoryRecord& record);
  ServingStats serving_stats() const;

  // A relay process restarted (crash + revival while its machine stayed up).
  // Any replica on that machine stuck mid-weight-update lost its pull waiter
  // when the relay died; abort the orphaned update and re-issue the pull
  // against the revived relay.
  void OnRelayRestarted(int machine);

  // Per-tick decode-efficiency observations (replica_id, efficiency) for the
  // gray-failure detector. Efficiency is observed-vs-modeled step throughput,
  // ~1.0 for a healthy replica regardless of batch shape.
  void set_rate_observer(std::function<void(int, double)> fn) {
    rate_observer_ = std::move(fn);
  }

  // Backlog source: total completed-but-unconsumed trajectories (experience
  // buffer size); used with backlog_cap.
  void set_backlog_fn(std::function<int64_t()> fn) { backlog_fn_ = std::move(fn); }

  // Runs one repack pass now (also used by tests and benches).
  void TriggerRepack();

  RolloutManagerStats stats() const;
  const MetricsRegistry& metrics() const { return metrics_; }

  // Snapshot witness (src/snapshot, DESIGN.md §13): parked redirects,
  // quarantine/starvation state, probe windows, serving tickets and backlog,
  // in-flight replacement/thaw jobs, the idleness-monitor history and the
  // metrics registry — all fully adoptable for direct boot. Replica state is
  // witnessed by the driver, which owns the replicas.
  void Snapshot(SnapshotTx& tx);
  int64_t inflight_trajectories() const;
  const RolloutManagerConfig& config() const { return config_; }

 private:
  // Version -> parked work, kept sorted ascending by version. Replaces a
  // std::map: iteration order (ascending) and per-version work order are
  // identical, but entries live in one flat allocation.
  using VersionWorks = std::vector<std::pair<int, std::vector<TrajectoryWork>>>;

  // Per-request serving bookkeeping, indexed by (id - kServingIdBase).
  enum class ServingTicketState : uint8_t {
    kQueued,
    kRunning,
    kCompleted,
    kTimedOut,
    kFailed,
    kRejected,
  };
  struct ServingTicket {
    SimTime arrival;
    double deadline_seconds = 0.0;
    int replica = -1;  // last placement (-1 while never placed)
    ServingTicketState state = ServingTicketState::kQueued;
  };

  // A machine-replacement job in flight: the pending event carries only a
  // sequence number; the job body (which machine, which replicas to revive)
  // lives here so it serializes with the snapshot.
  struct ReplacementJob {
    int machine = 0;
    std::vector<int> casualties;  // replica ids to revive
  };

  void AssignFreshBatch(RolloutReplica* replica);
  void StartWeightUpdate(RolloutReplica* replica);
  // Continuation bodies.
  void OnPullComplete(int replica_id, int64_t epoch, int version,
                      double wait_seconds);
  void OnRedirectRetryFire();
  void OnMachineReplaced(int64_t seq);
  void OnStallThaw(int64_t seq);
  // True for replicas statically dedicated to serving (never rollout hosts).
  bool ServesOnly(const RolloutReplica* replica) const {
    return config_.serving_enabled && config_.serving_dedicated_replicas > 0 &&
           replica->config().id < config_.serving_dedicated_replicas;
  }
  ServingTicket& TicketFor(TrajId id);
  // The pinned serving-expiry boundary: late iff deadline < now. Equality is
  // not expiry (used by retries, timeouts, and deadline-hit bookkeeping).
  bool ServingDeadlinePassed(double deadline_seconds) const;
  // Returns false when the request stayed queued (no eligible host); terminal
  // outcomes return true. `admission` distinguishes the arrival path (SLO
  // feasibility may load-shed) from backlog retries (expire via the pinned
  // boundary, otherwise place or re-queue — never reject).
  bool TryPlaceServing(TrajectoryWork work, bool admission);
  // Periodic backlog pass: retry placement for every queued request (expiry
  // is classified inside the retry, against the pinned boundary).
  void ServingSweep();
  bool BacklogAllowsAssignment() const;
  void RedirectWork(std::vector<TrajectoryWork> works, int weight_version);
  void FlushPendingRedirects();
  void ScheduleRedirectRetry();
  void RedirectByVersion(std::vector<TrajectoryWork> works, int fallback_version);
  RolloutReplica* FindReplica(int replica_id) const;
  // Sets/clears the quarantine bit; returns whether the bit changed.
  bool SetQuarantined(int replica_id);
  bool ClearQuarantined(int replica_id);
  std::vector<ReplicaSnapshot> CollectSnapshots();
  void ObserveRates();
  void Tick();

  Simulator* sim_;
  RolloutManagerConfig config_;
  std::vector<RolloutReplica*> replicas_;
  RelayTier* relays_;
  PromptPool* prompts_;
  PartialResponsePool* partial_pool_;
  std::function<int64_t()> backlog_fn_;

  IdlenessMonitor monitor_;
  std::unique_ptr<PeriodicTask> tick_;
  // Recovered work waiting for a healthy replica with a matching version.
  VersionWorks pending_redirects_;
  // Replicas that finished a batch but were backlog-gated.
  std::vector<RolloutReplica*> starved_;
  // Fail-slow replicas currently restricted to probe batches (bitmap indexed
  // by replica id).
  std::vector<uint8_t> quarantined_;
  // Dense replica-id -> replica lookup (ids are small and dense).
  std::vector<RolloutReplica*> replica_by_id_;
  std::function<void(int, double)> rate_observer_;
  // Windowed decode-efficiency probe state, one slot per replica.
  struct RateProbe {
    bool valid = false;
    SimTime at;
    RolloutReplica::DecodeProbeSample sample;
  };
  std::vector<RateProbe> probes_;
  EventId redirect_retry_event_ = kInvalidEventId;
  int redirect_retry_attempts_ = 0;
  // In-flight machine replacements and stall thaws, keyed by serialized
  // sequence numbers (the pending events carry only the seq).
  std::map<int64_t, ReplacementJob> replacement_jobs_;
  int64_t next_replacement_seq_ = 0;
  std::map<int64_t, std::vector<int>> thaw_jobs_;
  int64_t next_thaw_seq_ = 0;
  // All decision counters live in the registry; hot paths go through cached
  // instrument pointers (stable for the registry's lifetime).
  MetricsRegistry metrics_;
  MetricCounter* ctr_repack_events_;
  MetricCounter* ctr_sources_released_;
  MetricCounter* ctr_trajectories_migrated_;
  MetricCounter* ctr_batches_assigned_;
  MetricCounter* ctr_failures_handled_;
  MetricCounter* ctr_trajectories_redirected_;
  MetricCounter* ctr_slow_events_;
  MetricCounter* ctr_slow_recoveries_;
  MetricCounter* ctr_trajectories_drained_slow_;
  MetricCounter* ctr_redirect_retries_;
  MetricCounter* ctr_trajectories_dropped_;
  MetricCounter* ctr_machine_stalls_;
  SampleSet* repack_overhead_seconds_;
  // Serving tier state (empty/zero when the tier is off).
  std::vector<ServingTicket> serving_tickets_;
  std::deque<TrajectoryWork> serving_backlog_;
  std::unique_ptr<PeriodicTask> serving_tick_;
  MetricCounter* ctr_serving_requests_;
  MetricCounter* ctr_serving_admitted_;
  MetricCounter* ctr_serving_rejected_;
  MetricCounter* ctr_serving_completed_;
  MetricCounter* ctr_serving_timed_out_;
  MetricCounter* ctr_serving_failed_;
  MetricCounter* ctr_serving_deadline_hits_;
  MetricCounter* ctr_serving_deadline_misses_;
  MetricCounter* ctr_serving_rollout_preempted_;
  SampleSet* serving_latency_seconds_;
  bool running_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_ROLLOUT_MANAGER_H_
