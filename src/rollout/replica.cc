#include "src/rollout/replica.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"
#include "src/trace/trace.h"

namespace laminar {

const char* ReplicaPhaseName(ReplicaPhase phase) {
  switch (phase) {
    case ReplicaPhase::kIdle:
      return "idle";
    case ReplicaPhase::kGenerating:
      return "generating";
    case ReplicaPhase::kPaused:
      return "paused";
    case ReplicaPhase::kUpdatingWeights:
      return "updating";
    case ReplicaPhase::kDead:
      return "dead";
  }
  return "?";
}

RolloutReplica::RolloutReplica(Simulator* sim, ReplicaConfig config, DecodeModel decode,
                               double kv_capacity_tokens)
    : sim_(sim), config_(config), decode_(std::move(decode)),
      kv_capacity_tokens_(kv_capacity_tokens) {
  LAMINAR_CHECK_GT(kv_capacity_tokens_, 0.0);
  LAMINAR_CHECK_GT(config_.max_concurrency, 0);
  sim_->continuations().Register(
      ContinuationComponentId(kContFamilyReplica, config_.id), this);
  TouchMetrics();
}

RolloutReplica::~RolloutReplica() {
  sim_->continuations().Unregister(
      ContinuationComponentId(kContFamilyReplica, config_.id));
}

void RolloutReplica::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  switch (kind) {
    case kContAdvance:
      Advance(p.a);
      return;
    case kContEnvRejoin:
      RejoinFromEnv(FindEnvBySeq(static_cast<uint64_t>(p.a)));
      return;
  }
  LAMINAR_CHECK(false) << "unknown replica continuation kind " << kind;
}

void RolloutReplica::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                         SimTime at) {
  int32_t comp = ContinuationComponentId(kContFamilyReplica, config_.id);
  switch (kind) {
    case kContAdvance:
      // The advance metadata (start/steps/latency) was adopted by
      // SnapshotState; only the event itself needs re-seating.
      LAMINAR_CHECK_EQ(p.a, advance_steps_);
      advance_event_ = sim_->ScheduleContinuationAtOn(config_.shard, at, comp, kind, p);
      return;
    case kContEnvRejoin: {
      // The payload carries the env seq — the stable key into env_waiting_
      // (slab handles are NOT stable across a restore: adoption re-inserts
      // the entries). Re-scheduling the identical payload keeps the re-minted
      // heap byte-equal to the blob's event_heap section.
      EnvEntry* entry =
          env_waiting_.Get(FindEnvBySeq(static_cast<uint64_t>(p.a)));
      LAMINAR_CHECK(entry != nullptr)
          << "pending env rejoin for unknown seq " << p.a;
      entry->event = sim_->ScheduleContinuationAtOn(config_.shard, at, comp, kind, p);
      return;
    }
  }
  LAMINAR_CHECK(false) << "replica continuation kind " << kind
                       << " cannot be pending on the heap";
}

void RolloutReplica::TouchMetrics() {
  SimTime now = sim_->Now();
  metrics_.kv_used_tokens.Set(now, kv_used_tokens_);
  metrics_.batch_size.Set(now, static_cast<double>(running_.size()));
  metrics_.busy.Set(now, running_.empty() ? 0.0 : 1.0);
  LAMINAR_TRACE_COUNTER(sim_, TraceComponent::kReplica, "replica/kv_used", config_.id,
                        kv_used_tokens_);
  LAMINAR_TRACE_COUNTER(sim_, TraceComponent::kReplica, "replica/batch_size", config_.id,
                        static_cast<double>(running_.size()));
  // Busy edges become decode_busy spans, emitted retroactively at the falling
  // edge. Edge tracking runs unconditionally so a sink attached later still
  // sees correct begins, and stays out of the integrator state.
  bool busy_now = !running_.empty();
  if (busy_now && !trace_was_busy_) {
    trace_busy_since_ = now;
  } else if (!busy_now && trace_was_busy_) {
    LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kReplica, "replica/decode_busy",
                          config_.id, trace_busy_since_, now);
  }
  trace_was_busy_ = busy_now;
}

void RolloutReplica::AssignWork(std::vector<TrajectoryWork> works, bool kv_transferred) {
  LAMINAR_CHECK(phase_ != ReplicaPhase::kDead) << "assigning work to a dead replica";
  SyncProgress();
  for (TrajectoryWork& w : works) {
    LAMINAR_CHECK(!w.finished());
    LAMINAR_CHECK_GE(w.remaining_in_segment(), 1);
    if (kv_transferred && w.kv_resident) {
      // KV pages stream over RDMA to this replica; decoding stalls for the
      // transfer but no recompute is needed.
      double kv_bytes = static_cast<double>(w.context_tokens) *
                        decode_.model().kv_bytes_per_token();
      pending_stall_seconds_ +=
          config_.migration_fixed_overhead + kv_bytes / config_.kv_transfer_bandwidth;
      ++metrics_.migrations_in;
    } else {
      w.kv_resident = false;  // will re-prefill on admission
    }
    waiting_.push_back(std::move(w));
  }
  if (phase_ == ReplicaPhase::kIdle && busy()) {
    phase_ = ReplicaPhase::kGenerating;
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    TryAdmit();
    ScheduleAdvance();
  }
}

void RolloutReplica::AssignServingWork(std::vector<TrajectoryWork> works) {
  LAMINAR_CHECK(phase_ != ReplicaPhase::kDead) << "serving work on a dead replica";
  SyncProgress();
  // Reverse push_front keeps the caller's order at the head of the queue,
  // ahead of every queued rollout sequence (TryAdmit is front-only).
  for (size_t i = works.size(); i > 0; --i) {
    TrajectoryWork& w = works[i - 1];
    LAMINAR_CHECK(IsServingId(w.record.id));
    LAMINAR_CHECK(!w.finished());
    w.kv_resident = false;  // prefill on admission
    ++num_serving_;
    ++serving_assigned_total_;
    waiting_.push_front(std::move(w));
  }
  if (phase_ == ReplicaPhase::kIdle && busy()) {
    phase_ = ReplicaPhase::kGenerating;
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    TryAdmit();
    ScheduleAdvance();
  }
}

std::vector<TrajectoryWork> RolloutReplica::PreemptRolloutForServing(double needed_tokens) {
  std::vector<TrajectoryWork> evicted;
  if (phase_ == ReplicaPhase::kDead) {
    return evicted;
  }
  SyncProgress();
  size_t scan = running_.size();
  while (scan > 0 && kv_capacity_tokens_ - kv_used_tokens_ < needed_tokens) {
    --scan;
    if (IsServingId(running_[scan].record.id)) {
      continue;  // serving never evicts serving
    }
    TrajectoryWork victim = std::move(running_[scan]);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(scan));
    kv_used_tokens_ -= static_cast<double>(victim.context_tokens);
    victim.kv_resident = false;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/serving_preempt",
                          config_.id, victim.record.id);
    ++metrics_.preemptions;
    evicted.push_back(std::move(victim));
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    ScheduleAdvance();
  }
  TouchMetrics();
  return evicted;
}

std::vector<TrajectoryWork> RolloutReplica::ExtractAllWork() {
  SyncProgress();
  std::vector<TrajectoryWork> out;
  // Serving requests are latency-bound and pinned to their host: they stay
  // resident (running and queued) while every rollout sequence drains. With
  // the tier off this loop is the historical drain-everything path.
  size_t keep = 0;
  for (size_t i = 0; i < running_.size(); ++i) {
    TrajectoryWork& w = running_[i];
    if (IsServingId(w.record.id)) {
      if (keep != i) {
        running_[keep] = std::move(w);
      }
      ++keep;
      continue;
    }
    kv_used_tokens_ -= static_cast<double>(w.context_tokens);
    out.push_back(std::move(w));
  }
  running_.resize(keep);
  // Env-waiting work: the sandbox call outlives the hosting replica (results
  // flow through the manager), so we resolve the interaction here: feedback
  // is appended to the context and the trajectory resumes at its next
  // segment on the destination. Its cached KV on this replica is discarded.
  // Cancellation and resolution both walk admission (seq) order, the old
  // insertion order, so recovery order is unchanged.
  std::vector<EntityHandle> env_handles = EnvHandlesInSeqOrder();
  for (EntityHandle h : env_handles) {
    sim_->Cancel(env_waiting_.Get(h)->event);
  }
  for (EntityHandle h : env_handles) {
    TrajectoryWork w = std::move(env_waiting_.Remove(h).work);
    kv_used_tokens_ -= static_cast<double>(w.context_tokens);
    w.kv_resident = false;
    const TrajectorySegment& seg = w.current_segment();
    w.context_tokens += seg.feedback_tokens;
    w.segment_index += 1;
    w.decoded_in_segment = 0;
    if (w.finished()) {
      CompleteTrajectory(std::move(w));
    } else {
      out.push_back(std::move(w));
    }
  }
  std::deque<TrajectoryWork> kept_waiting;
  for (TrajectoryWork& w : waiting_) {
    if (IsServingId(w.record.id)) {
      kept_waiting.push_back(std::move(w));
    } else {
      out.push_back(std::move(w));
    }
  }
  waiting_ = std::move(kept_waiting);
  metrics_.migrations_out += static_cast<int64_t>(out.size());
  if (num_serving_ == 0) {
    // Everything drained: exact integer-token subtraction above already left
    // zero, but restate it so accumulated prefill debt is also discarded.
    kv_used_tokens_ = 0.0;
    pending_stall_seconds_ = 0.0;
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    if (busy()) {
      TryAdmit();
      ScheduleAdvance();
    } else {
      phase_ = ReplicaPhase::kIdle;
    }
  }
  TouchMetrics();
  return out;
}

void RolloutReplica::SetWeightVersion(int version) {
  LAMINAR_CHECK_GE(version, weight_version_);
  weight_version_ = version;
}

void RolloutReplica::LoadCheckpointVersion(int version) {
  LAMINAR_CHECK(phase_ == ReplicaPhase::kIdle) << "checkpoint load on a busy replica";
  LAMINAR_CHECK_GE(version, 0);
  weight_version_ = version;
}

int64_t RolloutReplica::BeginWeightUpdate() {
  LAMINAR_CHECK(phase_ == ReplicaPhase::kIdle || phase_ == ReplicaPhase::kPaused)
      << "weight update requires a drained or paused replica, was "
      << ReplicaPhaseName(phase_);
  pre_update_phase_ = phase_;
  phase_ = ReplicaPhase::kUpdatingWeights;
  weight_update_begin_ = sim_->Now();
  return ++weight_update_epoch_;
}

bool RolloutReplica::EndWeightUpdate(int64_t epoch, int new_version,
                                     double wait_seconds) {
  // A pull completion can outlive the update it belongs to: the replica died
  // and was revived, or the relay restarted and the pull was re-issued. Such
  // a callback carries a stale epoch and must not touch phase state.
  if (phase_ != ReplicaPhase::kUpdatingWeights || epoch != weight_update_epoch_) {
    return false;
  }
  SetWeightVersion(new_version);
  metrics_.weight_update_wait_seconds += wait_seconds;
  ++metrics_.weight_updates;
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kReplica, "replica/weight_update",
                        config_.id, weight_update_begin_, sim_->Now(), new_version,
                        wait_seconds);
  phase_ = pre_update_phase_;
  if (phase_ == ReplicaPhase::kIdle && busy()) {
    phase_ = ReplicaPhase::kGenerating;
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    TryAdmit();
    ScheduleAdvance();
  }
  return true;
}

void RolloutReplica::AbortWeightUpdate() {
  LAMINAR_CHECK(phase_ == ReplicaPhase::kUpdatingWeights);
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/weight_update_abort",
                        config_.id, weight_version_);
  ++weight_update_epoch_;  // invalidate the in-flight pull completion
  phase_ = pre_update_phase_;
}

void RolloutReplica::Pause() {
  if (phase_ != ReplicaPhase::kGenerating) {
    if (phase_ == ReplicaPhase::kIdle) {
      phase_ = ReplicaPhase::kPaused;
    }
    return;
  }
  SyncProgress();
  phase_ = ReplicaPhase::kPaused;
  TouchMetrics();
}

void RolloutReplica::Resume(int new_version, bool recompute_kv) {
  if (phase_ == ReplicaPhase::kDead) {
    return;
  }
  LAMINAR_CHECK(phase_ == ReplicaPhase::kPaused)
      << "resume from " << ReplicaPhaseName(phase_);
  if (new_version >= 0 && new_version != weight_version_) {
    SetWeightVersion(new_version);
    // Partial rollout: every open trajectory continues under the new policy.
    auto stamp = [new_version](TrajectoryWork& w) {
      if (!w.record.weight_versions.empty() &&
          w.record.weight_versions.back() != new_version) {
        w.record.weight_versions.push_back(new_version);
      }
    };
    for (auto& w : running_) {
      stamp(w);
    }
    env_waiting_.ForEach([&stamp](EntityHandle, EnvEntry& e) { stamp(e.work); });
    if (recompute_kv) {
      // The cache holds activations of the *old* weights; every resident
      // context must be re-prefilled (the paper's partial-rollout overhead).
      // Context counts are integers below 2^53, so this double sum is exact
      // and independent of traversal order.
      double recompute_tokens = 0.0;
      for (const auto& w : running_) {
        recompute_tokens += static_cast<double>(w.context_tokens);
      }
      env_waiting_.ForEach([&recompute_tokens](EntityHandle, const EnvEntry& e) {
        recompute_tokens += static_cast<double>(e.work.context_tokens);
      });
      pending_stall_seconds_ += decode_.PrefillLatency(recompute_tokens) / speed_factor_;
      metrics_.prefill_tokens += static_cast<int64_t>(recompute_tokens);
    }
  }
  phase_ = busy() ? ReplicaPhase::kGenerating : ReplicaPhase::kIdle;
  if (phase_ == ReplicaPhase::kGenerating) {
    TryAdmit();
    ScheduleAdvance();
  }
}

std::vector<TrajectoryWork> RolloutReplica::Kill() {
  CancelAdvance();
  for (EntityHandle h : EnvHandlesInSeqOrder()) {
    sim_->Cancel(env_waiting_.Get(h)->event);
  }
  // Running and env-waiting work streamed checkpoints to the partial pool at
  // admission, so the manager recovers those via TakeByReplica. Queued work
  // may never have been admitted anywhere; hand it back so the caller can
  // account for it explicitly instead of losing it silently.
  std::vector<TrajectoryWork> discarded;
  discarded.reserve(waiting_.size());
  for (TrajectoryWork& w : waiting_) {
    w.kv_resident = false;
    discarded.push_back(std::move(w));
  }
  running_.clear();
  waiting_.clear();
  env_waiting_.Clear();
  num_serving_ = 0;  // resident serving requests die with the machine
  kv_used_tokens_ = 0.0;
  pending_stall_seconds_ = 0.0;
  phase_ = ReplicaPhase::kDead;
  TouchMetrics();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/kill", config_.id,
                        static_cast<int64_t>(discarded.size()));
  return discarded;
}

void RolloutReplica::Revive() {
  LAMINAR_CHECK(phase_ == ReplicaPhase::kDead);
  phase_ = ReplicaPhase::kIdle;
  speed_factor_ = 1.0;  // a replacement machine starts healthy
  TouchMetrics();
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/revive", config_.id,
                        weight_version_);
}

void RolloutReplica::SetSpeedFactor(double factor) {
  LAMINAR_CHECK(factor > 0.0 && factor <= 1.0) << "speed factor " << factor;
  if (factor == speed_factor_ || phase_ == ReplicaPhase::kDead) {
    return;
  }
  // Credit progress made at the old speed, then re-plan the advance at the
  // new one. ScheduleAdvance() reads speed_factor_ for both the step latency
  // and any carried-over prefill debt.
  SyncProgress();
  speed_factor_ = factor;
  if (phase_ == ReplicaPhase::kGenerating) {
    ScheduleAdvance();
  }
}

double RolloutReplica::ResidentKvTokens() const {
  double total = 0.0;
  for (const TrajectoryWork& w : running_) {
    total += static_cast<double>(w.context_tokens);
  }
  env_waiting_.ForEach([&total](EntityHandle, const EnvEntry& e) {
    if (e.work.kv_resident) {
      total += static_cast<double>(e.work.context_tokens);
    }
  });
  return total;
}

std::vector<EntityHandle> RolloutReplica::EnvHandlesInSeqOrder() const {
  std::vector<EntityHandle> handles;
  handles.reserve(env_waiting_.size());
  env_waiting_.ForEach(
      [&handles](EntityHandle h, const EnvEntry&) { handles.push_back(h); });
  std::sort(handles.begin(), handles.end(),
            [this](EntityHandle a, EntityHandle b) {
              return env_waiting_.Get(a)->seq < env_waiting_.Get(b)->seq;
            });
  return handles;
}

EntityHandle RolloutReplica::FindEnvBySeq(uint64_t seq) const {
  // Linear scan over trajectories currently out on env calls. Rejoins fire
  // once per sandbox round-trip — orders of magnitude rarer than decode
  // steps — so the stable-key lookup costs nothing measurable, and the
  // payload stays reconstructible (DESIGN.md §13).
  EntityHandle found;
  bool hit = false;
  env_waiting_.ForEach([&](EntityHandle h, const EnvEntry& e) {
    if (e.seq == seq) {
      found = h;
      hit = true;
    }
  });
  LAMINAR_CHECK(hit) << "env rejoin for unknown seq " << seq;
  return found;
}

int64_t RolloutReplica::ObservedDecodeTokens() const {
  return ObservedDecodeProbe().tokens;
}

RolloutReplica::DecodeProbeSample RolloutReplica::ObservedDecodeProbe() const {
  DecodeProbeSample s;
  s.busy_seconds = decode_busy_seconds_;
  s.request_seconds = decode_request_seconds_;
  s.ctx_request_seconds = decode_ctx_request_seconds_;
  s.tokens = metrics_.decode_tokens;
  if (advance_event_ != kInvalidEventId) {
    double decode_elapsed = (sim_->Now() - advance_start_) - advance_stall_;
    if (decode_elapsed > 0.0 && advance_step_latency_ > 0.0) {
      int64_t done =
          static_cast<int64_t>(std::floor(decode_elapsed / advance_step_latency_));
      done = std::min(done, advance_steps_);
      if (done > 0) {
        double batch = static_cast<double>(running_.size());
        double busy = static_cast<double>(done) * advance_step_latency_;
        s.busy_seconds += busy;
        s.request_seconds += busy * batch;
        s.ctx_request_seconds += busy * batch * advance_avg_ctx_;
        s.tokens += done * static_cast<int64_t>(running_.size());
      }
    }
  }
  return s;
}

ReplicaSnapshot RolloutReplica::Snapshot() const {
  ReplicaSnapshot snap;
  snap.replica_id = config_.id;
  snap.weight_version = weight_version_;
  snap.kv_used_frac = kv_used_frac();
  snap.num_reqs = num_reqs();
  snap.num_waiting = static_cast<int>(waiting_.size());
  snap.busy = busy();
  snap.eligible = phase_ == ReplicaPhase::kGenerating;
  return snap;
}

void RolloutReplica::CreditDecodeProbe(int64_t steps, int64_t batch) {
  double busy = static_cast<double>(steps) * advance_step_latency_;
  decode_busy_seconds_ += busy;
  decode_request_seconds_ += busy * static_cast<double>(batch);
  decode_ctx_request_seconds_ += busy * static_cast<double>(batch) * advance_avg_ctx_;
}

void RolloutReplica::CancelAdvance() {
  if (advance_event_ != kInvalidEventId) {
    sim_->Cancel(advance_event_);
    advance_event_ = kInvalidEventId;
  }
}

void RolloutReplica::SyncProgress() {
  if (advance_event_ == kInvalidEventId) {
    return;
  }
  double elapsed = sim_->Now() - advance_start_;
  double decode_elapsed = elapsed - advance_stall_;
  int64_t done = 0;
  if (decode_elapsed > 0.0 && advance_step_latency_ > 0.0) {
    done = static_cast<int64_t>(std::floor(decode_elapsed / advance_step_latency_));
    // Boundaries are handled only by Advance(); stay strictly before them.
    done = std::min(done, advance_steps_ - 1);
    done = std::max<int64_t>(done, 0);
  }
  if (done > 0) {
    int64_t batch = static_cast<int64_t>(running_.size());
    for (TrajectoryWork& w : running_) {
      w.decoded_in_segment += done;
      w.context_tokens += done;
    }
    kv_used_tokens_ += static_cast<double>(batch * done);
    metrics_.decode_tokens += batch * done;
    CreditDecodeProbe(done, batch);
  }
  // Unconsumed prefill debt carries over to the next schedule.
  pending_stall_seconds_ += std::max(0.0, advance_stall_ - std::max(elapsed, 0.0));
  CancelAdvance();
}

void RolloutReplica::ScheduleAdvance() {
  if (phase_ != ReplicaPhase::kGenerating) {
    return;
  }
  SyncProgress();
  if (running_.empty()) {
    TryAdmit();
    if (running_.empty()) {
      TouchMetrics();
      return;  // everything is env-waiting or the replica drained
    }
  }
  PreemptForHeadroom();
  if (running_.empty()) {
    TouchMetrics();
    return;
  }
  int batch = static_cast<int>(running_.size());
  // Integer accumulation: context counts stay below 2^53, so this equals the
  // old double-by-double sum bit-for-bit while keeping the loop integer-only.
  int64_t total_ctx = 0;
  int64_t min_remaining = INT64_MAX;
  for (const TrajectoryWork& w : running_) {
    total_ctx += w.context_tokens;
    min_remaining = std::min(min_remaining, w.remaining_in_segment());
  }
  LAMINAR_CHECK_GE(min_remaining, 1);
  double avg_ctx = static_cast<double>(total_ctx) / batch;
  double step_latency = decode_.StepLatency(batch, avg_ctx) / speed_factor_;
  int64_t kv_steps = static_cast<int64_t>(
      std::floor((kv_capacity_tokens_ - kv_used_tokens_) / batch));
  kv_steps = std::max<int64_t>(kv_steps, 1);  // headroom guaranteed by preemption
  int64_t steps =
      std::min({min_remaining, kv_steps, config_.max_steps_per_advance});
  double duration = pending_stall_seconds_ + static_cast<double>(steps) * step_latency;
  advance_start_ = sim_->Now();
  advance_steps_ = steps;
  advance_step_latency_ = step_latency;
  advance_avg_ctx_ = avg_ctx;
  advance_stall_ = pending_stall_seconds_;
  pending_stall_seconds_ = 0.0;
  TouchMetrics();
  advance_event_ = sim_->ScheduleContinuationAfterOn(
      config_.shard, duration, ContinuationComponentId(kContFamilyReplica, config_.id),
      kContAdvance, ContinuationPayload::Of(steps));
}

void RolloutReplica::PreemptForHeadroom() {
  // Keep enough free cache for every running sequence to take a burst of
  // steps; evicting the most recently admitted sequence frees its context
  // (it will re-prefill once space reappears). Serving requests are skipped
  // while any rollout sequence remains — the tier's KV priority.
  while (!running_.empty() &&
         kv_capacity_tokens_ - kv_used_tokens_ <
             static_cast<double>(running_.size() * config_.kv_preempt_headroom_steps)) {
    size_t victim_idx = running_.size() - 1;
    if (num_serving_ > 0) {
      size_t i = running_.size();
      while (i > 0 && IsServingId(running_[i - 1].record.id)) {
        --i;
      }
      if (i > 0) {
        victim_idx = i - 1;
      }
    }
    TrajectoryWork victim = std::move(running_[victim_idx]);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(victim_idx));
    kv_used_tokens_ -= static_cast<double>(victim.context_tokens);
    victim.kv_resident = false;
    LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/preempt", config_.id,
                          victim.record.id);
    waiting_.push_front(std::move(victim));
    ++metrics_.preemptions;
  }
}

void RolloutReplica::TryAdmit() {
  double admit_limit = kv_capacity_tokens_ * (1.0 - config_.admit_headroom_frac);
  while (!waiting_.empty()) {
    int active = static_cast<int>(running_.size() + env_waiting_.size());
    if (active >= config_.max_concurrency) {
      break;
    }
    TrajectoryWork& front = waiting_.front();
    double needed = static_cast<double>(front.context_tokens);
    double growth_reserve = static_cast<double>(
        (static_cast<int64_t>(running_.size()) + 1) * config_.kv_growth_reserve_steps);
    if (kv_used_tokens_ + needed + growth_reserve > admit_limit) {
      break;
    }
    TrajectoryWork w = std::move(front);
    waiting_.pop_front();
    if (!w.kv_resident) {
      pending_stall_seconds_ +=
          decode_.PrefillLatency(static_cast<double>(w.context_tokens)) / speed_factor_;
      metrics_.prefill_tokens += w.context_tokens;
      w.kv_resident = true;
    }
    kv_used_tokens_ += static_cast<double>(w.context_tokens);
    if (w.record.weight_versions.empty()) {
      w.record.weight_versions.push_back(weight_version_);
    }
    if (on_progress_) {
      on_progress_(w, config_.id);
    }
    running_.push_back(std::move(w));
  }
}

void RolloutReplica::Advance(int64_t steps) {
  advance_event_ = kInvalidEventId;
  LAMINAR_CHECK(!running_.empty());
  int64_t batch = static_cast<int64_t>(running_.size());
  for (TrajectoryWork& w : running_) {
    w.decoded_in_segment += steps;
    w.context_tokens += steps;
  }
  kv_used_tokens_ += static_cast<double>(batch * steps);
  metrics_.decode_tokens += batch * steps;
  CreditDecodeProbe(steps, batch);

  // Split out the sequences that hit their segment boundary: stable in-place
  // compaction of the survivors (same relative order as the old two-vector
  // split, without reallocating the batch every advance).
  boundary_scratch_.clear();
  size_t write = 0;
  for (size_t read = 0; read < running_.size(); ++read) {
    TrajectoryWork& w = running_[read];
    if (w.remaining_in_segment() <= 0) {
      boundary_scratch_.push_back(std::move(w));
    } else {
      if (write != read) {
        running_[write] = std::move(w);
      }
      ++write;
    }
  }
  running_.resize(write);
  for (TrajectoryWork& w : boundary_scratch_) {
    FinishSegment(std::move(w));
  }
  boundary_scratch_.clear();
  TryAdmit();
  ScheduleAdvance();
  CheckBatchDone();
}

void RolloutReplica::FinishSegment(TrajectoryWork work) {
  const TrajectorySegment& seg = work.current_segment();
  if (seg.env_latency > 0.0) {
    // Trajectory leaves the decode batch for its sandbox call; the KV pages
    // stay resident so no recompute is needed on rejoin. The rejoin event
    // captures the slab handle, so no id search is needed when it fires.
    if (on_progress_) {
      on_progress_(work, config_.id);
    }
    EnvEntry entry;
    entry.work = std::move(work);
    entry.at = sim_->Now() + seg.env_latency;
    entry.seq = ++env_seq_;
    EntityHandle handle = env_waiting_.Insert(std::move(entry));
    EnvEntry* stored = env_waiting_.Get(handle);
    // The event payload names the entry by seq, not by slab handle: the seq
    // is stable across snapshot adoption (handles are a memory-layout
    // artifact), so the descriptor serializes and re-mints byte-exactly.
    stored->event = sim_->ScheduleContinuationAtOn(
        config_.shard, stored->at,
        ContinuationComponentId(kContFamilyReplica, config_.id), kContEnvRejoin,
        ContinuationPayload::Of(static_cast<int64_t>(stored->seq)));
    return;
  }
  work.segment_index += 1;
  work.decoded_in_segment = 0;
  if (work.finished()) {
    CompleteTrajectory(std::move(work));
  } else {
    running_.push_back(std::move(work));
  }
}

void RolloutReplica::RejoinFromEnv(EntityHandle handle) {
  SyncProgress();
  LAMINAR_CHECK(env_waiting_.Contains(handle)) << "env rejoin with a stale handle";
  TrajectoryWork work = std::move(env_waiting_.Remove(handle).work);
  const TrajectorySegment& seg = work.current_segment();
  // Sandbox output becomes new context: it occupies KV and must be prefilled.
  work.context_tokens += seg.feedback_tokens;
  if (work.kv_resident) {
    kv_used_tokens_ += static_cast<double>(seg.feedback_tokens);
  }
  pending_stall_seconds_ +=
      decode_.PrefillLatency(static_cast<double>(seg.feedback_tokens)) / speed_factor_;
  metrics_.prefill_tokens += seg.feedback_tokens;
  work.segment_index += 1;
  work.decoded_in_segment = 0;
  if (work.finished()) {
    CompleteTrajectory(std::move(work));
  } else if (work.kv_resident) {
    running_.push_back(std::move(work));
  } else {
    waiting_.push_front(std::move(work));
  }
  if (phase_ == ReplicaPhase::kGenerating) {
    TryAdmit();
    ScheduleAdvance();
  }
  CheckBatchDone();
}

void RolloutReplica::CompleteTrajectory(TrajectoryWork work) {
  if (work.kv_resident) {
    kv_used_tokens_ -= static_cast<double>(work.context_tokens);
  }
  if (IsServingId(work.record.id)) {
    --num_serving_;
  }
  work.record.finished = sim_->Now();
  ++metrics_.completed_trajectories;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kReplica, "replica/traj_complete",
                        config_.id, work.record.id,
                        static_cast<double>(work.record.total_tokens()));
  if (on_complete_) {
    on_complete_(std::move(work.record));
  }
}

void RolloutReplica::CheckBatchDone() {
  if (phase_ == ReplicaPhase::kGenerating && !busy()) {
    phase_ = ReplicaPhase::kIdle;
    TouchMetrics();
    if (on_batch_done_) {
      on_batch_done_(this);
    }
  }
}

void RolloutReplica::SnapshotState(SnapshotTx& tx) {
  tx.Begin("replica");
  tx.DigestI64("id", config_.id);
  tx.U64As("phase", &phase_);
  tx.U64As("pre_update_phase", &pre_update_phase_);
  tx.I64As("weight_version", &weight_version_);
  tx.I64As("weight_update_epoch", &weight_update_epoch_);
  tx.F64("speed_factor", &speed_factor_);
  tx.F64("kv_used_tokens", &kv_used_tokens_);
  tx.F64("pending_stall_seconds", &pending_stall_seconds_);
  tx.U64As("env_seq", &env_seq_);
  // The three work queues in behavior-defining order: running and waiting in
  // container order, env-waiting in admission (seq) order. Adoption rebuilds
  // the env slab; pending rejoin events re-resolve their handles through
  // RestoreContinuation.
  SnapshotPacked(
      tx, "queues",
      [this](ByteSink& s) {
        s.U64(running_.size());
        for (const TrajectoryWork& w : running_) {
          PackWork(s, w);
        }
        s.U64(waiting_.size());
        for (const TrajectoryWork& w : waiting_) {
          PackWork(s, w);
        }
        s.U64(env_waiting_.size());
        for (EntityHandle h : EnvHandlesInSeqOrder()) {
          const EnvEntry* e = env_waiting_.Get(h);
          PackWork(s, e->work);
          s.Time(e->at);
          s.U64(e->seq);
        }
      },
      [this](ByteSource& s) {
        running_.clear();
        uint64_t num_running = s.U64();
        running_.reserve(static_cast<size_t>(num_running));
        for (uint64_t i = 0; i < num_running; ++i) {
          running_.push_back(UnpackWork(s));
        }
        waiting_.clear();
        for (uint64_t i = 0, n = s.U64(); i < n; ++i) {
          waiting_.push_back(UnpackWork(s));
        }
        env_waiting_.Clear();
        uint64_t num_env = s.U64();
        env_waiting_.Reserve(static_cast<size_t>(num_env));
        for (uint64_t i = 0; i < num_env; ++i) {
          EnvEntry e;
          e.work = UnpackWork(s);
          e.at = s.Time();
          e.seq = s.U64();
          env_waiting_.Insert(std::move(e));
        }
      });
  // In-flight advance metadata for partial-progress crediting; the event
  // itself is re-minted from the event_heap section.
  SnapshotPacked(
      tx, "advance",
      [this](ByteSink& s) {
        s.Time(advance_start_);
        s.I64(advance_steps_);
        s.F64(advance_step_latency_);
        s.F64(advance_stall_);
        s.F64(advance_avg_ctx_);
        s.Time(weight_update_begin_);
        s.Time(trace_busy_since_);
        s.Bool(trace_was_busy_);
      },
      [this](ByteSource& s) {
        advance_start_ = s.Time();
        advance_steps_ = s.I64();
        advance_step_latency_ = s.F64();
        advance_stall_ = s.F64();
        advance_avg_ctx_ = s.F64();
        weight_update_begin_ = s.Time();
        trace_busy_since_ = s.Time();
        trace_was_busy_ = s.Bool();
        advance_event_ = kInvalidEventId;  // re-seated by RestoreContinuation
      });
  tx.F64("decode_busy_seconds", &decode_busy_seconds_);
  tx.F64("decode_request_seconds", &decode_request_seconds_);
  tx.F64("decode_ctx_request_seconds", &decode_ctx_request_seconds_);
  tx.Begin("kv_integrator");
  metrics_.kv_used_tokens.Snapshot(tx);
  tx.End();
  tx.Begin("batch_integrator");
  metrics_.batch_size.Snapshot(tx);
  tx.End();
  tx.Begin("busy_integrator");
  metrics_.busy.Snapshot(tx);
  tx.End();
  tx.I64As("decode_tokens", &metrics_.decode_tokens);
  tx.I64As("prefill_tokens", &metrics_.prefill_tokens);
  tx.I64As("completed_trajectories", &metrics_.completed_trajectories);
  tx.I64As("preemptions", &metrics_.preemptions);
  tx.I64As("migrations_in", &metrics_.migrations_in);
  tx.I64As("migrations_out", &metrics_.migrations_out);
  tx.F64("weight_update_wait", &metrics_.weight_update_wait_seconds);
  tx.I64As("weight_updates", &metrics_.weight_updates);
  tx.I64As("serving_active", &num_serving_);
  tx.I64As("serving_assigned_total", &serving_assigned_total_);
  tx.End();
}

}  // namespace laminar
