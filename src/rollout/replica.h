// Rollout replica: an event-driven continuous-batching generation engine.
//
// The replica models a vLLM-style server occupying `tensor_parallel` GPUs.
// It maintains a decode batch of running trajectories, a queue of admitted
// but not-yet-cached trajectories, and a set of trajectories blocked on
// environment calls. Decoding advances in analytic jumps: between batch
// membership changes, per-step latency is constant, so the engine skips the
// clock straight to the next boundary (trajectory segment end, KVCache
// exhaustion, or a step cap that bounds interpolation error).
//
// KVCache accounting follows the paper's Figure 9 lifecycle: admissions fill
// the cache to ~C_max, waiting trajectories backfill freed space, and only
// when the waiting queue drains does utilization ramp down — the signal the
// repack monitor keys on.
#ifndef LAMINAR_SRC_ROLLOUT_REPLICA_H_
#define LAMINAR_SRC_ROLLOUT_REPLICA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/entity_table.h"
#include "src/common/stats.h"
#include "src/data/trajectory.h"
#include "src/llm/decode_model.h"
#include "src/repack/snapshot.h"
#include "src/sim/simulator.h"

namespace laminar {

class SnapshotTx;

enum class ReplicaPhase {
  kIdle,            // no work assigned
  kGenerating,      // actively decoding / waiting on env
  kPaused,          // stopped for a global sync (baseline systems)
  kUpdatingWeights, // pulling new weights from the relay / sync source
  kDead,            // machine failed
};

const char* ReplicaPhaseName(ReplicaPhase phase);

struct ReplicaConfig {
  int id = 0;
  int machine = 0;  // hosting machine == relay index
  // Event-queue shard (simulator lane) this replica's self-scheduled events
  // run on. 0 = the control lane (unsharded runs); sharded drivers assign
  // replicas of one machine to one lane so their events parallelize.
  int shard = 0;
  // Maximum trajectories resident at once (paper's per-rollout concurrency).
  int max_concurrency = 1024;
  // Fraction of KVCache kept free when admitting new trajectories.
  double admit_headroom_frac = 0.01;
  // Admission additionally reserves this many decode steps of growth for
  // every running sequence, so admitted batches can run for a while before
  // the cache fills (hysteresis against preemption thrash).
  int64_t kv_growth_reserve_steps = 384;
  // When free cache falls below this many steps of growth, preempt until it
  // does not (recompute-style preemption, as in vLLM).
  int64_t kv_preempt_headroom_steps = 16;
  // Interpolation cap: an advance never covers more decode steps than this,
  // bounding how stale the KV/progress accounting can get between events.
  int64_t max_steps_per_advance = 256;
  // Per-trajectory RDMA KV-transfer coordination cost during repack, seconds.
  double migration_fixed_overhead = 0.02;
  // RDMA bandwidth used to move KV pages during repack migration.
  double kv_transfer_bandwidth = 50.0e9;
};

struct ReplicaMetrics {
  StepIntegrator kv_used_tokens;
  StepIntegrator batch_size;
  StepIntegrator busy;  // 1 when the decode batch is non-empty
  int64_t decode_tokens = 0;
  int64_t prefill_tokens = 0;
  int64_t completed_trajectories = 0;
  int64_t preemptions = 0;
  int64_t migrations_in = 0;
  int64_t migrations_out = 0;
  double weight_update_wait_seconds = 0.0;
  int weight_updates = 0;
};

class RolloutReplica : public ContinuationClient {
 public:
  // Continuation kinds for the replica's pending events (DESIGN.md §13).
  // Component id is (kContFamilyReplica, replica id).
  enum Continuation : uint16_t {
    kContAdvance = 0,    // decode advance completes: {a=steps}
    kContEnvRejoin = 1,  // env call returns: {a=env seq}
  };

  // Fired when one trajectory finishes generation.
  using CompletionCallback = std::function<void(TrajectoryRecord record)>;
  // Fired when the replica drains all assigned work.
  using BatchDoneCallback = std::function<void(RolloutReplica* replica)>;
  // Streamed in-progress state, for the partial-response pool.
  using ProgressCallback = std::function<void(const TrajectoryWork& work, int replica_id)>;

  RolloutReplica(Simulator* sim, ReplicaConfig config, DecodeModel decode,
                 double kv_capacity_tokens);
  ~RolloutReplica() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }
  void set_on_batch_done(BatchDoneCallback cb) { on_batch_done_ = std::move(cb); }
  void set_on_progress(ProgressCallback cb) { on_progress_ = std::move(cb); }

  // Work assignment ---------------------------------------------------------
  // Queues fresh or redirected work. Fresh records are stamped with the
  // replica's current weight version. `kv_transferred` marks repack
  // migrations whose KV pages are copied over RDMA (no recompute); work that
  // lost its cache (failure redirect, preemption elsewhere) re-prefills.
  void AssignWork(std::vector<TrajectoryWork> works, bool kv_transferred = false);

  // Online serving admission (DESIGN.md §14): queues serving requests (ids in
  // the kServingIdBase range, single decode segment) at the *front* of the
  // waiting queue, ahead of every queued rollout sequence. Serving work never
  // leaves via ExtractAllWork and is never chosen as a headroom-preemption
  // victim while rollout work remains.
  void AssignServingWork(std::vector<TrajectoryWork> works);

  // Evicts rollout sequences from the decode batch (most recent first,
  // skipping serving work) until at least `needed_tokens` of KVCache is free
  // or no rollout sequence remains. Evicted work loses residency (it will
  // re-prefill wherever it lands) and is returned for the manager to park in
  // the partial-response pool — the same recovery path machine loss uses.
  std::vector<TrajectoryWork> PreemptRolloutForServing(double needed_tokens);

  // Removes and returns every in-flight trajectory (running, env-waiting and
  // queued), e.g. when this replica is chosen as a repack source. KV
  // residency flags are preserved so the caller can decide transfer vs
  // recompute semantics.
  std::vector<TrajectoryWork> ExtractAllWork();

  // Weights ------------------------------------------------------------------
  int weight_version() const { return weight_version_; }
  void SetWeightVersion(int version);
  // Loads an arbitrary (possibly older) checkpointed version — used when a
  // replacement replica must finish trajectories started under an old policy
  // (paper §3.3: "loading specific weight versions from actor checkpointing
  // files"). Only valid on an idle replica.
  void LoadCheckpointVersion(int version);
  // Marks the replica as performing a weight update; generation must be
  // drained or paused. Returns an epoch token identifying this update:
  // EndWeightUpdate() restores the previous phase only when handed the
  // current epoch, so a stale pull completion — e.g. a relay waiter that
  // outlived a crash and revival — is ignored instead of corrupting state.
  int64_t BeginWeightUpdate();
  // Returns false (and changes nothing) if `epoch` is stale or the replica
  // left the updating phase meanwhile (crash, abort).
  bool EndWeightUpdate(int64_t epoch, int new_version, double wait_seconds);
  // Cancels an in-progress weight update (the relay died mid-pull) and
  // restores the previous phase; the caller re-issues the pull later.
  void AbortWeightUpdate();

  // Global-sync baselines -----------------------------------------------------
  // Stops decoding (keeps state). Used at global synchronization points.
  void Pause();
  // Resumes decoding. If `new_version` >= 0, in-flight trajectories continue
  // under the new weights (partial rollout): each open trajectory gains a
  // version entry and, if `recompute_kv`, its whole context is re-prefilled
  // (the KVCache recomputation overhead the paper charges to AReaL).
  void Resume(int new_version = -1, bool recompute_kv = false);

  // Faults --------------------------------------------------------------------
  // Machine failure: loses all in-flight work and cache. Returns the work
  // items that were still queued for admission and therefore never streamed
  // a checkpoint to the partial-response pool — the caller must decide their
  // fate explicitly (redirect a pooled copy, or mark them dropped); admitted
  // work is recovered from the pool as before.
  std::vector<TrajectoryWork> Kill();
  void Revive();  // replacement machine initialized

  // Gray failure (fail-slow): scales decode and prefill throughput by
  // `factor` in (0, 1]. 1.0 restores full speed. The in-flight advance is
  // re-planned at the new speed; already-elapsed progress is kept.
  void SetSpeedFactor(double factor);
  double speed_factor() const { return speed_factor_; }

  // Introspection ---------------------------------------------------------------
  ReplicaPhase phase() const { return phase_; }
  bool busy() const { return !running_.empty() || !waiting_.empty() || !env_waiting_.empty(); }
  int num_reqs() const {
    return static_cast<int>(running_.size() + waiting_.size() + env_waiting_.size());
  }
  // Resident serving requests (subset of num_reqs; 0 when the tier is off).
  int num_serving() const { return num_serving_; }
  double kv_used_tokens() const { return kv_used_tokens_; }
  double kv_capacity_tokens() const { return kv_capacity_tokens_; }
  double kv_used_frac() const { return kv_used_tokens_ / kv_capacity_tokens_; }
  // Token-accounting cross-check for the invariant checker: the context
  // tokens of every cache-resident trajectory (the whole decode batch plus
  // env-waiting work that kept its pages). Queued work never counts, even
  // when flagged kv_resident for an in-flight migration — its pages are
  // charged at admission.
  double ResidentKvTokens() const;
  ReplicaSnapshot Snapshot() const;
  const ReplicaConfig& config() const { return config_; }
  const DecodeModel& decode_model() const { return decode_; }
  const ReplicaMetrics& metrics() const { return metrics_; }
  int64_t total_tokens_generated() const {
    return metrics_.decode_tokens;
  }
  // Decode tokens including the in-flight advance's elapsed fraction — a
  // smooth, read-only counter for windowed throughput probes (the committed
  // `decode_tokens` metric only moves in advance-sized jumps).
  int64_t ObservedDecodeTokens() const;

  // Decode-only activity sample for the gray-failure probe. All fields are
  // monotone accumulators over time actually spent in decode steps — prefill
  // stalls, env waits and pauses contribute nothing, so windowed deltas stay
  // clean of batch-boundary bursts:
  //   busy_seconds        Σ steps × actual step latency
  //   request_seconds     Σ steps × actual step latency × batch
  //   ctx_request_seconds request_seconds weighted by the advance's avg ctx
  //   tokens              decode tokens (== ObservedDecodeTokens())
  // Observed per-request throughput (tokens / request_seconds) times the
  // modeled step latency at (request_seconds / busy_seconds,
  // ctx_request_seconds / request_seconds) is ~1.0 for a healthy replica and
  // ~speed_factor for a fail-slow one, regardless of batch shape.
  struct DecodeProbeSample {
    double busy_seconds = 0.0;
    double request_seconds = 0.0;
    double ctx_request_seconds = 0.0;
    int64_t tokens = 0;
  };
  DecodeProbeSample ObservedDecodeProbe() const;

  // Snapshot witness (src/snapshot, DESIGN.md §13): phase, weights, KV
  // accounting, the three work queues (fully serialized in behavior-defining
  // order) and the committed metrics — all adoptable, so a direct boot
  // re-seats the decode batch exactly. Pending advance/rejoin events are
  // re-minted from the simulator's event_heap section, not from here. Named
  // SnapshotState because Snapshot() is taken by the repack-facing
  // ReplicaSnapshot.
  void SnapshotState(SnapshotTx& tx);

 private:
  void ScheduleAdvance();
  void CreditDecodeProbe(int64_t steps, int64_t batch);
  void CancelAdvance();
  // Credits decode steps already performed by the in-flight advance (if any)
  // and cancels it. Must precede any mutation of the batch state.
  void SyncProgress();
  void Advance(int64_t steps);
  void TryAdmit();
  void PreemptForHeadroom();
  void FinishSegment(TrajectoryWork work);
  void RejoinFromEnv(EntityHandle handle);
  void CompleteTrajectory(TrajectoryWork work);
  void CheckBatchDone();
  void TouchMetrics();

  Simulator* sim_;
  ReplicaConfig config_;
  DecodeModel decode_;
  double kv_capacity_tokens_;

  ReplicaPhase phase_ = ReplicaPhase::kIdle;
  ReplicaPhase pre_update_phase_ = ReplicaPhase::kIdle;
  // Bumped by BeginWeightUpdate/AbortWeightUpdate; EndWeightUpdate only takes
  // effect when handed the current value (stale relay waiters are dropped).
  int64_t weight_update_epoch_ = 0;
  int weight_version_ = 0;
  // Gray-failure throughput multiplier: effective step/prefill latency is
  // the model latency divided by this.
  double speed_factor_ = 1.0;

  // One trajectory blocked on a sandbox/env call. Entries live in a
  // generation-tagged slab; the pending rejoin event names its entry by
  // `seq` — the stable admission-order key that survives snapshot adoption
  // (slab handles are a memory-layout artifact and do not). `seq` also
  // orders the rare drain paths (ExtractAllWork, Kill) whose processing
  // order must match the old insertion-ordered list.
  struct EnvEntry {
    TrajectoryWork work;
    EventId event = kInvalidEventId;
    SimTime at;
    uint64_t seq = 0;
  };

  // Live env entries sorted by seq — the old insertion order.
  std::vector<EntityHandle> EnvHandlesInSeqOrder() const;
  // Resolves a rejoin payload's seq to the live slab handle (CHECKs on miss).
  EntityHandle FindEnvBySeq(uint64_t seq) const;

  std::vector<TrajectoryWork> running_;
  std::deque<TrajectoryWork> waiting_;
  EntityTable<EnvEntry> env_waiting_;
  uint64_t env_seq_ = 0;
  // Serving requests currently resident (running_ + waiting_) and the
  // lifetime assignment count (gates the snapshot fields so serving-off blobs
  // keep their historical layout).
  int num_serving_ = 0;
  int64_t serving_assigned_total_ = 0;
  // Reused by Advance() for the segment-boundary partition (no steady-state
  // allocation in the hot loop).
  std::vector<TrajectoryWork> boundary_scratch_;

  double kv_used_tokens_ = 0.0;
  // Prefill/KV-transfer work that must complete before decoding resumes;
  // consumed by the next scheduled advance.
  double pending_stall_seconds_ = 0.0;

  EventId advance_event_ = kInvalidEventId;
  // Metadata of the in-flight advance, for partial-progress crediting.
  SimTime advance_start_;
  int64_t advance_steps_ = 0;
  double advance_step_latency_ = 0.0;
  double advance_stall_ = 0.0;
  double advance_avg_ctx_ = 0.0;

  // Trace state: begin timestamps for retroactively emitted spans.
  SimTime weight_update_begin_;
  SimTime trace_busy_since_;
  bool trace_was_busy_ = false;

  // Committed decode-probe accumulators (see DecodeProbeSample); every decode
  // step is credited exactly once, by SyncProgress() or Advance().
  double decode_busy_seconds_ = 0.0;
  double decode_request_seconds_ = 0.0;
  double decode_ctx_request_seconds_ = 0.0;

  ReplicaMetrics metrics_;

  CompletionCallback on_complete_;
  BatchDoneCallback on_batch_done_;
  ProgressCallback on_progress_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_ROLLOUT_REPLICA_H_
