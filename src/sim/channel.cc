#include "src/sim/channel.h"

#include <algorithm>

#include "src/common/logging.h"

namespace laminar {

SerialChannel::SerialChannel(double bandwidth_bytes_per_sec, double latency_seconds)
    : bandwidth_(bandwidth_bytes_per_sec), latency_(latency_seconds) {
  LAMINAR_CHECK_GT(bandwidth_, 0.0);
  LAMINAR_CHECK_GE(latency_, 0.0);
}

SimTime SerialChannel::Transfer(SimTime now, double bytes) {
  LAMINAR_CHECK_GE(bytes, 0.0);
  SimTime start = std::max(now, available_at_);
  double duration = IdealDuration(bytes);
  available_at_ = start + duration;
  bytes_carried_ += bytes;
  busy_seconds_ += duration;
  return available_at_;
}

double SerialChannel::IdealDuration(double bytes) const {
  return latency_ + bytes / bandwidth_;
}

void SerialChannel::Reset() {
  available_at_ = SimTime::Zero();
  bytes_carried_ = 0.0;
  busy_seconds_ = 0.0;
}

}  // namespace laminar
