// Serialized transfer channels.
//
// A SerialChannel models a link or service endpoint that can carry one
// transfer at a time at a fixed bandwidth (an alpha-beta cost model with FIFO
// queueing). Concurrent requests queue behind each other, which is how a
// master relay or a storage system becomes a contention bottleneck when many
// rollouts pull weights simultaneously (paper section 4.1).
#ifndef LAMINAR_SRC_SIM_CHANNEL_H_
#define LAMINAR_SRC_SIM_CHANNEL_H_

#include <cstdint>

#include "src/common/sim_time.h"

namespace laminar {

class SerialChannel {
 public:
  // `bandwidth_bytes_per_sec` > 0; `latency_seconds` is the per-transfer
  // startup cost (T_start in the paper's Appendix D).
  SerialChannel(double bandwidth_bytes_per_sec, double latency_seconds);

  // Enqueues a transfer of `bytes` starting no earlier than `now`; returns
  // the completion time. Subsequent transfers queue behind it.
  SimTime Transfer(SimTime now, double bytes);

  // Time a transfer of `bytes` would take on an idle channel.
  double IdealDuration(double bytes) const;

  // Next instant the channel is free.
  SimTime available_at() const { return available_at_; }
  double bandwidth() const { return bandwidth_; }
  double latency() const { return latency_; }
  // Total bytes carried so far.
  double bytes_carried() const { return bytes_carried_; }
  // Total time spent busy.
  double busy_seconds() const { return busy_seconds_; }

  void Reset();

 private:
  double bandwidth_;
  double latency_;
  SimTime available_at_ = SimTime::Zero();
  double bytes_carried_ = 0.0;
  double busy_seconds_ = 0.0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_CHANNEL_H_
