// Reconstructible event continuations (DESIGN.md §13).
//
// The event heap historically stored type-erased closures, which made every
// pending event opaque: a snapshot could only digest the heap and a restore
// had to re-simulate the whole prefix to rebuild it (replay-anchored
// recovery). This header is the data-only replacement: a scheduling
// component registers itself under a stable component id and schedules
// (component_id, kind, payload) descriptors instead of lambdas. The
// simulator stores the descriptor in the event slot, dispatches it through
// the registry when the event fires, and — because the descriptor is plain
// data — serializes the live heap into the LMSNAP1 v2 `event_heap` section
// so a restore can re-mint every pending event directly from the blob.
//
// Components implement two entry points:
//
//   RunContinuation(kind, payload)          — the event fired; execute the
//                                             body the old lambda ran.
//   RestoreContinuation(kind, payload, at)  — a snapshot adoption replays
//                                             this pending event; re-schedule
//                                             it at `at` through the usual
//                                             Schedule*Continuation call
//                                             (restoring lane affinity) and
//                                             re-seat any EventId bookkeeping
//                                             the component keeps for it.
//
// Payloads are a fixed 32-byte POD. State that does not fit (a casualty
// list, full iteration stats) lives in a serialized side-table owned by the
// component, and the payload carries the key.
#ifndef LAMINAR_SRC_SIM_CONTINUATION_H_
#define LAMINAR_SRC_SIM_CONTINUATION_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/common/sim_time.h"

namespace laminar {

// Fixed-size continuation argument block. Doubles travel bit-cast through
// the int64 fields so the round trip is exact.
struct ContinuationPayload {
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  int64_t d = 0;

  static ContinuationPayload Of(int64_t a, int64_t b = 0, int64_t c = 0,
                                int64_t d = 0) {
    return ContinuationPayload{a, b, c, d};
  }
  static int64_t FromF64(double v) { return std::bit_cast<int64_t>(v); }
  static double ToF64(int64_t v) { return std::bit_cast<double>(v); }
};

// What an event slot stores instead of a closure: who runs it and with what
// arguments. comp < 0 means "legacy closure event" (tests and transient
// scaffolding); such events execute normally but poison direct-boot restore
// of the heap they sit in.
struct ContinuationDesc {
  int32_t comp = -1;
  uint16_t kind = 0;
  ContinuationPayload payload;
};

// Component-id layout: (family << 16) | instance. Families are the fixed
// set of scheduling components; instance is the replica id for per-replica
// clients and 0 elsewhere.
enum ContinuationFamily : int32_t {
  kContFamilySystem = 0,     // system driver (Laminar/Pipeline/Partial)
  kContFamilyTrainer = 1,
  kContFamilyRelayTier = 2,
  kContFamilyManager = 3,
  kContFamilyHeartbeat = 4,
  kContFamilyInjector = 5,
  kContFamilyReplica = 6,    // instance = replica id
  kContFamilyDriver = 7,     // DriverBase (rate sampler tick)
  kContFamilyCount = 8,
};

constexpr int32_t ContinuationComponentId(ContinuationFamily family,
                                          int instance = 0) {
  return (static_cast<int32_t>(family) << 16) | instance;
}

class ContinuationClient {
 public:
  virtual ~ContinuationClient() = default;
  virtual void RunContinuation(uint16_t kind, const ContinuationPayload& p) = 0;
  virtual void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                   SimTime at) = 0;
};

// Flat family/instance lookup table: resolving a descriptor on the event
// hot path is two array indexes, no hashing.
class ContinuationRegistry {
 public:
  ContinuationRegistry() : families_(kContFamilyCount) {}

  void Register(int32_t comp, ContinuationClient* client) {
    auto& fam = FamilyOf(comp);
    size_t idx = static_cast<size_t>(comp & 0xFFFF);
    if (fam.size() <= idx) {
      fam.resize(idx + 1, nullptr);
    }
    LAMINAR_CHECK(fam[idx] == nullptr || fam[idx] == client)
        << "continuation component " << comp << " registered twice";
    fam[idx] = client;
  }

  void Unregister(int32_t comp) {
    auto& fam = FamilyOf(comp);
    size_t idx = static_cast<size_t>(comp & 0xFFFF);
    if (idx < fam.size()) {
      fam[idx] = nullptr;
    }
  }

  ContinuationClient* Find(int32_t comp) const {
    size_t f = static_cast<size_t>(comp >> 16);
    size_t idx = static_cast<size_t>(comp & 0xFFFF);
    if (f >= families_.size() || idx >= families_[f].size()) {
      return nullptr;
    }
    return families_[f][idx];
  }

  ContinuationClient& Require(int32_t comp) const {
    ContinuationClient* c = Find(comp);
    LAMINAR_CHECK(c != nullptr) << "no continuation client for component " << comp;
    return *c;
  }

  void Run(int32_t comp, uint16_t kind, const ContinuationPayload& p) const {
    Require(comp).RunContinuation(kind, p);
  }

 private:
  std::vector<ContinuationClient*>& FamilyOf(int32_t comp) {
    size_t f = static_cast<size_t>(comp >> 16);
    LAMINAR_CHECK_LT(f, families_.size()) << "bad continuation family";
    return families_[f];
  }

  std::vector<std::vector<ContinuationClient*>> families_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_CONTINUATION_H_
