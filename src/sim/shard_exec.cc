#include "src/sim/shard_exec.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_budget.h"

namespace laminar {
namespace {

constexpr ShardRank kMaxRank = ShardRank{UINT64_MAX, UINT64_MAX};

// Worker count resolution: explicit option wins, then the
// LAMINAR_SHARD_WORKERS env override (used by the TSan job to force real
// threads on small hosts), then the shared thread budget.
int ResolveWorkers(int requested, int lanes) {
  if (const char* env = std::getenv("LAMINAR_SHARD_WORKERS")) {
    requested = std::atoi(env);
  }
  if (requested >= 0) {
    return std::min(requested, lanes);
  }
  return ThreadBudget::Acquire(lanes);
}

}  // namespace

LaneStagingSink::LaneStagingSink(Simulator* sim, uint32_t lane_index)
    : TraceSink(sim), sim_(sim), lane_index_(lane_index) {}

// Emission bodies capture fully-evaluated arguments (names are string
// literals with static storage) and re-emit through the real sink at replay,
// when the control clock carries the staged time — so Instant/Counter
// timestamps come out exactly as if emitted inline.
void LaneStagingSink::Span(TraceComponent component, const char* name,
                           int32_t entity, SimTime begin, SimTime end,
                           int64_t arg, double value) {
  Simulator::Lane& lane = sim_->lanes_[lane_index_];
  sim_->StageFromWindow(lane, [this, component, name, entity, begin, end, arg,
                               value] {
    if (TraceSink* sink = sim_->trace_) {
      sink->Span(component, name, entity, begin, end, arg, value);
    }
  });
}

void LaneStagingSink::Instant(TraceComponent component, const char* name,
                              int32_t entity, int64_t arg, double value) {
  Simulator::Lane& lane = sim_->lanes_[lane_index_];
  sim_->StageFromWindow(lane, [this, component, name, entity, arg, value] {
    if (TraceSink* sink = sim_->trace_) {
      sink->Instant(component, name, entity, arg, value);
    }
  });
}

void LaneStagingSink::Counter(TraceComponent component, const char* name,
                              int32_t entity, double value) {
  Simulator::Lane& lane = sim_->lanes_[lane_index_];
  sim_->StageFromWindow(lane, [this, component, name, entity, value] {
    if (TraceSink* sink = sim_->trace_) {
      sink->Counter(component, name, entity, value);
    }
  });
}

ShardScheduler::ShardScheduler(Simulator* sim, const ShardOptions& options)
    : sim_(sim),
      opts_(options),
      time_cap_key_(Simulator::TimeKey(SimTime::Max())) {
  lane_count_ = static_cast<uint32_t>(sim_->lanes_.size() - 1);
  lookahead_.resize(lane_count_);
  for (uint32_t i = 0; i < lane_count_; ++i) {
    lookahead_[i] = i < opts_.lane_lookahead_seconds.size()
                        ? opts_.lane_lookahead_seconds[i]
                        : opts_.lookahead_seconds;
  }
  frontier_keys_.assign(sim_->lanes_.size(), 0);
  merge_pos_.assign(sim_->lanes_.size(), 0);
  ordinals_.resize(sim_->lanes_.size());
  sinks_.reserve(lane_count_);
  for (uint32_t i = 1; i < sim_->lanes_.size(); ++i) {
    sinks_.push_back(std::make_unique<LaneStagingSink>(sim_, i));
    sim_->lanes_[i].staging_sink = sinks_.back().get();
  }
  StartWorkers(ResolveWorkers(opts_.num_workers, static_cast<int>(lane_count_)));
}

ShardScheduler::~ShardScheduler() {
  StopWorkers();
  if (opts_.num_workers < 0) {
    ThreadBudget::Release(static_cast<int>(workers_.size()));
  }
}

void ShardScheduler::set_window_time_cap(double seconds) {
  time_cap_key_ = Simulator::TimeKey(SimTime(seconds));
}

void ShardScheduler::set_lane_lookahead(
    const std::vector<double>& lane_seconds) {
  LAMINAR_CHECK_EQ(lane_seconds.size(), lookahead_.size())
      << "need one lookahead entry per replica lane";
  LAMINAR_CHECK_EQ(stats_.windows, 0u)
      << "lane lookahead must be installed before the first window";
  for (double s : lane_seconds) {
    LAMINAR_CHECK_GT(s, 0.0) << "lane lookahead must be positive";
  }
  lookahead_ = lane_seconds;
}

void ShardScheduler::ValidateCrossShardSchedule(uint32_t lane_index,
                                                SimTime from, SimTime t) const {
  LAMINAR_CHECK_GE(lane_index, 1u);
  const double horizon = lookahead_[lane_index - 1];
  LAMINAR_CHECK(t >= from + horizon)
      << "cross-shard schedule inside lane " << lane_index
      << "'s lookahead horizon: " << t.seconds() << " < " << from.seconds()
      << " + " << horizon;
  LAMINAR_CHECK_GE(Simulator::TimeKey(t), safe_key_)
      << "cross-shard schedule below the window bound";
}

ShardRank ShardScheduler::Resolve(const std::vector<uint64_t>& ordinals,
                                  ShardRank rank) {
  uint64_t hi = Simulator::RankHi(rank);
  if ((hi & Simulator::kTempRankBit) == 0) {
    return rank;
  }
  uint64_t idx = hi & ~Simulator::kTempRankBit;
  return Simulator::MakeRank(ordinals[idx], Simulator::RankLo(rank));
}

bool ShardScheduler::FindSerialMin(int* lane_out, uint64_t* key_out) {
  int best = -2;
  uint64_t bk = 0;
  ShardRank br{};
  if (!queue_.empty()) {
    best = -1;
    bk = queue_.back().key;
    br = queue_.back().rank;
  }
  for (size_t i = 0; i < sim_->lanes_.size(); ++i) {
    Simulator::Lane& lane = sim_->lanes_[i];
    Simulator::PruneStaleTop(lane);
    if (lane.heap_keys.empty()) {
      continue;
    }
    uint64_t k = lane.heap_keys.front();
    ShardRank r = lane.heap_meta.front().rank;
    if (best == -2 || Simulator::KeyRankLess(k, r, bk, br)) {
      best = static_cast<int>(i);
      bk = k;
      br = r;
    }
  }
  if (best == -2) {
    return false;
  }
  *lane_out = best;
  *key_out = bk;
  return true;
}

void ShardScheduler::ReplayQueueHead() {
  StagedAction item = std::move(queue_.back());
  queue_.pop_back();
  Simulator::Lane& ctrl = sim_->lanes_.front();
  // The control clock regresses to the staging event's time for the replay:
  // schedules performed by the body compute keys against it (the satellite
  // fix for ScheduleAfter), and any Instant/Counter emission stamps it —
  // both exactly as if the body had run inline during the staging event.
  ctrl.now = SimTime(Simulator::KeyTime(item.key));
  // The replay context is the staging event's program point — its execution
  // ordinal and the rank_lo k-slot the staging call consumed — NOT the
  // action's own queue rank. Events the body schedules mint ranks there, so
  // they compare against third-party events exactly as in a serial run.
  ctrl.ctx_hi = item.replay_hi;
  ctrl.ctx_lo_base = item.replay_lo_base;
  ctrl.ctx_j = 0;
  ctrl.ctx_replay = true;
  item.fn();
  ctrl.ctx_replay = false;
  ++stats_.actions_replayed;
}

void ShardScheduler::CommitSerial(int lane, uint64_t key) {
  const size_t li = static_cast<size_t>(lane);
  LAMINAR_CHECK_GE(key, frontier_keys_[li])
      << "event below lane " << lane << "'s committed execution frontier";
  frontier_keys_[li] = key;
  ++stats_.serial_steps;
  if (lane > 0) {
    const Simulator::Lane& l = sim_->lanes_[li];
    if (l.slots[l.heap_meta.front().slot].lane_control) {
      ++stats_.lane_control_events;
    }
  }
}

bool ShardScheduler::SerialStepOnce() {
  int lane;
  uint64_t key;
  if (!FindSerialMin(&lane, &key)) {
    return false;
  }
  if (lane < 0) {
    ReplayQueueHead();
    return true;
  }
  CommitSerial(lane, key);
  return sim_->StepLane(sim_->lanes_[static_cast<size_t>(lane)]);
}

void ShardScheduler::RunSerialUntil(SimTime deadline) {
  const uint64_t cap = Simulator::TimeKey(deadline);
  int lane;
  uint64_t key;
  while (FindSerialMin(&lane, &key) && key <= cap) {
    if (lane < 0) {
      ReplayQueueHead();
    } else {
      CommitSerial(lane, key);
      sim_->StepLane(sim_->lanes_[static_cast<size_t>(lane)]);
    }
  }
  Simulator::Lane& ctrl = sim_->lanes_.front();
  if (deadline > ctrl.now && deadline.is_finite()) {
    ctrl.now = deadline;
  }
}

bool ShardScheduler::RunUntilTrue(const std::function<bool()>& predicate,
                                  uint64_t max_events) {
  if (predicate()) {
    return true;
  }
  if (max_events != UINT64_MAX) {
    // Budgeted runs stay serial: an event budget must cut at exactly the
    // same event as the unsharded engine, and windows execute in bulk.
    uint64_t n = 0;
    while (n < max_events && SerialStepOnce()) {
      ++n;
      if (predicate()) {
        return true;
      }
    }
    return false;
  }
  for (;;) {
    if (TryRunWindow()) {
      // The predicate may only change state in control-lane events or
      // staged-effect replays (see Simulator::RunUntilTrue), none of which
      // run inside a window — no check needed here.
      continue;
    }
    if (!SerialStepOnce()) {
      return false;
    }
    if (predicate()) {
      return true;
    }
  }
}

bool ShardScheduler::TryRunWindow() {
  auto& lanes = sim_->lanes_;
  // Bound candidates beyond the lookahead horizons: the time cap (admits any
  // rank at the cap key, excludes everything past it), the staged-action
  // queue head, and the control lane's fence event.
  uint64_t bk = time_cap_key_;
  ShardRank br = kMaxRank;
  BoundSource source = BoundSource::kCap;
  if (!queue_.empty() &&
      Simulator::KeyRankLess(queue_.back().key, queue_.back().rank, bk, br)) {
    bk = queue_.back().key;
    br = queue_.back().rank;
    source = BoundSource::kQueue;
  }
  Simulator::Lane& ctrl = lanes.front();
  Simulator::PruneStaleTop(ctrl);
  if (!ctrl.heap_keys.empty() &&
      Simulator::KeyRankLess(ctrl.heap_keys.front(), ctrl.heap_meta.front().rank,
                             bk, br)) {
    bk = ctrl.heap_keys.front();
    br = ctrl.heap_meta.front().rank;
    source = BoundSource::kFence;
  }
  // Per-lane lookahead horizons: nothing a lane-i event does can influence
  // another lane before head_i + lookahead_i, so each lane head — including
  // a lane-anchored control event the window will halt at — contributes that
  // horizon as a bound candidate. The horizon is exclusive (zero rank): an
  // event exactly at it never executes in the same window as the effects
  // staged toward it, which keeps the bound safe even when a cross-lane
  // delay equals the lookahead exactly.
  for (size_t i = 1; i < lanes.size(); ++i) {
    Simulator::Lane& lane = lanes[i];
    Simulator::PruneStaleTop(lane);
    if (lane.heap_keys.empty()) {
      continue;
    }
    const double head_s = Simulator::KeyTime(lane.heap_keys.front());
    const uint64_t horizon =
        Simulator::TimeKey(SimTime(head_s + lookahead_[i - 1]));
    if (horizon < bk) {
      bk = horizon;
      br = ShardRank{};
      source = lane.slots[lane.heap_meta.front().slot].lane_control
                   ? BoundSource::kLaneControl
                   : BoundSource::kLookahead;
    }
  }
  // Window floor and eligibility: runnable replica-lane heads strictly below
  // the bound. Lane-anchored control events are not runnable — they halt
  // their lane immediately — so they count toward neither.
  uint64_t floor_key = std::numeric_limits<uint64_t>::max();
  int eligible = 0;
  for (size_t i = 1; i < lanes.size(); ++i) {
    Simulator::Lane& lane = lanes[i];
    if (lane.heap_keys.empty()) {
      continue;
    }
    const Simulator::HeapMeta& m = lane.heap_meta.front();
    if (lane.slots[m.slot].lane_control) {
      continue;
    }
    if (Simulator::KeyRankLess(lane.heap_keys.front(), m.rank, bk, br)) {
      ++eligible;
      floor_key = std::min(floor_key, lane.heap_keys.front());
    }
  }
  const bool fence_bound = source == BoundSource::kFence;
  if (floor_key == std::numeric_limits<uint64_t>::max()) {
    ++stats_.rejects_no_floor;
    stats_.fence_stall_rejects += fence_bound;
    return false;  // no runnable replica-lane work below the fence
  }
  // Horizon collapse / insufficient parallelism: fall back to serial.
  if (Simulator::KeyTime(bk) - Simulator::KeyTime(floor_key) <
      opts_.min_window_seconds) {
    ++stats_.rejects_narrow;
    stats_.fence_stall_rejects += fence_bound;
    return false;
  }
  if (eligible < opts_.min_parallel_lanes) {
    ++stats_.rejects_few_lanes;
    stats_.fence_stall_rejects += fence_bound;
    return false;
  }
  bound_key_ = bk;
  bound_rank_ = br;
  safe_key_ = bk;
  switch (source) {
    case BoundSource::kCap: ++stats_.bound_cap; break;
    case BoundSource::kQueue: ++stats_.bound_queue; break;
    case BoundSource::kFence: ++stats_.bound_fence; break;
    case BoundSource::kLookahead: ++stats_.bound_lookahead; break;
    case BoundSource::kLaneControl: ++stats_.bound_lane_control; break;
  }
  stats_.eligible_lane_sum += static_cast<uint64_t>(eligible);

  sim_->window_active_ = true;
  if (workers_.empty()) {
    next_lane_.store(1, std::memory_order_relaxed);
    RunLanes();
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Release store pairs with the acq_rel claim in RunLanes: a straggler
      // from the previous epoch that claims a lane here must observe all
      // barrier writes to lane state made before this reset.
      next_lane_.store(1, std::memory_order_release);
      lanes_done_ = 0;
      ++epoch_;
    }
    work_cv_.notify_all();
    RunLanes();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return lanes_done_ == lane_count_; });
  }
  sim_->window_active_ = false;
  Barrier();
  ++stats_.windows;
  return true;
}

void ShardScheduler::RunLanes() {
  for (;;) {
    uint32_t i = next_lane_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= sim_->lanes_.size()) {
      break;
    }
    Simulator::Lane& lane = sim_->lanes_[i];
    Simulator::tls_owner_ = sim_;
    Simulator::tls_lane_ = &lane;
    ExecuteLaneWindow(lane);
    Simulator::tls_owner_ = nullptr;
    Simulator::tls_lane_ = nullptr;
    if (!workers_.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (++lanes_done_ == lane_count_) {
        done_cv_.notify_all();
      }
    }
  }
}

void ShardScheduler::ExecuteLaneWindow(Lane& lane) {
  uint64_t frontier = frontier_keys_[lane.index];
  for (;;) {
    Simulator::PruneStaleTop(lane);
    if (lane.heap_keys.empty()) {
      break;
    }
    const uint64_t key = lane.heap_keys.front();
    const Simulator::HeapMeta m = lane.heap_meta.front();
    if (!Simulator::KeyRankLess(key, m.rank, bound_key_, bound_rank_)) {
      break;
    }
    if (lane.slots[m.slot].lane_control) {
      // Lane-anchored control event: never runs inside a window. Halt here;
      // the serial loop executes it with full serial semantics in global
      // (time, rank) order.
      break;
    }
    LAMINAR_CHECK_GE(key, frontier)
        << "window event below lane " << lane.index << "'s execution frontier";
    frontier = key;
    Simulator::HeapPopTop(lane);
    Simulator::Slot& s = lane.slots[m.slot];
    s.state = Simulator::SlotState::kExecuting;
    const ContinuationDesc desc = s.desc;
    std::function<void()> fn;
    if (desc.comp < 0) {
      fn = std::move(s.fn);
    }
    lane.now = SimTime(Simulator::KeyTime(key));
    --lane.live;
    lane.exec_log.push_back(Simulator::ExecRecord{key, m.rank});
    // Temporary scheduling context: resolved to a global ordinal at the
    // barrier. The parent index always refers to an earlier entry in this
    // lane's own log, so the barrier merge can resolve children in order.
    lane.ctx_hi = Simulator::kTempRankBit | (lane.exec_log.size() - 1);
    lane.ctx_k = 0;
    lane.ctx_j = 0;
    lane.ctx_a = 0;
    lane.ctx_event_rank = m.rank;
    lane.ctx_replay = false;
    lane.current = m.slot;
    if (desc.comp >= 0) {
      sim_->registry_.Run(desc.comp, desc.kind, desc.payload);
    } else {
      fn();
    }
    lane.current = Simulator::kNoCurrent;
    Simulator::Slot& after = lane.slots[m.slot];
    if (after.state == Simulator::SlotState::kRearmed) {
      if (desc.comp < 0) {
        after.fn = std::move(fn);
      }
      after.state = Simulator::SlotState::kPending;
    } else {
      Simulator::RetireSlot(lane, m.slot);
    }
  }
  frontier_keys_[lane.index] = frontier;
}

void ShardScheduler::Barrier() {
  auto& lanes = sim_->lanes_;
  const size_t n_lanes = lanes.size();
  // Phase 1: k-way merge of the per-lane execution logs in resolved
  // (key, rank) order, assigning each window event its global execution
  // ordinal. Each log is sorted (lanes pop their heaps in order), and a
  // temporary rank always resolves through an *earlier* entry of the same
  // log, so heads can be resolved as they surface.
  std::vector<size_t>& pos = merge_pos_;
  std::fill(pos.begin(), pos.end(), 0);
  uint64_t merged = 0;
  uint64_t last_key = 0;
  for (size_t i = 1; i < n_lanes; ++i) {
    ordinals_[i].resize(lanes[i].exec_log.size());
  }
  for (;;) {
    int best = -1;
    uint64_t bk = 0;
    ShardRank br{};
    for (size_t i = 1; i < n_lanes; ++i) {
      if (pos[i] >= lanes[i].exec_log.size()) {
        continue;
      }
      const Simulator::ExecRecord& rec = lanes[i].exec_log[pos[i]];
      ShardRank r = Resolve(ordinals_[i], rec.rank);
      if (best < 0 || Simulator::KeyRankLess(rec.key, r, bk, br)) {
        best = static_cast<int>(i);
        bk = rec.key;
        br = r;
      }
    }
    if (best < 0) {
      break;
    }
    ordinals_[best][pos[best]] = ++sim_->executed_;
    ++pos[static_cast<size_t>(best)];
    last_key = bk;
    ++merged;
  }
  stats_.window_events += merged;
  LAMINAR_CHECK_GT(merged, 0u) << "window executed no events";
  // The control clock advances to the last window event, exactly where a
  // serial run's clock would stand after executing the same events.
  Simulator::Lane& ctrl = lanes.front();
  ctrl.now = std::max(ctrl.now, SimTime(Simulator::KeyTime(last_key)));

  // Phase 2: resolve temporary ranks left in lane heaps (events scheduled
  // during the window that did not come due). Resolution only rewrites
  // rank_hi from (temp | parent index) to the parent's ordinal; both spaces
  // preserve the relative order of every pair of entries — committed ranks
  // predate the window and stay below every new ordinal, temps resolve in
  // parent-execution order — so the heap needs no re-sift.
  for (size_t i = 1; i < n_lanes; ++i) {
    Lane& lane = lanes[i];
    for (Simulator::HeapMeta& meta : lane.heap_meta) {
      meta.rank = Resolve(ordinals_[i], meta.rank);
    }
  }

  // Phase 3: merge the per-lane staged actions (each sorted after rank
  // resolution) and prepend to the replay queue. Every staged key is below
  // the window bound, and the bound is at most the old queue head, so the
  // batch belongs strictly in front — with the queue stored in reverse, the
  // merged batch is appended back-to-front.
  staged_scratch_.clear();
  std::fill(pos.begin(), pos.end(), 0);
  for (;;) {
    int best = -1;
    uint64_t bk = 0;
    ShardRank br{};
    for (size_t i = 1; i < n_lanes; ++i) {
      if (pos[i] >= lanes[i].staged.size()) {
        continue;
      }
      StagedAction& a = lanes[i].staged[pos[i]];
      ShardRank r = Resolve(ordinals_[i], a.rank);
      if (best < 0 || Simulator::KeyRankLess(a.key, r, bk, br)) {
        best = static_cast<int>(i);
        bk = a.key;
        br = r;
      }
    }
    if (best < 0) {
      break;
    }
    StagedAction& a = lanes[static_cast<size_t>(best)].staged[pos[best]];
    // Both rank datums resolve through the staging event's ordinal: the queue
    // rank's hi (= staging event's rank hi, unchanged by the +a offset) and
    // the bare replay_hi.
    uint64_t rh = a.replay_hi;
    if ((rh & Simulator::kTempRankBit) != 0) {
      rh = ordinals_[static_cast<size_t>(best)][rh & ~Simulator::kTempRankBit];
    }
    staged_scratch_.push_back(StagedAction{a.key,
                                           Resolve(ordinals_[best], a.rank), rh,
                                           a.replay_lo_base, std::move(a.fn)});
    ++pos[static_cast<size_t>(best)];
  }
  if (!staged_scratch_.empty()) {
    queue_.reserve(queue_.size() + staged_scratch_.size());
    for (auto it = staged_scratch_.rbegin(); it != staged_scratch_.rend();
         ++it) {
      queue_.push_back(std::move(*it));
    }
    staged_scratch_.clear();
  }
  for (size_t i = 1; i < n_lanes; ++i) {
    lanes[i].exec_log.clear();
    lanes[i].staged.clear();
  }
}

void ShardScheduler::StartWorkers(int count) {
  if (count <= 0) {
    return;
  }
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ShardScheduler::StopWorkers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
}

void ShardScheduler::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) {
        return;
      }
      seen = epoch_;
    }
    RunLanes();
  }
}

}  // namespace laminar
