// Conservative-window parallel execution for the sharded simulator
// (DESIGN.md §12).
//
// The ShardScheduler drives a Simulator whose event queue has been
// partitioned into lanes (Simulator::ConfigureShards). It alternates between
// two regimes:
//
//   Serial regime — pop the globally least (time, rank) item among the
//   control-lane heap, every replica-lane heap, and the staged-action queue,
//   and run it with full serial semantics. This is bit-equivalent to the
//   unsharded engine by construction.
//
//   Window regime — when at least `min_parallel_lanes` replica lanes have
//   events strictly below the window bound, execute each such lane's
//   sub-bound events concurrently (one thread per lane, or inline on the
//   coordinator when no workers are available). The bound is the least of:
//   the control lane's next event ("fence"), the staged-action queue head,
//   each lane's head plus that lane's topology-derived lookahead horizon
//   (ShardOptions::lane_lookahead_seconds — the fastest decode step or
//   alpha-beta link latency of the machines mapped onto the lane), and the
//   run's time cap. Replica-lane events may touch only replica-local state;
//   every cross-component interaction — completion/progress/batch-done
//   callbacks, trace emission, cross-lane schedules — is staged with the
//   event's (time, rank) and replayed serially later, which is what keeps
//   sharded runs byte-identical to serial.
//
//   Lane-riding control traffic — control events whose effects are provably
//   lane-local (Simulator::ScheduleLaneControlAt) sit in their affine lane's
//   heap instead of fencing every window on lane 0. The window executor
//   halts a lane when such an event surfaces (it never executes inside a
//   window); the serial loop later runs it in global (time, rank) order with
//   full serial semantics. For the bound it contributes the same
//   head + lane-lookahead horizon as any other head: nothing the window
//   executes can be influenced by it before that horizon.
//
// At the window barrier the per-lane execution logs are k-way merged in
// (time, rank) order to assign global execution ordinals, temporary ranks
// minted inside the window are resolved against those ordinals, and the
// per-lane staged actions are merged (already sorted) and prepended to the
// staged-action queue. Per-lane execution frontiers (the max key each lane
// ever committed) turn any causality violation — a schedule or event landing
// below ground a lane already committed — into a loud check failure instead
// of a silent divergence. The frontiers are per-lane rather than global
// because lane-riding control events legitimately execute serially below
// the keys other lanes have already reached inside windows.
#ifndef LAMINAR_SRC_SIM_SHARD_EXEC_H_
#define LAMINAR_SRC_SIM_SHARD_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/trace.h"

namespace laminar {

// A TraceSink that defers emissions from window-executed events to the
// barrier. Each emission captures its already-evaluated arguments and is
// staged with the emitting event's (time, rank), so replay interns names and
// appends records in exactly the serial first-use order.
class LaneStagingSink final : public TraceSink {
 public:
  LaneStagingSink(Simulator* sim, uint32_t lane_index);

  void Span(TraceComponent component, const char* name, int32_t entity,
            SimTime begin, SimTime end, int64_t arg, double value) override;
  void Instant(TraceComponent component, const char* name, int32_t entity,
               int64_t arg, double value) override;
  void Counter(TraceComponent component, const char* name, int32_t entity,
               double value) override;

 private:
  Simulator* sim_;
  uint32_t lane_index_;
};

class ShardScheduler {
 public:
  ShardScheduler(Simulator* sim, const ShardOptions& options);
  ~ShardScheduler();
  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  // The sharded counterparts of the Simulator run loops. RunUntilTrue with
  // an event budget (max_events != UINT64_MAX) stays serial so the budget
  // cuts at exactly the same event as an unsharded run.
  bool RunUntilTrue(const std::function<bool()>& predicate, uint64_t max_events);
  bool SerialStepOnce();
  void RunSerialUntil(SimTime deadline);

  // Events with time strictly greater than the cap never execute inside a
  // window.
  void set_window_time_cap(double seconds);
  void OnTraceChanged() {}  // staging sinks read sim_->trace_ at replay time

  // Asserts that a cross-lane schedule staged from inside a window on
  // `lane_index` lands at or beyond the window bound and clears that lane's
  // lookahead horizon, i.e. provably outside anything any lane may execute
  // this window.
  void ValidateCrossShardSchedule(uint32_t lane_index, SimTime from,
                                  SimTime t) const;

  uint64_t windows() const { return stats_.windows; }
  uint64_t window_events() const { return stats_.window_events; }
  uint64_t serial_steps() const { return stats_.serial_steps; }
  uint64_t actions_replayed() const { return stats_.actions_replayed; }
  // Window-rejection tallies (why a serial step ran instead): no replica
  // work below the fence, horizon narrower than min_window_seconds, or
  // fewer eligible lanes than min_parallel_lanes.
  uint64_t rejects_no_floor() const { return stats_.rejects_no_floor; }
  uint64_t rejects_narrow() const { return stats_.rejects_narrow; }
  uint64_t rejects_few_lanes() const { return stats_.rejects_few_lanes; }
  // The full deterministic window-quality profile (DESIGN.md §12).
  const ShardWindowStats& stats() const { return stats_; }

  // Replaces the per-lane lookahead horizons (one entry per replica lane).
  // Used by drivers to install topology-derived horizons once the fleet is
  // built; must happen before the first window opens.
  void set_lane_lookahead(const std::vector<double>& lane_seconds);

 private:
  using Lane = Simulator::Lane;
  using StagedAction = Simulator::StagedAction;

  // Which candidate set a window bound (or bound a rejected window attempt).
  enum class BoundSource : uint8_t {
    kCap,
    kQueue,
    kFence,
    kLookahead,
    kLaneControl,
  };

  // Opens and runs one window if the bound admits enough parallel work;
  // returns false to fall back to a serial step.
  bool TryRunWindow();
  // Pops sub-bound events off one replica lane (runs on a worker thread or
  // inline on the coordinator; touches only that lane). Halts the lane when
  // a lane-anchored control event surfaces.
  void ExecuteLaneWindow(Lane& lane);
  // Merges execution logs, resolves temporary ranks, commits staged actions.
  void Barrier();
  // Replays the staged-action queue head with the staging event's context.
  void ReplayQueueHead();
  // Least pending (key, rank) over lanes and queue. Returns false when
  // everything is drained. lane_out = -1 selects the queue head.
  bool FindSerialMin(int* lane_out, uint64_t* key_out);
  // Serial-step bookkeeping shared by SerialStepOnce and RunSerialUntil:
  // per-lane frontier check/advance plus the lane-control tally.
  void CommitSerial(int lane, uint64_t key);

  void StartWorkers(int count);
  void StopWorkers();
  void WorkerLoop();
  void RunLanes();  // claim-and-execute loop shared by coordinator + workers

  static ShardRank Resolve(const std::vector<uint64_t>& ordinals, ShardRank rank);

  Simulator* sim_;
  ShardOptions opts_;
  uint64_t time_cap_key_;
  // Per-lane lookahead horizons, one entry per replica lane (index 0 is
  // lane 1). Resolved from ShardOptions::lane_lookahead_seconds with
  // lookahead_seconds as the fallback for missing entries.
  std::vector<double> lookahead_;
  // Per-lane execution frontiers: the max key each lane ever committed
  // (serially or inside a window). Indexed by lane (entry 0 = control lane).
  std::vector<uint64_t> frontier_keys_;
  // Window bound: events with (key, rank) strictly less execute this window.
  uint64_t bound_key_ = 0;
  ShardRank bound_rank_{};
  uint64_t safe_key_ = 0;  // == bound_key_, for cross-shard validation

  // Staged actions pending serial replay, globally sorted by (key, rank) in
  // REVERSE order — back() is the head. A barrier prepends its batch (every
  // staged key is below the bound, and the bound is at most the old head) by
  // appending in descending order, so both prepend and pop are O(1) amortized
  // with no deque block churn.
  std::vector<StagedAction> queue_;

  std::vector<std::unique_ptr<LaneStagingSink>> sinks_;
  std::vector<std::vector<uint64_t>> ordinals_;  // per-lane barrier scratch
  std::vector<StagedAction> staged_scratch_;
  std::vector<size_t> merge_pos_;  // barrier k-way merge cursor, preallocated

  ShardWindowStats stats_;

  // Worker pool. Workers park on epoch_; each window bumps the epoch, and
  // coordinator + workers race to claim lanes off next_lane_. All lane state
  // handoff happens under mu_ (publish at epoch bump, collect at done wait).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool stopping_ = false;
  std::atomic<uint32_t> next_lane_{1};
  uint32_t lanes_done_ = 0;
  uint32_t lane_count_ = 0;  // replica lanes per window (constant)
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_SHARD_EXEC_H_
