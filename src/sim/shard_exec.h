// Conservative-window parallel execution for the sharded simulator
// (DESIGN.md §12).
//
// The ShardScheduler drives a Simulator whose event queue has been
// partitioned into lanes (Simulator::ConfigureShards). It alternates between
// two regimes:
//
//   Serial regime — pop the globally least (time, rank) item among the
//   control-lane heap, every replica-lane heap, and the staged-action queue,
//   and run it with full serial semantics. This is bit-equivalent to the
//   unsharded engine by construction.
//
//   Window regime — when at least `min_parallel_lanes` replica lanes have
//   events strictly below the window bound, execute each such lane's
//   sub-bound events concurrently (one thread per lane, or inline on the
//   coordinator when no workers are available). The bound is the least of:
//   the control lane's next event ("fence"), the staged-action queue head,
//   the window floor plus the lookahead horizon (the alpha of the cluster's
//   alpha-beta network model), and the run's time cap. Replica-lane events
//   may touch only replica-local state; every cross-component interaction —
//   completion/progress/batch-done callbacks, trace emission, cross-lane
//   schedules — is staged with the event's (time, rank) and replayed
//   serially later, which is what keeps sharded runs byte-identical to
//   serial.
//
// At the window barrier the per-lane execution logs are k-way merged in
// (time, rank) order to assign global execution ordinals, temporary ranks
// minted inside the window are resolved against those ordinals, and the
// per-lane staged actions are merged (already sorted) and prepended to the
// staged-action queue. A global high-water mark over executed event keys
// turns any causality violation — a schedule or event landing below ground
// already committed — into a loud check failure instead of a silent
// divergence.
#ifndef LAMINAR_SRC_SIM_SHARD_EXEC_H_
#define LAMINAR_SRC_SIM_SHARD_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/trace.h"

namespace laminar {

// A TraceSink that defers emissions from window-executed events to the
// barrier. Each emission captures its already-evaluated arguments and is
// staged with the emitting event's (time, rank), so replay interns names and
// appends records in exactly the serial first-use order.
class LaneStagingSink final : public TraceSink {
 public:
  LaneStagingSink(Simulator* sim, uint32_t lane_index);

  void Span(TraceComponent component, const char* name, int32_t entity,
            SimTime begin, SimTime end, int64_t arg, double value) override;
  void Instant(TraceComponent component, const char* name, int32_t entity,
               int64_t arg, double value) override;
  void Counter(TraceComponent component, const char* name, int32_t entity,
               double value) override;

 private:
  Simulator* sim_;
  uint32_t lane_index_;
};

class ShardScheduler {
 public:
  ShardScheduler(Simulator* sim, const ShardOptions& options);
  ~ShardScheduler();
  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  // The sharded counterparts of the Simulator run loops. RunUntilTrue with
  // an event budget (max_events != UINT64_MAX) stays serial so the budget
  // cuts at exactly the same event as an unsharded run.
  bool RunUntilTrue(const std::function<bool()>& predicate, uint64_t max_events);
  bool SerialStepOnce();
  void RunSerialUntil(SimTime deadline);

  // Events with time strictly greater than the cap never execute inside a
  // window.
  void set_window_time_cap(double seconds);
  void OnTraceChanged() {}  // staging sinks read sim_->trace_ at replay time

  // Asserts that a cross-lane schedule staged from inside a window lands at
  // or beyond the current window's safe horizon (floor + lookahead), i.e.
  // provably outside anything any lane may execute this window.
  void ValidateCrossShardSchedule(SimTime from, SimTime t) const;

  uint64_t windows() const { return windows_; }
  uint64_t window_events() const { return window_events_; }
  uint64_t serial_steps() const { return serial_steps_; }
  uint64_t actions_replayed() const { return actions_replayed_; }
  // Window-rejection tallies (why a serial step ran instead): no replica
  // work below the fence, horizon narrower than min_window_seconds, or
  // fewer eligible lanes than min_parallel_lanes.
  uint64_t rejects_no_floor() const { return rejects_no_floor_; }
  uint64_t rejects_narrow() const { return rejects_narrow_; }
  uint64_t rejects_few_lanes() const { return rejects_few_lanes_; }

 private:
  using Lane = Simulator::Lane;
  using StagedAction = Simulator::StagedAction;

  // Opens and runs one window if the bound admits enough parallel work;
  // returns false to fall back to a serial step.
  bool TryRunWindow();
  // Pops sub-bound events off one replica lane (runs on a worker thread or
  // inline on the coordinator; touches only that lane).
  void ExecuteLaneWindow(Lane& lane);
  // Merges execution logs, resolves temporary ranks, commits staged actions.
  void Barrier();
  // Replays the staged-action queue head with the staging event's context.
  void ReplayQueueHead();
  // Least pending (key, rank) over lanes and queue. Returns false when
  // everything is drained. lane_out = -1 selects the queue head.
  bool FindSerialMin(int* lane_out, uint64_t* key_out);

  void StartWorkers(int count);
  void StopWorkers();
  void WorkerLoop();
  void RunLanes();  // claim-and-execute loop shared by coordinator + workers

  static ShardRank Resolve(const std::vector<uint64_t>& ordinals, ShardRank rank);

  Simulator* sim_;
  ShardOptions opts_;
  uint64_t time_cap_key_;
  uint64_t high_water_key_ = 0;  // max key ever committed to execution
  // Window bound: events with (key, rank) strictly less execute this window.
  uint64_t bound_key_ = 0;
  ShardRank bound_rank_ = 0;
  uint64_t safe_key_ = 0;  // floor + lookahead, for cross-shard validation

  // Staged actions pending serial replay, globally sorted by (key, rank).
  std::deque<StagedAction> queue_;

  std::vector<std::unique_ptr<LaneStagingSink>> sinks_;
  std::vector<std::vector<uint64_t>> ordinals_;  // per-lane barrier scratch
  std::vector<StagedAction> staged_scratch_;

  uint64_t windows_ = 0;
  uint64_t window_events_ = 0;
  uint64_t serial_steps_ = 0;
  uint64_t actions_replayed_ = 0;
  uint64_t rejects_no_floor_ = 0;
  uint64_t rejects_narrow_ = 0;
  uint64_t rejects_few_lanes_ = 0;

  // Worker pool. Workers park on epoch_; each window bumps the epoch, and
  // coordinator + workers race to claim lanes off next_lane_. All lane state
  // handoff happens under mu_ (publish at epoch bump, collect at done wait).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool stopping_ = false;
  std::atomic<uint32_t> next_lane_{1};
  uint32_t lanes_done_ = 0;
  uint32_t lane_count_ = 0;  // replica lanes per window (constant)
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_SHARD_EXEC_H_
