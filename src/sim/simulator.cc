#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/shard_exec.h"
#include "src/snapshot/snapshot.h"
#include "src/trace/metrics.h"

namespace laminar {

thread_local const Simulator* Simulator::tls_owner_ = nullptr;
thread_local Simulator::Lane* Simulator::tls_lane_ = nullptr;

// Non-negative IEEE-754 doubles order identically to their bit patterns read
// as unsigned integers, so the heap can compare timestamps with integer
// instructions. `+ 0.0` canonicalizes -0.0 (whose sign bit would otherwise
// sort it last).
uint64_t Simulator::TimeKey(SimTime t) {
  return std::bit_cast<uint64_t>(t.seconds() + 0.0);
}

double Simulator::KeyTime(uint64_t key) { return std::bit_cast<double>(key); }

Simulator::Simulator() : lanes_(1) { lanes_[0].index = 0; }

Simulator::~Simulator() = default;

uint32_t Simulator::AllocSlot(Lane& lane) {
  if (!lane.free_slots.empty()) {
    uint32_t slot = lane.free_slots.back();
    lane.free_slots.pop_back();
    return slot;
  }
  LAMINAR_CHECK_LT(lane.slots.size(), static_cast<size_t>(kSlotMask))
      << "event slab exhausted on lane " << lane.index;
  lane.slots.emplace_back();
  return static_cast<uint32_t>(lane.slots.size() - 1);
}

void Simulator::RetireSlot(Lane& lane, uint32_t slot) {
  Slot& s = lane.slots[slot];
  if (s.fn) {
    s.fn = nullptr;  // skip the std::function reset churn for descriptor events
  }
  s.desc.comp = -1;
  s.lane_control = false;
  if (++s.generation == 0) {
    s.generation = 1;  // keep packed ids nonzero and unambiguous
  }
  s.state = SlotState::kFree;
  lane.free_slots.push_back(slot);
}

void Simulator::HeapSiftUp(Lane& lane, size_t i) {
  auto& heap_keys = lane.heap_keys;
  auto& heap_meta = lane.heap_meta;
  const uint64_t k = heap_keys[i];
  const HeapMeta m = heap_meta[i];
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    const uint64_t pk = heap_keys[parent];
    if (!KeyRankLess(k, m.rank, pk, heap_meta[parent].rank)) {
      break;
    }
    heap_keys[i] = pk;
    heap_meta[i] = heap_meta[parent];
    i = parent;
  }
  heap_keys[i] = k;
  heap_meta[i] = m;
}

void Simulator::HeapSiftDown(Lane& lane, size_t i) {
  auto& heap_keys = lane.heap_keys;
  auto& heap_meta = lane.heap_meta;
  const uint64_t k = heap_keys[i];
  const HeapMeta m = heap_meta[i];
  const size_t n = heap_keys.size();
  for (;;) {
    const size_t child = (i << 2) + 1;
    if (child >= n) {
      break;
    }
    size_t best = child;
    uint64_t bk = heap_keys[child];
    const size_t end = child + 4 < n ? child + 4 : n;
    for (size_t c = child + 1; c < end; ++c) {
      const uint64_t ck = heap_keys[c];
      if (KeyRankLess(ck, heap_meta[c].rank, bk, heap_meta[best].rank)) {
        best = c;
        bk = ck;
      }
    }
    if (!KeyRankLess(bk, heap_meta[best].rank, k, m.rank)) {
      break;
    }
    heap_keys[i] = bk;
    heap_meta[i] = heap_meta[best];
    i = best;
  }
  heap_keys[i] = k;
  heap_meta[i] = m;
}

void Simulator::HeapPopTop(Lane& lane) {
  auto& heap_keys = lane.heap_keys;
  auto& heap_meta = lane.heap_meta;
  const uint64_t bk = heap_keys.back();
  const HeapMeta bm = heap_meta.back();
  heap_keys.pop_back();
  heap_meta.pop_back();
  const size_t n = heap_keys.size();
  if (n == 0) {
    return;
  }
  // Bottom-up pop: walk the hole at the root down along minimum children to
  // a leaf (no comparisons against the displaced back element on the way),
  // then drop that element into the hole and sift it up — it rarely rises.
  size_t i = 0;
  for (;;) {
    const size_t child = (i << 2) + 1;
    if (child >= n) {
      break;
    }
    size_t best = child;
    uint64_t bk2 = heap_keys[child];
    const size_t end = child + 4 < n ? child + 4 : n;
    for (size_t c = child + 1; c < end; ++c) {
      const uint64_t ck = heap_keys[c];
      if (KeyRankLess(ck, heap_meta[c].rank, bk2, heap_meta[best].rank)) {
        best = c;
        bk2 = ck;
      }
    }
    heap_keys[i] = bk2;
    heap_meta[i] = heap_meta[best];
    i = best;
  }
  heap_keys[i] = bk;
  heap_meta[i] = bm;
  HeapSiftUp(lane, i);
}

void Simulator::PushHeap(Lane& lane, SimTime t, uint32_t slot, uint32_t generation,
                         ShardRank rank) {
  lane.heap_keys.push_back(TimeKey(t));
  lane.heap_meta.push_back(HeapMeta{rank, slot, generation});
  HeapSiftUp(lane, lane.heap_keys.size() - 1);
}

EventId Simulator::ScheduleOnLane(uint32_t lane_idx, SimTime t,
                                  std::function<void()> fn) {
  Lane& ctx = CtxLane();
  // The one causality check of the engine, shared by every schedule path:
  // the key is computed against (or validated against) the scheduling
  // context's own clock — the window lane's clock inside a window, the
  // replayed action's generation time during a staged-effect replay — so no
  // path can mint a timestamp below the floor its context was admitted
  // under.
  LAMINAR_CHECK(t >= ctx.now) << "scheduling into the past: " << t.seconds() << " < "
                              << ctx.now.seconds();
  LAMINAR_CHECK_LT(lane_idx, lanes_.size());
  if (window_active_) {
    if (Lane* wl = MutableTlsLane(); wl != nullptr && wl->index != lane_idx) {
      // Cross-lane schedule from inside a window: must clear the lookahead
      // horizon, and is staged for the barrier rather than touching the
      // foreign lane's heap from a worker thread.
      scheduler_->ValidateCrossShardSchedule(wl->index, wl->now, t);
      StageFromWindow(*wl, [this, lane_idx, t, fn = std::move(fn)]() mutable {
        ScheduleOnLane(lane_idx, t, std::move(fn));
      });
      return kInvalidEventId;
    }
  }
  Lane& target = lanes_[lane_idx];
  uint32_t slot = AllocSlot(target);
  Slot& s = target.slots[slot];
  s.fn = std::move(fn);
  s.state = SlotState::kPending;
  PushHeap(target, t, slot, s.generation, NextActionRank(ctx));
  ++target.live;
  return Pack(lane_idx, slot, s.generation);
}

EventId Simulator::ScheduleDescOnLane(uint32_t lane_idx, SimTime t,
                                      const ContinuationDesc& desc,
                                      bool lane_control) {
  Lane& ctx = CtxLane();
  LAMINAR_CHECK(t >= ctx.now) << "scheduling into the past: " << t.seconds() << " < "
                              << ctx.now.seconds();
  LAMINAR_CHECK_LT(lane_idx, lanes_.size());
  if (window_active_) {
    if (Lane* wl = MutableTlsLane(); wl != nullptr && wl->index != lane_idx) {
      scheduler_->ValidateCrossShardSchedule(wl->index, wl->now, t);
      StageFromWindow(*wl, [this, lane_idx, t, desc, lane_control] {
        ScheduleDescOnLane(lane_idx, t, desc, lane_control);
      });
      return kInvalidEventId;
    }
  }
  Lane& target = lanes_[lane_idx];
  uint32_t slot = AllocSlot(target);
  Slot& s = target.slots[slot];
  s.desc = desc;
  s.state = SlotState::kPending;
  s.lane_control = lane_control;
  PushHeap(target, t, slot, s.generation, NextActionRank(ctx));
  ++target.live;
  return Pack(lane_idx, slot, s.generation);
}

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  uint32_t target = 0;
  if (window_active_) {
    if (Lane* wl = MutableTlsLane()) {
      target = wl->index;
    }
  }
  return ScheduleOnLane(target, t, std::move(fn));
}

EventId Simulator::ScheduleAfter(double delay, std::function<void()> fn) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  uint32_t target = 0;
  if (window_active_) {
    if (Lane* wl = MutableTlsLane()) {
      target = wl->index;
    }
  }
  return ScheduleOnLane(target, CtxLane().now + delay, std::move(fn));
}

EventId Simulator::ScheduleAtOn(int shard, SimTime t, std::function<void()> fn) {
  if (!sharded()) {
    return ScheduleOnLane(0, t, std::move(fn));
  }
  LAMINAR_CHECK_GE(shard, 0);
  LAMINAR_CHECK_LT(static_cast<size_t>(shard), lanes_.size());
  return ScheduleOnLane(static_cast<uint32_t>(shard), t, std::move(fn));
}

EventId Simulator::ScheduleAfterOn(int shard, double delay, std::function<void()> fn) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleAtOn(shard, CtxLane().now + delay, std::move(fn));
}

EventId Simulator::ScheduleContinuationAt(SimTime t, int32_t comp, uint16_t kind,
                                          const ContinuationPayload& payload) {
  LAMINAR_CHECK_GE(comp, 0);
  uint32_t target = 0;
  if (window_active_) {
    if (Lane* wl = MutableTlsLane()) {
      target = wl->index;
    }
  }
  return ScheduleDescOnLane(target, t, ContinuationDesc{comp, kind, payload});
}

EventId Simulator::ScheduleContinuationAfter(double delay, int32_t comp, uint16_t kind,
                                             const ContinuationPayload& payload) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleContinuationAt(CtxLane().now + delay, comp, kind, payload);
}

EventId Simulator::ScheduleContinuationAtOn(int shard, SimTime t, int32_t comp,
                                            uint16_t kind,
                                            const ContinuationPayload& payload) {
  LAMINAR_CHECK_GE(comp, 0);
  if (!sharded()) {
    return ScheduleDescOnLane(0, t, ContinuationDesc{comp, kind, payload});
  }
  LAMINAR_CHECK_GE(shard, 0);
  LAMINAR_CHECK_LT(static_cast<size_t>(shard), lanes_.size());
  return ScheduleDescOnLane(static_cast<uint32_t>(shard), t,
                            ContinuationDesc{comp, kind, payload});
}

EventId Simulator::ScheduleContinuationAfterOn(int shard, double delay, int32_t comp,
                                               uint16_t kind,
                                               const ContinuationPayload& payload) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleContinuationAtOn(shard, CtxLane().now + delay, comp, kind, payload);
}

EventId Simulator::ScheduleLaneControlAt(int shard, SimTime t, int32_t comp,
                                         uint16_t kind,
                                         const ContinuationPayload& payload) {
  LAMINAR_CHECK_GE(comp, 0);
  if (!lane_control_enabled_ || shard <= 0 ||
      static_cast<size_t>(shard) >= lanes_.size()) {
    // Classification off (or the target is not a replica lane): the event
    // fences on the control lane exactly as before.
    return ScheduleContinuationAtOn(0, t, comp, kind, payload);
  }
  return ScheduleDescOnLane(static_cast<uint32_t>(shard), t,
                            ContinuationDesc{comp, kind, payload},
                            /*lane_control=*/true);
}

EventId Simulator::ScheduleLaneControlAfter(int shard, double delay, int32_t comp,
                                            uint16_t kind,
                                            const ContinuationPayload& payload) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleLaneControlAt(shard, CtxLane().now + delay, comp, kind, payload);
}

EventId Simulator::RearmCurrentAfter(double delay) {
  Lane& ctx = CtxLane();
  Lane& exec = window_active_ && MutableTlsLane() != nullptr
                   ? *MutableTlsLane()
                   : lanes_[serial_exec_lane_];
  LAMINAR_CHECK(exec.current != kNoCurrent)
      << "RearmCurrentAfter outside an event callback";
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  Slot& s = exec.slots[exec.current];
  LAMINAR_CHECK(s.state == SlotState::kExecuting) << "current event already re-armed";
  if (++s.generation == 0) {
    s.generation = 1;
  }
  s.state = SlotState::kRearmed;
  PushHeap(exec, ctx.now + delay, exec.current, s.generation, NextActionRank(ctx));
  ++exec.live;
  return Pack(exec.index, exec.current, s.generation);
}

bool Simulator::Cancel(EventId id) {
  uint32_t lane_idx = LaneOf(id);
  if (lane_idx >= lanes_.size()) {
    return false;
  }
  if (window_active_) {
    if (Lane* wl = MutableTlsLane()) {
      LAMINAR_CHECK_EQ(wl->index, lane_idx) << "cross-shard Cancel inside a window";
    }
  }
  Lane& lane = lanes_[lane_idx];
  uint32_t slot = SlotOf(id);
  if (slot >= lane.slots.size()) {
    return false;
  }
  Slot& s = lane.slots[slot];
  if (s.generation != GenerationOf(id)) {
    return false;
  }
  if (s.state == SlotState::kPending) {
    RetireSlot(lane, slot);
    --lane.live;
    ++lane.tombstones;
    MaybeCompactHeap(lane);
    return true;
  }
  if (s.state == SlotState::kRearmed) {
    // Cancelled from inside its own callback; the closure is out on loan to
    // Step(), so just undo the re-arm and let Step() retire the slot.
    if (++s.generation == 0) {
      s.generation = 1;
    }
    s.state = SlotState::kExecuting;
    --lane.live;
    ++lane.tombstones;
    return true;
  }
  return false;
}

void Simulator::PruneStaleTop(Lane& lane) {
  while (!lane.heap_keys.empty() && !Live(lane, lane.heap_meta.front())) {
    HeapPopTop(lane);
    --lane.tombstones;
  }
}

void Simulator::MaybeCompactHeap(Lane& lane) {
  if (lane.tombstones < 64 || lane.tombstones * 2 < lane.heap_keys.size()) {
    return;
  }
  auto& heap_keys = lane.heap_keys;
  auto& heap_meta = lane.heap_meta;
  size_t out = 0;
  for (size_t i = 0; i < heap_keys.size(); ++i) {
    if (Live(lane, heap_meta[i])) {
      heap_keys[out] = heap_keys[i];
      heap_meta[out] = heap_meta[i];
      ++out;
    }
  }
  heap_keys.resize(out);
  heap_meta.resize(out);
  // Floyd heap construction for the 4-ary layout.
  if (out > 1) {
    for (size_t i = (out - 2) / 4 + 1; i-- > 0;) {
      HeapSiftDown(lane, i);
    }
  }
  lane.tombstones = 0;
}

bool Simulator::StepLane(Lane& lane) {
  while (!lane.heap_keys.empty()) {
    const double t = KeyTime(lane.heap_keys.front());
    const HeapMeta m = lane.heap_meta.front();
    HeapPopTop(lane);
    if (!Live(lane, m)) {
      --lane.tombstones;
      continue;
    }
    Slot& s = lane.slots[m.slot];
    s.state = SlotState::kExecuting;
    // Run the body from locals: the callback may schedule events that grow
    // the slab (invalidating `s`), cancel its own re-arm, or be the
    // closure's only owner. Descriptor events copy 40 bytes of POD instead
    // of moving a closure.
    const ContinuationDesc desc = s.desc;
    std::function<void()> fn;
    if (desc.comp < 0) {
      fn = std::move(s.fn);
    }
    Lane& ctrl = lanes_.front();
    ctrl.now = SimTime(t);
    lane.now = SimTime(t);
    ++executed_;
    --lane.live;
    // Serial scheduling context: this event's global ordinal, action counter
    // reset. Deliberately not restored after fn() — top-level code that
    // schedules between Step() calls continues this event's action stream,
    // which keeps (rank_hi, rank_lo) strictly increasing in scheduling
    // order exactly like the single sequence number it replaces.
    ctrl.ctx_hi = executed_;
    ctrl.ctx_k = 0;
    ctrl.ctx_j = 0;
    ctrl.ctx_replay = false;
    uint32_t prev_current = lane.current;
    uint32_t prev_exec_lane = serial_exec_lane_;
    lane.current = m.slot;
    serial_exec_lane_ = lane.index;
    if (desc.comp >= 0) {
      registry_.Run(desc.comp, desc.kind, desc.payload);
    } else {
      fn();
    }
    serial_exec_lane_ = prev_exec_lane;
    lane.current = prev_current;
    Slot& after = lane.slots[m.slot];
    if (after.state == SlotState::kRearmed) {
      if (desc.comp < 0) {
        after.fn = std::move(fn);  // hand the closure back for the next firing
      }
      after.state = SlotState::kPending;
    } else {
      RetireSlot(lane, m.slot);
    }
    return true;
  }
  return false;
}

bool Simulator::Step() {
  if (scheduler_ != nullptr) {
    return scheduler_->SerialStepOnce();
  }
  return StepLane(lanes_.front());
}

void Simulator::RunUntil(SimTime deadline) {
  if (scheduler_ != nullptr) {
    scheduler_->RunSerialUntil(deadline);
    return;
  }
  Lane& lane = lanes_.front();
  for (;;) {
    // Skip tombstones to see the genuine next event time.
    PruneStaleTop(lane);
    if (lane.heap_keys.empty() || SimTime(KeyTime(lane.heap_keys.front())) > deadline) {
      break;
    }
    StepLane(lane);
  }
  if (deadline > lane.now && deadline.is_finite()) {
    lane.now = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  if (scheduler_ != nullptr) {
    // Unbudgeted drains go through the windowed loop; budgeted ones stay
    // serial inside the scheduler so the cut lands on the exact event.
    scheduler_->RunUntilTrue([] { return false; }, max_events);
    return;
  }
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
}

bool Simulator::RunUntilTrue(const std::function<bool()>& predicate,
                             uint64_t max_events) {
  if (scheduler_ != nullptr) {
    return scheduler_->RunUntilTrue(predicate, max_events);
  }
  if (predicate()) {
    return true;
  }
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
    if (predicate()) {
      return true;
    }
  }
  return false;
}

void Simulator::ConfigureShards(const ShardOptions& options) {
  LAMINAR_CHECK_GE(options.num_shards, 1);
  LAMINAR_CHECK_LE(options.num_shards, 255);
  LAMINAR_CHECK(scheduler_ == nullptr) << "shards already configured";
  LAMINAR_CHECK_EQ(pending_events(), 0u)
      << "ConfigureShards must run before any event is scheduled";
  LAMINAR_CHECK_EQ(executed_, 0u);
  LAMINAR_CHECK(options.lane_lookahead_seconds.empty() ||
                options.lane_lookahead_seconds.size() ==
                    static_cast<size_t>(options.num_shards))
      << "lane_lookahead_seconds must be empty or one entry per shard";
  lanes_ = std::vector<Lane>(static_cast<size_t>(options.num_shards) + 1);
  for (size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i].index = static_cast<uint32_t>(i);
  }
  lane_control_enabled_ = options.lane_control;
  scheduler_ = std::make_unique<ShardScheduler>(this, options);
}

void Simulator::set_window_time_cap(double seconds) {
  LAMINAR_CHECK(scheduler_ != nullptr) << "set_window_time_cap requires shards";
  scheduler_->set_window_time_cap(seconds);
}

void Simulator::SetLaneLookahead(const std::vector<double>& lane_seconds) {
  LAMINAR_CHECK(scheduler_ != nullptr) << "SetLaneLookahead requires shards";
  scheduler_->set_lane_lookahead(lane_seconds);
}

namespace {

// One canonical event_heap entry: 48 little-endian bytes. Ranks and lane
// layout are excluded on purpose — both differ between serial and sharded
// runs at the same barrier while the canonical order does not.
void PackHeapEntry(std::string& out, uint64_t key, const ContinuationDesc& d) {
  auto put_le = [&out](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put_le(key, 8);
  put_le(static_cast<uint32_t>(d.comp), 4);
  put_le(d.kind, 2);
  put_le(0, 2);
  put_le(static_cast<uint64_t>(d.payload.a), 8);
  put_le(static_cast<uint64_t>(d.payload.b), 8);
  put_le(static_cast<uint64_t>(d.payload.c), 8);
  put_le(static_cast<uint64_t>(d.payload.d), 8);
}

constexpr size_t kHeapEntryBytes = 48;

uint64_t ReadLe(const std::string& s, size_t pos, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(s[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

void Simulator::Snapshot(SnapshotTx& tx) {
  tx.Begin("sim");
  double now_s = lanes_.front().now.seconds();
  uint64_t executed = executed_;
  tx.F64("now", &now_s);
  tx.U64("executed", &executed);
  if (tx.adopting()) {
    LAMINAR_CHECK_EQ(pending_events(), 0u)
        << "direct-boot adopt into a simulator that already scheduled events";
    executed_ = executed;
    for (Lane& lane : lanes_) {
      lane.now = SimTime(now_s);
    }
  }
  // Live entries across all lanes in canonical (time key, rank) order. The
  // sorted order is identical for serial and sharded runs stopped at the
  // same barrier even though the rank values themselves differ.
  struct Entry {
    uint64_t key;
    ShardRank rank;
    ContinuationDesc desc;
  };
  std::vector<Entry> entries;
  size_t live = 0;
  bool complete = true;
  for (const Lane& lane : lanes_) {
    live += lane.live;
    for (size_t i = 0; i < lane.heap_meta.size(); ++i) {
      const HeapMeta& m = lane.heap_meta[i];
      if (!Live(lane, m)) {
        continue;
      }
      const Slot& s = lane.slots[m.slot];
      entries.push_back(Entry{lane.heap_keys[i], m.rank, s.desc});
      if (s.desc.comp < 0) {
        complete = false;
      }
    }
  }
  LAMINAR_CHECK_EQ(entries.size(), live);
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    return KeyRankLess(x.key, x.rank, y.key, y.rank);
  });
  uint64_t live_u = static_cast<uint64_t>(live);
  tx.U64("live_events", &live_u);
  bool complete_b = complete;
  tx.Bool("heap_complete", &complete_b);
  std::string packed;
  packed.reserve(entries.size() * kHeapEntryBytes);
  for (const Entry& e : entries) {
    PackHeapEntry(packed, e.key, e.desc);
  }
  tx.Bytes("event_heap", &packed);
  if (tx.adopting()) {
    LAMINAR_CHECK_EQ(packed.size(), live_u * kHeapEntryBytes)
        << "event_heap section size disagrees with live_events";
    restored_.clear();
    restored_.reserve(live_u);
    for (size_t pos = 0; pos < packed.size(); pos += kHeapEntryBytes) {
      RestoredEvent ev;
      ev.key = ReadLe(packed, pos, 8);
      ev.desc.comp = static_cast<int32_t>(static_cast<uint32_t>(ReadLe(packed, pos + 8, 4)));
      ev.desc.kind = static_cast<uint16_t>(ReadLe(packed, pos + 12, 2));
      ev.desc.payload.a = static_cast<int64_t>(ReadLe(packed, pos + 16, 8));
      ev.desc.payload.b = static_cast<int64_t>(ReadLe(packed, pos + 24, 8));
      ev.desc.payload.c = static_cast<int64_t>(ReadLe(packed, pos + 32, 8));
      ev.desc.payload.d = static_cast<int64_t>(ReadLe(packed, pos + 40, 8));
      restored_.push_back(ev);
    }
  }
  tx.End();
}

void Simulator::RemintRestoredEvents() {
  // Canonical-order re-mint: ranks are minted from the restored top-level
  // context (ctx_hi = executed count, k increasing), so every pairwise
  // (key, rank) comparison — among restored events, and between restored
  // and future events — agrees with what a replay-anchored restore leaves
  // in the heap. See DESIGN.md §13 for the argument.
  Lane& ctrl = lanes_.front();
  ctrl.ctx_hi = executed_;
  ctrl.ctx_k = 0;
  ctrl.ctx_j = 0;
  ctrl.ctx_replay = false;
  std::vector<RestoredEvent> entries = std::move(restored_);
  restored_.clear();
  for (const RestoredEvent& e : entries) {
    LAMINAR_CHECK_GE(e.desc.comp, 0)
        << "snapshot contains a non-reconstructible (closure) event; "
           "direct-boot restore requires continuation descriptors";
    registry_.Require(e.desc.comp)
        .RestoreContinuation(e.desc.kind, e.desc.payload, SimTime(KeyTime(e.key)));
  }
}

void Simulator::set_trace(TraceSink* sink) {
  trace_ = sink;
  if (scheduler_ != nullptr) {
    scheduler_->OnTraceChanged();
  }
}

void Simulator::RunOrStage(std::function<void()> fn) {
  if (window_active_) {
    if (Lane* wl = MutableTlsLane()) {
      StageFromWindow(*wl, std::move(fn));
      return;
    }
  }
  fn();
}

ShardRank Simulator::NextActionRank(Lane& ctx) {
  if (ctx.ctx_replay) {
    // Replayed staged-action body: actions sort at the staging program point,
    // sub-ordered by j within the staging action's k slot.
    LAMINAR_CHECK(ctx.ctx_j < kRankJMax) << "replay action sub-index overflow";
    return MakeRank(ctx.ctx_hi,
                    ctx.ctx_lo_base |
                        (static_cast<uint64_t>(++ctx.ctx_j) << kRankJShift));
  }
  LAMINAR_CHECK(ctx.ctx_k < kRankKMax) << "per-event action counter overflow";
  return MakeRank(ctx.ctx_hi, ctx.ctx_k++ << kRankKShift);
}

void Simulator::StageFromWindow(Lane& lane, std::function<void()> fn) {
  // Queue rank = the staging event's own heap rank + a, which sorts the
  // staged action immediately after the staging event and before every event
  // that serially follows it (event ranks always carry a = 0 and any two
  // event ranks differ by at least 1 << kRankJShift). The separate
  // (replay_hi, replay_lo_base) pair seeds the replay context so schedules
  // performed by the body mint ranks at the staging event's program point.
  LAMINAR_CHECK(lane.ctx_a < kRankAMax) << "staged action counter overflow";
  LAMINAR_CHECK(lane.ctx_k < kRankKMax) << "per-event action counter overflow";
  lane.staged.push_back(StagedAction{
      TimeKey(lane.now), lane.ctx_event_rank + (++lane.ctx_a), lane.ctx_hi,
      lane.ctx_k++ << kRankKShift, std::move(fn)});
}

uint64_t Simulator::shard_windows() const {
  return scheduler_ != nullptr ? scheduler_->windows() : 0;
}
uint64_t Simulator::shard_window_events() const {
  return scheduler_ != nullptr ? scheduler_->window_events() : 0;
}
uint64_t Simulator::shard_serial_steps() const {
  return scheduler_ != nullptr ? scheduler_->serial_steps() : 0;
}
uint64_t Simulator::shard_actions_replayed() const {
  return scheduler_ != nullptr ? scheduler_->actions_replayed() : 0;
}
uint64_t Simulator::shard_rejects_no_floor() const {
  return scheduler_ != nullptr ? scheduler_->rejects_no_floor() : 0;
}
uint64_t Simulator::shard_rejects_narrow() const {
  return scheduler_ != nullptr ? scheduler_->rejects_narrow() : 0;
}
uint64_t Simulator::shard_rejects_few_lanes() const {
  return scheduler_ != nullptr ? scheduler_->rejects_few_lanes() : 0;
}

ShardWindowStats Simulator::window_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats() : ShardWindowStats{};
}

void Simulator::ExportWindowStats(MetricsRegistry& registry) const {
  const ShardWindowStats s = window_stats();
  auto set = [&registry](const char* name, double v) {
    registry.Gauge(name)->Set(v);
  };
  set("sim/window/windows", static_cast<double>(s.windows));
  set("sim/window/events", static_cast<double>(s.window_events));
  set("sim/window/serial_steps", static_cast<double>(s.serial_steps));
  set("sim/window/actions_replayed", static_cast<double>(s.actions_replayed));
  set("sim/window/rejects_no_floor", static_cast<double>(s.rejects_no_floor));
  set("sim/window/rejects_narrow", static_cast<double>(s.rejects_narrow));
  set("sim/window/rejects_few_lanes", static_cast<double>(s.rejects_few_lanes));
  set("sim/window/bound_fence", static_cast<double>(s.bound_fence));
  set("sim/window/bound_queue", static_cast<double>(s.bound_queue));
  set("sim/window/bound_cap", static_cast<double>(s.bound_cap));
  set("sim/window/bound_lookahead", static_cast<double>(s.bound_lookahead));
  set("sim/window/bound_lane_control",
      static_cast<double>(s.bound_lane_control));
  set("sim/window/fence_stall_rejects",
      static_cast<double>(s.fence_stall_rejects));
  set("sim/window/lane_control_events",
      static_cast<double>(s.lane_control_events));
  set("sim/window/mean_events_per_window", s.mean_events_per_window());
  set("sim/window/mean_eligible_lanes", s.mean_eligible_lanes());
  set("sim/window/serial_fraction", s.serial_fraction());
  set("sim/window/fence_stall_share", s.fence_stall_share());
}

PeriodicTask::PeriodicTask(Simulator* sim, double period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  LAMINAR_CHECK_GT(period_, 0.0);
}

PeriodicTask::PeriodicTask(Simulator* sim, double period, int32_t comp, uint16_t kind,
                           std::function<void()> fn)
    : sim_(sim), period_(period), comp_(comp), kind_(kind), fn_(std::move(fn)) {
  LAMINAR_CHECK_GT(period_, 0.0);
  LAMINAR_CHECK_GE(comp_, 0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = comp_ >= 0
                 ? sim_->ScheduleContinuationAfter(period_, comp_, kind_)
                 : sim_->ScheduleAfter(period_, [this] { Tick(); });
}

void PeriodicTask::RestorePending(SimTime at) {
  LAMINAR_CHECK_GE(comp_, 0) << "RestorePending on a closure-based PeriodicTask";
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
  }
  running_ = true;
  pending_ = sim_->ScheduleContinuationAt(at, comp_, kind_);
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void PeriodicTask::Tick() {
  pending_ = kInvalidEventId;
  if (!running_) {
    return;
  }
  fn_();
  // Re-arm the event record in place unless the callback stopped the task or
  // restarted it (Start() inside fn_ schedules its own fresh event).
  if (running_ && pending_ == kInvalidEventId) {
    pending_ = sim_->RearmCurrentAfter(period_);
  }
}

}  // namespace laminar
