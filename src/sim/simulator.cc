#include "src/sim/simulator.h"

#include <utility>

#include "src/common/logging.h"

namespace laminar {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  LAMINAR_CHECK(t >= now_) << "scheduling into the past: " << t.seconds() << " < "
                           << now_.seconds();
  EventId id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::ScheduleAfter(double delay, std::function<void()> fn) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::Step() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      continue;  // Cancelled; tombstone in the heap.
    }
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip tombstones to see the genuine next event time.
    while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > deadline) {
      break;
    }
    Step();
  }
  if (deadline > now_ && deadline.is_finite()) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
}

bool Simulator::RunUntilTrue(const std::function<bool()>& predicate, uint64_t max_events) {
  if (predicate()) {
    return true;
  }
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
    if (predicate()) {
      return true;
    }
  }
  return false;
}

PeriodicTask::PeriodicTask(Simulator* sim, double period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  LAMINAR_CHECK_GT(period_, 0.0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void PeriodicTask::Tick() {
  pending_ = kInvalidEventId;
  if (!running_) {
    return;
  }
  fn_();
  if (running_) {
    pending_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
  }
}

}  // namespace laminar
