#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/logging.h"

namespace laminar {
namespace {

// Non-negative IEEE-754 doubles order identically to their bit patterns read
// as unsigned integers, so the heap can compare timestamps with integer
// instructions. `+ 0.0` canonicalizes -0.0 (whose sign bit would otherwise
// sort it last).
uint64_t TimeKey(SimTime t) { return std::bit_cast<uint64_t>(t.seconds() + 0.0); }

double KeyTime(uint64_t key) { return std::bit_cast<double>(key); }

}  // namespace

uint32_t Simulator::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  if (++s.generation == 0) {
    s.generation = 1;  // keep packed ids nonzero and unambiguous
  }
  s.state = SlotState::kFree;
  free_slots_.push_back(slot);
}

void Simulator::HeapSiftUp(size_t i) {
  const uint64_t k = heap_keys_[i];
  const HeapMeta m = heap_meta_[i];
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    const uint64_t pk = heap_keys_[parent];
    if (!(k < pk || (k == pk && m.seq < heap_meta_[parent].seq))) {
      break;
    }
    heap_keys_[i] = pk;
    heap_meta_[i] = heap_meta_[parent];
    i = parent;
  }
  heap_keys_[i] = k;
  heap_meta_[i] = m;
}

void Simulator::HeapSiftDown(size_t i) {
  const uint64_t k = heap_keys_[i];
  const HeapMeta m = heap_meta_[i];
  const size_t n = heap_keys_.size();
  for (;;) {
    const size_t child = (i << 2) + 1;
    if (child >= n) {
      break;
    }
    size_t best = child;
    uint64_t bk = heap_keys_[child];
    const size_t end = child + 4 < n ? child + 4 : n;
    for (size_t c = child + 1; c < end; ++c) {
      const uint64_t ck = heap_keys_[c];
      if (ck < bk || (ck == bk && heap_meta_[c].seq < heap_meta_[best].seq)) {
        best = c;
        bk = ck;
      }
    }
    if (!(bk < k || (bk == k && heap_meta_[best].seq < m.seq))) {
      break;
    }
    heap_keys_[i] = bk;
    heap_meta_[i] = heap_meta_[best];
    i = best;
  }
  heap_keys_[i] = k;
  heap_meta_[i] = m;
}

void Simulator::HeapPopTop() {
  const uint64_t bk = heap_keys_.back();
  const HeapMeta bm = heap_meta_.back();
  heap_keys_.pop_back();
  heap_meta_.pop_back();
  const size_t n = heap_keys_.size();
  if (n == 0) {
    return;
  }
  // Bottom-up pop: walk the hole at the root down along minimum children to
  // a leaf (no comparisons against the displaced back element on the way),
  // then drop that element into the hole and sift it up — it rarely rises.
  size_t i = 0;
  for (;;) {
    const size_t child = (i << 2) + 1;
    if (child >= n) {
      break;
    }
    size_t best = child;
    uint64_t bk2 = heap_keys_[child];
    const size_t end = child + 4 < n ? child + 4 : n;
    for (size_t c = child + 1; c < end; ++c) {
      const uint64_t ck = heap_keys_[c];
      if (ck < bk2 || (ck == bk2 && heap_meta_[c].seq < heap_meta_[best].seq)) {
        best = c;
        bk2 = ck;
      }
    }
    heap_keys_[i] = bk2;
    heap_meta_[i] = heap_meta_[best];
    i = best;
  }
  heap_keys_[i] = bk;
  heap_meta_[i] = bm;
  HeapSiftUp(i);
}

void Simulator::PushHeap(SimTime t, uint32_t slot, uint32_t generation) {
  heap_keys_.push_back(TimeKey(t));
  heap_meta_.push_back(HeapMeta{next_seq_++, slot, generation});
  HeapSiftUp(heap_keys_.size() - 1);
}

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  LAMINAR_CHECK(t >= now_) << "scheduling into the past: " << t.seconds() << " < "
                           << now_.seconds();
  uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.state = SlotState::kPending;
  PushHeap(t, slot, s.generation);
  ++live_;
  return Pack(slot, s.generation);
}

EventId Simulator::ScheduleAfter(double delay, std::function<void()> fn) {
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::RearmCurrentAfter(double delay) {
  LAMINAR_CHECK(current_ != kNoCurrent) << "RearmCurrentAfter outside an event callback";
  LAMINAR_CHECK(delay >= 0.0) << "negative delay " << delay;
  Slot& s = slots_[current_];
  LAMINAR_CHECK(s.state == SlotState::kExecuting) << "current event already re-armed";
  if (++s.generation == 0) {
    s.generation = 1;
  }
  s.state = SlotState::kRearmed;
  PushHeap(now_ + delay, current_, s.generation);
  ++live_;
  return Pack(current_, s.generation);
}

bool Simulator::Cancel(EventId id) {
  uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (s.generation != GenerationOf(id)) {
    return false;
  }
  if (s.state == SlotState::kPending) {
    RetireSlot(slot);
    --live_;
    ++tombstones_;
    MaybeCompactHeap();
    return true;
  }
  if (s.state == SlotState::kRearmed) {
    // Cancelled from inside its own callback; the closure is out on loan to
    // Step(), so just undo the re-arm and let Step() retire the slot.
    if (++s.generation == 0) {
      s.generation = 1;
    }
    s.state = SlotState::kExecuting;
    --live_;
    ++tombstones_;
    return true;
  }
  return false;
}

void Simulator::PruneStaleTop() {
  while (!heap_keys_.empty() && !Live(heap_meta_.front())) {
    HeapPopTop();
    --tombstones_;
  }
}

void Simulator::MaybeCompactHeap() {
  if (tombstones_ < 64 || tombstones_ * 2 < heap_keys_.size()) {
    return;
  }
  size_t out = 0;
  for (size_t i = 0; i < heap_keys_.size(); ++i) {
    if (Live(heap_meta_[i])) {
      heap_keys_[out] = heap_keys_[i];
      heap_meta_[out] = heap_meta_[i];
      ++out;
    }
  }
  heap_keys_.resize(out);
  heap_meta_.resize(out);
  // Floyd heap construction for the 4-ary layout.
  if (out > 1) {
    for (size_t i = (out - 2) / 4 + 1; i-- > 0;) {
      HeapSiftDown(i);
    }
  }
  tombstones_ = 0;
}

bool Simulator::Step() {
  while (!heap_keys_.empty()) {
    const double t = KeyTime(heap_keys_.front());
    const HeapMeta m = heap_meta_.front();
    HeapPopTop();
    if (!Live(m)) {
      --tombstones_;
      continue;
    }
    Slot& s = slots_[m.slot];
    s.state = SlotState::kExecuting;
    // Run the closure from a local: the callback may schedule events that
    // grow the slab (invalidating `s`), cancel its own re-arm, or be the
    // closure's only owner.
    std::function<void()> fn = std::move(s.fn);
    now_ = SimTime(t);
    ++executed_;
    --live_;
    uint32_t prev_current = current_;
    current_ = m.slot;
    fn();
    current_ = prev_current;
    Slot& after = slots_[m.slot];
    if (after.state == SlotState::kRearmed) {
      after.fn = std::move(fn);  // hand the closure back for the next firing
      after.state = SlotState::kPending;
    } else {
      RetireSlot(m.slot);
    }
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    // Skip tombstones to see the genuine next event time.
    PruneStaleTop();
    if (heap_keys_.empty() || SimTime(KeyTime(heap_keys_.front())) > deadline) {
      break;
    }
    Step();
  }
  if (deadline > now_ && deadline.is_finite()) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
}

bool Simulator::RunUntilTrue(const std::function<bool()>& predicate, uint64_t max_events) {
  if (predicate()) {
    return true;
  }
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
    if (predicate()) {
      return true;
    }
  }
  return false;
}

PeriodicTask::PeriodicTask(Simulator* sim, double period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  LAMINAR_CHECK_GT(period_, 0.0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = sim_->ScheduleAfter(period_, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void PeriodicTask::Tick() {
  pending_ = kInvalidEventId;
  if (!running_) {
    return;
  }
  fn_();
  // Re-arm the event record in place unless the callback stopped the task or
  // restarted it (Start() inside fn_ schedules its own fresh event).
  if (running_ && pending_ == kInvalidEventId) {
    pending_ = sim_->RearmCurrentAfter(period_);
  }
}

}  // namespace laminar
