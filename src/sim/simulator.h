// Discrete-event simulation engine.
//
// The simulator owns a virtual clock and a priority queue of scheduled
// callbacks. Events at equal timestamps execute in scheduling order, which —
// combined with the deterministic Rng streams (common/rng.h) — makes every
// run bit-reproducible. The engine is single-threaded by design: RL cluster
// behaviour is modelled by the *timing* of events, not by real concurrency.
#ifndef LAMINAR_SRC_SIM_SIMULATOR_H_
#define LAMINAR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"

namespace laminar {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (>= Now()). Returns an id that
  // can be passed to Cancel() until the event fires.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules `fn` after `delay` seconds (>= 0).
  EventId ScheduleAfter(double delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);
  bool IsPending(EventId id) const { return callbacks_.count(id) > 0; }

  // Executes the next pending event, advancing the clock. Returns false if
  // the queue is empty.
  bool Step();

  // Runs events until the clock would pass `deadline`; the clock finishes at
  // exactly `deadline` (events at later times remain pending).
  void RunUntil(SimTime deadline);

  // Runs until no events remain or `max_events` have executed.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs until `predicate()` returns true (checked after every event) or the
  // queue drains. Returns true if the predicate was satisfied.
  bool RunUntilTrue(const std::function<bool()>& predicate,
                    uint64_t max_events = UINT64_MAX);

  size_t pending_events() const { return callbacks_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    EventId id;
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 1;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

// A repeating timer: runs `fn` every `period` seconds starting at
// `start + period` until Stop() or the owner is destroyed. Used for
// heartbeats and the rollout manager's periodic repack check.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, double period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(double period) { period_ = period; }

 private:
  void Tick();

  Simulator* sim_;
  double period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_SIMULATOR_H_
