// Discrete-event simulation engine.
//
// The simulator owns a virtual clock and a priority queue of scheduled
// callbacks. Events at equal timestamps execute in scheduling order, which —
// combined with the deterministic Rng streams (common/rng.h) — makes every
// run bit-reproducible.
//
// Serial internals (DESIGN.md "Simulation engine internals"): event records
// live in a slab pool indexed by a 24-bit slot with a 32-bit generation tag
// packed into the EventId, so Cancel()/IsPending() are O(1) array probes with
// no hashing. Cancellation is lazy — the heap entry stays behind as a
// tombstone that Step() skips when popped, and the heap is compacted when
// tombstones outnumber live entries.
//
// Sharded execution (DESIGN.md §12): ConfigureShards() partitions the event
// queue into lanes — lane 0 holds control-plane ("fence") events, lanes 1..S
// hold replica-affine events routed by ScheduleAtOn()/ScheduleAfterOn(). A
// ShardScheduler (sim/shard_exec.h) then executes lane events in conservative
// windows bounded by the next fence key, staging cross-shard effects for a
// deterministic (time, rank) merge at window barriers. Event ordering is
// governed by a hierarchical rank — (ordinal of the scheduling context,
// intra-context action index) — that reproduces the serial scheduling-order
// tiebreak bit-for-bit, so a sharded run emits byte-identical reports,
// ledgers, and traces. Without ConfigureShards() the engine is exactly the
// single-lane serial design described above.
#ifndef LAMINAR_SRC_SIM_SIMULATOR_H_
#define LAMINAR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/continuation.h"

namespace laminar {

class TraceSink;
class ShardScheduler;
class LaneStagingSink;
class SnapshotTx;

// Packed (generation << 32) | (lane << 24) | pool slot. Generations start at
// 1, so a valid id is never 0. Lane 0 is the control lane; serial simulators
// only ever mint lane-0 ids, keeping the packing identical to the historical
// (generation << 32) | slot layout.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// Event-ordering rank: (rank_hi << 64) | rank_lo.
//   rank_hi — global execution ordinal of the scheduling context (the event
//             whose callback performed the schedule; the count of events
//             executed so far for top-level code). During a shard window it
//             temporarily carries kTempRankBit | lane-local execution index
//             and is resolved to a final ordinal at the window barrier.
//   rank_lo — three sub-fields, (k << 28) | (j << 12) | a:
//             k — action counter of the scheduling context; every schedule
//                 and every staged action (effect, trace emission) consumes
//                 one k in program order.
//             j — replay sub-index: actions performed while replaying a
//                 staged action take j = 1, 2, ... under the staging k, so
//                 they sort exactly at the staging point — after earlier
//                 sibling actions, before later ones — as if run inline.
//             a — staged-action queue index: a staged action's replay-queue
//                 rank is its staging *event's own rank* plus a = 1, 2, ...,
//                 placing the replay immediately after the staging event and
//                 before every event that serially follows it. Event ranks
//                 always carry a = 0, and distinct event ranks differ by at
//                 least 1 << 12, so the offset can never collide.
// Lexicographic (time, rank) comparisons reproduce the serial engine's
// scheduling-order tiebreak exactly: rank values may differ between serial
// and sharded runs, but every comparison agrees, so observable behaviour is
// identical.
//
// Stored as an explicit (hi, lo) pair rather than unsigned __int128: the
// pair packs heap metadata to 24 bytes (16-byte __int128 alignment forced
// 32) and compares with two 64-bit instructions instead of a 128-bit
// carry chain.
struct ShardRank {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend constexpr bool operator<(const ShardRank& x, const ShardRank& y) {
    return x.hi < y.hi || (x.hi == y.hi && x.lo < y.lo);
  }
  friend constexpr bool operator==(const ShardRank& x, const ShardRank& y) {
    return x.hi == y.hi && x.lo == y.lo;
  }
  // Staged-action queue offset: event ranks always carry a zero `a`
  // sub-field, so adding the small staged-action index never carries out of
  // rank_lo.
  friend constexpr ShardRank operator+(const ShardRank& x, uint64_t a) {
    return ShardRank{x.hi, x.lo + a};
  }
};

// Options for ConfigureShards().
struct ShardOptions {
  // Number of replica lanes; lanes 1..num_shards accept affine events via
  // ScheduleAtOn()/ScheduleAfterOn(). Must be >= 1; 1 keeps the engine
  // effectively serial but still exercises the window machinery.
  int num_shards = 1;
  // Worker threads for window execution. 0 = the coordinator executes lanes
  // itself (no thread handoff — right for single-core hosts); -1 = derive
  // from the process-wide ThreadBudget (common/thread_budget.h), which shares
  // cores with the sweep runner's run-level parallelism.
  int num_workers = -1;
  // Cross-shard lookahead horizon (the alpha of the cluster's alpha-beta
  // network model): a window-context schedule targeting another lane must
  // land at least this far past the scheduling clock. Enforced by assert.
  double lookahead_seconds = 0.0;
  // Topology-derived per-lane lookahead (DESIGN.md §12): entry i is the
  // horizon for replica lane i+1, derived from the decode-step times and
  // link alpha-beta latencies of the machines mapped onto that lane. When
  // non-empty it must have num_shards entries and replaces
  // lookahead_seconds in the window-bound computation (each lane's head
  // contributes head + lane_lookahead[i] as a bound candidate);
  // lookahead_seconds remains the validation floor for lanes past the
  // vector's end.
  std::vector<double> lane_lookahead_seconds;
  // Lane-riding control traffic (DESIGN.md §12): when true, control events
  // classified as lane-local (relay pull completions, machine stall thaws)
  // scheduled via ScheduleLaneControlAfter() ride their affine replica lane
  // instead of fencing every window on lane 0. They never execute inside a
  // window — the window executor halts the lane at them and they run with
  // full serial semantics at the next serial step — so results stay
  // byte-identical; only window width changes. false routes every such
  // event to the control lane (PR 6 behaviour, the fuzzer's differential
  // twin).
  bool lane_control = true;
  // Horizon-collapse threshold: when the gap between the earliest eligible
  // lane event and the window bound is below this, fall back to serial
  // stepping instead of opening a window.
  double min_window_seconds = 0.0;
  // Open a window only when at least this many lanes have eligible events;
  // otherwise take the serial slab-heap path.
  int min_parallel_lanes = 1;
};

// Deterministic window-quality counters (DESIGN.md §12). Everything here is
// a function of the window-formation decisions alone — worker count and
// thread scheduling never enter — so the struct is byte-identical across
// worker counts at a fixed shard count, and all-zero for an unsharded run.
// Deliberately excluded from reports, traces, and snapshots: the values
// legitimately differ between serial and sharded runs of the same scenario,
// so folding them into any fingerprinted surface would break the
// byte-identity gates. Export is opt-in (Simulator::ExportWindowStats,
// bench --window-stats).
struct ShardWindowStats {
  uint64_t windows = 0;         // windows opened
  uint64_t window_events = 0;   // events executed inside windows
  uint64_t serial_steps = 0;    // serial fallback steps
  uint64_t actions_replayed = 0;
  // Why a window did not open.
  uint64_t rejects_no_floor = 0;
  uint64_t rejects_narrow = 0;
  uint64_t rejects_few_lanes = 0;
  // Which candidate set the bound of each opened window.
  uint64_t bound_fence = 0;       // control-lane head (fence stall)
  uint64_t bound_queue = 0;       // staged-action queue head
  uint64_t bound_cap = 0;         // run time cap
  uint64_t bound_lookahead = 0;   // some lane's head + its lookahead
  uint64_t bound_lane_control = 0;  // a lane-anchored control event's horizon
  // Rejects where the control-lane fence (not the lookahead horizon) was
  // the binding candidate: the fence-stall attribution for windows that
  // never opened.
  uint64_t fence_stall_rejects = 0;
  // Sum of eligible lanes over opened windows (occupancy numerator).
  uint64_t eligible_lane_sum = 0;
  // Classified control events that rode a replica lane off the fence.
  uint64_t lane_control_events = 0;

  double mean_events_per_window() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(window_events) /
                              static_cast<double>(windows);
  }
  double mean_eligible_lanes() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(eligible_lane_sum) /
                              static_cast<double>(windows);
  }
  // Fraction of executed events that took the serial path. 1.0 when nothing
  // ever ran in a window — in particular for any unsharded (shards=1) run.
  double serial_fraction() const {
    uint64_t total = serial_steps + window_events;
    return total == 0 ? 1.0
                      : static_cast<double>(serial_steps) /
                            static_cast<double>(total);
  }
  // Share of window-formation attempts (opened or rejected) where the
  // control-lane fence was the binding candidate: opened windows whose bound
  // was the fence, plus rejects the fence caused. Counting only opened
  // windows would under-attribute — the fence hurts most where it keeps a
  // window from opening at all.
  double fence_stall_share() const {
    uint64_t attempts =
        windows + rejects_no_floor + rejects_narrow + rejects_few_lanes;
    return attempts == 0
               ? 0.0
               : static_cast<double>(bound_fence + fence_stall_rejects) /
                     static_cast<double>(attempts);
  }
};

class MetricsRegistry;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // The current clock: the executing lane's clock inside a shard window, the
  // serial/control clock (lane 0) otherwise.
  SimTime Now() const {
    if (window_active_) {
      if (const Lane* lane = TlsLane()) {
        return lane->now;
      }
    }
    return lanes_.front().now;
  }

  // Schedules `fn` to run at absolute time `t` (>= Now()). Returns an id that
  // can be passed to Cancel() until the event fires. Targets the scheduling
  // context's own lane inside a shard window, the control lane otherwise.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules `fn` after `delay` seconds (>= 0). The key is always computed
  // against the scheduling context's shard-local clock — never a stale global
  // clock — so a cross-shard callback can never produce a timestamp below the
  // window floor it was staged under.
  EventId ScheduleAfter(double delay, std::function<void()> fn);

  // Shard-affine scheduling: `shard` 0 targets the control lane, 1..S a
  // replica lane. Identical to ScheduleAt()/ScheduleAfter() when sharding is
  // not configured (any shard value collapses to the single serial lane).
  // Scheduling onto a foreign lane from inside a shard window stages the
  // schedule for the window barrier and returns kInvalidEventId (the event
  // cannot be cancelled before it materializes); such schedules must respect
  // the lookahead horizon.
  EventId ScheduleAtOn(int shard, SimTime t, std::function<void()> fn);
  EventId ScheduleAfterOn(int shard, double delay, std::function<void()> fn);

  // Data-only scheduling (DESIGN.md §13): instead of a closure the event
  // stores a (component, kind, payload) descriptor dispatched through the
  // continuation registry when it fires. Descriptor events serialize into
  // the snapshot's event_heap section, which is what makes direct-boot
  // restore possible; persistent scheduling paths must use these overloads.
  EventId ScheduleContinuationAt(SimTime t, int32_t comp, uint16_t kind,
                                 const ContinuationPayload& payload = {});
  EventId ScheduleContinuationAfter(double delay, int32_t comp, uint16_t kind,
                                    const ContinuationPayload& payload = {});
  EventId ScheduleContinuationAtOn(int shard, SimTime t, int32_t comp,
                                   uint16_t kind,
                                   const ContinuationPayload& payload = {});
  EventId ScheduleContinuationAfterOn(int shard, double delay, int32_t comp,
                                      uint16_t kind,
                                      const ContinuationPayload& payload = {});

  // Lane-riding control traffic (DESIGN.md §12): schedules a control event
  // whose effects are provably local to one replica lane (plus
  // control-plane state no window event ever reads) onto that lane instead
  // of the fence. The event never executes inside a window — the window
  // executor halts its lane at it and the serial loop runs it with full
  // serial semantics in global (time, rank) order — so behaviour is
  // byte-identical to fencing it; windows just stop paying for it. Falls
  // back to the control lane when sharding is off, lane control is
  // disabled, or `shard` is out of range.
  EventId ScheduleLaneControlAfter(int shard, double delay, int32_t comp,
                                   uint16_t kind,
                                   const ContinuationPayload& payload = {});
  EventId ScheduleLaneControlAt(int shard, SimTime t, int32_t comp,
                                uint16_t kind,
                                const ContinuationPayload& payload = {});

  // The canonical machine -> lane affinity map shared by the driver (replica
  // placement) and the control-traffic classifiers (relay pulls, stall
  // thaws): machine m rides lane 1 + m % num_shards. 0 (the control lane)
  // when sharding is not configured.
  int AffinityShard(int machine) const {
    int shards = num_shards();
    return shards > 0 && sharded() ? 1 + machine % shards : 0;
  }

  // Components register their continuation dispatch here (at construction /
  // Setup, before any descriptor event fires or is restored).
  ContinuationRegistry& continuations() { return registry_; }
  const ContinuationRegistry& continuations() const { return registry_; }

  // Re-schedules the event whose callback is currently executing to fire
  // again after `delay` seconds, reusing its stored closure — no new
  // std::function is constructed. Only valid inside an event callback.
  // Returns the id of the re-armed event (cancellable like any other).
  EventId RearmCurrentAfter(double delay);

  // Cancels a pending event. Returns true if the event was still pending.
  // Inside a shard window only own-lane events may be cancelled.
  bool Cancel(EventId id);
  bool IsPending(EventId id) const {
    uint32_t li = LaneOf(id);
    if (li >= lanes_.size()) {
      return false;
    }
    const Lane& lane = lanes_[li];
    uint32_t slot = SlotOf(id);
    if (slot >= lane.slots.size()) {
      return false;
    }
    const Slot& s = lane.slots[slot];
    return s.generation == GenerationOf(id) &&
           (s.state == SlotState::kPending || s.state == SlotState::kRearmed);
  }

  // Executes the next pending event, advancing the clock. Returns false if
  // the queue is empty. With shards configured this is a serial step over the
  // union of lanes (plus any staged actions that come due first).
  bool Step();

  // Runs events until the clock would pass `deadline`; the clock finishes at
  // exactly `deadline` (events at later times remain pending). Serial even
  // with shards configured.
  void RunUntil(SimTime deadline);

  // Runs until no events remain or `max_events` have executed.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs until `predicate()` returns true (checked after every serially
  // executed event and after every window barrier) or the queue drains.
  // Returns true if the predicate was satisfied. With shards configured the
  // predicate must only change state in control-lane events or staged
  // effects — true for the driver's iteration/deadline predicate.
  bool RunUntilTrue(const std::function<bool()>& predicate,
                    uint64_t max_events = UINT64_MAX);

  // Partitions the queue into `options.num_shards` replica lanes plus the
  // control lane and installs the window scheduler. Must be called before any
  // event is scheduled. See ShardOptions.
  void ConfigureShards(const ShardOptions& options);
  bool sharded() const { return scheduler_ != nullptr; }
  int num_shards() const { return static_cast<int>(lanes_.size()) - (sharded() ? 1 : 0); }
  // Events with time strictly greater than `seconds` never execute inside a
  // window — they take the serial path, so a run predicate that stops on a
  // time cap stops at exactly the same event as a serial run.
  void set_window_time_cap(double seconds);
  // Installs topology-derived per-lane lookahead horizons after the fleet is
  // built (ConfigureShards runs before replicas exist, so lane->machine
  // composition is unknown then). `lane_seconds` must hold one entry per
  // replica lane. No-op requirement: must be called before the first window
  // opens. CHECK-fails when unsharded.
  void SetLaneLookahead(const std::vector<double>& lane_seconds);

  // True while the calling thread is executing a replica-lane event inside a
  // shard window (staging context).
  bool InShardWindow() const { return window_active_ && TlsLane() != nullptr; }

  // Runs `fn` immediately in a serial context; inside a shard window, stages
  // it to run at the window barrier merge point instead, keyed by the staging
  // event's (time, rank) so the replay order is exactly the serial inline
  // order. Used to defer zero-latency cross-shard callbacks (completion,
  // progress, batch-done) whose bodies touch global state.
  void RunOrStage(std::function<void()> fn);

  size_t pending_events() const {
    size_t n = 0;
    for (const Lane& lane : lanes_) {
      n += lane.live;
    }
    return n;
  }
  uint64_t executed_events() const { return executed_; }

  // Structured tracing (src/trace). Null when tracing is disabled — the
  // emission macros test this pointer and do nothing else, so instrumented
  // code costs one predictable branch per site in ordinary runs. The sink is
  // owned by the driver; the simulator only hands it to instrumented code.
  // Inside a shard window the lane's staging sink is returned instead, which
  // defers emissions to the window barrier in serial order.
  TraceSink* trace() const {
    if (trace_ == nullptr) {
      return nullptr;  // disabled: macros skip, no staging either
    }
    if (window_active_) {
      if (const Lane* lane = TlsLane()) {
        return lane->staging_sink;
      }
    }
    return trace_;
  }
  void set_trace(TraceSink* sink);

  // Introspection for tests and benches: slab slots ever allocated (bounded
  // by the peak number of simultaneously pending events, not by churn) and
  // heap entries including tombstones awaiting compaction. Both sum over
  // lanes.
  size_t event_pool_slots() const {
    size_t n = 0;
    for (const Lane& lane : lanes_) {
      n += lane.slots.size();
    }
    return n;
  }
  size_t heap_entries() const {
    size_t n = 0;
    for (const Lane& lane : lanes_) {
      n += lane.heap_keys.size();
    }
    return n;
  }

  // Engine snapshot (src/snapshot, DESIGN.md §13): the clock, the
  // executed-event count, and the live event heap serialized in canonical
  // (time, rank) order as (time_key, component, kind, payload) entries.
  // Rank values, per-lane layout, and slot generations are deliberately
  // excluded — they legitimately differ between serial and sharded runs at
  // the same barrier, while the canonical entry list is byte-identical. In
  // adopt mode the clock and executed count are seated on every lane and
  // the entries are stashed; the driver calls RemintRestoredEvents() after
  // the full component adoption walk so RestoreContinuation implementations
  // see fully-adopted component state.
  void Snapshot(SnapshotTx& tx);

  // Re-schedules every stashed snapshot entry through the continuation
  // registry, minting ranks in canonical order from the restored top-level
  // context — which reproduces exactly the (key, rank) comparisons a
  // replay-anchored restore would have left in the heap. CHECK-fails if the
  // blob contained a non-reconstructible (closure) event.
  void RemintRestoredEvents();
  size_t restored_events_pending() const { return restored_.size(); }

  // Shard-execution counters (zero when unsharded): windows opened, events
  // executed inside windows, serial fallback steps taken by the window loop,
  // and staged actions (effects, traces, cross-lane schedules) replayed.
  uint64_t shard_windows() const;
  uint64_t shard_window_events() const;
  uint64_t shard_serial_steps() const;
  uint64_t shard_actions_replayed() const;
  uint64_t shard_rejects_no_floor() const;
  uint64_t shard_rejects_narrow() const;
  uint64_t shard_rejects_few_lanes() const;

  // Window-quality profile (DESIGN.md §12): the full deterministic counter
  // set, all-zero when unsharded (serial_fraction() then reads 1.0 by
  // convention). Never enters reports, traces, or snapshots — see
  // ShardWindowStats.
  ShardWindowStats window_stats() const;
  // Opt-in export into a caller-owned registry (gauges under
  // "sim/window/..."). The caller must not snapshot that registry into an
  // LMSNAP1 blob: the values differ between serial and sharded runs.
  void ExportWindowStats(MetricsRegistry& registry) const;

 private:
  friend class ShardScheduler;
  friend class LaneStagingSink;

  enum class SlotState : uint8_t {
    kFree,       // on the free list
    kPending,    // scheduled, heap entry live
    kExecuting,  // callback running right now (closure moved out)
    kRearmed,    // re-scheduled from inside its own callback
  };

  struct Slot {
    std::function<void()> fn;
    ContinuationDesc desc;  // comp >= 0: data-only event, fn unused
    uint32_t generation = 1;
    SlotState state = SlotState::kFree;
    // Lane-anchored control event (ScheduleLaneControlAt): rides a replica
    // lane but never executes inside a window — the window executor halts
    // the lane at it and the serial loop runs it in global order.
    bool lane_control = false;
  };

  // One live heap entry read back from a snapshot, awaiting re-mint.
  struct RestoredEvent {
    uint64_t key = 0;
    ContinuationDesc desc;
  };

  // The heap is stored as parallel arrays (struct-of-arrays): heap_keys
  // holds just the timestamps the sift comparisons read — eight entries per
  // cache line — while heap_meta carries the payload moved alongside.
  // Timestamps are stored bit-cast to uint64: non-negative IEEE-754 doubles
  // order identically to their bit patterns, and integer compares let the
  // sift loops run on conditional moves instead of mispredicted branches.
  // 24 bytes: the (hi, lo) rank pair plus slot and generation.
  struct HeapMeta {
    ShardRank rank;
    uint32_t slot;
    uint32_t generation;
  };
  static_assert(sizeof(HeapMeta) == 24, "heap metadata should stay 3 words");

  // One executed window event: its heap key and (possibly temporary) rank,
  // recorded in lane execution order for the barrier's ordinal merge.
  struct ExecRecord {
    uint64_t key;
    ShardRank rank;
  };

  // A deferred action staged during window execution: an effect body, a
  // trace emission, or a cross-lane schedule. Replayed serially in
  // (key, rank) order once the window loop's clock reaches it. `rank` (the
  // staging event's rank + a) orders the replay among events and other
  // actions; (replay_hi, replay_lo_base) — the staging event's execution
  // ordinal and the staging k — seed the replay context so actions the body
  // performs mint ranks in the j sub-space of the staging point.
  struct StagedAction {
    uint64_t key;
    ShardRank rank;
    uint64_t replay_hi;
    uint64_t replay_lo_base;
    std::function<void()> fn;
  };

  // One event partition with its own clock, slab, heap, and scheduling
  // context. Lane 0 is the control lane driven by the serial loop; lanes
  // 1..S execute inside shard windows. During a window each lane is touched
  // by exactly one thread.
  struct Lane {
    SimTime now = SimTime::Zero();
    uint32_t index = 0;
    uint32_t current = kNoCurrent;
    // Scheduling context: rank_hi of the running context, the action counter
    // k, the staged-action counter a plus the executing event's own rank
    // (window execution only), and — in staged-action replay — the fixed
    // rank_lo base plus the sub-index j.
    uint64_t ctx_hi = 0;
    uint64_t ctx_lo_base = 0;
    uint64_t ctx_k = 0;
    uint32_t ctx_j = 0;
    uint32_t ctx_a = 0;
    ShardRank ctx_event_rank;
    bool ctx_replay = false;
    size_t live = 0;        // pending + rearmed events
    size_t tombstones = 0;  // stale entries still in the heap
    std::vector<uint64_t> heap_keys;
    std::vector<HeapMeta> heap_meta;
    std::vector<Slot> slots;
    std::vector<uint32_t> free_slots;
    // Window-execution state (ShardScheduler only).
    std::vector<ExecRecord> exec_log;
    std::vector<StagedAction> staged;
    TraceSink* staging_sink = nullptr;  // owned by the ShardScheduler
  };

  static constexpr uint32_t kNoCurrent = UINT32_MAX;
  static constexpr int kLaneShift = 24;
  static constexpr uint32_t kSlotMask = (1u << kLaneShift) - 1;
  static constexpr uint64_t kTempRankBit = 1ull << 63;
  // rank_lo sub-fields: (k << 28) | (j << 12) | a. k counts actions of the
  // running context, j counts actions performed while replaying a staged
  // action (they sort at the staging program point), a counts staged actions
  // of one event (queue rank = the event's own rank + a, placing replay
  // immediately after the event and before anything serially later).
  static constexpr int kRankKShift = 28;
  static constexpr int kRankJShift = 12;
  static constexpr uint64_t kRankKMax = (1ull << 36) - 1;
  static constexpr uint64_t kRankJMax = (1ull << 16) - 1;
  static constexpr uint64_t kRankAMax = (1ull << 12) - 1;

  static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id) & kSlotMask; }
  static uint32_t LaneOf(EventId id) {
    return (static_cast<uint32_t>(id) >> kLaneShift) & 0xFF;
  }
  static uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static EventId Pack(uint32_t lane, uint32_t slot, uint32_t generation) {
    return (static_cast<uint64_t>(generation) << 32) |
           (static_cast<uint64_t>(lane) << kLaneShift) | slot;
  }
  static ShardRank MakeRank(uint64_t hi, uint64_t lo) { return ShardRank{hi, lo}; }
  static uint64_t RankHi(ShardRank r) { return r.hi; }
  static uint64_t RankLo(ShardRank r) { return r.lo; }

  // Window-thread context, set by the ShardScheduler around lane execution.
  static thread_local const Simulator* tls_owner_;
  static thread_local Lane* tls_lane_;

  // The executing window lane when called from a window thread of this
  // simulator, else null. The owner check keeps concurrent sweeps safe: a
  // sweep thread may run one simulator's window while other simulators on
  // the same thread stack are serial.
  const Lane* TlsLane() const {
    return (window_active_ && tls_owner_ == this) ? tls_lane_ : nullptr;
  }
  Lane* MutableTlsLane() {
    return (window_active_ && tls_owner_ == this) ? tls_lane_ : nullptr;
  }
  // The lane governing the calling context: the window lane on a window
  // thread, the control lane otherwise.
  Lane& CtxLane() {
    Lane* lane = MutableTlsLane();
    return lane != nullptr ? *lane : lanes_.front();
  }

  static uint64_t TimeKey(SimTime t);
  static double KeyTime(uint64_t key);
  static bool KeyRankLess(uint64_t k1, ShardRank r1, uint64_t k2, ShardRank r2) {
    return k1 < k2 || (k1 == k2 && r1 < r2);
  }

  // Consumes the next action rank of the current scheduling context.
  ShardRank NextActionRank(Lane& ctx);

  // A heap entry is live iff its (slot, generation) still names a scheduled
  // event; anything else is a tombstone left behind by Cancel(). kRearmed
  // counts: its heap entry is the future firing, and compaction must keep it
  // even while the current callback is still on the stack.
  static bool Live(const Lane& lane, const HeapMeta& m) {
    const Slot& s = lane.slots[m.slot];
    return s.generation == m.generation &&
           (s.state == SlotState::kPending || s.state == SlotState::kRearmed);
  }

  EventId ScheduleOnLane(uint32_t lane_idx, SimTime t, std::function<void()> fn);
  EventId ScheduleDescOnLane(uint32_t lane_idx, SimTime t,
                             const ContinuationDesc& desc,
                             bool lane_control = false);
  void StageFromWindow(Lane& lane, std::function<void()> fn);

  static uint32_t AllocSlot(Lane& lane);
  static void RetireSlot(Lane& lane, uint32_t slot);
  static void PushHeap(Lane& lane, SimTime t, uint32_t slot, uint32_t generation,
                       ShardRank rank);
  // 4-ary min-heap primitives (shallower than a binary heap, so pushes/pops
  // touch fewer cache lines).
  static void HeapSiftUp(Lane& lane, size_t i);
  static void HeapSiftDown(Lane& lane, size_t i);
  static void HeapPopTop(Lane& lane);
  // Pops tombstones off the heap top so heap front is a live event.
  static void PruneStaleTop(Lane& lane);
  // Rebuilds the heap without tombstones once they dominate it.
  static void MaybeCompactHeap(Lane& lane);

  // Executes lane's top event with serial semantics (global ordinal, effects
  // inline). The caller must have pruned stale tops.
  bool StepLane(Lane& lane);

  TraceSink* trace_ = nullptr;
  uint64_t executed_ = 0;
  bool window_active_ = false;   // set only around window execution
  bool lane_control_enabled_ = false;  // ShardOptions::lane_control && sharded
  uint32_t serial_exec_lane_ = 0;  // lane whose event a serial step is running
  std::vector<Lane> lanes_;
  std::unique_ptr<ShardScheduler> scheduler_;
  ContinuationRegistry registry_;
  std::vector<RestoredEvent> restored_;  // adopt-mode stash, see Snapshot()
};

// A repeating timer: runs `fn` every `period` seconds starting at
// `start + period` until Stop() or the owner is destroyed. Used for
// heartbeats and the rollout manager's periodic repack check. Each tick
// re-arms the simulator's stored event record in place (RearmCurrentAfter),
// so steady-state ticking allocates nothing.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, double period, std::function<void()> fn);
  // Reconstructible variant: the tick event carries (comp, kind) and the
  // owning component's RunContinuation must route that kind to Fire(). Such
  // tasks serialize their pending tick into the event_heap section and
  // support RestorePending() on direct boot.
  PeriodicTask(Simulator* sim, double period, int32_t comp, uint16_t kind,
               std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(double period) { period_ = period; }

  // Continuation entry point: the owner's RunContinuation calls this when
  // the task's tick kind fires.
  void Fire() { Tick(); }
  // Direct-boot restore of a pending tick read from the event heap:
  // re-schedules it at `at` and marks the task running.
  void RestorePending(SimTime at);

 private:
  void Tick();

  Simulator* sim_;
  double period_;
  int32_t comp_ = -1;
  uint16_t kind_ = 0;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_SIMULATOR_H_
