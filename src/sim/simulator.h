// Discrete-event simulation engine.
//
// The simulator owns a virtual clock and a priority queue of scheduled
// callbacks. Events at equal timestamps execute in scheduling order, which —
// combined with the deterministic Rng streams (common/rng.h) — makes every
// run bit-reproducible. The engine is single-threaded by design: RL cluster
// behaviour is modelled by the *timing* of events, not by real concurrency.
//
// Internals (DESIGN.md "Simulation engine internals"): event records live in
// a slab pool indexed by a 32-bit slot with a 32-bit generation tag packed
// into the EventId, so Cancel()/IsPending() are O(1) array probes with no
// hashing. Cancellation is lazy — the heap entry stays behind as a tombstone
// that Step() skips when popped, and the heap is compacted when tombstones
// outnumber live entries.
#ifndef LAMINAR_SRC_SIM_SIMULATOR_H_
#define LAMINAR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/sim_time.h"

namespace laminar {

class TraceSink;

// Packed (generation << 32) | pool slot. Generations start at 1, so a valid
// id is never 0.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (>= Now()). Returns an id that
  // can be passed to Cancel() until the event fires.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules `fn` after `delay` seconds (>= 0).
  EventId ScheduleAfter(double delay, std::function<void()> fn);

  // Re-schedules the event whose callback is currently executing to fire
  // again after `delay` seconds, reusing its stored closure — no new
  // std::function is constructed. Only valid inside an event callback.
  // Returns the id of the re-armed event (cancellable like any other).
  EventId RearmCurrentAfter(double delay);

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);
  bool IsPending(EventId id) const {
    uint32_t slot = SlotOf(id);
    if (slot >= slots_.size()) {
      return false;
    }
    const Slot& s = slots_[slot];
    return s.generation == GenerationOf(id) &&
           (s.state == SlotState::kPending || s.state == SlotState::kRearmed);
  }

  // Executes the next pending event, advancing the clock. Returns false if
  // the queue is empty.
  bool Step();

  // Runs events until the clock would pass `deadline`; the clock finishes at
  // exactly `deadline` (events at later times remain pending).
  void RunUntil(SimTime deadline);

  // Runs until no events remain or `max_events` have executed.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs until `predicate()` returns true (checked after every event) or the
  // queue drains. Returns true if the predicate was satisfied.
  bool RunUntilTrue(const std::function<bool()>& predicate,
                    uint64_t max_events = UINT64_MAX);

  size_t pending_events() const { return live_; }
  uint64_t executed_events() const { return executed_; }

  // Structured tracing (src/trace). Null when tracing is disabled — the
  // emission macros test this pointer and do nothing else, so instrumented
  // code costs one predictable branch per site in ordinary runs. The sink is
  // owned by the driver; the simulator only hands it to instrumented code.
  TraceSink* trace() const { return trace_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }

  // Introspection for tests and benches: slab slots ever allocated (bounded
  // by the peak number of simultaneously pending events, not by churn) and
  // heap entries including tombstones awaiting compaction.
  size_t event_pool_slots() const { return slots_.size(); }
  size_t heap_entries() const { return heap_keys_.size(); }

 private:
  enum class SlotState : uint8_t {
    kFree,       // on the free list
    kPending,    // scheduled, heap entry live
    kExecuting,  // callback running right now (closure moved out)
    kRearmed,    // re-scheduled from inside its own callback
  };

  struct Slot {
    std::function<void()> fn;
    uint32_t generation = 1;
    SlotState state = SlotState::kFree;
  };

  // The heap is stored as parallel arrays (struct-of-arrays): heap_keys_
  // holds just the timestamps the sift comparisons read — eight entries per
  // cache line — while heap_meta_ carries the payload moved alongside.
  // Timestamps are stored bit-cast to uint64: non-negative IEEE-754 doubles
  // order identically to their bit patterns, and integer compares let the
  // sift loops run on conditional moves instead of mispredicted branches.
  struct HeapMeta {
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };

  static constexpr uint32_t kNoCurrent = UINT32_MAX;
  static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
  static uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static EventId Pack(uint32_t slot, uint32_t generation) {
    return (static_cast<uint64_t>(generation) << 32) | slot;
  }

  // A heap entry is live iff its (slot, generation) still names a scheduled
  // event; anything else is a tombstone left behind by Cancel(). kRearmed
  // counts: its heap entry is the future firing, and compaction must keep it
  // even while the current callback is still on the stack.
  bool Live(const HeapMeta& m) const {
    const Slot& s = slots_[m.slot];
    return s.generation == m.generation &&
           (s.state == SlotState::kPending || s.state == SlotState::kRearmed);
  }

  uint32_t AllocSlot();
  void RetireSlot(uint32_t slot);
  void PushHeap(SimTime t, uint32_t slot, uint32_t generation);
  // 4-ary min-heap primitives over heap_ (shallower than a binary heap, so
  // pushes/pops touch fewer cache lines).
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  void HeapPopTop();
  // Pops tombstones off the heap top so heap_.front() is a live event.
  void PruneStaleTop();
  // Rebuilds the heap without tombstones once they dominate it.
  void MaybeCompactHeap();

  TraceSink* trace_ = nullptr;
  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_ = 0;        // pending + rearmed events
  size_t tombstones_ = 0;  // stale entries still in the heap
  uint32_t current_ = kNoCurrent;
  std::vector<uint64_t> heap_keys_;
  std::vector<HeapMeta> heap_meta_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

// A repeating timer: runs `fn` every `period` seconds starting at
// `start + period` until Stop() or the owner is destroyed. Used for
// heartbeats and the rollout manager's periodic repack check. Each tick
// re-arms the simulator's stored event record in place (RearmCurrentAfter),
// so steady-state ticking allocates nothing.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, double period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(double period) { period_ = period; }

 private:
  void Tick();

  Simulator* sim_;
  double period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_SIM_SIMULATOR_H_
