#include "src/snapshot/snapshot.h"

#include <cstdio>

#include "src/common/logging.h"

namespace laminar {
namespace {

void AppendU8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void AppendU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

// Bounds-checked little-endian reads over the raw stream.
struct Cursor {
  const unsigned char* p;
  size_t n;
  size_t at = 0;
  bool fail = false;

  bool Need(size_t k) {
    if (at + k > n) {
      fail = true;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return p[at++];
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint16_t>(p[at]) | static_cast<uint16_t>(p[at + 1]) << 8;
    at += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[at + i]) << (8 * i);
    at += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[at + i]) << (8 * i);
    at += 8;
    return v;
  }
  std::string_view Raw(size_t k) {
    if (!Need(k)) return std::string_view();
    std::string_view s(reinterpret_cast<const char*>(p + at), k);
    at += k;
    return s;
  }
};

// v2 checksum: FNV-1a split across 8 positional lanes (byte j feeds lane
// j%8), folded in lane order. The eight multiply chains are independent, so
// they pipeline where plain FNV-1a serializes on multiply latency — ~4x
// faster over the multi-megabyte blobs direct-boot restore must validate.
// Byte-order-stable and positional: permuting stripes changes the value.
uint64_t SnapshotFnv1a8(const void* data, size_t n) {
  constexpr uint64_t kSeed = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t lane[8] = {kSeed, kSeed, kSeed, kSeed, kSeed, kSeed, kSeed, kSeed};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lane[0] = (lane[0] ^ p[i + 0]) * kPrime;
    lane[1] = (lane[1] ^ p[i + 1]) * kPrime;
    lane[2] = (lane[2] ^ p[i + 2]) * kPrime;
    lane[3] = (lane[3] ^ p[i + 3]) * kPrime;
    lane[4] = (lane[4] ^ p[i + 4]) * kPrime;
    lane[5] = (lane[5] ^ p[i + 5]) * kPrime;
    lane[6] = (lane[6] ^ p[i + 6]) * kPrime;
    lane[7] = (lane[7] ^ p[i + 7]) * kPrime;
  }
  for (size_t j = 0; i < n; ++i, ++j) {
    lane[j] = (lane[j] ^ p[i]) * kPrime;
  }
  uint64_t h = kSeed;
  for (uint64_t l : lane) {
    for (int b = 0; b < 8; ++b) {
      h = (h ^ ((l >> (8 * b)) & 0xff)) * kPrime;
    }
  }
  return h;
}

// The trailing-checksum algorithm is keyed by the header version so v1
// blobs (plain FNV-1a) keep parsing forever.
uint64_t SnapshotChecksum(const void* data, size_t n, uint32_t version) {
  return version >= 2 ? SnapshotFnv1a8(data, n) : SnapshotFnv1a(data, n);
}

const char* KindName(SnapshotRecordKind kind) {
  switch (kind) {
    case SnapshotRecordKind::kEndOfStream: return "end-of-stream";
    case SnapshotRecordKind::kSection: return "section";
    case SnapshotRecordKind::kEndSection: return "end-section";
    case SnapshotRecordKind::kU64: return "u64";
    case SnapshotRecordKind::kI64: return "i64";
    case SnapshotRecordKind::kF64: return "f64";
    case SnapshotRecordKind::kBytes: return "bytes";
  }
  return "?";
}

}  // namespace

uint64_t SnapshotFnv1a(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

SnapshotWriter::SnapshotWriter(uint32_t version) : version_(version) {
  out_.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(out_, version);
}

void SnapshotWriter::Record(SnapshotRecordKind kind, const std::string& name) {
  AppendU8(out_, static_cast<uint8_t>(kind));
  AppendU16(out_, static_cast<uint16_t>(name.size()));
  out_.append(name);
}

void SnapshotWriter::BeginSection(const std::string& name) {
  Record(SnapshotRecordKind::kSection, name);
}

void SnapshotWriter::EndSection() { Record(SnapshotRecordKind::kEndSection, std::string()); }

void SnapshotWriter::U64(const std::string& name, uint64_t v) {
  Record(SnapshotRecordKind::kU64, name);
  AppendU64(out_, v);
}

void SnapshotWriter::I64(const std::string& name, int64_t v) {
  Record(SnapshotRecordKind::kI64, name);
  AppendU64(out_, static_cast<uint64_t>(v));
}

void SnapshotWriter::F64(const std::string& name, double v) {
  Record(SnapshotRecordKind::kF64, name);
  AppendU64(out_, SnapshotF64Bits(v));
}

void SnapshotWriter::Bytes(const std::string& name, const std::string& v) {
  Record(SnapshotRecordKind::kBytes, name);
  AppendU64(out_, v.size());
  out_.append(v);
}

std::string SnapshotWriter::Finish() {
  if (!finished_) {
    AppendU8(out_, static_cast<uint8_t>(SnapshotRecordKind::kEndOfStream));
    AppendU64(out_, SnapshotChecksum(out_.data(), out_.size(), version_));
    finished_ = true;
  }
  return out_;
}

bool SnapshotReader::Parse(const std::string& data, std::string* error) {
  records_.clear();
  pos_ = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    records_.clear();
    return false;
  };
  if (data.size() < sizeof(kSnapshotMagic) + 4 + 1 + 8) return fail("snapshot truncated");
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return fail("bad snapshot magic");
  }
  // The version must be read before the checksum can be verified: the
  // checksum algorithm is version-keyed (v1 plain FNV-1a, v2 8-lane).
  Cursor cur{reinterpret_cast<const unsigned char*>(data.data()), data.size() - 8};
  cur.at = sizeof(kSnapshotMagic);
  uint32_t version = cur.U32();
  if (version < kSnapshotMinVersion || version > kSnapshotVersion) {
    return fail("unsupported snapshot version");
  }
  version_ = version;
  uint64_t have_bits = 0;  // stored little-endian; reassemble explicitly
  for (int i = 0; i < 8; ++i) {
    have_bits |= static_cast<uint64_t>(static_cast<unsigned char>(data[data.size() - 8 + i])) << (8 * i);
  }
  uint64_t computed = SnapshotChecksum(data.data(), data.size() - 8, version);
  if (have_bits != computed) return fail("snapshot checksum mismatch");
  while (true) {
    uint8_t kind = cur.U8();
    if (cur.fail) return fail("snapshot record truncated");
    if (kind == static_cast<uint8_t>(SnapshotRecordKind::kEndOfStream)) {
      if (cur.at != cur.n) return fail("trailing bytes after end-of-stream");
      return true;
    }
    if (kind > static_cast<uint8_t>(SnapshotRecordKind::kBytes)) {
      return fail("unknown snapshot record kind");
    }
    SnapshotRecord rec;
    rec.kind = static_cast<SnapshotRecordKind>(kind);
    uint16_t name_len = cur.U16();
    rec.name = cur.Raw(name_len);
    switch (rec.kind) {
      case SnapshotRecordKind::kSection:
      case SnapshotRecordKind::kEndSection:
        break;
      case SnapshotRecordKind::kU64:
      case SnapshotRecordKind::kI64:
      case SnapshotRecordKind::kF64:
        rec.u64 = cur.U64();
        break;
      case SnapshotRecordKind::kBytes: {
        uint64_t n = cur.U64();
        if (n > cur.n - cur.at) return fail("bytes record overruns stream");
        rec.bytes = cur.Raw(static_cast<size_t>(n));
        break;
      }
      default:
        return fail("unknown snapshot record kind");
    }
    if (cur.fail) return fail("snapshot record truncated");
    records_.push_back(std::move(rec));
  }
}

const SnapshotRecord* SnapshotReader::Next() {
  if (AtEnd()) return nullptr;
  return &records_[pos_++];
}

const SnapshotRecord* SnapshotReader::Peek() const {
  if (AtEnd()) return nullptr;
  return &records_[pos_];
}

std::string SnapshotTx::Scope(const std::string& name) const {
  std::string s;
  for (const std::string& sec : sections_) {
    s += sec;
    s += '/';
  }
  s += name;
  return s;
}

void SnapshotTx::Mismatch(const std::string& detail) { mismatches_.push_back(detail); }

const SnapshotRecord* SnapshotTx::Expect(SnapshotRecordKind kind, const std::string& name) {
  const SnapshotRecord* rec = reader_->Next();
  if (rec == nullptr) {
    Mismatch(Scope(name) + ": snapshot stream ended early");
    return nullptr;
  }
  if (rec->kind != kind || rec->name != name) {
    Mismatch(Scope(name) + ": expected " + std::string(KindName(kind)) + " '" + name +
             "', snapshot has " + KindName(rec->kind) + " '" + std::string(rec->name) + "'");
    return nullptr;
  }
  return rec;
}

void SnapshotTx::Begin(const std::string& section) {
  if (writing()) {
    writer_->BeginSection(section);
  } else {
    Expect(SnapshotRecordKind::kSection, section);
  }
  sections_.push_back(section);
}

void SnapshotTx::End() {
  if (writing()) {
    writer_->EndSection();
  } else {
    Expect(SnapshotRecordKind::kEndSection, std::string());
  }
  if (!sections_.empty()) sections_.pop_back();
}

void SnapshotTx::U64(const std::string& name, uint64_t* v) {
  if (writing()) {
    writer_->U64(name, *v);
    return;
  }
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kU64, name);
  if (rec == nullptr) return;
  if (adopting()) {
    *v = rec->u64;
  } else if (rec->u64 != *v) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "live=%llu snapshot=%llu",
                  static_cast<unsigned long long>(*v), static_cast<unsigned long long>(rec->u64));
    Mismatch(Scope(name) + ": " + buf);
  }
}

void SnapshotTx::I64(const std::string& name, int64_t* v) {
  if (writing()) {
    writer_->I64(name, *v);
    return;
  }
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kI64, name);
  if (rec == nullptr) return;
  int64_t got = static_cast<int64_t>(rec->u64);
  if (adopting()) {
    *v = got;
  } else if (got != *v) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "live=%lld snapshot=%lld", static_cast<long long>(*v),
                  static_cast<long long>(got));
    Mismatch(Scope(name) + ": " + buf);
  }
}

void SnapshotTx::F64(const std::string& name, double* v) {
  if (writing()) {
    writer_->F64(name, *v);
    return;
  }
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kF64, name);
  if (rec == nullptr) return;
  if (adopting()) {
    *v = SnapshotBitsF64(rec->u64);
  } else if (rec->u64 != SnapshotF64Bits(*v)) {  // bit equality, not ==: NaN-safe, -0.0-exact
    char buf[96];
    std::snprintf(buf, sizeof(buf), "live=%.17g snapshot=%.17g", *v, SnapshotBitsF64(rec->u64));
    Mismatch(Scope(name) + ": " + buf);
  }
}

void SnapshotTx::Bytes(const std::string& name, std::string* v) {
  if (writing()) {
    writer_->Bytes(name, *v);
    return;
  }
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kBytes, name);
  if (rec == nullptr) return;
  if (adopting()) {
    v->assign(rec->bytes.data(), rec->bytes.size());
  } else if (rec->bytes != *v) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "live=<%zu bytes fnv=%016llx> snapshot=<%zu bytes fnv=%016llx>",
                  v->size(), static_cast<unsigned long long>(SnapshotFnv1a(v->data(), v->size())),
                  rec->bytes.size(),
                  static_cast<unsigned long long>(SnapshotFnv1a(rec->bytes.data(), rec->bytes.size())));
    Mismatch(Scope(name) + ": " + buf);
  }
}

std::string_view SnapshotTx::BytesView(const std::string& name) {
  LAMINAR_CHECK(adopting()) << "BytesView is adopt-only; use Bytes() to write or verify";
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kBytes, name);
  return rec == nullptr ? std::string_view() : rec->bytes;
}

void SnapshotTx::F64Vec(const std::string& name, std::vector<double>* v) {
  if (writing() || !adopting()) {
    std::string packed(reinterpret_cast<const char*>(v->data()), v->size() * sizeof(double));
    if (writing()) {
      writer_->Bytes(name, packed);
      return;
    }
    Bytes(name, &packed);  // verify path: compare packed bytes
    return;
  }
  const SnapshotRecord* rec = Expect(SnapshotRecordKind::kBytes, name);
  if (rec == nullptr) return;
  if (rec->bytes.size() % sizeof(double) != 0) {
    Mismatch(Scope(name) + ": byte length not a multiple of 8");
    return;
  }
  v->resize(rec->bytes.size() / sizeof(double));
  if (!v->empty()) std::memcpy(v->data(), rec->bytes.data(), rec->bytes.size());
}

void SnapshotTx::DigestU64(const std::string& name, uint64_t v) {
  if (adopting()) {
    Expect(SnapshotRecordKind::kU64, name);  // read and skip
    return;
  }
  uint64_t tmp = v;
  U64(name, &tmp);
}

void SnapshotTx::DigestI64(const std::string& name, int64_t v) {
  if (adopting()) {
    Expect(SnapshotRecordKind::kI64, name);
    return;
  }
  int64_t tmp = v;
  I64(name, &tmp);
}

void SnapshotTx::DigestF64(const std::string& name, double v) {
  if (adopting()) {
    Expect(SnapshotRecordKind::kF64, name);
    return;
  }
  double tmp = v;
  F64(name, &tmp);
}

void SnapshotTx::DigestBytes(const std::string& name, const std::string& v) {
  if (adopting()) {
    Expect(SnapshotRecordKind::kBytes, name);
    return;
  }
  std::string tmp = v;
  Bytes(name, &tmp);
}

std::string EncodeSnapshotFile(const SnapshotFile& file) {
  SnapshotWriter w;
  w.BeginSection("snapshot-file");
  w.Bytes("scenario", file.scenario_text);
  w.F64("snapshot_at", file.snapshot_at);
  w.Bytes("blob", file.blob);
  w.EndSection();
  return w.Finish();
}

bool DecodeSnapshotFile(const std::string& data, SnapshotFile* out, std::string* error) {
  SnapshotReader r;
  if (!r.Parse(data, error)) return false;
  SnapshotTx tx(&r, SnapshotMode::kAdopt);
  tx.Begin("snapshot-file");
  tx.Bytes("scenario", &out->scenario_text);
  tx.F64("snapshot_at", &out->snapshot_at);
  tx.Bytes("blob", &out->blob);
  tx.End();
  if (!tx.ok()) {
    if (error != nullptr) *error = "not a snapshot file: " + tx.mismatches().front();
    return false;
  }
  return true;
}

}  // namespace laminar
