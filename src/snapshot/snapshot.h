// Versioned, byte-stable snapshot format (LMSNAP1) and the field-level
// transaction layer components use to enumerate their mutable state
// (DESIGN.md §13).
//
// A snapshot is a flat record stream:
//
//   magic "LMSNAP1\0" | u32 version | records... | u8 kEndOfStream | u64 fnv
//
// where each record is
//
//   u8 kind | u16 name_len | name bytes | payload
//
// with kind one of kSection (payload empty; scopes the fields that follow
// until the matching kEndSection), kU64/kI64/kF64 (8-byte little-endian
// payload; doubles are bit-cast so the round trip is exact), or kBytes
// (u64 length + raw bytes).  The trailing checksum covers every byte before
// it, so truncation and corruption are both detected at parse time. Its
// algorithm is version-keyed: v1 blobs carry plain FNV-1a; v2 blobs carry
// an 8-lane FNV-1a (byte j feeds lane j%8, lanes folded in order) whose
// independent multiply chains pipeline ~4x faster — direct-boot restore
// checksums the whole blob on the critical path, so this is wall-clock that
// scales with state size, not a cosmetic change.
//
// Components expose one method:
//
//   void Snapshot(SnapshotTx& tx);
//
// and the SAME traversal serves three modes:
//
//   kWrite  — serialize: each call appends a record.
//   kVerify — compare: each call reads the next record and accumulates a
//             human-readable mismatch string when name/type/value differ
//             (never CHECKs — callers want the full diff).
//   kAdopt  — restore: each call reads the next record and assigns the
//             value through the pointer.  Digest fields (which summarize
//             state that cannot be re-seated field-by-field) are read and
//             skipped in this mode.
//
// Because every mode walks fields in the identical order, byte stability
// of the format is exactly stability of the components' field enumeration.
#ifndef LAMINAR_SNAPSHOT_SNAPSHOT_H_
#define LAMINAR_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace laminar {

inline constexpr char kSnapshotMagic[8] = {'L', 'M', 'S', 'N', 'A', 'P', '1', '\0'};
// v1: digest-anchored blobs (restore verifies a replayed run field by field).
// v2: full-state blobs — the simulator serializes its live event heap as
// reconstructible continuation descriptors (event_heap section) and every
// component serializes adoptable state, so a restore boots directly from
// the blob. v1 blobs still parse (SnapshotReader accepts both versions);
// they simply cannot drive a direct boot.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotMinVersion = 1;

// Record kinds in the LMSNAP1 stream.
enum class SnapshotRecordKind : uint8_t {
  kEndOfStream = 0,
  kSection = 1,
  kEndSection = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kBytes = 6,
};

// Appends records; Finish() seals the stream with the end marker and
// checksum and returns the complete byte string.
class SnapshotWriter {
 public:
  // `version` is stamped into the header; anything in
  // [kSnapshotMinVersion, kSnapshotVersion] is accepted (older versions
  // exist so tests can author v1 fixtures).
  explicit SnapshotWriter(uint32_t version = kSnapshotVersion);

  void BeginSection(const std::string& name);
  void EndSection();
  void U64(const std::string& name, uint64_t v);
  void I64(const std::string& name, int64_t v);
  void F64(const std::string& name, double v);
  void Bytes(const std::string& name, const std::string& v);

  // Seals and returns the snapshot. The writer must not be reused after.
  std::string Finish();

 private:
  void Record(SnapshotRecordKind kind, const std::string& name);
  std::string out_;
  uint32_t version_;
  bool finished_ = false;
};

// One parsed record. `name` and `bytes` are views into the string handed to
// SnapshotReader::Parse — zero-copy, so a multi-megabyte blob parses without
// duplicating its payloads — which means the parsed string must outlive any
// use of the reader's records.
struct SnapshotRecord {
  SnapshotRecordKind kind;
  std::string_view name;
  uint64_t u64 = 0;        // also holds the bit pattern for kI64/kF64
  std::string_view bytes;  // kBytes payload
};

// Validates magic/version/checksum and yields records in stream order.
// Records alias the parsed string (see SnapshotRecord); callers keep `data`
// alive while the reader is in use.
class SnapshotReader {
 public:
  // Parses `data`; on failure returns false and sets *error.
  bool Parse(const std::string& data, std::string* error);

  bool AtEnd() const { return pos_ >= records_.size(); }
  // Returns the next record, or nullptr past the end.
  const SnapshotRecord* Next();
  const SnapshotRecord* Peek() const;
  const std::vector<SnapshotRecord>& records() const { return records_; }
  // Header version of the last successful Parse().
  uint32_t version() const { return version_; }

 private:
  std::vector<SnapshotRecord> records_;
  size_t pos_ = 0;
  uint32_t version_ = 0;
};

enum class SnapshotMode { kWrite, kVerify, kAdopt };

// The transaction components snapshot against.  See the file comment for
// the three-mode contract.
class SnapshotTx {
 public:
  explicit SnapshotTx(SnapshotWriter* writer)
      : mode_(SnapshotMode::kWrite), writer_(writer) {}
  SnapshotTx(SnapshotReader* reader, SnapshotMode mode)
      : mode_(mode), reader_(reader) {}

  SnapshotMode mode() const { return mode_; }
  bool writing() const { return mode_ == SnapshotMode::kWrite; }
  bool adopting() const { return mode_ == SnapshotMode::kAdopt; }

  void Begin(const std::string& section);
  void End();

  // Read-write fields: serialized, verified, and adopted.
  void U64(const std::string& name, uint64_t* v);
  void I64(const std::string& name, int64_t* v);
  void F64(const std::string& name, double* v);
  void Bytes(const std::string& name, std::string* v);
  // Adopt-only zero-copy read of a kBytes record: the returned view aliases
  // the reader's parsed buffer (keep it alive while decoding). Consumes the
  // same record position as Bytes(); empty view + mismatch when absent.
  std::string_view BytesView(const std::string& name);

  // Convenience wrappers for narrower integer types: widen through a
  // temporary so callers keep their natural field types.
  template <typename T>
  void U64As(const std::string& name, T* v) {
    uint64_t tmp = static_cast<uint64_t>(*v);
    U64(name, &tmp);
    if (adopting()) *v = static_cast<T>(tmp);
  }
  template <typename T>
  void I64As(const std::string& name, T* v) {
    int64_t tmp = static_cast<int64_t>(*v);
    I64(name, &tmp);
    if (adopting()) *v = static_cast<T>(tmp);
  }
  void Bool(const std::string& name, bool* v) {
    uint64_t tmp = *v ? 1 : 0;
    U64(name, &tmp);
    if (adopting()) *v = tmp != 0;
  }
  // A vector<double> packed into one kBytes record (bit-cast, so exact).
  void F64Vec(const std::string& name, std::vector<double>* v);

  // Digest fields: summaries of state that cannot be assigned back
  // field-by-field (hashes, counts over live structures).  Written and
  // verified like values; in kAdopt mode the record is read and skipped.
  void DigestU64(const std::string& name, uint64_t v);
  void DigestI64(const std::string& name, int64_t v);
  void DigestF64(const std::string& name, double v);
  void DigestBytes(const std::string& name, const std::string& v);

  // Verify-mode results.
  bool ok() const { return mismatches_.empty(); }
  const std::vector<std::string>& mismatches() const { return mismatches_; }

 private:
  // Fetches the next record and checks kind/name; returns nullptr (with a
  // mismatch recorded) when the stream disagrees with the traversal.
  const SnapshotRecord* Expect(SnapshotRecordKind kind, const std::string& name);
  void Mismatch(const std::string& detail);
  std::string Scope(const std::string& name) const;

  SnapshotMode mode_;
  SnapshotWriter* writer_ = nullptr;
  SnapshotReader* reader_ = nullptr;
  std::vector<std::string> sections_;
  std::vector<std::string> mismatches_;
};

// FNV-1a over a byte range (the same hash the trace/fingerprint layers use;
// duplicated here so laminar_snapshot stays dependency-light).
uint64_t SnapshotFnv1a(const void* data, size_t n, uint64_t seed = 1469598103934665603ull);

// Bit-cast helpers shared by the writer/reader and by components that fold
// doubles into digests.
inline uint64_t SnapshotF64Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
inline double SnapshotBitsF64(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Warm-start snapshot files (laminar_fuzz --snapshot-out / --restore-from,
// bench --snapshot-out): an outer LMSNAP1 stream with one "snapshot-file"
// section carrying the scenario text (may be empty for bench configs), the
// snapshot time, and the inner driver-level snapshot blob.
struct SnapshotFile {
  std::string scenario_text;
  double snapshot_at = 0.0;
  std::string blob;
};

std::string EncodeSnapshotFile(const SnapshotFile& file);
bool DecodeSnapshotFile(const std::string& data, SnapshotFile* out, std::string* error);

}  // namespace laminar

#endif  // LAMINAR_SNAPSHOT_SNAPSHOT_H_
