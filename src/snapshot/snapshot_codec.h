// Packed-bytes codec for full-state snapshot fields (DESIGN.md §13).
//
// LMSNAP1 v2 direct-boot restore needs every behavior-bearing container
// adopted, not just digested. Serializing each element as its own named
// record would bloat the stream and slow the hot snapshot path, so
// containers pack into a single kBytes record through this little-endian
// encoder. The SAME packed bytes serve all three transaction modes: write
// emits them, verify compares them (packed bytes of the live state vs the
// blob), adopt decodes them back into the container.
//
// Everything here is deterministic: iteration order is the caller's
// responsibility (serialize in a canonical or behavior-defining order) and
// doubles travel bit-cast, so the round trip is exact and blobs are
// byte-stable across serial/sharded runs.
#ifndef LAMINAR_SNAPSHOT_SNAPSHOT_CODEC_H_
#define LAMINAR_SNAPSHOT_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/logging.h"
#include "src/common/sim_time.h"
#include "src/data/trajectory.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

class ByteSink {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Le(v, 4); }
  void U64(uint64_t v) { Le(v, 8); }
  void I32(int32_t v) { Le(static_cast<uint32_t>(v), 4); }
  void I64(int64_t v) { Le(static_cast<uint64_t>(v), 8); }
  void F64(double v) { Le(SnapshotF64Bits(v), 8); }
  void Time(SimTime t) { F64(t.seconds()); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }
  // Bulk byte span; wire bytes identical to n consecutive U8() calls.
  void Raw(const void* p, size_t n) { out_.append(static_cast<const char*>(p), n); }

  std::string Take() { return std::move(out_); }
  const std::string& bytes() const { return out_; }

 private:
  void Le(uint64_t v, int n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The first n bytes of v's object representation ARE the little-endian
    // wire encoding, so one memcpy replaces the per-byte shift loop (the
    // packed sections dominate snapshot write/adopt time at scale).
    char buf[8];
    std::memcpy(buf, &v, sizeof(buf));
    out_.append(buf, static_cast<size_t>(n));
#else
    for (int i = 0; i < n; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
#endif
  }
  std::string out_;
};

// Decodes a packed record. Holds a view, not a copy — the adopt path reads
// straight out of the snapshot reader's parsed buffer, so the underlying
// bytes must stay alive for the life of the source.
class ByteSource {
 public:
  explicit ByteSource(std::string_view data) : data_(data) {}

  uint8_t U8() { return static_cast<uint8_t>(Le(1)); }
  uint32_t U32() { return static_cast<uint32_t>(Le(4)); }
  uint64_t U64() { return Le(8); }
  int32_t I32() { return static_cast<int32_t>(static_cast<uint32_t>(Le(4))); }
  int64_t I64() { return static_cast<int64_t>(Le(8)); }
  double F64() { return SnapshotBitsF64(Le(8)); }
  SimTime Time() { return SimTime(F64()); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    uint64_t n = U64();
    LAMINAR_CHECK_LE(n, data_.size() - at_) << "packed string overruns record";
    std::string s(data_.substr(at_, static_cast<size_t>(n)));
    at_ += static_cast<size_t>(n);
    return s;
  }

  // Bulk byte span; consumes the same wire bytes as n consecutive U8() calls.
  void Raw(void* p, size_t n) {
    LAMINAR_CHECK_LE(n, data_.size() - at_) << "packed record truncated";
    std::memcpy(p, data_.data() + at_, n);
    at_ += n;
  }

  bool AtEnd() const { return at_ >= data_.size(); }
  void ExpectEnd() const {
    LAMINAR_CHECK(AtEnd()) << "trailing bytes in packed record";
  }

 private:
  uint64_t Le(int n) {
    LAMINAR_CHECK_LE(static_cast<size_t>(n), data_.size() - at_)
        << "packed record truncated";
    uint64_t v = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // Little-endian hosts can load the n wire bytes straight into the low
    // bytes of v — same value the shift loop builds, without the per-byte
    // dependency chain.
    std::memcpy(&v, data_.data() + at_, static_cast<size_t>(n));
#else
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[at_ + i])) << (8 * i);
    }
#endif
    at_ += static_cast<size_t>(n);
    return v;
  }
  std::string_view data_;
  size_t at_ = 0;
};

// One packed field: `pack` fills a sink from live state (write + verify
// modes), `unpack` re-seats live state from the blob (adopt mode).
template <typename PackFn, typename UnpackFn>
void SnapshotPacked(SnapshotTx& tx, const std::string& name, PackFn pack,
                    UnpackFn unpack) {
  if (tx.adopting()) {
    // Decode straight out of the reader's parsed buffer — no intermediate
    // copy of the packed bytes (the big sections are megabytes and dominate
    // direct-boot restore time).
    ByteSource src(tx.BytesView(name));
    unpack(src);
    src.ExpectEnd();
    return;
  }
  ByteSink sink;
  pack(sink);
  std::string bytes = sink.Take();
  tx.Bytes(name, &bytes);
}

// ---- Trajectory payloads -------------------------------------------------

inline void PackSpec(ByteSink& s, const TrajectorySpec& spec) {
  s.I64(spec.prompt_tokens);
  s.U64(spec.num_segments());
  for (const TrajectorySegment& seg : spec.segments()) {
    s.I64(seg.decode_tokens);
    s.F64(seg.env_latency);
    s.I64(seg.feedback_tokens);
  }
}

inline TrajectorySpec UnpackSpec(ByteSource& s) {
  TrajectorySpec spec;
  spec.prompt_tokens = s.I64();
  uint64_t n = s.U64();
  spec.ReserveSegments(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    TrajectorySegment seg;
    seg.decode_tokens = s.I64();
    seg.env_latency = s.F64();
    seg.feedback_tokens = s.I64();
    spec.AppendSegment(seg);
  }
  return spec;
}

inline void PackRecord(ByteSink& s, const TrajectoryRecord& r) {
  s.I64(r.id);
  s.I64(r.prompt_id);
  s.I32(r.group_index);
  PackSpec(s, r.spec);
  s.U64(r.weight_versions.size());
  for (int v : r.weight_versions) {
    s.I32(v);
  }
  s.F64(r.reward);
  s.F64(r.behavior_prob);
  s.F64(r.difficulty);
  s.Bool(r.success);
  s.Time(r.created);
  s.Time(r.finished);
  s.I32(r.finish_actor_version);
  s.I32(r.consume_actor_version);
}

inline TrajectoryRecord UnpackRecord(ByteSource& s) {
  TrajectoryRecord r;
  r.id = s.I64();
  r.prompt_id = s.I64();
  r.group_index = s.I32();
  r.spec = UnpackSpec(s);
  uint64_t n = s.U64();
  r.weight_versions.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    r.weight_versions.push_back(s.I32());
  }
  r.reward = s.F64();
  r.behavior_prob = s.F64();
  r.difficulty = s.F64();
  r.success = s.Bool();
  r.created = s.Time();
  r.finished = s.Time();
  r.finish_actor_version = s.I32();
  r.consume_actor_version = s.I32();
  return r;
}

inline void PackWork(ByteSink& s, const TrajectoryWork& w) {
  PackRecord(s, w.record);
  s.I32(w.segment_index);
  s.I64(w.decoded_in_segment);
  s.I64(w.context_tokens);
  s.Bool(w.kv_resident);
}

inline TrajectoryWork UnpackWork(ByteSource& s) {
  TrajectoryWork w;
  w.record = UnpackRecord(s);
  w.segment_index = s.I32();
  w.decoded_in_segment = s.I64();
  w.context_tokens = s.I64();
  w.kv_resident = s.Bool();
  return w;
}

}  // namespace laminar

#endif  // LAMINAR_SNAPSHOT_SNAPSHOT_CODEC_H_
