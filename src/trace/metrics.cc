#include "src/trace/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_codec.h"

namespace laminar {

void StreamingStat::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStat::stddev() const { return std::sqrt(variance()); }

const MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kCounter);
    return &counters_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kCounter, counters_.size()});
  counters_.emplace_back();
  return &counters_.back();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kGauge);
    return &gauges_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kGauge, gauges_.size()});
  gauges_.emplace_back();
  return &gauges_.back();
}

StreamingStat* MetricsRegistry::Streaming(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kStreaming);
    return &streams_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kStreaming, streams_.size()});
  streams_.emplace_back();
  return &streams_.back();
}

SampleSet* MetricsRegistry::Samples(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kSamples);
    return &samples_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kSamples, samples_.size()});
  samples_.emplace_back();
  return &samples_.back();
}

Histogram* MetricsRegistry::Hist(const std::string& name, double lo, double hi,
                                 size_t num_buckets) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kHistogram);
    return &histograms_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kHistogram, histograms_.size()});
  histograms_.emplace_back(lo, hi, num_buckets);
  return &histograms_.back();
}

std::string MetricsRegistry::Labeled(const std::string& name, const std::string& key,
                                     const std::string& value) {
  return name + "{" + key + "=" + value + "}";
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kCounter) {
    return 0;
  }
  return counters_[e->index].value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kGauge) {
    return 0.0;
  }
  return gauges_[e->index].value();
}

const SampleSet* MetricsRegistry::FindSamples(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kSamples) {
    return nullptr;
  }
  return &samples_[e->index];
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char line[256];
  for (const Entry& e : entries_) {
    switch (e.type) {
      case MetricType::kCounter:
        std::snprintf(line, sizeof(line), "%s %lld\n", e.name.c_str(),
                      static_cast<long long>(counters_[e.index].value()));
        out += line;
        break;
      case MetricType::kGauge:
        std::snprintf(line, sizeof(line), "%s %g\n", e.name.c_str(),
                      gauges_[e.index].value());
        out += line;
        break;
      case MetricType::kStreaming: {
        const StreamingStat& s = streams_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu mean=%g min=%g max=%g\n",
                      e.name.c_str(), s.count(), s.mean(), s.min(), s.max());
        out += line;
        break;
      }
      case MetricType::kSamples: {
        const SampleSet& s = samples_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu mean=%g\n", e.name.c_str(),
                      s.count(), s.mean());
        out += line;
        break;
      }
      case MetricType::kHistogram: {
        const Histogram& h = histograms_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu under=%zu over=%zu\n",
                      e.name.c_str(), h.total_count(), h.underflow(), h.overflow());
        out += line;
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::Snapshot(SnapshotTx& tx, const char* section) {
  tx.Begin(section);
  SnapshotPacked(
      tx, "instruments",
      [this](ByteSink& s) {
        s.U64(entries_.size());
        for (const Entry& e : entries_) {
          s.Str(e.name);
          s.U8(static_cast<uint8_t>(e.type));
          switch (e.type) {
            case MetricType::kCounter:
              s.I64(counters_[e.index].value());
              break;
            case MetricType::kGauge:
              s.F64(gauges_[e.index].value());
              break;
            case MetricType::kStreaming: {
              StreamingStat::State st = streams_[e.index].state();
              s.U64(st.count);
              s.F64(st.mean);
              s.F64(st.m2);
              s.F64(st.sum);
              s.F64(st.min);
              s.F64(st.max);
              break;
            }
            case MetricType::kSamples: {
              const SampleSet& ss = samples_[e.index];
              s.U64(ss.count());
              for (double x : ss.samples()) {
                s.F64(x);
              }
              s.Bool(ss.raw_sorted());
              break;
            }
            case MetricType::kHistogram: {
              const Histogram& h = histograms_[e.index];
              s.U64(h.buckets().size());
              for (size_t c : h.buckets()) {
                s.U64(c);
              }
              s.U64(h.underflow());
              s.U64(h.overflow());
              s.U64(h.total_count());
              break;
            }
          }
        }
      },
      [this](ByteSource& s) {
        uint64_t n = s.U64();
        LAMINAR_CHECK_EQ(n, entries_.size())
            << "metrics registry shape drifted across restore";
        for (const Entry& e : entries_) {
          std::string name = s.Str();
          MetricType type = static_cast<MetricType>(s.U8());
          LAMINAR_CHECK(name == e.name && type == e.type)
              << "metrics registry entry mismatch: blob has " << name
              << ", live registry has " << e.name;
          switch (e.type) {
            case MetricType::kCounter:
              counters_[e.index].AdoptValue(s.I64());
              break;
            case MetricType::kGauge:
              gauges_[e.index].Set(s.F64());
              break;
            case MetricType::kStreaming: {
              StreamingStat::State st;
              st.count = s.U64();
              st.mean = s.F64();
              st.m2 = s.F64();
              st.sum = s.F64();
              st.min = s.F64();
              st.max = s.F64();
              streams_[e.index].AdoptState(st);
              break;
            }
            case MetricType::kSamples: {
              std::vector<double> xs(static_cast<size_t>(s.U64()));
              for (double& x : xs) {
                x = s.F64();
              }
              bool sorted = s.Bool();
              samples_[e.index].AdoptRaw(std::move(xs), sorted);
              break;
            }
            case MetricType::kHistogram: {
              std::vector<size_t> counts(static_cast<size_t>(s.U64()));
              for (size_t& c : counts) {
                c = static_cast<size_t>(s.U64());
              }
              size_t under = static_cast<size_t>(s.U64());
              size_t over = static_cast<size_t>(s.U64());
              size_t total = static_cast<size_t>(s.U64());
              LAMINAR_CHECK_EQ(counts.size(), histograms_[e.index].buckets().size());
              histograms_[e.index].AdoptCounts(std::move(counts), under, over, total);
              break;
            }
          }
        }
      });
  tx.End();
}

}  // namespace laminar
