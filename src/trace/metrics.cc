#include "src/trace/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

void StreamingStat::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStat::stddev() const { return std::sqrt(variance()); }

const MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kCounter);
    return &counters_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kCounter, counters_.size()});
  counters_.emplace_back();
  return &counters_.back();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kGauge);
    return &gauges_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kGauge, gauges_.size()});
  gauges_.emplace_back();
  return &gauges_.back();
}

StreamingStat* MetricsRegistry::Streaming(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kStreaming);
    return &streams_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kStreaming, streams_.size()});
  streams_.emplace_back();
  return &streams_.back();
}

SampleSet* MetricsRegistry::Samples(const std::string& name) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kSamples);
    return &samples_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kSamples, samples_.size()});
  samples_.emplace_back();
  return &samples_.back();
}

Histogram* MetricsRegistry::Hist(const std::string& name, double lo, double hi,
                                 size_t num_buckets) {
  if (const Entry* e = Find(name)) {
    LAMINAR_CHECK(e->type == MetricType::kHistogram);
    return &histograms_[e->index];
  }
  index_.emplace(name, entries_.size());
  entries_.push_back({name, MetricType::kHistogram, histograms_.size()});
  histograms_.emplace_back(lo, hi, num_buckets);
  return &histograms_.back();
}

std::string MetricsRegistry::Labeled(const std::string& name, const std::string& key,
                                     const std::string& value) {
  return name + "{" + key + "=" + value + "}";
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kCounter) {
    return 0;
  }
  return counters_[e->index].value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kGauge) {
    return 0.0;
  }
  return gauges_[e->index].value();
}

const SampleSet* MetricsRegistry::FindSamples(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->type != MetricType::kSamples) {
    return nullptr;
  }
  return &samples_[e->index];
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char line[256];
  for (const Entry& e : entries_) {
    switch (e.type) {
      case MetricType::kCounter:
        std::snprintf(line, sizeof(line), "%s %lld\n", e.name.c_str(),
                      static_cast<long long>(counters_[e.index].value()));
        out += line;
        break;
      case MetricType::kGauge:
        std::snprintf(line, sizeof(line), "%s %g\n", e.name.c_str(),
                      gauges_[e.index].value());
        out += line;
        break;
      case MetricType::kStreaming: {
        const StreamingStat& s = streams_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu mean=%g min=%g max=%g\n",
                      e.name.c_str(), s.count(), s.mean(), s.min(), s.max());
        out += line;
        break;
      }
      case MetricType::kSamples: {
        const SampleSet& s = samples_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu mean=%g\n", e.name.c_str(),
                      s.count(), s.mean());
        out += line;
        break;
      }
      case MetricType::kHistogram: {
        const Histogram& h = histograms_[e.index];
        std::snprintf(line, sizeof(line), "%s count=%zu under=%zu over=%zu\n",
                      e.name.c_str(), h.total_count(), h.underflow(), h.overflow());
        out += line;
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::Snapshot(SnapshotTx& tx, const char* section) const {
  tx.Begin(section);
  tx.DigestU64("entries", entries_.size());
  std::string text = DumpText();
  tx.DigestU64("dump_fnv", SnapshotFnv1a(text.data(), text.size()));
  tx.End();
}

}  // namespace laminar
