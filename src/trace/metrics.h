// Metrics registry: named counters, gauges, streaming statistics, sample
// sets and histograms behind one registration-ordered table. Subsystems that
// previously grew ad-hoc stats structs (RolloutManager) register their
// metrics here instead; reports snapshot the registry. Pointers returned by
// the accessors are stable for the registry's lifetime, so hot paths cache
// them once and pay a plain increment per update.
#ifndef LAMINAR_SRC_TRACE_METRICS_H_
#define LAMINAR_SRC_TRACE_METRICS_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/stats.h"

namespace laminar {

class SnapshotTx;

class MetricCounter {
 public:
  void Add(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }
  // Snapshot adoption only (src/snapshot): counters never rewind in normal
  // operation.
  void AdoptValue(int64_t v) { value_ = v; }

 private:
  int64_t value_ = 0;
};

class MetricGauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Welford-style running mean/variance with min/max, O(1) memory. (Moved from
// src/common/stats, where it had no remaining callers outside tests.)
class StreamingStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  // Raw accumulator state, exposed for exact snapshot round-trips
  // (src/snapshot): the Welford recurrence is order-sensitive, so adoption
  // must restore the accumulators bit-for-bit rather than replay samples.
  struct State {
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const {
    return State{count_, mean_, m2_, sum_, min_, max_};
  }
  void AdoptState(const State& s) {
    count_ = static_cast<size_t>(s.count);
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  enum class MetricType { kCounter, kGauge, kStreaming, kSamples, kHistogram };

  // Accessors create on first use and return the existing instrument on
  // repeat calls with the same name. A name holds exactly one metric type;
  // requesting it as another type is a programming error (checked).
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  StreamingStat* Streaming(const std::string& name);
  SampleSet* Samples(const std::string& name);
  Histogram* Hist(const std::string& name, double lo, double hi, size_t num_buckets);

  // Canonical label spelling: "name{key=value}".
  static std::string Labeled(const std::string& name, const std::string& key,
                             const std::string& value);

  struct Entry {
    std::string name;
    MetricType type;
    size_t index;  // into the per-type storage
  };
  // Registration order.
  const std::vector<Entry>& entries() const { return entries_; }

  // Convenience reads for report assembly; a missing name yields 0 / empty.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const SampleSet* FindSamples(const std::string& name) const;

  // One "name value" (or "name count=.. mean=..") line per metric, in
  // registration order.
  std::string DumpText() const;

  // Snapshot witness (src/snapshot, DESIGN.md §13): every instrument's full
  // state, packed in registration order, so adoption restores the registry
  // exactly. Instruments are registered by component constructors, which run
  // before any restore; adoption checks names and types against the blob.
  void Snapshot(SnapshotTx& tx, const char* section);

 private:
  const Entry* Find(const std::string& name) const;

  std::vector<Entry> entries_;
  std::map<std::string, size_t> index_;  // name -> entries_ position
  // Deques: stable element addresses under growth.
  std::deque<MetricCounter> counters_;
  std::deque<MetricGauge> gauges_;
  std::deque<StreamingStat> streams_;
  std::deque<SampleSet> samples_;
  std::deque<Histogram> histograms_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_TRACE_METRICS_H_
