#include "src/trace/query.h"

#include <algorithm>

namespace laminar {

TraceQuery::TraceQuery(const TraceBuffer& buffer)
    : buffer_(&buffer), in_order_(buffer.InOrder()) {}

bool TraceQuery::Matches(const TraceEvent& e, const TraceSelector& sel) const {
  if (sel.component.has_value() && e.component != *sel.component) {
    return false;
  }
  if (sel.entity.has_value() && e.entity != *sel.entity) {
    return false;
  }
  if (!sel.name.empty()) {
    uint32_t id;
    if (!buffer_->FindName(sel.name, &id) || e.name != id) {
      return false;
    }
  }
  if (e.kind == TraceEventKind::kSpan) {
    // Window test for spans: any intersection with [after, before).
    if (e.end() < sel.after || e.time >= sel.before) {
      return false;
    }
  } else {
    if (e.time < sel.after || e.time >= sel.before) {
      return false;
    }
  }
  return true;
}

std::vector<TraceEvent> TraceQuery::Events(const TraceSelector& sel) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : in_order_) {
    if (Matches(e, sel)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::Spans(const TraceSelector& sel) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : in_order_) {
    if (e.kind == TraceEventKind::kSpan && Matches(e, sel)) {
      out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
  return out;
}

std::vector<TraceEvent> TraceQuery::Instants(const TraceSelector& sel) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : in_order_) {
    if (e.kind == TraceEventKind::kInstant && Matches(e, sel)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::Counters(const TraceSelector& sel) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : in_order_) {
    if (e.kind == TraceEventKind::kCounter && Matches(e, sel)) {
      out.push_back(e);
    }
  }
  return out;
}

double TraceQuery::CounterIntegral(const TraceSelector& sel, double t0, double t1) const {
  if (t1 <= t0) {
    return 0.0;
  }
  // Widen the selector: the sample in force at t0 may predate the window.
  TraceSelector all = sel;
  all.after = -std::numeric_limits<double>::infinity();
  all.before = std::numeric_limits<double>::infinity();
  std::vector<TraceEvent> samples = Counters(all);
  double integral = 0.0;
  double value = 0.0;  // step function is 0 before the first sample
  double at = t0;
  for (const TraceEvent& s : samples) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= t1) {
      break;
    }
    integral += value * (s.time - at);
    value = s.value;
    at = s.time;
  }
  integral += value * (t1 - at);
  return integral;
}

double TraceQuery::CounterMean(const TraceSelector& sel, double t0, double t1) const {
  if (t1 <= t0) {
    return 0.0;
  }
  return CounterIntegral(sel, t0, t1) / (t1 - t0);
}

bool TraceQuery::HappensBefore(const TraceSelector& a, const TraceSelector& b) const {
  ptrdiff_t first_a = -1;
  ptrdiff_t first_b = -1;
  for (size_t i = 0; i < in_order_.size(); ++i) {
    if (first_a < 0 && Matches(in_order_[i], a)) {
      first_a = static_cast<ptrdiff_t>(i);
    }
    if (first_b < 0 && Matches(in_order_[i], b)) {
      first_b = static_cast<ptrdiff_t>(i);
    }
    if (first_a >= 0 && first_b >= 0) {
      break;
    }
  }
  return first_a >= 0 && first_b >= 0 && first_a < first_b;
}

double TraceQuery::EndTime() const {
  double end = 0.0;
  for (const TraceEvent& e : in_order_) {
    end = std::max(end, e.end());
  }
  return end;
}

double TotalSeconds(const std::vector<TraceEvent>& spans) {
  double total = 0.0;
  for (const TraceEvent& s : spans) {
    total += s.duration;
  }
  return total;
}

std::vector<std::pair<double, double>> MergeSpans(const std::vector<TraceEvent>& spans) {
  std::vector<std::pair<double, double>> intervals;
  intervals.reserve(spans.size());
  for (const TraceEvent& s : spans) {
    intervals.emplace_back(s.time, s.end());
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& iv : intervals) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

double UnionSeconds(const std::vector<TraceEvent>& spans) {
  double total = 0.0;
  for (const auto& iv : MergeSpans(spans)) {
    total += iv.second - iv.first;
  }
  return total;
}

double OverlapSeconds(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) {
  std::vector<std::pair<double, double>> ma = MergeSpans(a);
  std::vector<std::pair<double, double>> mb = MergeSpans(b);
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < ma.size() && j < mb.size()) {
    double lo = std::max(ma[i].first, mb[j].first);
    double hi = std::min(ma[i].second, mb[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (ma[i].second < mb[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

double MaxUncoveredGap(const std::vector<TraceEvent>& spans, double t0, double t1) {
  if (t1 <= t0) {
    return 0.0;
  }
  double gap = 0.0;
  double cursor = t0;
  for (const auto& iv : MergeSpans(spans)) {
    if (iv.second <= t0) {
      continue;
    }
    if (iv.first >= t1) {
      break;
    }
    gap = std::max(gap, std::min(iv.first, t1) - cursor);
    cursor = std::max(cursor, iv.second);
  }
  gap = std::max(gap, t1 - std::min(cursor, t1));
  return gap;
}

bool Overlaps(const TraceEvent& a, const TraceEvent& b) {
  return a.time < b.end() && b.time < a.end();
}

bool Contains(const TraceEvent& outer, const TraceEvent& inner) {
  return inner.time >= outer.time && inner.end() <= outer.end();
}

}  // namespace laminar
