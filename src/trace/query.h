// Query layer over a captured TraceBuffer: selection by component / name /
// entity / time window, interval algebra over spans (overlap, containment,
// coverage gaps), counter step-integrals and happens-before checks. This is
// what the golden timeline tests consume instead of aggregate tables.
#ifndef LAMINAR_SRC_TRACE_QUERY_H_
#define LAMINAR_SRC_TRACE_QUERY_H_

#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace.h"

namespace laminar {

// Event predicate. Unset fields match everything. The time window selects
// instants/counters with time in [after, before) and spans that *intersect*
// the window.
struct TraceSelector {
  std::optional<TraceComponent> component;
  std::string name;  // empty = any; never-emitted names match nothing
  std::optional<int32_t> entity;
  double after = -std::numeric_limits<double>::infinity();
  double before = std::numeric_limits<double>::infinity();

  TraceSelector& Component(TraceComponent c) {
    component = c;
    return *this;
  }
  TraceSelector& Name(std::string n) {
    name = std::move(n);
    return *this;
  }
  TraceSelector& Entity(int32_t e) {
    entity = e;
    return *this;
  }
  TraceSelector& Window(double lo, double hi) {
    after = lo;
    before = hi;
    return *this;
  }
};

class TraceQuery {
 public:
  explicit TraceQuery(const TraceBuffer& buffer);

  // Matching events of any kind, in emission (causal) order. Spans are
  // emitted at their *end* time, so emission order is not begin-time order.
  std::vector<TraceEvent> Events(const TraceSelector& sel) const;
  // Matching spans sorted by begin time (ties keep emission order).
  std::vector<TraceEvent> Spans(const TraceSelector& sel) const;
  std::vector<TraceEvent> Instants(const TraceSelector& sel) const;
  std::vector<TraceEvent> Counters(const TraceSelector& sel) const;

  // Integral over [t0, t1) of the step function defined by the matching
  // counter events (value 0 before the first sample).
  double CounterIntegral(const TraceSelector& sel, double t0, double t1) const;
  double CounterMean(const TraceSelector& sel, double t0, double t1) const;

  // True iff both selectors match at least one event and the first match of
  // `a` was emitted before the first match of `b`. Emission order is the
  // single-threaded simulator's causal order, so this is a genuine
  // happens-before check even for events at equal timestamps.
  bool HappensBefore(const TraceSelector& a, const TraceSelector& b) const;

  // Largest event end time (0 for an empty buffer).
  double EndTime() const;

  const TraceBuffer& buffer() const { return *buffer_; }

 private:
  bool Matches(const TraceEvent& e, const TraceSelector& sel) const;

  const TraceBuffer* buffer_;
  std::vector<TraceEvent> in_order_;
};

// ---- Interval algebra over span lists (free functions) ----------------------

// Sum of raw durations (double-counts overlapping spans).
double TotalSeconds(const std::vector<TraceEvent>& spans);
// Merged [begin, end) intervals of the spans, sorted, non-overlapping.
std::vector<std::pair<double, double>> MergeSpans(const std::vector<TraceEvent>& spans);
// Length of the union of the spans' intervals.
double UnionSeconds(const std::vector<TraceEvent>& spans);
// Length of the intersection of union(a) and union(b).
double OverlapSeconds(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b);
// Longest sub-interval of [t0, t1] not covered by any span.
double MaxUncoveredGap(const std::vector<TraceEvent>& spans, double t0, double t1);
bool Overlaps(const TraceEvent& a, const TraceEvent& b);
// True iff `inner` lies within [outer.begin, outer.end].
bool Contains(const TraceEvent& outer, const TraceEvent& inner);

}  // namespace laminar

#endif  // LAMINAR_SRC_TRACE_QUERY_H_
