#include "src/trace/trace.h"

#include "src/common/logging.h"

namespace laminar {

const char* TraceComponentName(TraceComponent component) {
  switch (component) {
    case TraceComponent::kDriver:
      return "driver";
    case TraceComponent::kTrainer:
      return "trainer";
    case TraceComponent::kReplica:
      return "replica";
    case TraceComponent::kRelay:
      return "relay";
    case TraceComponent::kManager:
      return "manager";
    case TraceComponent::kData:
      return "data";
    case TraceComponent::kFault:
      return "fault";
    case TraceComponent::kInvariant:
      return "invariant";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(size_t ring_capacity) : ring_capacity_(ring_capacity) {
  if (ring_capacity_ > 0) {
    events_.reserve(ring_capacity_);
  }
}

void TraceBuffer::Add(const TraceEvent& event) {
  ++emitted_;
  if (ring_capacity_ == 0 || events_.size() < ring_capacity_) {
    events_.push_back(event);
    return;
  }
  // Ring full: overwrite the oldest entry.
  events_[next_] = event;
  next_ = (next_ + 1) % ring_capacity_;
}

uint32_t TraceBuffer::InternName(const char* name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

bool TraceBuffer::FindName(const std::string& name, uint32_t* id) const {
  auto it = name_ids_.find(name);
  if (it == name_ids_.end()) {
    return false;
  }
  *id = it->second;
  return true;
}

std::vector<TraceEvent> TraceBuffer::InOrder() const {
  if (ring_capacity_ == 0 || events_.size() < ring_capacity_ || next_ == 0) {
    return events_;
  }
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<ptrdiff_t>(next_), events_.end());
  out.insert(out.end(), events_.begin(), events_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

TraceSink::TraceSink(const Simulator* sim, const TraceConfig& config)
    : sim_(sim), buffer_(std::make_shared<TraceBuffer>(config.ring_capacity)) {
  LAMINAR_CHECK(sim_ != nullptr);
}

TraceSink::TraceSink(const Simulator* sim) : sim_(sim) {
  LAMINAR_CHECK(sim_ != nullptr);
}

void TraceSink::Span(TraceComponent component, const char* name, int32_t entity,
                     SimTime begin, SimTime end, int64_t arg, double value) {
  TraceEvent e;
  e.time = begin.seconds();
  e.duration = end.seconds() - e.time;
  e.arg = arg;
  e.value = value;
  e.name = buffer_->InternName(name);
  e.entity = entity;
  e.component = component;
  e.kind = TraceEventKind::kSpan;
  buffer_->Add(e);
}

void TraceSink::Instant(TraceComponent component, const char* name, int32_t entity,
                        int64_t arg, double value) {
  TraceEvent e;
  e.time = sim_->Now().seconds();
  e.arg = arg;
  e.value = value;
  e.name = buffer_->InternName(name);
  e.entity = entity;
  e.component = component;
  e.kind = TraceEventKind::kInstant;
  buffer_->Add(e);
}

void TraceSink::Counter(TraceComponent component, const char* name, int32_t entity,
                        double value) {
  TraceEvent e;
  e.time = sim_->Now().seconds();
  e.value = value;
  e.name = buffer_->InternName(name);
  e.entity = entity;
  e.component = component;
  e.kind = TraceEventKind::kCounter;
  buffer_->Add(e);
}

}  // namespace laminar
