// Structured event tracing (DESIGN.md §9).
//
// Every subsystem emits typed events — spans, instants and counters — into a
// per-experiment TraceSink stamped with simulation time. Tracing is off by
// default: the Simulator carries a nullable sink pointer and the emission
// macros compile to a single pointer test, with the argument expressions
// never evaluated when the pointer is null, so instrumented hot paths cost
// nothing in ordinary runs.
//
// Determinism contract: the simulation is single-threaded and bit-
// reproducible per seed, so the emission sequence — and therefore the interned
// name table, every timestamp and every payload — is identical across runs
// and across sweep thread counts. TraceToBinary() serializes field-by-field
// (no struct padding), making trace files byte-comparable artifacts.
#ifndef LAMINAR_SRC_TRACE_TRACE_H_
#define LAMINAR_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace laminar {

// Who emitted the event. Exported as the Perfetto process row.
enum class TraceComponent : uint8_t {
  kDriver = 0,     // run orchestration, rate sampling
  kTrainer = 1,    // iteration phases, publishes
  kReplica = 2,    // decode engine, weight updates
  kRelay = 3,      // weight distribution tier
  kManager = 4,    // rollout manager decisions
  kData = 5,       // experience buffer / partial-response pool
  kFault = 6,      // injected faults + failure detectors
  kInvariant = 7,  // invariant checker sweeps
};
constexpr int kNumTraceComponents = 8;
const char* TraceComponentName(TraceComponent component);

enum class TraceEventKind : uint8_t {
  kSpan = 0,     // [time, time + duration)
  kInstant = 1,  // point event
  kCounter = 2,  // step change of a tracked quantity to `value`
};

// One emitted event. Names are interned per buffer (see TraceBuffer) so the
// record stays POD and cheap to copy.
struct TraceEvent {
  double time = 0.0;      // seconds of sim time; spans: begin
  double duration = 0.0;  // spans only
  int64_t arg = 0;        // integer payload: version, trajectory id, count...
  double value = 0.0;     // numeric payload; counters: the new value
  uint32_t name = 0;      // id into the owning buffer's name table
  int32_t entity = -1;    // replica/relay/machine id; -1 = system-wide
  TraceComponent component = TraceComponent::kDriver;
  TraceEventKind kind = TraceEventKind::kInstant;

  double end() const { return time + duration; }
};

// Event storage with first-use-order name interning. Two capture modes:
// unbounded full capture (ring_capacity == 0) or a fixed-size ring that
// evicts the oldest events once full (long soaks where only the tail
// matters).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t ring_capacity = 0);

  void Add(const TraceEvent& event);
  uint32_t InternName(const char* name);
  // Accounts for events evicted before this buffer existed — used by the
  // binary reader so a deserialized ring trace reports its original drop
  // count.
  void NoteDropped(uint64_t n) { emitted_ += n; }
  // Pre-sizes event storage when the caller knows the count up front (the
  // binary reader), avoiding realloc-copy growth on multi-100k-event traces.
  void Reserve(size_t n) { events_.reserve(events_.size() + n); }

  // Events in emission order; in ring mode the evicted prefix is absent.
  std::vector<TraceEvent> InOrder() const;

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  uint64_t total_emitted() const { return emitted_; }
  uint64_t dropped() const { return emitted_ - events_.size(); }
  size_t ring_capacity() const { return ring_capacity_; }

  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(uint32_t id) const { return names_[id]; }
  // Looks up an already-interned name; returns false if never emitted.
  bool FindName(const std::string& name, uint32_t* id) const;

 private:
  size_t ring_capacity_;  // 0 = unbounded
  size_t next_ = 0;       // ring write cursor (wrapped mode only)
  uint64_t emitted_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> names_;
  std::map<std::string, uint32_t> name_ids_;
};

struct TraceConfig {
  bool enabled = false;
  // 0 = full capture; otherwise keep only the most recent N events.
  size_t ring_capacity = 0;
};

// The emission front-end handed to subsystems via Simulator::trace().
// Timestamps come from the simulator clock; spans are recorded complete
// (begin handed in by the caller, end = Now), which sidesteps begin/end
// matching and costs one event per span.
//
// The emission entry points are virtual so the sharded executor can hand
// instrumented code a staging sink (sim/shard_exec.h) that defers emissions
// to the window barrier; name interning then still happens in serial
// first-use order, keeping trace files byte-identical to serial runs.
class TraceSink {
 public:
  TraceSink(const Simulator* sim, const TraceConfig& config);
  virtual ~TraceSink() = default;

  virtual void Span(TraceComponent component, const char* name, int32_t entity,
                    SimTime begin, SimTime end, int64_t arg = 0,
                    double value = 0.0);
  virtual void Instant(TraceComponent component, const char* name,
                       int32_t entity, int64_t arg = 0, double value = 0.0);
  virtual void Counter(TraceComponent component, const char* name,
                       int32_t entity, double value);

  const TraceBuffer& buffer() const { return *buffer_; }
  std::shared_ptr<const TraceBuffer> shared_buffer() const { return buffer_; }
  // Direct-boot adoption target: the driver deserializes the snapshot's
  // trace section straight into the live buffer so post-restore emissions
  // append to the restored prefix with the same interned-name ids.
  TraceBuffer* mutable_buffer() { return buffer_.get(); }

 protected:
  // Bufferless base for forwarding/staging sinks.
  explicit TraceSink(const Simulator* sim);

 private:
  const Simulator* sim_;
  std::shared_ptr<TraceBuffer> buffer_;
};

// Emission macros. `sim` is a Simulator*. Arguments after the sink test are
// NOT evaluated when tracing is disabled — keep side effects out of them.
// LAMINAR_TRACE_SPAN closes the span at the current sim time;
// LAMINAR_TRACE_SPAN_AT takes an explicit end for retroactive emission.
#define LAMINAR_TRACE_SPAN(sim, component, name, entity, begin, ...)        \
  do {                                                                      \
    if (::laminar::TraceSink* lmtr_sink_ = (sim)->trace()) {                \
      lmtr_sink_->Span((component), (name), (entity), (begin),              \
                       (sim)->Now()__VA_OPT__(, ) __VA_ARGS__);             \
    }                                                                       \
  } while (0)

#define LAMINAR_TRACE_SPAN_AT(sim, component, name, entity, begin, end, ...) \
  do {                                                                       \
    if (::laminar::TraceSink* lmtr_sink_ = (sim)->trace()) {                 \
      lmtr_sink_->Span((component), (name), (entity), (begin),               \
                       (end)__VA_OPT__(, ) __VA_ARGS__);                     \
    }                                                                        \
  } while (0)

#define LAMINAR_TRACE_INSTANT(sim, component, name, entity, ...)            \
  do {                                                                      \
    if (::laminar::TraceSink* lmtr_sink_ = (sim)->trace()) {                \
      lmtr_sink_->Instant((component), (name),                              \
                          (entity)__VA_OPT__(, ) __VA_ARGS__);              \
    }                                                                       \
  } while (0)

#define LAMINAR_TRACE_COUNTER(sim, component, name, entity, value)          \
  do {                                                                      \
    if (::laminar::TraceSink* lmtr_sink_ = (sim)->trace()) {                \
      lmtr_sink_->Counter((component), (name), (entity), (value));          \
    }                                                                       \
  } while (0)

}  // namespace laminar

#endif  // LAMINAR_SRC_TRACE_TRACE_H_
