#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>

namespace laminar {
namespace {

// All binary I/O is explicit little-endian byte shuffling so trace files are
// portable and byte-stable regardless of compiler struct layout.
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Unaligned little-endian loads; the byte-swap branch keeps the wire format
// identical on big-endian hosts.
uint32_t LoadLe32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

uint64_t LoadLe64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

double LoadLeF64(const char* p) {
  uint64_t bits = LoadLe64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

struct Cursor {
  std::string_view bytes;
  size_t pos = 0;

  bool U32(uint32_t* v) {
    if (pos + 4 > bytes.size()) {
      return false;
    }
    *v = LoadLe32(bytes.data() + pos);
    pos += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos + 8 > bytes.size()) {
      return false;
    }
    *v = LoadLe64(bytes.data() + pos);
    pos += 8;
    return true;
  }
};

constexpr char kMagic[8] = {'L', 'M', 'T', 'R', 'A', 'C', 'E', '1'};

// Shortest-round-trip double formatting: %.17g always round-trips and the
// format is locale-independent for the values the simulator produces.
void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

std::string TraceToChromeJson(const TraceBuffer& buffer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&](const TraceEvent& e, const char* ph) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(out, buffer.name(e.name));
    out += "\",\"cat\":\"";
    out += TraceComponentName(e.component);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    AppendDouble(out, e.time * 1e6);  // Chrome trace timestamps are in µs
    out += ",\"pid\":";
    out += std::to_string(static_cast<int>(e.component));
    out += ",\"tid\":";
    out += std::to_string(e.entity);
  };
  // Metadata rows so Perfetto shows component/entity names instead of ids.
  for (int c = 0; c < kNumTraceComponents; ++c) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(c);
    out += ",\"args\":{\"name\":\"";
    out += TraceComponentName(static_cast<TraceComponent>(c));
    out += "\"}}";
  }
  for (const TraceEvent& e : buffer.InOrder()) {
    switch (e.kind) {
      case TraceEventKind::kSpan:
        begin_event(e, "X");
        out += ",\"dur\":";
        AppendDouble(out, e.duration * 1e6);
        out += ",\"args\":{\"arg\":";
        out += std::to_string(e.arg);
        out += ",\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
      case TraceEventKind::kInstant:
        begin_event(e, "i");
        out += ",\"s\":\"t\",\"args\":{\"arg\":";
        out += std::to_string(e.arg);
        out += ",\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
      case TraceEventKind::kCounter:
        begin_event(e, "C");
        out += ",\"args\":{\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string TraceToBinary(const TraceBuffer& buffer) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  const std::vector<std::string>& names = buffer.names();
  PutU64(out, names.size());
  for (const std::string& n : names) {
    PutU32(out, static_cast<uint32_t>(n.size()));
    out += n;
  }
  std::vector<TraceEvent> events = buffer.InOrder();
  PutU64(out, events.size());
  PutU64(out, buffer.dropped());
  for (const TraceEvent& e : events) {
    PutF64(out, e.time);
    PutF64(out, e.duration);
    PutU64(out, static_cast<uint64_t>(e.arg));
    PutF64(out, e.value);
    PutU32(out, e.name);
    PutU32(out, static_cast<uint32_t>(e.entity));
    out.push_back(static_cast<char>(e.component));
    out.push_back(static_cast<char>(e.kind));
  }
  return out;
}

bool TraceFromBinary(std::string_view bytes, TraceBuffer* out) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  Cursor cur{bytes, sizeof(kMagic)};
  *out = TraceBuffer();
  uint64_t num_names = 0;
  if (!cur.U64(&num_names)) {
    return false;
  }
  for (uint64_t i = 0; i < num_names; ++i) {
    uint32_t len = 0;
    if (!cur.U32(&len) || cur.pos + len > bytes.size()) {
      return false;
    }
    out->InternName(std::string(bytes.substr(cur.pos, len)).c_str());
    cur.pos += len;
  }
  uint64_t num_events = 0;
  uint64_t dropped = 0;
  if (!cur.U64(&num_events) || !cur.U64(&dropped)) {
    return false;
  }
  out->NoteDropped(dropped);
  // Fixed 42-byte wire records: one up-front bounds check covers the whole
  // event array, then each field is a direct unaligned load (the trace
  // section dominates direct-boot adopt time, so the per-field byte loops
  // and bounds checks were measurable).
  constexpr size_t kEventWireBytes = 8 + 8 + 8 + 8 + 4 + 4 + 1 + 1;
  if (num_events > (bytes.size() - cur.pos) / kEventWireBytes) {
    return false;
  }
  out->Reserve(static_cast<size_t>(num_events));
  for (uint64_t i = 0; i < num_events; ++i) {
    const char* p = bytes.data() + cur.pos;
    TraceEvent e;
    e.time = LoadLeF64(p);
    e.duration = LoadLeF64(p + 8);
    e.arg = static_cast<int64_t>(LoadLe64(p + 16));
    e.value = LoadLeF64(p + 24);
    e.name = LoadLe32(p + 32);
    e.entity = static_cast<int32_t>(LoadLe32(p + 36));
    e.component = static_cast<TraceComponent>(static_cast<unsigned char>(p[40]));
    e.kind = static_cast<TraceEventKind>(static_cast<unsigned char>(p[41]));
    cur.pos += kEventWireBytes;
    if (e.name >= num_names || static_cast<int>(e.component) >= kNumTraceComponents ||
        static_cast<int>(e.kind) > 2) {
      return false;
    }
    out->Add(e);
  }
  return cur.pos == bytes.size();
}

bool WriteTraceFile(const TraceBuffer& buffer, const std::string& path) {
  bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::string payload = json ? TraceToChromeJson(buffer) : TraceToBinary(buffer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  int rc = std::fclose(f);
  return written == payload.size() && rc == 0;
}

}  // namespace laminar
