#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>

namespace laminar {
namespace {

// All binary I/O is explicit little-endian byte shuffling so trace files are
// portable and byte-stable regardless of compiler struct layout.
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

struct Cursor {
  const std::string* bytes;
  size_t pos = 0;

  bool U32(uint32_t* v) {
    if (pos + 4 > bytes->size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>((*bytes)[pos + i])) << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos + 8 > bytes->size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>((*bytes)[pos + i])) << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) {
      return false;
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
};

constexpr char kMagic[8] = {'L', 'M', 'T', 'R', 'A', 'C', 'E', '1'};

// Shortest-round-trip double formatting: %.17g always round-trips and the
// format is locale-independent for the values the simulator produces.
void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

std::string TraceToChromeJson(const TraceBuffer& buffer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&](const TraceEvent& e, const char* ph) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(out, buffer.name(e.name));
    out += "\",\"cat\":\"";
    out += TraceComponentName(e.component);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    AppendDouble(out, e.time * 1e6);  // Chrome trace timestamps are in µs
    out += ",\"pid\":";
    out += std::to_string(static_cast<int>(e.component));
    out += ",\"tid\":";
    out += std::to_string(e.entity);
  };
  // Metadata rows so Perfetto shows component/entity names instead of ids.
  for (int c = 0; c < kNumTraceComponents; ++c) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(c);
    out += ",\"args\":{\"name\":\"";
    out += TraceComponentName(static_cast<TraceComponent>(c));
    out += "\"}}";
  }
  for (const TraceEvent& e : buffer.InOrder()) {
    switch (e.kind) {
      case TraceEventKind::kSpan:
        begin_event(e, "X");
        out += ",\"dur\":";
        AppendDouble(out, e.duration * 1e6);
        out += ",\"args\":{\"arg\":";
        out += std::to_string(e.arg);
        out += ",\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
      case TraceEventKind::kInstant:
        begin_event(e, "i");
        out += ",\"s\":\"t\",\"args\":{\"arg\":";
        out += std::to_string(e.arg);
        out += ",\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
      case TraceEventKind::kCounter:
        begin_event(e, "C");
        out += ",\"args\":{\"value\":";
        AppendDouble(out, e.value);
        out += "}}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string TraceToBinary(const TraceBuffer& buffer) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  const std::vector<std::string>& names = buffer.names();
  PutU64(out, names.size());
  for (const std::string& n : names) {
    PutU32(out, static_cast<uint32_t>(n.size()));
    out += n;
  }
  std::vector<TraceEvent> events = buffer.InOrder();
  PutU64(out, events.size());
  PutU64(out, buffer.dropped());
  for (const TraceEvent& e : events) {
    PutF64(out, e.time);
    PutF64(out, e.duration);
    PutU64(out, static_cast<uint64_t>(e.arg));
    PutF64(out, e.value);
    PutU32(out, e.name);
    PutU32(out, static_cast<uint32_t>(e.entity));
    out.push_back(static_cast<char>(e.component));
    out.push_back(static_cast<char>(e.kind));
  }
  return out;
}

bool TraceFromBinary(const std::string& bytes, TraceBuffer* out) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  Cursor cur{&bytes, sizeof(kMagic)};
  *out = TraceBuffer();
  uint64_t num_names = 0;
  if (!cur.U64(&num_names)) {
    return false;
  }
  for (uint64_t i = 0; i < num_names; ++i) {
    uint32_t len = 0;
    if (!cur.U32(&len) || cur.pos + len > bytes.size()) {
      return false;
    }
    out->InternName(bytes.substr(cur.pos, len).c_str());
    cur.pos += len;
  }
  uint64_t num_events = 0;
  uint64_t dropped = 0;
  if (!cur.U64(&num_events) || !cur.U64(&dropped)) {
    return false;
  }
  out->NoteDropped(dropped);
  for (uint64_t i = 0; i < num_events; ++i) {
    TraceEvent e;
    uint64_t arg = 0;
    uint32_t entity = 0;
    if (!cur.F64(&e.time) || !cur.F64(&e.duration) || !cur.U64(&arg) ||
        !cur.F64(&e.value) || !cur.U32(&e.name) || !cur.U32(&entity) ||
        cur.pos + 2 > bytes.size()) {
      return false;
    }
    e.arg = static_cast<int64_t>(arg);
    e.entity = static_cast<int32_t>(entity);
    e.component = static_cast<TraceComponent>(bytes[cur.pos]);
    e.kind = static_cast<TraceEventKind>(bytes[cur.pos + 1]);
    cur.pos += 2;
    if (e.name >= num_names || static_cast<int>(e.component) >= kNumTraceComponents ||
        static_cast<int>(e.kind) > 2) {
      return false;
    }
    out->Add(e);
  }
  return cur.pos == bytes.size();
}

bool WriteTraceFile(const TraceBuffer& buffer, const std::string& path) {
  bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::string payload = json ? TraceToChromeJson(buffer) : TraceToBinary(buffer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  int rc = std::fclose(f);
  return written == payload.size() && rc == 0;
}

}  // namespace laminar
