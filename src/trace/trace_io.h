// Trace export: Chrome-trace JSON (open in Perfetto / chrome://tracing) and a
// compact binary format with a parse-back reader for round-trip tests and
// byte-level determinism checks.
#ifndef LAMINAR_SRC_TRACE_TRACE_IO_H_
#define LAMINAR_SRC_TRACE_TRACE_IO_H_

#include <string>
#include <string_view>

#include "src/trace/trace.h"

namespace laminar {

// Chrome trace-event JSON. Spans map to "X" complete events, instants to "i",
// counters to "C"; pid = component, tid = entity, timestamps in microseconds.
std::string TraceToChromeJson(const TraceBuffer& buffer);

// Compact binary serialization. Fields are written individually in fixed
// little-endian layout (no struct padding), so equal traces produce equal
// bytes — the property the cross-thread-count determinism test asserts.
std::string TraceToBinary(const TraceBuffer& buffer);

// Parses TraceToBinary() output. Returns false on malformed input; `out` is
// left in an unspecified state on failure. Takes a view so callers can decode
// straight out of a larger buffer (e.g. a snapshot record) without copying.
bool TraceFromBinary(std::string_view bytes, TraceBuffer* out);

// Writes Chrome JSON when `path` ends in ".json", the binary format
// otherwise. Returns false if the file cannot be written.
bool WriteTraceFile(const TraceBuffer& buffer, const std::string& path);

}  // namespace laminar

#endif  // LAMINAR_SRC_TRACE_TRACE_IO_H_
