#include "src/trainer/trainer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"
#include "src/trace/trace.h"

namespace laminar {
namespace {

constexpr int32_t kTrainerComp = ContinuationComponentId(kContFamilyTrainer);

// Shared field traversal for IterationStats (iteration history entries, the
// streaming accumulator, and the in-flight pending stats all serialize
// identically).
void SnapshotStats(SnapshotTx& tx, IterationStats& it) {
  tx.I64As("version", &it.version);
  double started = it.started.seconds();
  double completed = it.completed.seconds();
  tx.F64("started", &started);
  tx.F64("completed", &completed);
  tx.F64("data_wait_seconds", &it.data_wait_seconds);
  tx.F64("train_seconds", &it.train_seconds);
  tx.F64("publish_stall_seconds", &it.publish_stall_seconds);
  tx.F64("tokens", &it.tokens);
  tx.F64("mean_reward", &it.mean_reward);
  tx.F64("mean_consume_staleness", &it.mean_consume_staleness);
  tx.I64As("max_consume_staleness", &it.max_consume_staleness);
  tx.F64("mixed_version_fraction", &it.mixed_version_fraction);
  tx.F64("clip_fraction", &it.clip_fraction);
  if (tx.adopting()) {
    it.started = SimTime(started);
    it.completed = SimTime(completed);
  }
}

}  // namespace

Trainer::Trainer(Simulator* sim, TrainerConfig config, TrainCostModel cost,
                 ExperienceBuffer* buffer, Policy* policy)
    : sim_(sim), config_(config), cost_(std::move(cost)), buffer_(buffer), policy_(policy) {
  LAMINAR_CHECK_GT(config_.global_batch, 0);
  LAMINAR_CHECK_GT(config_.num_minibatches, 0);
  LAMINAR_CHECK_EQ(config_.global_batch % config_.num_minibatches, 0);
  sim_->continuations().Register(kTrainerComp, this);
}

Trainer::~Trainer() { sim_->continuations().Unregister(kTrainerComp); }

void Trainer::RunContinuation(uint16_t kind, const ContinuationPayload& p) {
  (void)p;
  switch (kind) {
    case kContTrainDone:
      OnTrainDone();
      return;
    case kContMinibatchDone:
      OnMinibatchDone();
      return;
    case kContPublishDone:
      OnPublishDone();
      return;
    case kContRecover:
      OnRecover(/*crash=*/false);
      return;
    case kContCrashRecover:
      OnRecover(/*crash=*/true);
      return;
  }
  LAMINAR_CHECK(false) << "trainer: unknown continuation kind " << kind;
}

void Trainer::RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                                  SimTime at) {
  EventId id = sim_->ScheduleContinuationAt(at, kTrainerComp, kind, p);
  if (kind == kContTrainDone || kind == kContMinibatchDone || kind == kContPublishDone) {
    pending_event_ = id;
  }
}

void Trainer::Start() {
  started_ = true;
  last_completed_ = sim_->Now();
  stream_idle_since_ = sim_->Now();
  TryBegin();
}

void Trainer::NotifyData() {
  if (!started_ || dead_) {
    return;
  }
  TryBegin();
}

void Trainer::TryBegin() {
  if (busy_ && config_.mode == TrainerMode::kFullBatch) {
    return;
  }
  if (config_.mode == TrainerMode::kFullBatch) {
    if (begin_gate_ && !begin_gate_()) {
      return;
    }
    if (buffer_->CanSample(static_cast<size_t>(config_.global_batch))) {
      BeginFullBatch();
    }
    return;
  }
  TryBeginMinibatch();
}

std::vector<std::vector<TrajectoryRecord>> Trainer::SplitMinibatches(
    std::vector<TrajectoryRecord> batch) const {
  size_t per_mb = batch.size() / config_.num_minibatches;
  std::vector<std::vector<TrajectoryRecord>> out;
  out.reserve(config_.num_minibatches);
  size_t idx = 0;
  for (int m = 0; m < config_.num_minibatches; ++m) {
    std::vector<TrajectoryRecord> mb;
    size_t take = m + 1 == config_.num_minibatches ? batch.size() - idx : per_mb;
    mb.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      mb.push_back(std::move(batch[idx++]));
    }
    out.push_back(std::move(mb));
  }
  return out;
}

void Trainer::RecordBatchStats(const std::vector<TrajectoryRecord>& batch,
                               IterationStats& stats) {
  for (const TrajectoryRecord& rec : batch) {
    stats.tokens += static_cast<double>(rec.total_tokens());
    stats.mean_reward += rec.reward;
    int staleness = rec.consume_staleness();
    stats.mean_consume_staleness += staleness;
    stats.max_consume_staleness = std::max(stats.max_consume_staleness, staleness);
    if (rec.mixed_version()) {
      stats.mixed_version_fraction += 1.0;
    }
    consume_staleness_.Add(static_cast<double>(staleness));
    inherent_staleness_.Add(static_cast<double>(rec.inherent_staleness()));
  }
  double n = static_cast<double>(batch.size());
  stats.mean_reward /= n;
  stats.mean_consume_staleness /= n;
  stats.mixed_version_fraction /= n;
}

void Trainer::BeginFullBatch() {
  busy_ = true;
  IterationStats stats;
  stats.started = sim_->Now();
  stats.data_wait_seconds = sim_->Now() - last_completed_;
  std::vector<TrajectoryRecord> batch =
      buffer_->Sample(static_cast<size_t>(config_.global_batch), version_);
  RecordBatchStats(batch, stats);

  // Policy math runs eagerly, mini-batch by mini-batch (the parameter values
  // it produces are what matters; the wall time is charged below).
  double clip_sum = 0.0;
  for (auto& mb : SplitMinibatches(std::move(batch))) {
    UpdateStats u = policy_->UpdateMinibatch(mb, config_.algorithm);
    clip_sum += u.clip_fraction;
  }
  stats.clip_fraction = clip_sum / config_.num_minibatches;

  stats.train_seconds = cost_.IterationTime(stats.tokens, config_.num_minibatches);
  pending_stats_ = std::move(stats);
  pending_event_ =
      sim_->ScheduleContinuationAfter(pending_stats_.train_seconds, kTrainerComp, kContTrainDone);
}

void Trainer::OnTrainDone() {
  pending_event_ = kInvalidEventId;
  IterationStats stats = std::move(pending_stats_);
  pending_stats_ = IterationStats{};
  FinishIteration(std::move(stats));
}

void Trainer::TryBeginMinibatch() {
  if (stream_mb_running_ || dead_) {
    return;
  }
  if (begin_gate_ && !begin_gate_()) {
    return;
  }
  size_t mb_size = static_cast<size_t>(config_.global_batch / config_.num_minibatches);
  if (!buffer_->CanSample(mb_size)) {
    return;
  }
  if (stream_mb_done_ == 0) {
    stream_stats_ = IterationStats{};
    stream_stats_.started = sim_->Now();
    stream_stats_.data_wait_seconds = sim_->Now() - stream_idle_since_;
  } else {
    stream_stats_.data_wait_seconds += sim_->Now() - stream_idle_since_;
  }
  busy_ = true;
  stream_mb_running_ = true;
  std::vector<TrajectoryRecord> mb = buffer_->Sample(mb_size, version_);
  IterationStats mb_stats;
  RecordBatchStats(mb, mb_stats);
  stream_stats_.tokens += mb_stats.tokens;
  double w_old = static_cast<double>(stream_mb_done_);
  double w_new = 1.0;
  auto blend = [&](double acc, double v) { return (acc * w_old + v * w_new) / (w_old + w_new); };
  stream_stats_.mean_reward = blend(stream_stats_.mean_reward, mb_stats.mean_reward);
  stream_stats_.mean_consume_staleness =
      blend(stream_stats_.mean_consume_staleness, mb_stats.mean_consume_staleness);
  stream_stats_.max_consume_staleness =
      std::max(stream_stats_.max_consume_staleness, mb_stats.max_consume_staleness);
  stream_stats_.mixed_version_fraction =
      blend(stream_stats_.mixed_version_fraction, mb_stats.mixed_version_fraction);

  UpdateStats u = policy_->UpdateMinibatch(mb, config_.algorithm);
  stream_stats_.clip_fraction = blend(stream_stats_.clip_fraction, u.clip_fraction);

  // Streaming overlaps generation with training, but the reference/old
  // log-prob forwards still run on the trainer GPUs for every mini-batch.
  double duration = cost_.MinibatchTime(mb_stats.tokens) +
                    cost_.ExperiencePrepTime(mb_stats.tokens);
  stream_stats_.train_seconds += duration;
  pending_event_ = sim_->ScheduleContinuationAfter(duration, kTrainerComp, kContMinibatchDone);
}

void Trainer::OnMinibatchDone() {
  pending_event_ = kInvalidEventId;
  stream_mb_running_ = false;
  ++stream_mb_done_;
  stream_idle_since_ = sim_->Now();
  if (stream_mb_done_ >= config_.num_minibatches) {
    stream_mb_done_ = 0;
    FinishIteration(stream_stats_);
  } else {
    TryBeginMinibatch();
  }
}

void Trainer::FinishIteration(IterationStats stats) {
  ++version_;
  int published = policy_->PublishVersion();
  LAMINAR_CHECK_EQ(published, version_);
  stats.version = version_;
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kTrainer, "trainer/publish", -1, version_);
  stats.publish_stall_seconds = publish_fn_ ? publish_fn_(version_) : 0.0;

  double stall = stats.publish_stall_seconds;
  pending_stats_ = std::move(stats);
  pending_event_ = sim_->ScheduleContinuationAfter(stall, kTrainerComp, kContPublishDone);
}

void Trainer::OnPublishDone() {
  pending_event_ = kInvalidEventId;
  IterationStats stats = std::move(pending_stats_);
  pending_stats_ = IterationStats{};
  stats.completed = sim_->Now();
  last_completed_ = sim_->Now();
  stream_idle_since_ = sim_->Now();
  busy_ = false;
  // The iteration's phase spans are emitted retroactively now that every
  // boundary is known; TraceQuery sorts by begin time, so emission at the
  // end of the iteration is equivalent to live emission.
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kTrainer, "trainer/wait_data", -1,
                        stats.started - stats.data_wait_seconds, stats.started,
                        stats.version);
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kTrainer, "trainer/train", -1,
                        stats.started, stats.started + stats.train_seconds,
                        stats.version);
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kTrainer, "trainer/publish_stall", -1,
                        stats.completed - stats.publish_stall_seconds, stats.completed,
                        stats.version);
  LAMINAR_TRACE_SPAN_AT(sim_, TraceComponent::kTrainer, "trainer/iteration", -1,
                        stats.started - stats.data_wait_seconds, stats.completed,
                        stats.version, stats.tokens);
  iterations_.push_back(stats);
  if (on_iteration_) {
    on_iteration_(stats);
  }
  if (config_.auto_continue && !dead_) {
    TryBegin();
  }
}

void Trainer::Kill(double recovery_seconds) {
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kTrainer, "trainer/kill", -1, version_);
  if (config_.mode == TrainerMode::kFullBatch) {
    if (busy_) {
      trajectories_discarded_ += config_.global_batch;
    }
  } else {
    int sampled = stream_mb_done_ + (stream_mb_running_ ? 1 : 0);
    trajectories_discarded_ +=
        static_cast<int64_t>(sampled) * (config_.global_batch / config_.num_minibatches);
  }
  dead_ = true;
  busy_ = false;
  stream_mb_running_ = false;
  stream_mb_done_ = 0;
  if (pending_event_ != kInvalidEventId) {
    sim_->Cancel(pending_event_);
    pending_event_ = kInvalidEventId;
  }
  pending_stats_ = IterationStats{};
  // Standard checkpoint recovery: the actor reloads the latest published
  // version, discarding any unpublished mini-batch updates, then resumes
  // sampling from the experience buffer.
  policy_->RestoreVersion(version_);
  sim_->ScheduleContinuationAfter(recovery_seconds, kTrainerComp, kContRecover);
}

void Trainer::OnRecover(bool crash) {
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kTrainer,
                        crash ? "trainer/crash_recover" : "trainer/recover", -1, version_);
  dead_ = false;
  last_completed_ = sim_->Now();
  stream_idle_since_ = sim_->Now();
  if (started_) {
    TryBegin();
  }
}

void Trainer::SnapshotPersistent(SnapshotTx& tx) {
  tx.Begin("trainer_ckpt");
  tx.I64As("version", &version_);
  uint64_t n = iterations_.size();
  tx.U64("iterations", &n);
  if (tx.adopting()) {
    iterations_.assign(n, IterationStats{});
  }
  for (IterationStats& it : iterations_) {
    tx.Begin("iteration");
    SnapshotStats(tx, it);
    tx.End();
  }
  tx.Begin("consume_staleness");
  consume_staleness_.Snapshot(tx);
  tx.End();
  tx.Begin("inherent_staleness");
  inherent_staleness_.Snapshot(tx);
  tx.End();
  tx.End();
}

std::string Trainer::Checkpoint() {
  SnapshotWriter writer;
  SnapshotTx tx(&writer);
  SnapshotPersistent(tx);
  return writer.Finish();
}

void Trainer::Snapshot(SnapshotTx& tx) {
  tx.Begin("trainer");
  SnapshotPersistent(tx);
  tx.I64("trajectories_discarded", &trajectories_discarded_);
  tx.Bool("busy", &busy_);
  tx.Bool("started", &started_);
  tx.Bool("dead", &dead_);
  double last_completed = last_completed_.seconds();
  double stream_idle_since = stream_idle_since_.seconds();
  tx.F64("last_completed", &last_completed);
  tx.I64As("stream_mb_done", &stream_mb_done_);
  tx.Bool("stream_mb_running", &stream_mb_running_);
  tx.F64("stream_idle_since", &stream_idle_since);
  if (tx.adopting()) {
    last_completed_ = SimTime(last_completed);
    stream_idle_since_ = SimTime(stream_idle_since);
    // Pending events re-seat through RestoreContinuation (event_heap section),
    // which runs after component adoption.
    pending_event_ = kInvalidEventId;
  }
  // In-flight state: fully serialized so a direct boot re-seats it (v2).
  tx.Begin("pending_stats");
  SnapshotStats(tx, pending_stats_);
  tx.End();
  tx.Begin("stream_stats");
  SnapshotStats(tx, stream_stats_);
  tx.End();
  policy_->Snapshot(tx);
  tx.End();
}

void Trainer::CrashRestart(const std::string& checkpoint, double recovery_seconds) {
  LAMINAR_TRACE_INSTANT(sim_, TraceComponent::kTrainer, "trainer/crash", -1, version_);
  // The process dies with whatever it had sampled but not yet published;
  // the discard accounting is identical to Kill().
  if (config_.mode == TrainerMode::kFullBatch) {
    if (busy_) {
      trajectories_discarded_ += config_.global_batch;
    }
  } else {
    int sampled = stream_mb_done_ + (stream_mb_running_ ? 1 : 0);
    trajectories_discarded_ +=
        static_cast<int64_t>(sampled) * (config_.global_batch / config_.num_minibatches);
  }
  dead_ = true;
  busy_ = false;
  stream_mb_running_ = false;
  stream_mb_done_ = 0;
  stream_stats_ = IterationStats{};
  pending_stats_ = IterationStats{};
  if (pending_event_ != kInvalidEventId) {
    sim_->Cancel(pending_event_);
    pending_event_ = kInvalidEventId;
  }
  // Wipe the in-memory training state outright, then adopt the checkpoint —
  // the restart sees only what was durably serialized.
  version_ = 0;
  iterations_.clear();
  consume_staleness_ = SampleSet();
  inherent_staleness_ = SampleSet();
  SnapshotReader reader;
  std::string error;
  LAMINAR_CHECK(reader.Parse(checkpoint, &error)) << "trainer checkpoint: " << error;
  SnapshotTx tx(&reader, SnapshotMode::kAdopt);
  SnapshotPersistent(tx);
  LAMINAR_CHECK(tx.ok()) << "trainer checkpoint adopt: " << tx.mismatches().front();
  // The policy's published history is durable (actor checkpoint files), so
  // the restart never steps behind a version replicas may already serve.
  version_ = std::max(version_, policy_->latest_version());
  policy_->RestoreVersion(version_);
  sim_->ScheduleContinuationAfter(recovery_seconds, kTrainerComp, kContCrashRecover);
}

}  // namespace laminar
