// Trainer: consumes experience batches, applies policy updates, and
// publishes weight versions (paper §3.1 "Trainer" module).
//
// Two consumption modes cover the evaluated systems:
//  * kFullBatch — samples a whole global batch, then runs experience prep +
//    N mini-batch updates back-to-back (verl, one-step, AReaL, Laminar).
//  * kStreaming — starts a mini-batch update as soon as one mini-batch of
//    trajectories is buffered, overlapping prep with generation (the
//    stream-generation baseline).
//
// Publication is abstracted behind publish_fn so drivers plug in either the
// relay tier (Laminar: sub-second stall, background broadcast) or a
// GPU-direct global synchronization (baselines: actor and all rollouts stall).
#ifndef LAMINAR_SRC_TRAINER_TRAINER_H_
#define LAMINAR_SRC_TRAINER_TRAINER_H_

#include <functional>
#include <vector>

#include "src/common/stats.h"
#include "src/data/experience_buffer.h"
#include "src/llm/train_cost.h"
#include "src/policy/policy.h"
#include "src/sim/simulator.h"

namespace laminar {

class SnapshotTx;

enum class TrainerMode { kFullBatch, kStreaming };

struct TrainerConfig {
  int global_batch = 8192;    // trajectories per RL iteration
  int num_minibatches = 16;   // mini-batch update steps per iteration
  TrainerMode mode = TrainerMode::kFullBatch;
  RlAlgorithm algorithm = RlAlgorithm::kGrpo;
  // Begin the next iteration as soon as data allows (asynchronous systems).
  // When false the driver sequences iterations explicitly (verl/one-step).
  bool auto_continue = true;
};

struct IterationStats {
  int version = 0;        // version published by this iteration
  SimTime started;
  SimTime completed;      // after the publish stall
  double data_wait_seconds = 0.0;  // idle time waiting for experiences
  double train_seconds = 0.0;      // prep + mini-batch compute
  double publish_stall_seconds = 0.0;
  double tokens = 0.0;    // prompt + response tokens consumed
  double mean_reward = 0.0;
  double mean_consume_staleness = 0.0;
  int max_consume_staleness = 0;
  double mixed_version_fraction = 0.0;
  double clip_fraction = 0.0;
};

class Trainer : public ContinuationClient {
 public:
  // Continuation kinds for the trainer's pending events (DESIGN.md §13).
  // Stats-bearing events park their IterationStats in the serialized
  // `pending_stats_` side member; the payload itself is empty.
  enum Continuation : uint16_t {
    kContTrainDone = 0,      // full-batch compute finished
    kContMinibatchDone = 1,  // streaming mini-batch finished
    kContPublishDone = 2,    // publish stall elapsed; iteration completes
    kContRecover = 3,        // Kill() checkpoint recovery elapsed
    kContCrashRecover = 4,   // CrashRestart() recovery elapsed
  };

  Trainer(Simulator* sim, TrainerConfig config, TrainCostModel cost,
          ExperienceBuffer* buffer, Policy* policy);
  ~Trainer() override;

  void RunContinuation(uint16_t kind, const ContinuationPayload& p) override;
  void RestoreContinuation(uint16_t kind, const ContinuationPayload& p,
                           SimTime at) override;

  // Returns the actor stall (seconds) for distributing version `v`.
  void set_publish_fn(std::function<double(int version)> fn) { publish_fn_ = std::move(fn); }
  void set_on_iteration(std::function<void(const IterationStats&)> fn) {
    on_iteration_ = std::move(fn);
  }

  // Optional gate consulted before starting an iteration (full-batch mode)
  // or a mini-batch (streaming mode). Lockstep drivers use it to hold the
  // trainer at global synchronization barriers.
  void set_begin_gate(std::function<bool()> gate) { begin_gate_ = std::move(gate); }

  // Arms the trainer; it starts consuming once enough data is buffered.
  void Start();
  // Drivers call this whenever the buffer gains trajectories.
  void NotifyData();

  // Fault injection: lose the in-flight iteration, recover from checkpoint
  // after `recovery_seconds` and resume consuming.
  void Kill(double recovery_seconds);

  // Checkpointing / crash-restart chaos (DESIGN.md §13) --------------------------
  // Serializes the trainer's persistent state (published version, completed
  // iteration history, staleness samples) as an LMSNAP1 blob. The system
  // refreshes this at Start() and after every completed iteration, so a
  // checkpoint never lags the last publish.
  std::string Checkpoint();
  // kCrashRestart: the trainer process dies outright. In-flight sampled work
  // is discarded with Kill()-identical accounting, every in-memory field is
  // wiped, and the persistent state is re-adopted from `checkpoint`; the
  // policy reloads the checkpointed version. Consumption resumes after
  // `recovery_seconds`. Check-fails on a corrupt or mismatched checkpoint.
  void CrashRestart(const std::string& checkpoint, double recovery_seconds);

  // Snapshot witness: the persistent fields by value plus digests of the
  // in-flight state (pending event, streaming accumulator, policy
  // parameters).
  void Snapshot(SnapshotTx& tx);

  int version() const { return version_; }
  // Trajectories sampled for iterations that a Kill() subsequently aborted.
  // Checkpoint recovery discards them without publishing a version.
  int64_t trajectories_discarded() const { return trajectories_discarded_; }
  bool busy() const { return busy_; }
  bool dead() const { return dead_; }
  const std::vector<IterationStats>& iterations() const { return iterations_; }
  const SampleSet& consume_staleness() const { return consume_staleness_; }
  const SampleSet& inherent_staleness() const { return inherent_staleness_; }

 private:
  // The checkpoint traversal shared by Checkpoint() (write) and
  // CrashRestart() (adopt); Snapshot() embeds it in the full witness.
  void SnapshotPersistent(SnapshotTx& tx);
  // Continuation bodies (former scheduling lambdas).
  void OnTrainDone();
  void OnMinibatchDone();
  void OnPublishDone();
  void OnRecover(bool crash);
  void TryBegin();
  void BeginFullBatch();
  void TryBeginMinibatch();
  void FinishIteration(IterationStats stats);
  void RecordBatchStats(const std::vector<TrajectoryRecord>& batch, IterationStats& stats);
  std::vector<std::vector<TrajectoryRecord>> SplitMinibatches(
      std::vector<TrajectoryRecord> batch) const;

  Simulator* sim_;
  TrainerConfig config_;
  TrainCostModel cost_;
  ExperienceBuffer* buffer_;
  Policy* policy_;
  std::function<double(int)> publish_fn_;
  std::function<void(const IterationStats&)> on_iteration_;
  std::function<bool()> begin_gate_;

  int version_ = 0;
  int64_t trajectories_discarded_ = 0;
  bool busy_ = false;
  bool started_ = false;
  bool dead_ = false;
  SimTime last_completed_ = SimTime::Zero();

  // Streaming-mode state.
  int stream_mb_done_ = 0;
  bool stream_mb_running_ = false;
  IterationStats stream_stats_;
  SimTime stream_idle_since_ = SimTime::Zero();

  EventId pending_event_ = kInvalidEventId;
  // Stats carried by the in-flight kContTrainDone / kContPublishDone event
  // (full-batch mode). Serialized so a direct-boot restore can re-mint the
  // event with nothing but its (kind, time).
  IterationStats pending_stats_;
  std::vector<IterationStats> iterations_;
  SampleSet consume_staleness_;
  SampleSet inherent_staleness_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_TRAINER_TRAINER_H_
