#include "src/verify/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/exp/sweep.h"
#include "src/verify/shrink.h"

namespace laminar {
namespace {

// Indices into the per-scenario config batch. The clean reference run is the
// anchor both differential twins compare against; it only exists when at
// least one twin is armed.
struct BatchLayout {
  int primary = -1;
  int clean = -1;
  int sync_twin = -1;
  int repack_off = -1;
};

std::vector<RlSystemConfig> BuildBatch(const Scenario& scn, BatchLayout& layout) {
  std::vector<RlSystemConfig> batch;
  layout.primary = static_cast<int>(batch.size());
  batch.push_back(scn.config);
  if (scn.diff_sync || scn.diff_repack) {
    layout.clean = static_cast<int>(batch.size());
    batch.push_back(CleanConfig(scn.config));
  }
  if (scn.diff_sync) {
    layout.sync_twin = static_cast<int>(batch.size());
    batch.push_back(SyncTwin(scn.config));
  }
  if (scn.diff_repack) {
    layout.repack_off = static_cast<int>(batch.size());
    batch.push_back(RepackOffTwin(scn.config));
  }
  return batch;
}

}  // namespace

OracleReport EvaluateScenario(const Scenario& scn, const EvalOptions& opts) {
  OracleReport out;
  BatchLayout layout;
  std::vector<RlSystemConfig> batch = BuildBatch(scn, layout);

  SweepOptions sweep_a;
  sweep_a.num_threads = opts.sweep_threads_a;
  std::vector<SystemReport> reports = RunExperiments(batch, sweep_a);
  SweepOptions sweep_b;
  sweep_b.num_threads = opts.sweep_threads_b;
  std::vector<SystemReport> replay = RunExperiments(batch, sweep_b);

  // Oracle: replay determinism across sweep thread counts.
  for (size_t i = 0; i < batch.size(); ++i) {
    ++out.checks_run;
    if (RunFingerprint(reports[i]) != RunFingerprint(replay[i])) {
      out.failures.push_back(
          {"determinism", batch[i].Label() + " (batch index " + std::to_string(i) +
                              "): fingerprints differ across " +
                              std::to_string(opts.sweep_threads_a) + " vs " +
                              std::to_string(opts.sweep_threads_b) + " sweep threads"});
    }
  }

  // Oracle: per-run audit.
  AuditRun(batch[layout.primary], reports[layout.primary], "primary", out);
  if (layout.clean >= 0) {
    AuditRun(batch[layout.clean], reports[layout.clean], "clean", out);
  }
  if (layout.sync_twin >= 0) {
    AuditRun(batch[layout.sync_twin], reports[layout.sync_twin], "sync-twin", out);
  }
  if (layout.repack_off >= 0) {
    AuditRun(batch[layout.repack_off], reports[layout.repack_off], "repack-off", out);
  }

  // Oracle: differential ledger equivalence.
  auto ledger_of = [&reports](int index) -> const RunLedger* {
    return index >= 0 ? reports[static_cast<size_t>(index)].ledger.get() : nullptr;
  };
  const RunLedger* clean = ledger_of(layout.clean);
  if (const RunLedger* sync = ledger_of(layout.sync_twin); sync != nullptr) {
    ++out.checks_run;
    if (clean == nullptr) {
      out.failures.push_back({"sync-diff", "clean reference run recorded no ledger"});
    } else if (auto bad = CompareLedgers(*clean, *sync, "async vs sync")) {
      out.failures.push_back({"sync-diff", *bad});
    }
  }
  if (const RunLedger* off = ledger_of(layout.repack_off); off != nullptr) {
    ++out.checks_run;
    if (clean == nullptr) {
      out.failures.push_back({"repack-diff", "clean reference run recorded no ledger"});
    } else if (auto bad = CompareLedgers(*clean, *off, "repack-on vs repack-off")) {
      out.failures.push_back({"repack-diff", *bad});
    }
  }

  // Oracle: random Algorithm-1 plans stay within bounds after application.
  CheckRandomRepackPlans(scn.seed, scn.plan_cases, out);
  return out;
}

std::string FuzzReport::Summary() const {
  std::ostringstream out;
  out << seeds_run << " seeds, " << oracle_checks << " oracle checks, " << failures.size()
      << " failing";
  for (const SeedOutcome& f : failures) {
    out << "\n  seed " << f.seed << ": " << f.failure_summary;
  }
  return out.str();
}

FuzzReport RunFuzz(const FuzzOptions& opts) {
  FuzzReport report;
  for (int i = 0; i < opts.num_seeds; ++i) {
    uint64_t seed = opts.base_seed + static_cast<uint64_t>(i);
    Scenario scn = GenerateScenario(seed);
    OracleReport oracle = EvaluateScenario(scn, opts.eval);
    ++report.seeds_run;
    report.oracle_checks += oracle.checks_run;
    if (oracle.ok()) {
      continue;
    }

    SeedOutcome outcome;
    outcome.seed = seed;
    outcome.failure_summary = oracle.Summary();
    outcome.repro = scn;
    if (opts.shrink_failures) {
      ShrinkResult shrunk = ShrinkScenario(scn, [&opts](const Scenario& candidate) {
        return !EvaluateScenario(candidate, opts.eval).ok();
      });
      outcome.repro = shrunk.scenario;
      outcome.failure_summary = EvaluateScenario(shrunk.scenario, opts.eval).Summary();
    }
    if (!opts.corpus_dir.empty()) {
      std::string path = opts.corpus_dir + "/fail_" + std::to_string(seed) + ".scenario";
      if (!WriteScenarioFile(outcome.repro, path, outcome.failure_summary)) {
        LAMINAR_LOG(kWarning) << "could not write repro to " << path;
      }
    }
    report.failures.push_back(std::move(outcome));
    if (static_cast<int>(report.failures.size()) >= opts.max_failures) {
      break;
    }
  }
  return report;
}

bool WriteScenarioFile(const Scenario& scn, const std::string& path,
                       const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  if (!header_comment.empty()) {
    std::istringstream lines(header_comment);
    std::string line;
    while (std::getline(lines, line)) {
      out << "# " << line << "\n";
    }
  }
  out << ScenarioToText(scn);
  return static_cast<bool>(out);
}

bool LoadScenarioFile(const std::string& path, Scenario* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ScenarioFromText(text.str(), out, error);
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scenario") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace laminar
