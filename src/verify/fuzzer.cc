#include "src/verify/fuzzer.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/exp/sweep.h"
#include "src/verify/shrink.h"

namespace laminar {
namespace {

// Indices into the per-scenario config batch. The clean reference run is the
// anchor both differential twins compare against; it only exists when at
// least one twin is armed.
struct BatchLayout {
  int primary = -1;
  int clean = -1;
  int sync_twin = -1;
  int repack_off = -1;
  int shard_twin = -1;
  int lane_control_off = -1;
};

// shard_twin_shards > 0 adds a twin of the primary with the shard count
// flipped (serial primaries get a sharded twin and vice versa);
// lane_twin_shards > 0 adds a sharded twin with control-event lane
// classification forced off. Both oracles demand full fingerprint identity.
// ScenarioFingerprints passes 0 for both so the committed golden file's
// batch layout is unchanged.
std::vector<RlSystemConfig> BuildBatch(const Scenario& scn, BatchLayout& layout,
                                       int shard_twin_shards,
                                       int lane_twin_shards) {
  std::vector<RlSystemConfig> batch;
  layout.primary = static_cast<int>(batch.size());
  batch.push_back(scn.config);
  if (scn.diff_sync || scn.diff_repack) {
    layout.clean = static_cast<int>(batch.size());
    batch.push_back(CleanConfig(scn.config));
  }
  if (scn.diff_sync) {
    layout.sync_twin = static_cast<int>(batch.size());
    batch.push_back(SyncTwin(scn.config));
  }
  if (scn.diff_repack) {
    layout.repack_off = static_cast<int>(batch.size());
    batch.push_back(RepackOffTwin(scn.config));
  }
  if (shard_twin_shards > 0) {
    layout.shard_twin = static_cast<int>(batch.size());
    RlSystemConfig twin = scn.config;
    twin.shards = twin.shards == 1 ? shard_twin_shards : 1;
    batch.push_back(twin);
  }
  if (lane_twin_shards > 0) {
    layout.lane_control_off = static_cast<int>(batch.size());
    RlSystemConfig twin = scn.config;
    if (twin.shards == 1) {
      twin.shards = lane_twin_shards;
    }
    twin.shard_lane_control = false;
    batch.push_back(twin);
  }
  return batch;
}

// Judge phase of EvaluateScenario: oracles over already-computed run
// reports. Almost pure — the snapshot differential is the one oracle that
// runs simulations here, because its barrier time T is derived from the
// primary's simulated span, which only exists after the sweep. Everything
// else judges the batched reports, so many scenarios' sweeps can still share
// one RunExperiments() call and be judged independently.
OracleReport JudgeScenario(const Scenario& scn, const EvalOptions& opts,
                           const std::vector<RlSystemConfig>& batch,
                           const BatchLayout& layout,
                           const std::vector<SystemReport>& reports,
                           const std::vector<SystemReport>& replay) {
  OracleReport out;

  // Oracle: replay determinism across sweep thread counts.
  for (size_t i = 0; i < batch.size(); ++i) {
    ++out.checks_run;
    if (RunFingerprint(reports[i]) != RunFingerprint(replay[i])) {
      out.failures.push_back(
          {"determinism", batch[i].Label() + " (batch index " + std::to_string(i) +
                              "): fingerprints differ across " +
                              std::to_string(opts.sweep_threads_a) + " vs " +
                              std::to_string(opts.sweep_threads_b) + " sweep threads"});
    }
  }

  // Oracle: per-run audit.
  AuditRun(batch[layout.primary], reports[layout.primary], "primary", out);
  if (layout.clean >= 0) {
    AuditRun(batch[layout.clean], reports[layout.clean], "clean", out);
  }
  if (layout.sync_twin >= 0) {
    AuditRun(batch[layout.sync_twin], reports[layout.sync_twin], "sync-twin", out);
  }
  if (layout.repack_off >= 0) {
    AuditRun(batch[layout.repack_off], reports[layout.repack_off], "repack-off", out);
  }

  // Oracle: differential ledger equivalence.
  auto ledger_of = [&reports](int index) -> const RunLedger* {
    return index >= 0 ? reports[static_cast<size_t>(index)].ledger.get() : nullptr;
  };
  const RunLedger* clean = ledger_of(layout.clean);
  if (const RunLedger* sync = ledger_of(layout.sync_twin); sync != nullptr) {
    ++out.checks_run;
    if (clean == nullptr) {
      out.failures.push_back({"sync-diff", "clean reference run recorded no ledger"});
    } else if (auto bad = CompareLedgers(*clean, *sync, "async vs sync")) {
      out.failures.push_back({"sync-diff", *bad});
    }
  }
  if (const RunLedger* off = ledger_of(layout.repack_off); off != nullptr) {
    ++out.checks_run;
    if (clean == nullptr) {
      out.failures.push_back({"repack-diff", "clean reference run recorded no ledger"});
    } else if (auto bad = CompareLedgers(*clean, *off, "repack-on vs repack-off")) {
      out.failures.push_back({"repack-diff", *bad});
    }
  }

  // Oracle: sharded execution is byte-identical to serial. Unlike the
  // ledger diffs this demands the full fingerprint (reports, chaos
  // counters, ledger, binary trace hash).
  if (layout.shard_twin >= 0) {
    ++out.checks_run;
    if (RunFingerprint(reports[layout.primary]) !=
        RunFingerprint(reports[layout.shard_twin])) {
      out.failures.push_back(
          {"shard-diff", "fingerprints differ between shards=" +
                             std::to_string(batch[layout.primary].shards) +
                             " and shards=" +
                             std::to_string(batch[layout.shard_twin].shards)});
    }
  }

  // Oracle: riding classified control events on their affine lanes is a
  // scheduling-layout change, never a behavioural one. The twin reruns the
  // primary sharded with lane classification forced off (everything fences
  // on lane 0, the PR-6 discipline) and the full fingerprint must match.
  if (layout.lane_control_off >= 0) {
    ++out.checks_run;
    const RlSystemConfig& twin = batch[layout.lane_control_off];
    // Compare against the run with the same shard count when one exists, so
    // a mismatch isolates lane classification rather than sharding itself;
    // the shard-diff oracle already ties that run to the primary.
    int anchor = layout.primary;
    if (layout.shard_twin >= 0 &&
        batch[layout.shard_twin].shards == twin.shards) {
      anchor = layout.shard_twin;
    }
    if (RunFingerprint(reports[anchor]) !=
        RunFingerprint(reports[layout.lane_control_off])) {
      out.failures.push_back(
          {"lane-control-diff",
           "fingerprints differ with control-event lane classification "
           "forced off at shards=" + std::to_string(twin.shards)});
    }
  }

  // Oracle: a mid-run snapshot is byte-stable, shard-invariant, and
  // invisible. Run A replays the primary with a snapshot barrier at T; run B
  // flips the shard count, re-reaches the same barrier, and verifies its own
  // state field-by-field against A's blob (SnapshotTx kVerify). The blobs
  // must be byte-identical, the verify pass must report zero mismatches, and
  // both reruns must reproduce the primary's fingerprint exactly.
  if (opts.diff_snapshot) {
    const SystemReport& primary = reports[layout.primary];
    double span = primary.simulated_seconds;
    double t = scn.config.snapshot_at_seconds > 0.0
                   ? scn.config.snapshot_at_seconds
                   : Rng(scn.seed).Fork("snapshot").Uniform(0.25, 0.75) * span;
    if (scn.config.snapshot_at_seconds > 0.0 && t >= span) {
      // A pinned barrier that misses the run would silently skip every
      // snapshot/restore check below — a corpus regression would "pass"
      // while testing nothing. Fail loudly instead.
      out.failures.push_back(
          {"snapshot-diff", "scenario pins snapshot_at=" + std::to_string(t) +
                                "s beyond the simulated span (" +
                                std::to_string(span) + "s)"});
    }
    if (t > 0.0 && t < span) {
      ++out.checks_run;
      SweepOptions solo;
      solo.num_threads = 1;
      RlSystemConfig run_a = scn.config;
      run_a.snapshot_at_seconds = t;
      SystemReport rep_a = std::move(RunExperiments({run_a}, solo)[0]);
      if (rep_a.snapshot == nullptr || rep_a.snapshot->empty()) {
        out.failures.push_back(
            {"snapshot-diff",
             "no snapshot captured at t=" + std::to_string(t) + "s (span " +
                 std::to_string(span) + "s)"});
      } else {
        RlSystemConfig run_b = run_a;
        run_b.shards =
            run_b.shards == 1 ? (opts.diff_shards > 0 ? opts.diff_shards : 4) : 1;
        run_b.snapshot_verify = rep_a.snapshot;
        SystemReport rep_b = std::move(RunExperiments({run_b}, solo)[0]);
        if (rep_b.snapshot == nullptr || *rep_b.snapshot != *rep_a.snapshot) {
          out.failures.push_back(
              {"snapshot-diff", "LMSNAP1 blobs differ between shards=" +
                                    std::to_string(run_a.shards) + " and shards=" +
                                    std::to_string(run_b.shards) + " at t=" +
                                    std::to_string(t) + "s"});
        }
        if (!rep_b.snapshot_mismatches.empty()) {
          out.failures.push_back(
              {"snapshot-diff",
               "verify pass reported " +
                   std::to_string(rep_b.snapshot_mismatches.size()) +
                   " field mismatches; first: " + rep_b.snapshot_mismatches[0]});
        }
        std::string base = RunFingerprint(primary);
        if (RunFingerprint(rep_a) != base) {
          out.failures.push_back(
              {"snapshot-diff",
               "taking a snapshot perturbed the run: fingerprint differs from "
               "the primary's"});
        }
        if (RunFingerprint(rep_b) != base) {
          out.failures.push_back(
              {"snapshot-diff",
               "shard-flipped snapshot rerun's fingerprint differs from the "
               "primary's"});
        }

        // Restore oracle (always on): boot a third run from A's blob and
        // demand it be indistinguishable from never having stopped — the
        // barrier re-snapshot byte-equals the blob it booted from and the
        // finished run reproduces the primary's fingerprint. The scenario's
        // restore_mode axis picks the recovery leg: direct boot (default,
        // adopt + re-mint in O(1) of the prefix) or the legacy
        // replay-anchored path, so the two recovery modes are differential
        // oracles for each other.
        ++out.checks_run;
        const char* mode = scn.config.restore_mode == RestoreMode::kReplay
                               ? "replay-anchored"
                               : "direct-boot";
        RlSystemConfig run_c = scn.config;
        run_c.restore_from = rep_a.snapshot;
        SystemReport rep_c = std::move(RunExperiments({run_c}, solo)[0]);
        if (!rep_c.restored) {
          out.failures.push_back(
              {"restore-diff", std::string(mode) + " rerun did not restore"});
        }
        if (rep_c.snapshot == nullptr || *rep_c.snapshot != *rep_a.snapshot) {
          out.failures.push_back(
              {"restore-diff", std::string(mode) +
                                   " barrier re-snapshot is not byte-identical "
                                   "to the blob it recovered from"});
        }
        if (!rep_c.snapshot_mismatches.empty()) {
          out.failures.push_back(
              {"restore-diff",
               std::string(mode) + " verify reported " +
                   std::to_string(rep_c.snapshot_mismatches.size()) +
                   " field mismatches; first: " + rep_c.snapshot_mismatches[0]});
        }
        if (RunFingerprint(rep_c) != base) {
          out.failures.push_back(
              {"restore-diff", std::string(mode) +
                                   " rerun's fingerprint differs from the "
                                   "primary's — recovery was not invisible"});
        }
      }
    }
  }

  // Oracle: random Algorithm-1 plans stay within bounds after application.
  CheckRandomRepackPlans(scn.seed, scn.plan_cases, out);
  return out;
}

}  // namespace

OracleReport EvaluateScenario(const Scenario& scn, const EvalOptions& opts) {
  return EvaluateScenarios({scn}, opts)[0];
}

std::vector<OracleReport> EvaluateScenarios(const std::vector<Scenario>& scenarios,
                                            const EvalOptions& opts) {
  // Build phase: concatenate every scenario's config batch into one flat
  // sweep so the thread pool sees all the work at once.
  std::vector<BatchLayout> layouts(scenarios.size());
  std::vector<std::vector<RlSystemConfig>> batches;
  batches.reserve(scenarios.size());
  std::vector<size_t> offsets;
  offsets.reserve(scenarios.size());
  std::vector<RlSystemConfig> flat;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    int lane_twin_shards =
        opts.diff_lane_control ? (opts.diff_shards > 0 ? opts.diff_shards : 4) : 0;
    batches.push_back(
        BuildBatch(scenarios[i], layouts[i], opts.diff_shards, lane_twin_shards));
    offsets.push_back(flat.size());
    flat.insert(flat.end(), batches[i].begin(), batches[i].end());
  }

  SweepOptions sweep_a;
  sweep_a.num_threads = opts.sweep_threads_a;
  std::vector<SystemReport> reports = RunExperiments(flat, sweep_a);
  SweepOptions sweep_b;
  sweep_b.num_threads = opts.sweep_threads_b;
  std::vector<SystemReport> replay = RunExperiments(flat, sweep_b);

  // Judge phase, per scenario over its slice of the flat report vector.
  std::vector<OracleReport> out;
  out.reserve(scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    auto begin_a = reports.begin() + static_cast<std::ptrdiff_t>(offsets[i]);
    auto begin_b = replay.begin() + static_cast<std::ptrdiff_t>(offsets[i]);
    std::ptrdiff_t len = static_cast<std::ptrdiff_t>(batches[i].size());
    std::vector<SystemReport> slice_a(std::make_move_iterator(begin_a),
                                      std::make_move_iterator(begin_a + len));
    std::vector<SystemReport> slice_b(std::make_move_iterator(begin_b),
                                      std::make_move_iterator(begin_b + len));
    out.push_back(
        JudgeScenario(scenarios[i], opts, batches[i], layouts[i], slice_a, slice_b));
  }
  return out;
}

std::vector<ConfigFingerprint> ScenarioFingerprints(const Scenario& scn,
                                                    unsigned sweep_threads) {
  BatchLayout layout;
  std::vector<RlSystemConfig> batch = BuildBatch(scn, layout, /*shard_twin_shards=*/0,
                                                 /*lane_twin_shards=*/0);
  SweepOptions sweep;
  sweep.num_threads = sweep_threads;
  std::vector<SystemReport> reports = RunExperiments(batch, sweep);
  std::vector<ConfigFingerprint> out;
  out.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    out.push_back({batch[i].Label(), FingerprintHash(reports[i])});
  }
  return out;
}

std::string FuzzReport::Summary() const {
  std::ostringstream out;
  out << seeds_run << " seeds, " << oracle_checks << " oracle checks, " << failures.size()
      << " failing";
  for (const SeedOutcome& f : failures) {
    out << "\n  seed " << f.seed << ": " << f.failure_summary;
  }
  return out.str();
}

FuzzReport RunFuzz(const FuzzOptions& opts) {
  FuzzReport report;
  int window = std::max(1, opts.seeds_per_batch);
  bool stopped = false;
  // Seeds are independent simulations, so a window of them is evaluated
  // through one batched sweep and judged strictly in seed order; the report
  // is identical for any window size (seeds evaluated past a mid-window
  // max_failures stop are simply discarded, as the serial loop never ran
  // them).
  for (int start = 0; start < opts.num_seeds && !stopped; start += window) {
    int n = std::min(window, opts.num_seeds - start);
    std::vector<Scenario> scenarios;
    scenarios.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      scenarios.push_back(
          GenerateScenario(opts.base_seed + static_cast<uint64_t>(start + i)));
    }
    std::vector<OracleReport> oracles = EvaluateScenarios(scenarios, opts.eval);
    for (int i = 0; i < n; ++i) {
      uint64_t seed = opts.base_seed + static_cast<uint64_t>(start + i);
      const Scenario& scn = scenarios[static_cast<size_t>(i)];
      const OracleReport& oracle = oracles[static_cast<size_t>(i)];
      ++report.seeds_run;
      report.oracle_checks += oracle.checks_run;
      if (oracle.ok()) {
        continue;
      }

      SeedOutcome outcome;
      outcome.seed = seed;
      outcome.failure_summary = oracle.Summary();
      outcome.repro = scn;
      if (opts.shrink_failures) {
        // Shrink with speculative candidate windows fanned through the same
        // batched sweep; commits follow submission order, so the result
        // matches the serial per-candidate shrinker.
        ShrinkResult shrunk = ShrinkScenario(
            scn, ShrinkBatchPredicate([&opts](const std::vector<Scenario>& candidates) {
              std::vector<OracleReport> reports =
                  EvaluateScenarios(candidates, opts.eval);
              std::vector<char> fails(reports.size(), 0);
              for (size_t j = 0; j < reports.size(); ++j) {
                fails[j] = reports[j].ok() ? 0 : 1;
              }
              return fails;
            }));
        outcome.repro = shrunk.scenario;
        outcome.failure_summary = EvaluateScenario(shrunk.scenario, opts.eval).Summary();
      }
      if (!opts.corpus_dir.empty()) {
        std::string path =
            opts.corpus_dir + "/fail_" + std::to_string(seed) + ".scenario";
        if (!WriteScenarioFile(outcome.repro, path, outcome.failure_summary)) {
          LAMINAR_LOG(kWarning) << "could not write repro to " << path;
        }
      }
      report.failures.push_back(std::move(outcome));
      if (static_cast<int>(report.failures.size()) >= opts.max_failures) {
        stopped = true;
        break;
      }
    }
  }
  return report;
}

bool WriteScenarioFile(const Scenario& scn, const std::string& path,
                       const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  if (!header_comment.empty()) {
    std::istringstream lines(header_comment);
    std::string line;
    while (std::getline(lines, line)) {
      out << "# " << line << "\n";
    }
  }
  out << ScenarioToText(scn);
  return static_cast<bool>(out);
}

bool LoadScenarioFile(const std::string& path, Scenario* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ScenarioFromText(text.str(), out, error);
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scenario") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace laminar
