// Scenario fuzzer: generate → run → oracle-check → shrink → corpus.
#ifndef LAMINAR_SRC_VERIFY_FUZZER_H_
#define LAMINAR_SRC_VERIFY_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/oracles.h"
#include "src/verify/scenario.h"

namespace laminar {

struct EvalOptions {
  // The determinism oracle runs the scenario's config batch under both
  // thread counts and requires byte-identical fingerprints.
  unsigned sweep_threads_a = 4;
  unsigned sweep_threads_b = 2;
};

// Runs every oracle on one scenario:
//   1. the primary config and its differential twins, swept with threads_a
//   2. the same batch swept with threads_b — fingerprints must match 1.
//   3. per-run audit (invariants, drained runs, ledger integrity)
//   4. sync/repack ledger equivalence against the clean reference run
//   5. `plan_cases` random Algorithm-1 post-apply checks
OracleReport EvaluateScenario(const Scenario& scenario, const EvalOptions& options = {});

struct FuzzOptions {
  int num_seeds = 32;
  uint64_t base_seed = 0;
  EvalOptions eval;
  bool shrink_failures = true;
  // When non-empty, each failing seed's (shrunk) scenario is written here as
  // fail_<seed>.scenario with the failure summary in the header comment.
  std::string corpus_dir;
  int max_failures = 4;  // stop fuzzing after this many failing seeds
};

struct SeedOutcome {
  uint64_t seed = 0;
  std::string failure_summary;
  Scenario repro;  // shrunk when FuzzOptions::shrink_failures
};

struct FuzzReport {
  int seeds_run = 0;
  int64_t oracle_checks = 0;
  std::vector<SeedOutcome> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

FuzzReport RunFuzz(const FuzzOptions& options);

// Corpus I/O -----------------------------------------------------------------
// Scenario files are ScenarioToText() output; loading rejects malformed files.
bool WriteScenarioFile(const Scenario& scenario, const std::string& path,
                       const std::string& header_comment = "");
bool LoadScenarioFile(const std::string& path, Scenario* out, std::string* error);
// Sorted *.scenario paths directly under `dir` (empty if none or unreadable).
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace laminar

#endif  // LAMINAR_SRC_VERIFY_FUZZER_H_
