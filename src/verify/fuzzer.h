// Scenario fuzzer: generate → run → oracle-check → shrink → corpus.
#ifndef LAMINAR_SRC_VERIFY_FUZZER_H_
#define LAMINAR_SRC_VERIFY_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/oracles.h"
#include "src/verify/scenario.h"

namespace laminar {

struct EvalOptions {
  // The determinism oracle runs the scenario's config batch under both
  // thread counts and requires byte-identical fingerprints.
  unsigned sweep_threads_a = 4;
  unsigned sweep_threads_b = 2;
  // Shard count for the shard-differential twin: the primary reruns with
  // its shard count flipped (1 <-> diff_shards) and the full fingerprint
  // must match. 0 disables the twin.
  int diff_shards = 4;
  // Lane-riding-control differential: the primary reruns sharded (at its
  // own shard count, or diff_shards when the primary is serial) with
  // control-event lane classification forced off
  // (RlSystemConfig::shard_lane_control = false), and the full fingerprint
  // must match — lane-riding relay/manager traffic is a scheduling-layout
  // change, never a behavioural one.
  bool diff_lane_control = true;
  // Snapshot oracle: rerun the primary with a snapshot barrier at a seeded
  // mid-point T, then a shard-flipped rerun that re-reaches the same barrier
  // and verifies field-by-field against the first blob. Both blobs must be
  // byte-identical, the verify pass must report zero mismatches, and neither
  // rerun's fingerprint may drift from the primary's (a snapshot is an
  // observation, never a perturbation).
  bool diff_snapshot = true;
};

// Runs every oracle on one scenario:
//   1. the primary config and its differential twins, swept with threads_a
//   2. the same batch swept with threads_b — fingerprints must match 1.
//   3. per-run audit (invariants, drained runs, ledger integrity)
//   4. sync/repack ledger equivalence against the clean reference run
//   5. lane-control differential: the sharded rerun with lane classification
//      forced off must reproduce the same fingerprint (diff_lane_control)
//   6. snapshot differential: mid-run LMSNAP1 capture is byte-stable across
//      shard counts and invisible in the run fingerprint (diff_snapshot)
//   7. `plan_cases` random Algorithm-1 post-apply checks
OracleReport EvaluateScenario(const Scenario& scenario, const EvalOptions& options = {});

// Batched form: evaluates many scenarios through two sweeps over the
// concatenated config batch, so independent seeds share the RunExperiments()
// thread pool instead of each paying its own mostly-idle sweep. Every run is
// single-threaded and bit-deterministic, so out[i] is byte-identical to
// EvaluateScenario(scenarios[i], options) — the batching changes wall-clock
// only, never a result.
std::vector<OracleReport> EvaluateScenarios(const std::vector<Scenario>& scenarios,
                                            const EvalOptions& options = {});

// One fingerprint per config in the scenario's batch (primary first, then
// any differential twins), in batch order. The hashes cover everything
// RunFingerprint() covers, so any behavioural drift in the data path shows
// up as a changed hash. Used to pin the committed corpus to pre-refactor
// behaviour (tests/corpus/fingerprints.golden).
struct ConfigFingerprint {
  std::string label;  // RlSystemConfig::Label() of the batch entry
  uint64_t hash = 0;  // FingerprintHash() of its report
};
std::vector<ConfigFingerprint> ScenarioFingerprints(const Scenario& scenario,
                                                    unsigned sweep_threads = 2);

struct FuzzOptions {
  int num_seeds = 32;
  uint64_t base_seed = 0;
  EvalOptions eval;
  bool shrink_failures = true;
  // When non-empty, each failing seed's (shrunk) scenario is written here as
  // fail_<seed>.scenario with the failure summary in the header comment.
  std::string corpus_dir;
  int max_failures = 4;  // stop fuzzing after this many failing seeds
  // Seeds evaluated per EvaluateScenarios() call. Outcomes are judged in
  // seed order and the FuzzReport is identical for any window size; larger
  // windows just keep the sweep pool busier.
  int seeds_per_batch = 8;
};

struct SeedOutcome {
  uint64_t seed = 0;
  std::string failure_summary;
  Scenario repro;  // shrunk when FuzzOptions::shrink_failures
};

struct FuzzReport {
  int seeds_run = 0;
  int64_t oracle_checks = 0;
  std::vector<SeedOutcome> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

FuzzReport RunFuzz(const FuzzOptions& options);

// Corpus I/O -----------------------------------------------------------------
// Scenario files are ScenarioToText() output; loading rejects malformed files.
bool WriteScenarioFile(const Scenario& scenario, const std::string& path,
                       const std::string& header_comment = "");
bool LoadScenarioFile(const std::string& path, Scenario* out, std::string* error);
// Sorted *.scenario paths directly under `dir` (empty if none or unreadable).
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace laminar

#endif  // LAMINAR_SRC_VERIFY_FUZZER_H_
