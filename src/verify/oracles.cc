#include "src/verify/oracles.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "src/common/rng.h"
#include "src/core/report_io.h"
#include "src/trace/trace_io.h"

namespace laminar {
namespace {

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string LedgerText(const RunLedger& ledger) {
  std::ostringstream out;
  out << "issued=" << ledger.prompts_issued << "/" << ledger.trajectories_issued
      << " consumed=" << ledger.trajectories_consumed << " discarded="
      << ledger.trajectories_discarded << "\n";
  for (const LedgerEntry& e : ledger.pushes) {
    out << e.id << "," << e.prompt_id << "," << e.group_index << "," << e.total_tokens
        << "," << e.num_segments << "," << e.generation_version << "\n";
  }
  return out.str();
}

}  // namespace

std::string OracleReport::Summary() const {
  if (ok()) {
    return "ok (" + std::to_string(checks_run) + " checks)";
  }
  std::ostringstream out;
  for (const OracleFailure& f : failures) {
    out << "[" << f.oracle << "] " << f.detail << "\n";
  }
  return out.str();
}

std::string RunFingerprint(const SystemReport& rep) {
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "faults=%lld slow=%lld/%lld dup=%lld drop=%lld inv=%lld/%lld\n",
                static_cast<long long>(rep.faults_injected),
                static_cast<long long>(rep.slow_events),
                static_cast<long long>(rep.slow_recoveries),
                static_cast<long long>(rep.duplicates_suppressed),
                static_cast<long long>(rep.trajectories_dropped),
                static_cast<long long>(rep.invariant_checks),
                static_cast<long long>(rep.invariant_violations));
  std::string fp = ReportSummaryCsv(rep) + IterationsCsv(rep) + SeriesCsv(rep) +
                   StalenessCsv(rep) + extra;
  if (rep.ledger != nullptr) {
    fp += LedgerText(*rep.ledger);
  }
  if (rep.trace != nullptr) {
    char h[32];
    std::snprintf(h, sizeof(h), "trace=%016llx\n",
                  static_cast<unsigned long long>(Fnv1a(TraceToBinary(*rep.trace))));
    fp += h;
  }
  return fp;
}

uint64_t FingerprintHash(const SystemReport& rep) { return Fnv1a(RunFingerprint(rep)); }

void AuditRun(const RlSystemConfig& cfg, const SystemReport& rep, const char* run_name,
              OracleReport& out) {
  auto add = [&out, run_name](const std::string& detail) {
    out.failures.push_back({"invariants", std::string(run_name) + ": " + detail});
  };
  ++out.checks_run;
  int target = cfg.warmup_iterations + cfg.measure_iterations;
  if (rep.iterations_completed != target) {
    add("completed " + std::to_string(rep.iterations_completed) + " of " +
        std::to_string(target) + " iterations (run drained)");
  }
  if (rep.invariant_violations != 0) {
    add(std::to_string(rep.invariant_violations) + " invariant violations");
  }
  if (cfg.invariants_enabled && cfg.system == SystemKind::kLaminar &&
      rep.invariant_checks == 0) {
    add("invariant checker armed but ran zero checks");
  }
  if (rep.serving_enabled) {
    // Admitted-request conservation at end of run: every arrival is rejected,
    // terminal, or still in flight — and deadline bookkeeping covers exactly
    // the completions.
    int64_t accounted = rep.serving_rejected + rep.serving_completed +
                        rep.serving_timed_out + rep.serving_failed +
                        rep.serving_inflight_at_end;
    if (rep.serving_requests != accounted) {
      add("serving request leak: " + std::to_string(rep.serving_requests) +
          " arrivals vs " + std::to_string(accounted) + " accounted");
    }
    if (rep.serving_deadline_hits + rep.serving_deadline_misses !=
        rep.serving_completed) {
      add("serving deadline bookkeeping: hits " +
          std::to_string(rep.serving_deadline_hits) + " + misses " +
          std::to_string(rep.serving_deadline_misses) + " != completed " +
          std::to_string(rep.serving_completed));
    }
    if (rep.serving_admitted < rep.serving_completed) {
      add("serving completed " + std::to_string(rep.serving_completed) +
          " exceeds admitted " + std::to_string(rep.serving_admitted));
    }
  }
  if (rep.ledger != nullptr) {
    const RunLedger& led = *rep.ledger;
    // The trainer consumes whole global batches: one per completed iteration,
    // plus at most one more when auto-continue started the next iteration
    // before the run-stop predicate fired. Batches aborted by a trainer
    // failure are consumed but produce no iteration; the ledger tracks them
    // separately so every sampled trajectory is still accounted for.
    int64_t accounted = led.trajectories_consumed - led.trajectories_discarded;
    int64_t batches = accounted / cfg.global_batch;
    if (accounted < 0 || accounted % cfg.global_batch != 0 ||
        batches < rep.iterations_completed || batches > rep.iterations_completed + 1) {
      add("consumed " + std::to_string(led.trajectories_consumed) + " (discarded " +
          std::to_string(led.trajectories_discarded) + ") trajectories across " +
          std::to_string(rep.iterations_completed) + " iterations of batch " +
          std::to_string(cfg.global_batch));
    }
    std::set<int64_t> ids;
    std::set<std::pair<int64_t, int>> slots;
    for (const LedgerEntry& e : led.pushes) {
      if (!ids.insert(e.id).second) {
        add("trajectory id " + std::to_string(e.id) + " pushed twice");
        break;
      }
      if (!slots.insert({e.prompt_id, e.group_index}).second) {
        add("group slot (" + std::to_string(e.prompt_id) + "," +
            std::to_string(e.group_index) + ") filled twice");
        break;
      }
      if (e.id >= led.trajectories_issued) {
        add("pushed id " + std::to_string(e.id) + " was never issued (issued " +
            std::to_string(led.trajectories_issued) + ")");
        break;
      }
    }
  }
}

std::optional<std::string> CompareLedgers(const RunLedger& a, const RunLedger& b,
                                          const std::string& what) {
  std::map<int64_t, const LedgerEntry*> by_id;
  for (const LedgerEntry& e : b.pushes) {
    by_id[e.id] = &e;
  }
  int64_t shared = 0;
  for (const LedgerEntry& ea : a.pushes) {
    auto it = by_id.find(ea.id);
    if (it == by_id.end()) {
      continue;
    }
    ++shared;
    const LedgerEntry& eb = *it->second;
    if (ea.prompt_id != eb.prompt_id || ea.group_index != eb.group_index ||
        ea.total_tokens != eb.total_tokens || ea.num_segments != eb.num_segments) {
      std::ostringstream out;
      out << what << ": id " << ea.id << " diverged: (prompt " << ea.prompt_id << " slot "
          << ea.group_index << " tokens " << ea.total_tokens << " segs " << ea.num_segments
          << ") vs (prompt " << eb.prompt_id << " slot " << eb.group_index << " tokens "
          << eb.total_tokens << " segs " << eb.num_segments << ")";
      return out.str();
    }
  }
  if (shared == 0 && !a.pushes.empty() && !b.pushes.empty()) {
    return what + ": runs share no trajectory ids at all";
  }
  return std::nullopt;
}

std::optional<std::string> CheckRepackPlanPostApply(
    const std::vector<ReplicaSnapshot>& snapshots, const RepackParams& params,
    const RepackPlan& plan) {
  struct Load {
    double kv = 0.0;
    int reqs = 0;
  };
  std::map<int, Load> load;
  for (const ReplicaSnapshot& s : snapshots) {
    load[s.replica_id] = {s.kv_used_frac, s.num_reqs};
  }
  std::set<int> sources;
  std::set<int> destinations;
  for (size_t i = 0; i < plan.moves.size(); ++i) {
    auto [src, dst] = plan.moves[i];
    std::ostringstream out;
    out << "move " << i << " (" << src << "->" << dst << "): ";
    if (load.count(src) == 0 || load.count(dst) == 0) {
      return out.str() + "unknown replica id";
    }
    if (src == dst) {
      return out.str() + "source equals destination";
    }
    if (!sources.insert(src).second) {
      return out.str() + "replica drained twice";
    }
    if (destinations.count(src) > 0) {
      return out.str() + "source was already a destination (chained move)";
    }
    if (sources.count(dst) > 0) {
      return out.str() + "destination was already drained";
    }
    destinations.insert(dst);
    // Chained accounting: a drained source hands over everything it holds
    // NOW, including load a buggy plan may have parked on it earlier.
    load[dst].kv += load[src].kv;
    load[dst].reqs += load[src].reqs;
    load[src] = {0.0, 0};
    if (load[dst].kv > params.c_max_frac + 1e-9) {
      out << "destination exceeds C_max: " << load[dst].kv << " > " << params.c_max_frac;
      return out.str();
    }
    if (load[dst].reqs > params.batch_bound) {
      out << "destination exceeds batch bound: " << load[dst].reqs << " > "
          << params.batch_bound;
      return out.str();
    }
  }
  return std::nullopt;
}

void CheckRandomRepackPlans(uint64_t seed, int cases, OracleReport& out) {
  Rng r = Rng(seed).Fork("plan-cases");
  for (int c = 0; c < cases; ++c) {
    RepackParams params;
    params.c_max_frac = r.Uniform(0.5, 0.95);
    params.batch_bound = static_cast<int>(r.UniformInt(16, 256));
    int n = static_cast<int>(r.UniformInt(2, 12));
    std::vector<ReplicaSnapshot> snaps;
    snaps.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      ReplicaSnapshot s;
      s.replica_id = i;
      s.kv_used_frac = r.Uniform(0.0, 1.0);
      s.kv_prev_frac = r.Bernoulli(0.15) ? kNoPrevKvSample : r.Uniform(0.0, 1.0);
      s.num_reqs = static_cast<int>(r.UniformInt(0, params.batch_bound));
      s.num_waiting = r.Bernoulli(0.7) ? 0 : static_cast<int>(r.UniformInt(1, 8));
      s.busy = r.Bernoulli(0.9);
      s.eligible = r.Bernoulli(0.9);
      snaps.push_back(s);
    }
    int threshold = static_cast<int>(r.UniformInt(2, params.batch_bound));
    for (int detector = 0; detector < 2; ++detector) {
      RepackPlan plan = detector == 0
                            ? BestFitConsolidation(snaps, params)
                            : StaticThresholdConsolidation(snaps, params, threshold);
      ++out.checks_run;
      if (auto bad = CheckRepackPlanPostApply(snaps, params, plan)) {
        std::ostringstream detail;
        detail << (detector == 0 ? "best-fit" : "static-threshold") << " case " << c
               << " (seed " << seed << "): " << *bad;
        out.failures.push_back({"repack-plan", detail.str()});
        return;  // one minimal case is enough; the shrinker takes it from here
      }
    }
  }
}

}  // namespace laminar
