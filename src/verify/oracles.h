// Differential oracles over completed runs and repack plans (DESIGN.md §10).
//
// An oracle is a pure check that distinguishes "the simulator did something"
// from "the simulator did the right thing" without a golden file:
//   - run audit: invariant violations, drained runs, duplicate ledger ids
//   - replay determinism: byte-identical fingerprints across sweep thread
//     counts (reports, ledger, and the binary trace)
//   - ledger equivalence: two orchestration modes must agree on the
//     spec-derived fields of every trajectory id they both complete
//   - repack post-apply: applying a consolidation plan move-by-move (with
//     chained load accounting) never overflows C_max or the batch bound
#ifndef LAMINAR_SRC_VERIFY_ORACLES_H_
#define LAMINAR_SRC_VERIFY_ORACLES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/repack/best_fit.h"

namespace laminar {

struct OracleFailure {
  std::string oracle;  // "determinism", "invariants", "ledger", "sync-diff", ...
  std::string detail;
};

struct OracleReport {
  std::vector<OracleFailure> failures;
  int checks_run = 0;

  bool ok() const { return failures.empty(); }
  // "ok (N checks)" or one line per failure.
  std::string Summary() const;
};

// Everything that must be bit-identical across repeated runs of one config:
// the four report CSVs, the chaos counters, the push ledger, and an FNV-1a
// hash of the binary trace when one was captured.
std::string RunFingerprint(const SystemReport& report);

// FNV-1a of RunFingerprint(report) — the compact form checked into
// tests/corpus/fingerprints.golden and compared by the `perf`-labeled
// byte-identity regression test.
uint64_t FingerprintHash(const SystemReport& report);

// Per-run sanity: zero invariant violations (with checks actually run when
// the config armed them), the run completed its target iterations, consumed
// trajectories match iterations x global batch, and no trajectory id was
// pushed twice. Failures are appended to `out`.
void AuditRun(const RlSystemConfig& config, const SystemReport& report,
              const char* run_name, OracleReport& out);

// Ledger equivalence between two runs of the same workload seed. Every id
// completed by both must carry identical spec-derived fields (prompt id,
// group index, token/segment counts). `what` labels the failure.
std::optional<std::string> CompareLedgers(const RunLedger& a, const RunLedger& b,
                                          const std::string& what);

// Applies `plan` to `snapshots` move-by-move with chained load accounting
// (a source carries everything it previously received) and checks that no
// destination ever exceeds params.c_max_frac or params.batch_bound, that
// sources and destinations are disjoint, and that every id is real. Returns
// a description of the first violation, or nullopt for a sound plan.
std::optional<std::string> CheckRepackPlanPostApply(
    const std::vector<ReplicaSnapshot>& snapshots, const RepackParams& params,
    const RepackPlan& plan);

// Draws `cases` random snapshot sets, runs both consolidation detectors on
// each, and post-apply-checks the resulting plans. Deterministic in `seed`.
void CheckRandomRepackPlans(uint64_t seed, int cases, OracleReport& out);

}  // namespace laminar

#endif  // LAMINAR_SRC_VERIFY_ORACLES_H_
